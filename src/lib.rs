//! Workspace root crate: re-exports for examples and integration tests.
#![forbid(unsafe_code)]
pub use iniva_consensus as consensus;
pub use iniva_crypto as crypto;
pub use iniva_gosig as gosig;
pub use iniva_net as net;
pub use iniva_sim as sim;
pub use iniva_storage as storage;
pub use iniva_transport as transport;
pub use iniva_tree as tree;
