//! Cross-crate integration tests: real BLS12-381 crypto driving the Iniva
//! protocol stack, reward verification over QCs produced by the actual
//! replica pipeline, and end-to-end determinism.

use iniva::protocol::{tree_for_view, InivaConfig, InivaReplica};
use iniva::rewards::{distribute, verify_distribution, RewardParams};
use iniva_consensus::leader::{LeaderContext, LeaderPolicy};
use iniva_crypto::bls::BlsScheme;
use iniva_crypto::multisig::VoteScheme;
use iniva_crypto::sim_scheme::SimScheme;
use iniva_net::{NetConfig, Simulation, SECS};
use std::sync::Arc;

#[test]
fn iniva_runs_on_real_bls_crypto() {
    // A small committee using the from-scratch BLS12-381 backend end to end:
    // every signature, aggregate and QC in the run is real pairing crypto.
    let n = 4;
    let scheme = Arc::new(BlsScheme::new(n, b"integration-bls"));
    let mut cfg = InivaConfig::for_tests(n, 1);
    cfg.view_timeout = 2 * SECS;
    let replicas = (0..n as u32)
        .map(|id| InivaReplica::new(id, cfg.clone(), Arc::clone(&scheme)))
        .collect();
    let mut sim = Simulation::new(NetConfig::default(), replicas);
    sim.run_until(2 * SECS);
    assert!(
        sim.actor(0).chain.committed_height() >= 1,
        "committed height {}",
        sim.actor(0).chain.committed_height()
    );
    // The QC is a genuine BLS aggregate — re-verify it out-of-band.
    let qc = sim.actor(0).chain.highest_qc().expect("has a QC").clone();
    let msg = iniva_consensus::vote_message(&qc.block_hash, qc.view);
    assert!(scheme.verify(&msg, &qc.agg));
    assert!(qc.signer_count(scheme.as_ref()) >= iniva_consensus::quorum(n));
}

#[test]
fn protocol_qcs_pass_reward_verification() {
    // QCs produced by the actual replica pipeline must be consumable by the
    // reward mechanism and verified by an independent re-computation.
    let n = 13;
    let scheme = Arc::new(SimScheme::new(n, b"integration-rewards"));
    let cfg = InivaConfig::for_tests(n, 3);
    let replicas = (0..n as u32)
        .map(|id| InivaReplica::new(id, cfg.clone(), Arc::clone(&scheme)))
        .collect();
    let mut sim = Simulation::new(NetConfig::default(), replicas);
    sim.run_until(3 * SECS);
    let replica = sim.actor(0);
    let qc = replica.chain.highest_qc().expect("has a QC");
    let mults = scheme.multiplicities(&qc.agg);
    let tree = replica.tree_for_view(qc.view);
    let params = RewardParams::default();
    let d = distribute(&tree, mults, &params, 1.0);
    assert!((d.shares.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    assert!(verify_distribution(&tree, mults, &params, 1.0, &d.shares));
    // Fault-free: every member was collected through the tree (no
    // punishments), so no share is below the residual-only level.
    let min = d.shares.iter().cloned().fold(f64::MAX, f64::min);
    assert!(min > 0.5 / n as f64);
}

#[test]
fn tree_derivation_is_identical_across_crates() {
    // The tree used by the protocol must equal a freshly derived one for the
    // same (seed, view, policy) — the determinism every correct process
    // relies on for makeTree(B).
    let ctx = LeaderContext::default();
    let a = tree_for_view(21, 4, &[7u8; 32], 9, &LeaderPolicy::RoundRobin, &ctx);
    let b = tree_for_view(21, 4, &[7u8; 32], 9, &LeaderPolicy::RoundRobin, &ctx);
    assert_eq!(a.root(), b.root());
    for m in 0..21 {
        assert_eq!(a.parent_of(m), b.parent_of(m));
        assert_eq!(a.role_of(m), b.role_of(m));
    }
    // The root really is the round-robin leader of view 10.
    assert_eq!(a.root(), 10);
}

#[test]
fn sim_and_bls_schemes_agree_on_protocol_semantics() {
    // Aggregation bookkeeping (the part the protocol logic depends on) must
    // be backend-independent.
    let sim = SimScheme::new(5, b"agree");
    let bls = BlsScheme::new(5, b"agree");
    let msg = b"cross-backend";
    let s_agg = sim.combine(
        &sim.scale(&sim.sign(1, msg), 2),
        &sim.combine(
            &sim.scale(&sim.sign(2, msg), 2),
            &sim.scale(&sim.sign(0, msg), 3),
        ),
    );
    let b_agg = bls.combine(
        &bls.scale(&bls.sign(1, msg), 2),
        &bls.combine(
            &bls.scale(&bls.sign(2, msg), 2),
            &bls.scale(&bls.sign(0, msg), 3),
        ),
    );
    assert_eq!(sim.multiplicities(&s_agg), bls.multiplicities(&b_agg));
    assert!(sim.verify(msg, &s_agg));
    assert!(bls.verify(msg, &b_agg));
}

#[test]
fn full_stack_determinism() {
    // The entire pipeline — shuffle, tree, DES, protocol, metrics — must be
    // bit-identical across runs with the same seeds.
    let run = || {
        let n = 21;
        let scheme = Arc::new(SimScheme::new(n, b"determinism"));
        let cfg = InivaConfig::for_tests(n, 4);
        let replicas = (0..n as u32)
            .map(|id| InivaReplica::new(id, cfg.clone(), Arc::clone(&scheme)))
            .collect();
        let mut sim = Simulation::new(NetConfig::default(), replicas);
        sim.run_until(2 * SECS);
        (
            sim.actor(0).chain.committed_height(),
            sim.actor(0).chain.metrics.committed_reqs,
            sim.actor(0).chain.metrics.qc_signers_sum,
            sim.stats(0).msgs_sent,
        )
    };
    assert_eq!(run(), run());
}
