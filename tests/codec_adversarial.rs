//! Adversarial wire-codec tests across every `Codec` impl the transport
//! can ship: property-based round-trips plus truncated, trailing and
//! oversized-length-prefix inputs, asserting clean `DecodeError`s — never
//! a panic — for `InivaMsg`, `StarMsg`, `Qc`, `SimAggregate`,
//! `BlsAggregate` (48-byte compressed G1 points, with off-curve and
//! non-subgroup rejection), `Multiplicities`, `GossipShare` and the
//! fully-untrusted client protocol `ClientMsg` (bit-flip canonicality,
//! oversized-payload rejection).
//!
//! The transport drops a connection whose peer sends an undecodable body;
//! a panicking decoder would instead let one malformed frame take down
//! the whole replica. These tests are the contract that keeps that
//! failure mode closed as codecs evolve.

use iniva::protocol::InivaMsg;
use iniva_consensus::types::{vote_message, Block, Qc};
use iniva_consensus::StarMsg;
use iniva_crypto::bls::{BlsAggregate, BlsScheme};
use iniva_crypto::multisig::{Multiplicities, VoteScheme};
use iniva_crypto::sim_scheme::{SimAggregate, SimScheme};
use iniva_gosig::GossipShare;
use iniva_ingress::{ClientMsg, SubmitStatus, MAX_CLIENT_PAYLOAD};
use iniva_net::wire::{Codec, DecodeError, Encoder};
use iniva_transport::frame::{self, FrameParse, HANDSHAKE_BYTES, MAX_FRAME_BYTES};
use proptest::prelude::*;
use std::sync::OnceLock;

/// Reference whole-buffer parse: every complete frame in `buf`, plus the
/// offset where the partial tail (if any) begins. `Err` on corrupt
/// framing.
#[allow(clippy::type_complexity)]
fn parse_stream(buf: &[u8]) -> Result<(Vec<(u64, Vec<u8>)>, usize), ()> {
    let mut frames = Vec::new();
    let mut offset = 0;
    loop {
        match frame::parse_frame(&buf[offset..]) {
            Ok(FrameParse::Incomplete) => return Ok((frames, offset)),
            Ok(FrameParse::Complete {
                consumed,
                seq,
                body,
            }) => {
                frames.push((seq, buf[offset + body.start..offset + body.end].to_vec()));
                offset += consumed;
            }
            Err(_) => return Err(()),
        }
    }
}

/// Encodes one transport frame the way `write_frame` lays it out:
/// `[len:u32-le][seq:u64-le][body]` with `len = 8 + body.len()`.
fn encode_frame(seq: u64, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + body.len());
    out.extend_from_slice(&((body.len() + 8) as u32).to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// Exhaustive prefix truncation: every strict prefix of a valid frame
/// must decode to an error, never panic, never a value.
fn assert_truncation_clean<M: Codec>(frame: &bytes::Bytes, what: &str) {
    for cut in 0..frame.len() {
        assert!(
            M::from_frame(frame.slice(0..cut)).is_err(),
            "{what}: {cut}-byte prefix of a {}-byte frame decoded",
            frame.len()
        );
    }
}

/// Trailing garbage after a complete message must be rejected (a frame is
/// one message, not a stream position).
fn assert_trailing_rejected<M: Codec>(msg: &M, what: &str) {
    let mut enc = Encoder::new();
    msg.encode(&mut enc);
    enc.put_u8(0xA5);
    assert!(
        matches!(
            M::from_frame(enc.finish()),
            Err(DecodeError::TrailingBytes { .. })
        ),
        "{what}: trailing byte not rejected"
    );
}

fn scheme(n: usize) -> SimScheme {
    SimScheme::new(n, b"codec-adversarial")
}

/// One shared BLS committee: key derivation costs real scalar mults, so
/// proptest cases reuse it instead of rebuilding per case.
fn bls_scheme() -> &'static BlsScheme {
    static SCHEME: OnceLock<BlsScheme> = OnceLock::new();
    SCHEME.get_or_init(|| BlsScheme::new(8, b"codec-adversarial"))
}

/// A BLS aggregate with arbitrary (valid) multiplicity structure.
fn arb_bls_aggregate(s: &BlsScheme, signers: &[u32], mults: &[u64]) -> BlsAggregate {
    let msg = b"adversarial";
    let mut agg: Option<BlsAggregate> = None;
    for (&signer, &mult) in signers.iter().zip(mults) {
        let part = s.scale(
            &s.sign(signer % s.committee_size() as u32, msg),
            mult % 7 + 1,
        );
        agg = Some(match agg {
            None => part,
            Some(a) => s.combine(&a, &part),
        });
    }
    agg.unwrap_or_else(|| s.sign(0, msg))
}

fn arb_block(seed: (u64, u64, u8, u32, u64, u32)) -> Block {
    let (view, height, parent_byte, proposer, batch_start, batch_len) = seed;
    Block {
        view,
        height,
        parent: [parent_byte; 32],
        proposer: proposer % 64,
        batch_start,
        batch_len: batch_len % 10_000,
        payload_per_req: 64,
    }
}

/// An aggregate with arbitrary (valid) multiplicity structure.
fn arb_aggregate(s: &SimScheme, signers: &[u32], mults: &[u64]) -> SimAggregate {
    let msg = b"adversarial";
    let mut agg: Option<SimAggregate> = None;
    for (&signer, &mult) in signers.iter().zip(mults) {
        let part = s.scale(
            &s.sign(signer % s.committee_size() as u32, msg),
            mult % 7 + 1,
        );
        agg = Some(match agg {
            None => part,
            Some(a) => s.combine(&a, &part),
        });
    }
    agg.unwrap_or_else(|| s.sign(0, msg))
}

fn arb_qc(s: &SimScheme, b: &Block, signers: &[u32], mults: &[u64]) -> Qc<SimScheme> {
    let _ = vote_message(&b.hash(), b.view);
    Qc {
        block_hash: b.hash(),
        view: b.view,
        height: b.height,
        agg: arb_aggregate(s, signers, mults),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn iniva_msg_roundtrips_and_survives_mutation(
        blk in (any::<u64>(), any::<u64>(), any::<u8>(), any::<u32>(), any::<u64>(), any::<u32>()),
        signers in proptest::collection::vec(any::<u32>(), 1..6),
        mults in proptest::collection::vec(any::<u64>(), 6..7),
        variant in 0u8..4,
    ) {
        let s = scheme(8);
        let b = arb_block(blk);
        let mults6: Vec<u64> = mults.iter().cycle().take(signers.len()).copied().collect();
        let qc = arb_qc(&s, &b, &signers, &mults6);
        let agg = arb_aggregate(&s, &signers, &mults6);
        let msg: InivaMsg<SimScheme> = match variant {
            0 => InivaMsg::Proposal { block: b.clone(), qc: Some(qc) },
            1 => InivaMsg::Signature { view: b.view, agg },
            2 => InivaMsg::Ack { view: b.view, agg },
            _ => InivaMsg::SecondChance { block: b.clone(), qc: None },
        };
        let frame = msg.to_frame();
        let back = InivaMsg::<SimScheme>::from_frame(frame.clone()).expect("round-trip");
        prop_assert_eq!(&back.to_frame()[..], &frame[..], "canonical re-encoding");
        assert_truncation_clean::<InivaMsg<SimScheme>>(&frame, "InivaMsg");
        assert_trailing_rejected(&msg, "InivaMsg");
    }

    #[test]
    fn star_msg_roundtrips_and_survives_mutation(
        blk in (any::<u64>(), any::<u64>(), any::<u8>(), any::<u32>(), any::<u64>(), any::<u32>()),
        signers in proptest::collection::vec(any::<u32>(), 1..6),
        mults in proptest::collection::vec(any::<u64>(), 6..7),
        vote in any::<bool>(),
    ) {
        let s = scheme(8);
        let b = arb_block(blk);
        let mults6: Vec<u64> = mults.iter().cycle().take(signers.len()).copied().collect();
        let msg: StarMsg<SimScheme> = if vote {
            StarMsg::Vote {
                view: b.view,
                block: b.clone(),
                agg: arb_aggregate(&s, &signers, &mults6),
            }
        } else {
            StarMsg::Proposal {
                block: b.clone(),
                qc: Some(arb_qc(&s, &b, &signers, &mults6)),
            }
        };
        let frame = msg.to_frame();
        let back = StarMsg::<SimScheme>::from_frame(frame.clone()).expect("round-trip");
        prop_assert_eq!(&back.to_frame()[..], &frame[..]);
        assert_truncation_clean::<StarMsg<SimScheme>>(&frame, "StarMsg");
        assert_trailing_rejected(&msg, "StarMsg");
    }

    #[test]
    fn qc_aggregate_and_multiplicities_roundtrip(
        blk in (any::<u64>(), any::<u64>(), any::<u8>(), any::<u32>(), any::<u64>(), any::<u32>()),
        signers in proptest::collection::vec(any::<u32>(), 1..8),
        mults in proptest::collection::vec(any::<u64>(), 8..9),
    ) {
        let s = scheme(16);
        let b = arb_block(blk);
        let mults8: Vec<u64> = mults.iter().cycle().take(signers.len()).copied().collect();
        let qc = arb_qc(&s, &b, &signers, &mults8);
        let agg = arb_aggregate(&s, &signers, &mults8);

        let frame = qc.to_frame();
        let back = Qc::<SimScheme>::from_frame(frame.clone()).expect("Qc round-trip");
        prop_assert_eq!(&back.to_frame()[..], &frame[..]);
        assert_truncation_clean::<Qc<SimScheme>>(&frame, "Qc");
        assert_trailing_rejected(&qc, "Qc");

        let frame = agg.to_frame();
        prop_assert_eq!(SimAggregate::from_frame(frame.clone()).expect("agg round-trip"), agg.clone());
        assert_truncation_clean::<SimAggregate>(&frame, "SimAggregate");
        assert_trailing_rejected(&agg, "SimAggregate");

        let m = s.multiplicities(&agg).clone();
        let frame = m.to_frame();
        prop_assert_eq!(Multiplicities::from_frame(frame.clone()).expect("mults round-trip"), m.clone());
        assert_truncation_clean::<Multiplicities>(&frame, "Multiplicities");
        assert_trailing_rejected(&m, "Multiplicities");
    }

    #[test]
    fn gossip_share_roundtrips(
        view in any::<u64>(),
        round in any::<u32>(),
        lo in any::<u64>(),
        hi in any::<u64>(),
    ) {
        let parcel = ((hi as u128) << 64) | lo as u128;
        prop_assume!(parcel != 0);
        let share = GossipShare { view, round, parcel };
        let frame = share.to_frame();
        prop_assert_eq!(GossipShare::from_frame(frame.clone()).expect("round-trip"), share);
        assert_truncation_clean::<GossipShare>(&frame, "GossipShare");
        assert_trailing_rejected(&share, "GossipShare");
    }

    #[test]
    fn random_bytes_never_panic_any_codec(
        payload in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        // Fuzz every decoder with arbitrary bytes: errors are fine (and
        // expected), panics are the bug. A rare random buffer may decode
        // as some type — that is not a defect, only UB/panics would be.
        let bytes = bytes::Bytes::from(payload);
        let _ = InivaMsg::<SimScheme>::from_frame(bytes.clone());
        let _ = StarMsg::<SimScheme>::from_frame(bytes.clone());
        let _ = Qc::<SimScheme>::from_frame(bytes.clone());
        let _ = SimAggregate::from_frame(bytes.clone());
        let _ = Multiplicities::from_frame(bytes.clone());
        let _ = GossipShare::from_frame(bytes.clone());
        let _ = InivaMsg::<BlsScheme>::from_frame(bytes.clone());
        let _ = Qc::<BlsScheme>::from_frame(bytes.clone());
        let _ = BlsAggregate::from_frame(bytes.clone());
        let _ = ClientMsg::from_frame(bytes);
    }

    /// Every `ClientMsg` variant round-trips canonically and rejects
    /// truncation and trailing bytes — clients are fully untrusted, so
    /// this codec is the first line the transport holds against them.
    #[test]
    fn client_msg_roundtrips_and_survives_mutation(
        fee in any::<u64>(),
        nonce in any::<u64>(),
        height in any::<u64>(),
        committed in any::<bool>(),
        status in 0u8..3,
        payload in proptest::collection::vec(any::<u8>(), 0..512),
        variant in 0u8..6,
    ) {
        let msg = match variant {
            0 => ClientMsg::Submit {
                fee,
                nonce,
                payload: bytes::Bytes::from(payload),
            },
            1 => ClientMsg::SubmitAck {
                nonce,
                status: match status {
                    0 => SubmitStatus::Accepted,
                    1 => SubmitStatus::Busy,
                    _ => SubmitStatus::Duplicate,
                },
            },
            2 => ClientMsg::Query { height },
            3 => ClientMsg::QueryResponse {
                height,
                committed_height: nonce,
                committed,
            },
            4 => ClientMsg::Follow,
            _ => ClientMsg::Committed { nonce, height },
        };
        let frame = msg.to_frame();
        let back = ClientMsg::from_frame(frame.clone()).expect("round-trip");
        prop_assert_eq!(&back, &msg);
        prop_assert_eq!(&back.to_frame()[..], &frame[..], "canonical re-encoding");
        assert_truncation_clean::<ClientMsg>(&frame, "ClientMsg");
        assert_trailing_rejected(&msg, "ClientMsg");
    }

    /// Any single bit flipped in a `ClientMsg` frame either fails to
    /// decode cleanly or decodes to a message that re-encodes to exactly
    /// the mutated bytes — i.e. the codec stays canonical and total under
    /// mutation, so a hostile client can never wedge the decoder or craft
    /// two byte forms of one message.
    #[test]
    fn client_msg_bit_flips_decode_cleanly(
        nonce in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        byte_seed in any::<u16>(),
        bit in 0u8..8,
    ) {
        let msg = ClientMsg::Submit {
            fee: 7,
            nonce,
            payload: bytes::Bytes::from(payload),
        };
        let frame = msg.to_frame();
        let mut mutated = frame.to_vec();
        let idx = byte_seed as usize % mutated.len();
        mutated[idx] ^= 1 << bit;
        let mutated = bytes::Bytes::from(mutated);
        match ClientMsg::from_frame(mutated.clone()) {
            Err(_) => {} // clean rejection: bad tag, bad length, overrun
            Ok(back) => prop_assert_eq!(
                &back.to_frame()[..],
                &mutated[..],
                "bit {} of byte {} produced a non-canonical decode",
                bit,
                idx
            ),
        }
    }

    /// Submit payloads over [`MAX_CLIENT_PAYLOAD`] are rejected at decode
    /// no matter how much the hostile length prefix claims — before any
    /// allocation proportional to the claim.
    #[test]
    fn client_msg_oversized_payload_rejected(
        claim in (MAX_CLIENT_PAYLOAD as u32 + 1)..u32::MAX,
    ) {
        let mut enc = Encoder::new();
        enc.put_u8(0).put_u64(1).put_u64(2).put_u32(claim);
        prop_assert!(matches!(
            ClientMsg::from_frame(enc.finish()),
            Err(DecodeError::Malformed { .. })
        ));
    }

    /// The incremental frame parser must be feed-order independent: a
    /// stream of frames delivered in arbitrary-sized chunks (with the
    /// partial tail carried between feeds, as the reactor's read path
    /// does) yields exactly the frames a single whole-buffer parse
    /// yields — same seqs, same bodies, same order, nothing left over.
    #[test]
    fn frame_parser_incremental_feed_equals_whole_buffer(
        bodies in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 1..6),
        seqs in proptest::collection::vec(any::<u64>(), 6..7),
        chunk in 1usize..17,
    ) {
        let mut stream = Vec::new();
        let mut expect = Vec::new();
        for (i, body) in bodies.iter().enumerate() {
            stream.extend_from_slice(&encode_frame(seqs[i], body));
            expect.push((seqs[i], body.clone()));
        }

        let (whole, tail) = parse_stream(&stream).expect("valid stream");
        prop_assert_eq!(tail, stream.len(), "whole parse left bytes behind");
        prop_assert_eq!(&whole, &expect);

        // Chunked feed: `chunk` bytes at a time, partial tail carried.
        let mut pending: Vec<u8> = Vec::new();
        let mut got = Vec::new();
        for piece in stream.chunks(chunk) {
            pending.extend_from_slice(piece);
            let (frames, consumed) = parse_stream(&pending).expect("valid prefix");
            got.extend(frames);
            pending.drain(..consumed);
        }
        prop_assert!(pending.is_empty(), "bytes stuck in the carry buffer");
        prop_assert_eq!(got, expect);
    }

    /// Every strict prefix of a valid frame parses `Incomplete` — the
    /// parser never misreads a split boundary as corruption or as a
    /// shorter frame.
    #[test]
    fn frame_parser_all_split_boundaries_incomplete(
        seq in any::<u64>(),
        body in proptest::collection::vec(any::<u8>(), 0..48),
    ) {
        let framed = encode_frame(seq, &body);
        for cut in 0..framed.len() {
            prop_assert!(
                matches!(frame::parse_frame(&framed[..cut]), Ok(FrameParse::Incomplete)),
                "prefix of {cut}/{} bytes did not parse Incomplete",
                framed.len()
            );
        }
        match frame::parse_frame(&framed).expect("complete frame") {
            FrameParse::Complete { consumed, seq: got, body: range } => {
                prop_assert_eq!(consumed, framed.len());
                prop_assert_eq!(got, seq);
                prop_assert_eq!(&framed[range], &body[..]);
            }
            FrameParse::Incomplete => prop_assert!(false, "full frame parsed Incomplete"),
        }
    }

    /// A hostile length prefix (under the 8-byte seq floor or over
    /// [`MAX_FRAME_BYTES`]) is rejected the moment the 4 length bytes are
    /// buffered — before the claimed bytes arrive, so a 4 GiB claim never
    /// causes a 4 GiB buffer. In-range claims with missing bytes are
    /// `Incomplete`, never an error and never an over-read.
    #[test]
    fn frame_parser_hostile_lengths_rejected_without_overread(
        claim in any::<u32>(),
        seq in any::<u64>(),
    ) {
        let mut buf = claim.to_le_bytes().to_vec();
        if !(8..=MAX_FRAME_BYTES).contains(&claim) {
            prop_assert!(frame::parse_frame(&buf).is_err(), "length {claim} accepted");
            buf.extend_from_slice(&seq.to_le_bytes());
            prop_assert!(frame::parse_frame(&buf).is_err(), "length {claim} accepted with seq");
        } else {
            prop_assert!(
                matches!(frame::parse_frame(&buf).unwrap(), FrameParse::Incomplete),
                "in-range length {claim} with missing body must be Incomplete"
            );
        }
    }

    /// The handshake parser across every split boundary: strict prefixes
    /// are `None` (wait for more), the full 13 bytes decode the node and
    /// epoch, trailing frame bytes are untouched, and corruption in any
    /// of the magic/version bytes is rejected only once 13 bytes are
    /// buffered (never a false positive on a partial read).
    #[test]
    fn handshake_parser_incremental_feed(
        node in any::<u32>(),
        epoch in any::<u32>(),
        trailer in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        let hs = frame::handshake_bytes(node, epoch);
        for cut in 0..hs.len() {
            prop_assert!(
                matches!(frame::parse_handshake(&hs[..cut]), Ok(None)),
                "handshake prefix of {cut} bytes did not wait for more"
            );
        }
        let (consumed, got_node, got_epoch) =
            frame::parse_handshake(&hs).unwrap().expect("complete handshake");
        prop_assert_eq!((consumed, got_node, got_epoch), (HANDSHAKE_BYTES, node, epoch));

        // Bytes after the handshake (the first frames) are not consumed.
        let mut buf = hs.to_vec();
        buf.extend_from_slice(&trailer);
        let (consumed, ..) = frame::parse_handshake(&buf).unwrap().expect("complete");
        prop_assert_eq!(consumed, HANDSHAKE_BYTES);

        // Corrupt magic or version: clean rejection at 13 bytes.
        for idx in 0..5 {
            let mut bad = hs;
            bad[idx] ^= 0x01;
            prop_assert!(
                matches!(frame::parse_handshake(&bad[..hs.len() - 1]), Ok(None)),
                "corruption at byte {idx} rejected before the handshake completed"
            );
            prop_assert!(
                frame::parse_handshake(&bad).is_err(),
                "corrupt byte {idx} accepted"
            );
        }
    }
}

// Real pairing crypto makes each case orders of magnitude costlier than
// the sim-scheme cases above; a handful of cases still covers the codec
// paths (the *crypto* is covered by iniva-crypto's own tests).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn bls_aggregate_and_qc_roundtrip(
        blk in (any::<u64>(), any::<u64>(), any::<u8>(), any::<u32>(), any::<u64>(), any::<u32>()),
        signers in proptest::collection::vec(any::<u32>(), 1..5),
        mults in proptest::collection::vec(any::<u64>(), 5..6),
    ) {
        let s = bls_scheme();
        let b = arb_block(blk);
        let mults5: Vec<u64> = mults.iter().cycle().take(signers.len()).copied().collect();
        let agg = arb_bls_aggregate(s, &signers, &mults5);

        let frame = agg.to_frame();
        let back = BlsAggregate::from_frame(frame.clone()).expect("agg round-trip");
        prop_assert_eq!(&back.to_frame()[..], &frame[..], "canonical re-encoding");
        prop_assert_eq!(&back, &agg);
        assert_truncation_clean::<BlsAggregate>(&frame, "BlsAggregate");
        assert_trailing_rejected(&agg, "BlsAggregate");

        let qc: Qc<BlsScheme> = Qc {
            block_hash: b.hash(),
            view: b.view,
            height: b.height,
            agg: agg.clone(),
        };
        let frame = qc.to_frame();
        let back = Qc::<BlsScheme>::from_frame(frame.clone()).expect("Qc round-trip");
        prop_assert_eq!(&back.to_frame()[..], &frame[..]);
        assert_truncation_clean::<Qc<BlsScheme>>(&frame, "Qc<BlsScheme>");
        assert_trailing_rejected(&qc, "Qc<BlsScheme>");

        let msg: InivaMsg<BlsScheme> = InivaMsg::Proposal { block: b.clone(), qc: Some(qc) };
        let frame = msg.to_frame();
        let back = InivaMsg::<BlsScheme>::from_frame(frame.clone()).expect("msg round-trip");
        prop_assert_eq!(&back.to_frame()[..], &frame[..]);
        assert_truncation_clean::<InivaMsg<BlsScheme>>(&frame, "InivaMsg<BlsScheme>");
        assert_trailing_rejected(&msg, "InivaMsg<BlsScheme>");
    }

    /// Any single bit flipped anywhere in a BLS signature frame must
    /// either fail to decode (off-curve / non-subgroup / non-canonical)
    /// or decode to an aggregate that no longer verifies — a frame-level
    /// integrity property real pairing crypto provides and the sim scheme
    /// only models.
    #[test]
    fn bls_frame_bit_flips_never_verify(
        byte_seed in any::<u16>(),
        bit in 0u8..8,
    ) {
        let s = bls_scheme();
        let msg = b"bit-flip";
        let agg = s.combine(&s.sign(1, msg), &s.scale(&s.sign(4, msg), 2));
        prop_assert!(s.verify(msg, &agg));
        let frame = agg.to_frame();
        let mut bytes = frame.to_vec();
        let idx = byte_seed as usize % bytes.len();
        bytes[idx] ^= 1 << bit;
        match BlsAggregate::from_frame(bytes::Bytes::from(bytes)) {
            Err(_) => {} // clean rejection: off-curve, bad flags, bad mults
            Ok(mutated) => prop_assert!(
                !s.verify(msg, &mutated),
                "bit {bit} of byte {idx} flipped yet the aggregate still verifies"
            ),
        }
    }
}

/// Off-curve and non-subgroup compressed points must be rejected at
/// *decode* time — before a hostile point can reach pairing code.
#[test]
fn bls_rejects_off_curve_and_non_subgroup_points() {
    use iniva_crypto::g1;

    let s = bls_scheme();
    let agg = s.sign(0, b"m");
    let valid = agg.to_frame();

    // x with no curve solution: scan deterministically from the valid
    // point's x until x^3 + 4 is a non-residue, splice it into the frame.
    let mut probe = valid.to_vec();
    loop {
        // Walk the low byte of x (big-endian: byte 47).
        probe[47] = probe[47].wrapping_add(1);
        let mut arr = [0u8; 48];
        arr.copy_from_slice(&probe[..48]);
        if g1::deserialize_compressed(&arr).is_none() {
            break;
        }
    }
    assert!(matches!(
        BlsAggregate::from_frame(bytes::Bytes::from(probe)),
        Err(DecodeError::Malformed { .. })
    ));

    // A non-subgroup curve point: g1's own decoder rejects it, and so
    // must the aggregate decoder wrapping it. (Constructed exactly as in
    // iniva-crypto's g1 tests: perturb x until on-curve but r·P ≠ ∞.)
    let bad_point_bytes = non_subgroup_g1_compressed();
    let mut frame = bad_point_bytes.to_vec();
    frame.extend_from_slice(&valid[48..]); // reuse the valid mults tail
    assert!(matches!(
        BlsAggregate::from_frame(bytes::Bytes::from(frame)),
        Err(DecodeError::Malformed { .. })
    ));

    // Clearing the compressed flag is non-canonical even with intact x.
    let mut frame = valid.to_vec();
    frame[0] &= 0x7f;
    assert!(BlsAggregate::from_frame(bytes::Bytes::from(frame)).is_err());
}

/// A compressed encoding of a curve point outside the order-r subgroup.
fn non_subgroup_g1_compressed() -> [u8; 48] {
    use iniva_crypto::fields::Fp;
    use iniva_crypto::g1;
    let four = Fp::from_u64(4);
    let mut x = Fp::from_u64(1);
    loop {
        let rhs = x.square().mul(&x).add(&four);
        if rhs.sqrt().is_some() {
            let mut bytes = [0u8; 48];
            bytes.copy_from_slice(&x.to_be_bytes());
            bytes[0] |= 0x80;
            // Some sign choice of a y-solution exists; whichever sign, the
            // point is on the curve. If it happens to be in the subgroup,
            // keep scanning.
            if g1::deserialize_compressed(&bytes).is_none() {
                return bytes;
            }
            let mut flipped = bytes;
            flipped[0] |= 0x20;
            if g1::deserialize_compressed(&flipped).is_none() {
                return flipped;
            }
        }
        x = x.add(&Fp::from_u64(1));
    }
}

/// An oversized length prefix (a `Multiplicities` entry count or byte
/// string claiming more than the buffer holds) must error cleanly instead
/// of allocating or panicking — the attack a malicious peer would mount
/// against a length-prefixed decoder.
#[test]
fn oversized_length_prefixes_rejected() {
    // Multiplicities claiming u32::MAX entries with a 1-byte body.
    let mut enc = Encoder::new();
    enc.put_u32(u32::MAX).put_u8(1);
    assert!(Multiplicities::from_frame(enc.finish()).is_err());

    // A Block's implicit fixed-width fields truncated to nothing.
    assert!(Block::from_frame(bytes::Bytes::new()).is_err());

    // An InivaMsg::Signature whose aggregate multiplicity table claims
    // far more entries than the frame carries.
    let mut enc = Encoder::new();
    enc.put_u8(1).put_u64(3); // Signature, view 3
    enc.put_u128(1).put_u128(2); // tag lanes
    enc.put_u32(1_000_000); // 1M claimed (signer, count) entries
    enc.put_u32(0).put_u64(1); // ... but only one present
    assert!(InivaMsg::<SimScheme>::from_frame(enc.finish()).is_err());

    // GossipShare's canonical-form check: the all-zero parcel is a valid
    // *encoding* but a malformed *value*.
    let mut enc = Encoder::new();
    enc.put_u64(1).put_u32(0).put_u128(0);
    assert!(matches!(
        GossipShare::from_frame(enc.finish()),
        Err(DecodeError::Malformed { .. })
    ));
}

/// Non-canonical multiplicity encodings (unsorted, duplicated or
/// zero-count signers) are rejected: aggregates are compared by encoding,
/// so accepting two byte forms of one multiset would break equality.
#[test]
fn non_canonical_multiplicities_rejected() {
    // Unsorted signers.
    let mut enc = Encoder::new();
    enc.put_u32(2);
    enc.put_u32(5).put_u64(1);
    enc.put_u32(3).put_u64(1);
    assert!(Multiplicities::from_frame(enc.finish()).is_err());

    // Duplicate signer.
    let mut enc = Encoder::new();
    enc.put_u32(2);
    enc.put_u32(4).put_u64(1);
    enc.put_u32(4).put_u64(2);
    assert!(Multiplicities::from_frame(enc.finish()).is_err());

    // Zero count.
    let mut enc = Encoder::new();
    enc.put_u32(1);
    enc.put_u32(4).put_u64(0);
    assert!(Multiplicities::from_frame(enc.finish()).is_err());
}

/// A hostile peer sending a multiplicity count near `u64::MAX` must be
/// stopped at decode: before the [`MAX_MULTIPLICITY`] cap, such a count
/// survived into protocol state and made a later `merge`/`scale` combine
/// wrap in release builds (panic in debug). The cap also rides inside
/// full aggregates — the shapes that actually cross the wire.
#[test]
fn overflowing_multiplicity_counts_rejected_at_decode() {
    use iniva_crypto::multisig::MAX_MULTIPLICITY;
    for hostile in [MAX_MULTIPLICITY + 1, u64::MAX / 2, u64::MAX] {
        let mut enc = Encoder::new();
        enc.put_u32(1);
        enc.put_u32(2).put_u64(hostile);
        assert!(
            Multiplicities::from_frame(enc.finish()).is_err(),
            "count {hostile} must be rejected"
        );

        // Embedded in a SimAggregate (the sim transport's wire shape).
        let s = scheme(4);
        let honest = s.sign(2, b"m");
        let mut enc = Encoder::new();
        enc.put_u128(honest.tag.0).put_u128(honest.tag.1);
        enc.put_u32(1);
        enc.put_u32(2).put_u64(hostile);
        assert!(SimAggregate::from_frame(enc.finish()).is_err());

        // Embedded in a BlsAggregate (the real-crypto wire shape).
        let bls = bls_scheme();
        let point = bls.sign(1, b"m").point;
        let mut enc = Encoder::new();
        enc.put_array(&iniva_crypto::g1::serialize_compressed(&point));
        enc.put_u32(1);
        enc.put_u32(1).put_u64(hostile);
        assert!(BlsAggregate::from_frame(enc.finish()).is_err());
    }
    // The cap itself decodes (boundary inclusive).
    let mut enc = Encoder::new();
    enc.put_u32(1);
    enc.put_u32(2).put_u64(MAX_MULTIPLICITY);
    assert_eq!(
        Multiplicities::from_frame(enc.finish()).unwrap().get(2),
        MAX_MULTIPLICITY
    );
}
