//! Fixture suite for `iniva-lint`: known-bad snippets assert each rule
//! fires at the right line, known-good snippets assert silence (including
//! the lexer traps: `unsafe` inside strings, raw strings and nested block
//! comments), the suppression protocol is exercised end to end, and the
//! final test runs the analyzer over the live workspace asserting zero
//! unsuppressed findings — the same gate CI enforces via `iniva-lint
//! --check`.

use iniva_analyzer::rules::{
    RULE_ALLOW_REASON, RULE_BLOCKING, RULE_DECODE, RULE_PANIC, RULE_RELAXED, RULE_UNSAFE,
};
use iniva_analyzer::{analyze_source, analyze_workspace, load_config, Config, Finding};

/// A config that puts the fixture paths used below in every rule's scope.
fn fixture_cfg() -> Config {
    Config {
        hot_path_modules: vec!["crates/x/src/hot.rs".into()],
        relaxed_allowlist: vec!["crates/x/src/metrics.rs".into()],
        decode_modules: vec!["crates/x/src/decode.rs".into()],
        reactor_files: vec!["crates/x/src/poller.rs".into()],
        exclude_dirs: Vec::new(),
    }
}

fn run(rel: &str, src: &str) -> Vec<Finding> {
    analyze_source(rel, src, &fixture_cfg())
}

fn active(findings: &[Finding]) -> Vec<&Finding> {
    findings.iter().filter(|f| f.is_active()).collect()
}

/// Assert exactly one active finding of `rule` at `line`.
fn assert_fires(findings: &[Finding], rule: &str, line: u32) {
    let hits: Vec<_> = active(findings)
        .into_iter()
        .filter(|f| f.rule == rule)
        .collect();
    assert_eq!(
        hits.len(),
        1,
        "expected one {rule} finding, got {findings:?}"
    );
    assert_eq!(hits[0].line, line, "wrong line for {rule}: {findings:?}");
}

// ---------------------------------------------------------------- unsafe

#[test]
fn unsafe_without_safety_comment_fires_at_the_unsafe_line() {
    let src = "fn f(p: *const u8) -> u8 {\n    let x = 1;\n    unsafe { *p }\n}\n";
    assert_fires(&run("crates/x/src/any.rs", src), RULE_UNSAFE, 3);
}

#[test]
fn unsafe_with_safety_comment_is_silent() {
    let src = "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid.\n    unsafe { *p }\n}\n";
    assert!(active(&run("crates/x/src/any.rs", src)).is_empty());
}

#[test]
fn unsafe_rule_applies_even_in_test_paths() {
    let src = "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
    assert_fires(&run("crates/x/tests/oracle.rs", src), RULE_UNSAFE, 2);
}

#[test]
fn unsafe_inside_string_literals_is_silent() {
    let src = r##"fn f() -> (&'static str, &'static str) {
    let a = "unsafe { transmute() }";
    let b = r#"unsafe fn g() {}"#;
    (a, b)
}
"##;
    assert!(active(&run("crates/x/src/any.rs", src)).is_empty());
}

#[test]
fn unsafe_inside_nested_block_comments_is_silent() {
    let src = "/* outer /* unsafe { boom() } */ still one comment */\nfn ok() {}\n";
    assert!(active(&run("crates/x/src/any.rs", src)).is_empty());
}

#[test]
fn unsafe_in_doc_comment_prose_is_silent() {
    let src = "/// Never uses `unsafe` anywhere.\nfn ok() {}\n";
    assert!(active(&run("crates/x/src/any.rs", src)).is_empty());
}

// ------------------------------------------------------------ hot-path-panic

#[test]
fn unwrap_on_hot_path_fires() {
    let src = "fn f(v: Option<u8>) -> u8 {\n    v.unwrap()\n}\n";
    assert_fires(&run("crates/x/src/hot.rs", src), RULE_PANIC, 2);
}

#[test]
fn panic_macro_on_hot_path_fires() {
    let src = "fn f() {\n    let a = 1;\n    panic!(\"boom\");\n}\n";
    assert_fires(&run("crates/x/src/hot.rs", src), RULE_PANIC, 3);
}

#[test]
fn unwrap_off_hot_path_is_silent() {
    let src = "fn f(v: Option<u8>) -> u8 {\n    v.unwrap()\n}\n";
    assert!(active(&run("crates/x/src/cold.rs", src)).is_empty());
}

#[test]
fn unwrap_or_else_is_not_a_panic() {
    let src = "fn f(v: Option<u8>) -> u8 {\n    v.unwrap_or_else(|| 0)\n}\n";
    assert!(active(&run("crates/x/src/hot.rs", src)).is_empty());
}

#[test]
fn unwrap_inside_cfg_test_module_on_hot_path_is_silent() {
    let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t(v: Option<u8>) -> u8 {\n        v.unwrap()\n    }\n}\n";
    assert!(active(&run("crates/x/src/hot.rs", src)).is_empty());
}

// -------------------------------------------------- atomics-ordering-audit

#[test]
fn relaxed_without_order_comment_fires() {
    let src = "fn f(c: &std::sync::atomic::AtomicU64) -> u64 {\n    c.load(Ordering::Relaxed)\n}\n";
    assert_fires(&run("crates/x/src/any.rs", src), RULE_RELAXED, 2);
}

#[test]
fn relaxed_with_order_comment_is_silent() {
    let src = "fn f(c: &std::sync::atomic::AtomicU64) -> u64 {\n    // ORDER: monotone stat counter, nothing synchronizes on it.\n    c.load(Ordering::Relaxed)\n}\n";
    assert!(active(&run("crates/x/src/any.rs", src)).is_empty());
}

#[test]
fn relaxed_in_allowlisted_module_is_silent() {
    let src = "fn f(c: &std::sync::atomic::AtomicU64) -> u64 {\n    c.load(Ordering::Relaxed)\n}\n";
    assert!(active(&run("crates/x/src/metrics.rs", src)).is_empty());
}

#[test]
fn relaxed_in_import_line_is_silent() {
    let src = "use std::sync::atomic::Ordering::Relaxed;\nfn ok() {}\n";
    assert!(active(&run("crates/x/src/any.rs", src)).is_empty());
}

// ----------------------------------------------------------- bounded-decode

#[test]
fn with_capacity_in_decode_module_fires() {
    let src = "fn f(n: usize) -> Vec<u8> {\n    Vec::with_capacity(n)\n}\n";
    assert_fires(&run("crates/x/src/decode.rs", src), RULE_DECODE, 2);
}

#[test]
fn vec_repeat_macro_in_decode_module_fires() {
    let src = "fn f(n: usize) -> Vec<u8> {\n    vec![0u8; n]\n}\n";
    assert_fires(&run("crates/x/src/decode.rs", src), RULE_DECODE, 2);
}

#[test]
fn with_capacity_with_cap_comment_is_silent() {
    let src = "fn f(n: usize) -> Vec<u8> {\n    // CAP: n was checked against MAX above.\n    Vec::with_capacity(n)\n}\n";
    assert!(active(&run("crates/x/src/decode.rs", src)).is_empty());
}

#[test]
fn vec_list_macro_is_not_a_repeat_allocation() {
    let src = "fn f() -> Vec<u8> {\n    vec![1, 2, 3]\n}\n";
    assert!(active(&run("crates/x/src/decode.rs", src)).is_empty());
}

#[test]
fn with_capacity_outside_decode_modules_is_silent() {
    let src = "fn f(n: usize) -> Vec<u8> {\n    Vec::with_capacity(n)\n}\n";
    assert!(active(&run("crates/x/src/any.rs", src)).is_empty());
}

// --------------------------------------------------- no-blocking-on-reactor

#[test]
fn thread_sleep_on_reactor_file_fires() {
    let src = "fn f() {\n    std::thread::sleep(std::time::Duration::from_millis(1));\n}\n";
    assert_fires(&run("crates/x/src/poller.rs", src), RULE_BLOCKING, 2);
}

#[test]
fn blocking_read_on_reactor_file_fires() {
    let src =
        "fn f(s: &mut std::net::TcpStream, buf: &mut [u8]) {\n    let _ = s.read_exact(buf);\n}\n";
    assert_fires(&run("crates/x/src/poller.rs", src), RULE_BLOCKING, 2);
}

#[test]
fn lock_across_flagged_syscall_fires() {
    let src = "fn f(m: &std::sync::Mutex<u64>, fd: i32) {\n    let n = sys::writev(fd, m.lock().unwrap().as_ptr());\n}\n";
    let findings = run("crates/x/src/poller.rs", src);
    assert!(
        active(&findings)
            .iter()
            .any(|f| f.rule == RULE_BLOCKING && f.line == 2),
        "lock across writev should fire: {findings:?}"
    );
}

#[test]
fn blocking_calls_off_reactor_files_are_silent() {
    let src = "fn f() {\n    std::thread::sleep(std::time::Duration::from_millis(1));\n}\n";
    assert!(active(&run("crates/x/src/any.rs", src)).is_empty());
}

// -------------------------------------------------------------- suppression

#[test]
fn allow_with_reason_suppresses_and_records_the_reason() {
    let src = "fn f(v: Option<u8>) -> u8 {\n    // lint: allow(hot-path-panic) init-time only, config is trusted\n    v.unwrap()\n}\n";
    let findings = run("crates/x/src/hot.rs", src);
    assert!(active(&findings).is_empty(), "{findings:?}");
    let sup: Vec<_> = findings.iter().filter(|f| !f.is_active()).collect();
    assert_eq!(sup.len(), 1);
    assert_eq!(sup[0].rule, RULE_PANIC);
    assert_eq!(
        sup[0].suppressed.as_deref(),
        Some("init-time only, config is trusted")
    );
}

#[test]
fn allow_without_reason_fires_the_meta_rule() {
    let src =
        "fn f(v: Option<u8>) -> u8 {\n    // lint: allow(hot-path-panic)\n    v.unwrap()\n}\n";
    let findings = run("crates/x/src/hot.rs", src);
    // The original finding is suppressed, but the reasonless allow itself
    // becomes an unsuppressed finding — so `--check` still fails.
    assert!(findings
        .iter()
        .any(|f| f.rule == RULE_PANIC && !f.is_active()));
    assert_fires(&findings, RULE_ALLOW_REASON, 2);
}

#[test]
fn allow_naming_an_unknown_rule_fires_the_meta_rule() {
    let src = "fn ok() {}\n// lint: allow(no-such-rule) because reasons\nfn also_ok() {}\n";
    let findings = run("crates/x/src/any.rs", src);
    assert_fires(&findings, RULE_ALLOW_REASON, 2);
}

#[test]
fn allow_for_a_different_rule_does_not_suppress() {
    let src = "fn f(v: Option<u8>) -> u8 {\n    // lint: allow(bounded-decode) wrong rule named\n    v.unwrap()\n}\n";
    let findings = run("crates/x/src/hot.rs", src);
    assert_fires(&findings, RULE_PANIC, 3);
}

// ----------------------------------------------------------- live workspace

/// The same gate CI enforces: the analyzer over the real workspace, using
/// the real `analyzer.toml`, must report zero unsuppressed findings — and
/// every suppression that does exist must carry a written reason.
#[test]
fn live_workspace_has_zero_unsuppressed_findings() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let cfg = load_config(&root).expect("analyzer.toml parses");
    let (findings, scanned) = analyze_workspace(&root, &cfg).expect("scan succeeds");
    assert!(
        scanned > 50,
        "scan should cover the workspace, saw {scanned} files"
    );
    let live: Vec<_> = findings.iter().filter(|f| f.is_active()).collect();
    assert!(
        live.is_empty(),
        "workspace has unsuppressed lint findings:\n{}",
        live.iter()
            .map(|f| format!("  {} {}:{} — {}", f.rule, f.file, f.line, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
    for f in findings.iter().filter(|f| !f.is_active()) {
        let reason = f.suppressed.as_deref().unwrap_or_default();
        assert!(
            !reason.trim().is_empty(),
            "suppression at {}:{} carries no reason",
            f.file,
            f.line
        );
    }
}
