//! The rule engine: five token-level rules plus the suppression protocol.
//!
//! Rules operate on the token/comment stream from [`crate::lexer`]; none of
//! them parse full Rust. Each rule reports a [`Finding`] at a 1-indexed line;
//! the engine then resolves inline suppressions of the form
//! `// lint: allow(<rule>) <reason>` placed on the same line or immediately
//! above the flagged site (comments, blank lines and attributes may sit in
//! between). A suppression without a written reason produces its own
//! `allow-missing-reason` finding, so reasons are enforceable.

use crate::config::Config;
use crate::lexer::{lex, Lexed, TokKind, Token};

/// Rule: every `unsafe` must be immediately preceded by a `// SAFETY:` comment.
pub const RULE_UNSAFE: &str = "unsafe-safety-comment";
/// Rule: no `unwrap`/`expect`/`panic!`-family calls in adversary-facing modules.
pub const RULE_PANIC: &str = "hot-path-panic";
/// Rule: `Ordering::Relaxed` outside allowlisted modules needs an `// ORDER:` note.
pub const RULE_RELAXED: &str = "atomics-ordering-audit";
/// Rule: size-taking allocations in decode modules need a `// CAP:` note.
pub const RULE_DECODE: &str = "bounded-decode";
/// Rule: no blocking calls / locks across syscalls in reactor-thread files.
pub const RULE_BLOCKING: &str = "no-blocking-on-reactor";
/// Meta-rule: a `// lint: allow(...)` suppression must carry a reason.
pub const RULE_ALLOW_REASON: &str = "allow-missing-reason";

/// All primary rule names (excludes the meta-rule).
pub const ALL_RULES: &[&str] = &[
    RULE_UNSAFE,
    RULE_PANIC,
    RULE_RELAXED,
    RULE_DECODE,
    RULE_BLOCKING,
];

/// How far above a flagged line an annotation or suppression may sit
/// (comments, blanks and attribute lines in between do not break the chain;
/// any other code line does).
const MARKER_WINDOW: u32 = 12;

/// One analyzer finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule that fired.
    pub rule: &'static str,
    /// Repo-relative path of the file.
    pub file: String,
    /// 1-indexed line of the flagged site.
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
    /// `Some(reason)` when an inline `lint: allow` suppressed this finding.
    pub suppressed: Option<String>,
}

impl Finding {
    /// True when the finding is live (not suppressed by an allow with reason).
    pub fn is_active(&self) -> bool {
        self.suppressed.is_none()
    }
}

/// Panic-family method calls flagged on hot paths (as `.name(`).
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];
/// Panic-family macros flagged on hot paths (as `name!`).
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
/// Method calls that block the calling thread (as `.name(`).
const BLOCKING_METHODS: &[&str] = &[
    "read_exact",
    "read_to_end",
    "read_to_string",
    "write_all",
    "recv",
    "recv_timeout",
    "wait",
    "wait_timeout",
    "join",
];
/// Raw syscall wrappers a lock must not be held across on the poller thread.
const FLAGGED_SYSCALLS: &[&str] = &[
    "epoll_wait",
    "epoll_pwait",
    "writev",
    "writev_fd",
    "connect_v4",
    "connect_v6",
    "connect_nonblocking",
];

/// Does repo-relative `rel` match configured path `pat` (suffix match on `/`
/// boundaries, so `transport/src/fabric.rs` matches
/// `crates/transport/src/fabric.rs`)?
fn path_matches(rel: &str, pat: &str) -> bool {
    rel == pat || rel.ends_with(&format!("/{pat}"))
}

fn in_list(rel: &str, pats: &[String]) -> bool {
    pats.iter().any(|p| path_matches(rel, p))
}

/// Is the whole file test/bench code (skipped by every rule except
/// `unsafe-safety-comment`)?
fn is_test_path(rel: &str) -> bool {
    let rel = rel.trim_start_matches("./");
    rel.starts_with("tests/")
        || rel.starts_with("benches/")
        || rel.contains("/tests/")
        || rel.contains("/benches/")
}

/// Analyze one source file. `rel` is its repo-relative path with `/`
/// separators; rule applicability is decided from `cfg`'s module lists.
pub fn analyze_source(rel: &str, src: &str, cfg: &Config) -> Vec<Finding> {
    let lx = lex(src);
    let mask = if is_test_path(rel) {
        vec![true; lx.tokens.len()]
    } else {
        test_token_mask(&lx.tokens)
    };

    let mut raw: Vec<Finding> = Vec::new();
    rule_unsafe(rel, &lx, &mut raw);
    if in_list(rel, &cfg.hot_path_modules) {
        rule_panic(rel, &lx, &mask, &mut raw);
    }
    if !in_list(rel, &cfg.relaxed_allowlist) {
        rule_relaxed(rel, &lx, &mask, &mut raw);
    }
    if in_list(rel, &cfg.decode_modules) {
        rule_decode(rel, &lx, &mask, &mut raw);
    }
    if in_list(rel, &cfg.reactor_files) {
        rule_blocking(rel, &lx, &mask, &mut raw);
    }

    resolve_suppressions(rel, &lx, raw)
}

/// Rule 1: `unsafe` needs `// SAFETY:` directly above (or trailing on the
/// same line). Applies everywhere, including test code — unsafety does not
/// become self-evident inside a test.
fn rule_unsafe(rel: &str, lx: &Lexed, out: &mut Vec<Finding>) {
    for t in &lx.tokens {
        if t.is_ident("unsafe") && !has_marker(lx, t.line, "SAFETY:") {
            out.push(Finding {
                rule: RULE_UNSAFE,
                file: rel.to_string(),
                line: t.line,
                message: "`unsafe` without an immediately preceding `// SAFETY:` comment"
                    .to_string(),
                suppressed: None,
            });
        }
    }
}

/// Rule 2: panic-family calls in adversary-facing modules.
fn rule_panic(rel: &str, lx: &Lexed, mask: &[bool], out: &mut Vec<Finding>) {
    let t = &lx.tokens;
    for i in 0..t.len() {
        if mask[i] {
            continue;
        }
        // `.unwrap(` / `.expect(`
        if i + 2 < t.len()
            && t[i].is_punct('.')
            && t[i + 1].kind == TokKind::Ident
            && PANIC_METHODS.contains(&t[i + 1].text.as_str())
            && t[i + 2].is_punct('(')
        {
            out.push(Finding {
                rule: RULE_PANIC,
                file: rel.to_string(),
                line: t[i + 1].line,
                message: format!(
                    "`.{}()` on an adversary-facing path; return an error or tear the \
                     connection down instead",
                    t[i + 1].text
                ),
                suppressed: None,
            });
        }
        // `panic!` / `unreachable!` / `todo!` / `unimplemented!`
        if i + 1 < t.len()
            && t[i].kind == TokKind::Ident
            && PANIC_MACROS.contains(&t[i].text.as_str())
            && t[i + 1].is_punct('!')
        {
            out.push(Finding {
                rule: RULE_PANIC,
                file: rel.to_string(),
                line: t[i].line,
                message: format!("`{}!` on an adversary-facing path", t[i].text),
                suppressed: None,
            });
        }
    }
}

/// Rule 3: `Ordering::Relaxed` (or an imported bare `Relaxed` in argument
/// position) needs an `// ORDER:` comment explaining why relaxed is sound.
fn rule_relaxed(rel: &str, lx: &Lexed, mask: &[bool], out: &mut Vec<Finding>) {
    let t = &lx.tokens;
    for i in 0..t.len() {
        if mask[i] || !t[i].is_ident("Relaxed") {
            continue;
        }
        let qualified = i >= 3
            && t[i - 1].is_punct(':')
            && t[i - 2].is_punct(':')
            && t[i - 3].is_ident("Ordering");
        let arg_position = i + 1 < t.len() && (t[i + 1].is_punct(')') || t[i + 1].is_punct(','));
        // `use ...::Ordering::Relaxed;` names the ordering without
        // performing an atomic op; the use *sites* are what need auditing.
        if lx
            .first_token_on(t[i].line)
            .is_some_and(|f| f.is_ident("use"))
        {
            continue;
        }
        if (qualified || arg_position) && !has_marker(lx, t[i].line, "ORDER:") {
            out.push(Finding {
                rule: RULE_RELAXED,
                file: rel.to_string(),
                line: t[i].line,
                message: "`Ordering::Relaxed` without an `// ORDER:` comment stating why \
                          relaxed is sound"
                    .to_string(),
                suppressed: None,
            });
        }
    }
}

/// Rule 4: size-taking allocations in decode modules (`with_capacity(n)`,
/// `vec![x; n]`) need a `// CAP:` comment pointing at the bound check.
fn rule_decode(rel: &str, lx: &Lexed, mask: &[bool], out: &mut Vec<Finding>) {
    let t = &lx.tokens;
    for i in 0..t.len() {
        if mask[i] {
            continue;
        }
        if t[i].is_ident("with_capacity")
            && i + 1 < t.len()
            && t[i + 1].is_punct('(')
            && !has_marker(lx, t[i].line, "CAP:")
        {
            out.push(Finding {
                rule: RULE_DECODE,
                file: rel.to_string(),
                line: t[i].line,
                message: "`with_capacity` in a decode module without a `// CAP:` comment \
                          naming the length bound"
                    .to_string(),
                suppressed: None,
            });
        }
        // vec![elem; n]
        if t[i].is_ident("vec")
            && i + 2 < t.len()
            && t[i + 1].is_punct('!')
            && t[i + 2].is_punct('[')
        {
            let mut depth = 1i32;
            let mut j = i + 3;
            let mut repeat = false;
            while j < t.len() && depth > 0 {
                if t[j].kind == TokKind::Punct {
                    match t[j].text.as_str() {
                        "[" | "(" | "{" => depth += 1,
                        "]" | ")" | "}" => depth -= 1,
                        ";" if depth == 1 => repeat = true,
                        _ => {}
                    }
                }
                j += 1;
            }
            if repeat && !has_marker(lx, t[i].line, "CAP:") {
                out.push(Finding {
                    rule: RULE_DECODE,
                    file: rel.to_string(),
                    line: t[i].line,
                    message: "`vec![_; n]` in a decode module without a `// CAP:` comment \
                              naming the length bound"
                        .to_string(),
                    suppressed: None,
                });
            }
        }
    }
}

/// Rule 5: blocking constructs in files that run on the reactor/poller
/// thread: `std::thread::sleep`, blocking I/O and channel/`Condvar` method
/// calls, and taking a lock in the same statement as a flagged raw syscall.
fn rule_blocking(rel: &str, lx: &Lexed, mask: &[bool], out: &mut Vec<Finding>) {
    let t = &lx.tokens;
    for i in 0..t.len() {
        if mask[i] {
            continue;
        }
        if t[i].is_ident("thread")
            && i + 3 < t.len()
            && t[i + 1].is_punct(':')
            && t[i + 2].is_punct(':')
            && t[i + 3].is_ident("sleep")
        {
            out.push(Finding {
                rule: RULE_BLOCKING,
                file: rel.to_string(),
                line: t[i + 3].line,
                message: "`thread::sleep` on a reactor-thread file stalls the poller".to_string(),
                suppressed: None,
            });
        }
        if i + 2 < t.len()
            && t[i].is_punct('.')
            && t[i + 1].kind == TokKind::Ident
            && BLOCKING_METHODS.contains(&t[i + 1].text.as_str())
            && t[i + 2].is_punct('(')
        {
            out.push(Finding {
                rule: RULE_BLOCKING,
                file: rel.to_string(),
                line: t[i + 1].line,
                message: format!(
                    "blocking call `.{}()` on a reactor-thread file",
                    t[i + 1].text
                ),
                suppressed: None,
            });
        }
    }
    // Lock taken in the same statement as a flagged syscall. Statements are
    // approximated by splitting the token stream on `;`, `{` and `}`; this
    // cannot see a guard binding that outlives its statement, but catches
    // the direct `relock(&m).something(sys::writev(..))` shape.
    let mut seg_start = 0usize;
    for i in 0..=t.len() {
        let boundary = i == t.len()
            || (t[i].kind == TokKind::Punct && matches!(t[i].text.as_str(), ";" | "{" | "}"));
        if !boundary {
            continue;
        }
        check_lock_segment(rel, t, mask, seg_start, i, out);
        seg_start = i + 1;
    }
}

fn check_lock_segment(
    rel: &str,
    t: &[Token],
    mask: &[bool],
    start: usize,
    end: usize,
    out: &mut Vec<Finding>,
) {
    let seg = &t[start..end.min(t.len())];
    let lock = seg.iter().enumerate().find(|(k, tok)| {
        (tok.is_ident("lock") || tok.is_ident("relock"))
            && start + k < mask.len()
            && !mask[start + k]
            && seg.get(k + 1).map(|n| n.is_punct('(')).unwrap_or(false)
    });
    let Some((_, lock_tok)) = lock else { return };
    let syscall = seg
        .iter()
        .find(|tok| tok.kind == TokKind::Ident && FLAGGED_SYSCALLS.contains(&tok.text.as_str()));
    if let Some(sc) = syscall {
        out.push(Finding {
            rule: RULE_BLOCKING,
            file: rel.to_string(),
            line: lock_tok.line,
            message: format!(
                "lock acquired in the same statement as syscall `{}` on the reactor thread",
                sc.text
            ),
            suppressed: None,
        });
    }
}

/// Does `line` (or the comment chain immediately above it) contain `marker`?
fn has_marker(lx: &Lexed, line: u32, marker: &str) -> bool {
    find_in_comment_chain(lx, line, |text| text.contains(marker)).is_some()
}

/// Walk the comment chain at/above `line`: the line itself (trailing
/// comments), then upward through comment, blank and attribute lines until a
/// code line or the window limit stops the walk. Returns the first value the
/// visitor produces.
fn find_in_comment_chain(
    lx: &Lexed,
    line: u32,
    mut visit: impl FnMut(&str) -> bool,
) -> Option<(u32, String)> {
    let floor = line.saturating_sub(MARKER_WINDOW);
    let mut l = line;
    loop {
        for text in lx.comments_on(l) {
            if visit(text) {
                return Some((l, text.to_string()));
            }
        }
        if l == 0 || l <= floor {
            return None;
        }
        l -= 1;
        if lx.has_code_on(l) {
            // Attribute lines (`#[...]`) may sit between an annotation and
            // the item it documents; any other code line breaks the chain.
            let is_attr = lx
                .first_token_on(l)
                .map(|t| t.is_punct('#'))
                .unwrap_or(false);
            if !is_attr {
                // Still scan this line's trailing comments, then stop.
                for text in lx.comments_on(l) {
                    if visit(text) {
                        return Some((l, text.to_string()));
                    }
                }
                return None;
            }
        }
    }
}

/// Parse `lint: allow(<rule>) <reason>` out of one comment's text.
fn parse_allow(text: &str) -> Option<(String, String)> {
    let idx = text.find("lint:")?;
    let rest = text[idx + "lint:".len()..].trim_start();
    let rest = rest.strip_prefix("allow(")?;
    let close = rest.find(')')?;
    let rule = rest[..close].trim().to_string();
    // Prose like `lint: allow(<rule>)` in documentation is not a
    // suppression; a real rule name is kebab-case ASCII.
    if rule.is_empty()
        || !rule
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
    {
        return None;
    }
    let reason = rest[close + 1..].trim().to_string();
    Some((rule, reason))
}

/// Resolve suppressions for every raw finding and enforce the
/// reason-mandatory policy.
fn resolve_suppressions(rel: &str, lx: &Lexed, raw: Vec<Finding>) -> Vec<Finding> {
    let mut out: Vec<Finding> = Vec::new();
    for mut f in raw {
        let hit = find_in_comment_chain(
            lx,
            f.line,
            |text| matches!(parse_allow(text), Some((ref r, _)) if r == f.rule),
        );
        if let Some((allow_line, text)) = hit {
            let (_, reason) = parse_allow(&text).expect("re-parse of matched allow");
            if reason.is_empty() {
                out.push(Finding {
                    rule: RULE_ALLOW_REASON,
                    file: rel.to_string(),
                    line: allow_line,
                    message: format!(
                        "`lint: allow({})` without a written reason — reasons are mandatory",
                        f.rule
                    ),
                    suppressed: None,
                });
            }
            f.suppressed = Some(reason);
        }
        out.push(f);
    }
    // A stray allow for an unknown rule is itself a finding: it silently
    // suppresses nothing and usually indicates a typo in the rule name.
    for c in &lx.comments {
        if let Some((rule, _)) = parse_allow(&c.text) {
            if !ALL_RULES.contains(&rule.as_str()) && rule != RULE_ALLOW_REASON {
                out.push(Finding {
                    rule: RULE_ALLOW_REASON,
                    file: rel.to_string(),
                    line: c.start_line,
                    message: format!("`lint: allow({rule})` names an unknown rule"),
                    suppressed: None,
                });
            }
        }
    }
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out.dedup_by(|a, b| a.line == b.line && a.rule == b.rule && a.message == b.message);
    out
}

/// Mark tokens inside `#[cfg(test)]`-gated items so most rules skip test
/// code. The pattern recognized is an exact `#[cfg(test)]` attribute (not
/// `cfg(not(test))`), followed by optional further attributes, then an item;
/// the item's brace block (or terminating `;`) closes the span.
fn test_token_mask(t: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; t.len()];
    let mut i = 0usize;
    while i < t.len() {
        if !(t[i].is_punct('#') && i + 1 < t.len() && t[i + 1].is_punct('[')) {
            i += 1;
            continue;
        }
        // Scan the attribute body, checking for the exact token run
        // `cfg ( test )` and finding the closing `]`.
        let mut j = i + 2;
        let mut depth = 1i32;
        let mut is_cfg_test = false;
        while j < t.len() && depth > 0 {
            if t[j].is_punct('[') {
                depth += 1;
            } else if t[j].is_punct(']') {
                depth -= 1;
            } else if t[j].is_ident("cfg")
                && j + 3 < t.len()
                && t[j + 1].is_punct('(')
                && t[j + 2].is_ident("test")
                && t[j + 3].is_punct(')')
            {
                is_cfg_test = true;
            }
            j += 1;
        }
        if !is_cfg_test {
            i = j;
            continue;
        }
        // Skip any further attributes on the same item.
        while j + 1 < t.len() && t[j].is_punct('#') && t[j + 1].is_punct('[') {
            let mut d = 1i32;
            let mut k = j + 2;
            while k < t.len() && d > 0 {
                if t[k].is_punct('[') {
                    d += 1;
                } else if t[k].is_punct(']') {
                    d -= 1;
                }
                k += 1;
            }
            j = k;
        }
        // Find the item's opening brace (or `;` for brace-less items).
        let mut k = j;
        let mut open = None;
        while k < t.len() {
            if t[k].is_punct('{') {
                open = Some(k);
                break;
            }
            if t[k].is_punct(';') {
                break;
            }
            k += 1;
        }
        let end = match open {
            Some(b) => {
                let mut d = 1i32;
                let mut m = b + 1;
                while m < t.len() && d > 0 {
                    if t[m].is_punct('{') {
                        d += 1;
                    } else if t[m].is_punct('}') {
                        d -= 1;
                    }
                    m += 1;
                }
                m
            }
            None => (k + 1).min(t.len()),
        };
        for slot in mask.iter_mut().take(end).skip(i) {
            *slot = true;
        }
        i = end;
    }
    mask
}
