//! Output formatting: a human-readable table and machine-readable JSON.

use crate::rules::Finding;

/// Render the findings as an aligned table. Suppressed findings are listed
/// after active ones, marked with their recorded reason.
pub fn render_table(findings: &[Finding]) -> String {
    let mut out = String::new();
    let (active, suppressed): (Vec<_>, Vec<_>) = findings.iter().partition(|f| f.is_active());
    let rows: Vec<(String, String, String)> = active
        .iter()
        .map(|f| {
            (
                f.rule.to_string(),
                format!("{}:{}", f.file, f.line),
                f.message.clone(),
            )
        })
        .collect();
    let w0 = rows
        .iter()
        .map(|r| r.0.len())
        .max()
        .unwrap_or(4)
        .max("RULE".len());
    let w1 = rows
        .iter()
        .map(|r| r.1.len())
        .max()
        .unwrap_or(8)
        .max("LOCATION".len());
    if !rows.is_empty() {
        out.push_str(&format!("{:w0$}  {:w1$}  MESSAGE\n", "RULE", "LOCATION"));
        for (rule, loc, msg) in &rows {
            out.push_str(&format!("{rule:w0$}  {loc:w1$}  {msg}\n"));
        }
    }
    if !suppressed.is_empty() {
        out.push_str(&format!("\n{} suppressed finding(s):\n", suppressed.len()));
        for f in &suppressed {
            out.push_str(&format!(
                "  {} {}:{} — allowed: {}\n",
                f.rule,
                f.file,
                f.line,
                f.suppressed.as_deref().unwrap_or("")
            ));
        }
    }
    out
}

/// Render the findings as a JSON document:
/// `{"findings": [...], "suppressed": [...], "files_scanned": n}`.
pub fn render_json(findings: &[Finding], files_scanned: usize) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    let active: Vec<&Finding> = findings.iter().filter(|f| f.is_active()).collect();
    let suppressed: Vec<&Finding> = findings.iter().filter(|f| !f.is_active()).collect();
    push_finding_array(&mut out, &active);
    out.push_str("],\n  \"suppressed\": [");
    push_finding_array(&mut out, &suppressed);
    out.push_str("],\n");
    out.push_str(&format!("  \"files_scanned\": {files_scanned}\n}}\n"));
    out
}

fn push_finding_array(out: &mut String, findings: &[&Finding]) {
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str(&format!("\"rule\": \"{}\", ", escape(f.rule)));
        out.push_str(&format!("\"file\": \"{}\", ", escape(&f.file)));
        out.push_str(&format!("\"line\": {}, ", f.line));
        out.push_str(&format!("\"message\": \"{}\"", escape(&f.message)));
        if let Some(reason) = &f.suppressed {
            out.push_str(&format!(", \"reason\": \"{}\"", escape(reason)));
        }
        out.push('}');
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
}

/// Minimal JSON string escaping.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
