//! A small comment/string-aware Rust lexer.
//!
//! The rules in this crate only need a faithful separation of *code tokens*
//! from *comments* and *literals*, with accurate line numbers.  The lexer
//! therefore does not classify keywords or build a syntax tree; it guarantees
//! that the word `unsafe` inside a string literal, a raw string, or a nested
//! block comment never surfaces as an identifier token, and that comments are
//! captured with their text and line span so rules can look for annotations
//! like `// SAFETY:` immediately above a flagged site.
//!
//! Handled forms: line and (nested) block comments, doc comments, string and
//! byte-string literals with escapes, raw strings `r#".."#` (any number of
//! `#`s, including zero), raw byte strings `br".."`, raw identifiers
//! `r#ident`, char and byte-char literals, and the char-literal/lifetime
//! ambiguity (`'a'` vs `'a`).

/// The kind of a code token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (raw identifiers are unprefixed: `r#fn` -> `fn`).
    Ident,
    /// A single punctuation character.
    Punct,
    /// A literal (string, char, number); the text is not retained.
    Lit,
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
}

/// One code token with its 1-indexed source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// 1-indexed line on which the token starts.
    pub line: u32,
    /// Token classification.
    pub kind: TokKind,
    /// Identifier text, or the punctuation character; empty for literals.
    pub text: String,
}

impl Token {
    /// True if this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

/// A comment (line, doc, or block) with its text and line span.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-indexed line on which the comment starts.
    pub start_line: u32,
    /// 1-indexed line on which the comment ends (inclusive).
    pub end_line: u32,
    /// Comment body without the `//`/`/*` markers, newlines preserved.
    pub text: String,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
    /// `code_lines[line]` is true when the line holds at least one code token.
    code_lines: Vec<bool>,
}

impl Lexed {
    /// True if 1-indexed `line` carries at least one code token.
    pub fn has_code_on(&self, line: u32) -> bool {
        self.code_lines.get(line as usize).copied().unwrap_or(false)
    }

    /// The first code token on 1-indexed `line`, if any.
    pub fn first_token_on(&self, line: u32) -> Option<&Token> {
        self.tokens.iter().find(|t| t.line == line)
    }

    /// Iterate the text of every comment whose span covers 1-indexed `line`.
    pub fn comments_on(&self, line: u32) -> impl Iterator<Item = &str> {
        self.comments
            .iter()
            .filter(move |c| c.start_line <= line && line <= c.end_line)
            .map(|c| c.text.as_str())
    }
}

/// Lex `src` into tokens and comments.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let n = chars.len();

    // Advance over `k` chars, counting newlines.
    macro_rules! advance {
        ($k:expr) => {{
            for _ in 0..$k {
                if i < n {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
        }};
    }

    let at = |i: usize, c: char| -> bool { i < n && chars[i] == c };
    let is_ident_start = |c: char| c.is_alphabetic() || c == '_';
    let is_ident_cont = |c: char| c.is_alphanumeric() || c == '_';

    while i < n {
        let c = chars[i];

        // Whitespace.
        if c.is_whitespace() {
            advance!(1);
            continue;
        }

        // Line comment (incl. doc comments `///`, `//!`).
        if c == '/' && at(i + 1, '/') {
            let start = line;
            advance!(2);
            let mut text = String::new();
            while i < n && chars[i] != '\n' {
                text.push(chars[i]);
                advance!(1);
            }
            out.comments.push(Comment {
                start_line: start,
                end_line: start,
                text,
            });
            continue;
        }

        // Block comment, possibly nested.
        if c == '/' && at(i + 1, '*') {
            let start = line;
            advance!(2);
            let mut depth = 1usize;
            let mut text = String::new();
            while i < n && depth > 0 {
                if chars[i] == '/' && at(i + 1, '*') {
                    depth += 1;
                    text.push_str("/*");
                    advance!(2);
                } else if chars[i] == '*' && at(i + 1, '/') {
                    depth -= 1;
                    if depth > 0 {
                        text.push_str("*/");
                    }
                    advance!(2);
                } else {
                    text.push(chars[i]);
                    advance!(1);
                }
            }
            out.comments.push(Comment {
                start_line: start,
                end_line: line,
                text,
            });
            continue;
        }

        // Raw strings / raw identifiers / byte strings, which all start with
        // an identifier-looking prefix. Check before generic identifiers.
        if c == 'r' || c == 'b' {
            // br"..." / br#"..."# (raw byte string)
            if c == 'b' && at(i + 1, 'r') {
                let mut j = i + 2;
                let mut hashes = 0usize;
                while at(j, '#') {
                    hashes += 1;
                    j += 1;
                }
                if at(j, '"') {
                    let tok_line = line;
                    advance!(j + 1 - i);
                    skip_raw_string(&chars, &mut i, &mut line, n, hashes);
                    out.tokens.push(Token {
                        line: tok_line,
                        kind: TokKind::Lit,
                        text: String::new(),
                    });
                    continue;
                }
            }
            if c == 'r' {
                let mut j = i + 1;
                let mut hashes = 0usize;
                while at(j, '#') {
                    hashes += 1;
                    j += 1;
                }
                if at(j, '"') {
                    // r"..." / r#"..."# (raw string)
                    let tok_line = line;
                    advance!(j + 1 - i);
                    skip_raw_string(&chars, &mut i, &mut line, n, hashes);
                    out.tokens.push(Token {
                        line: tok_line,
                        kind: TokKind::Lit,
                        text: String::new(),
                    });
                    continue;
                }
                if hashes == 1 && j < n && is_ident_start(chars[j]) {
                    // r#ident (raw identifier): emit without the r# prefix.
                    let tok_line = line;
                    advance!(2);
                    let mut text = String::new();
                    while i < n && is_ident_cont(chars[i]) {
                        text.push(chars[i]);
                        advance!(1);
                    }
                    out.tokens.push(Token {
                        line: tok_line,
                        kind: TokKind::Ident,
                        text,
                    });
                    continue;
                }
            }
            // b"..." (byte string) / b'x' (byte char)
            if c == 'b' && at(i + 1, '"') {
                let tok_line = line;
                advance!(2);
                skip_quoted(&chars, &mut i, &mut line, n, '"');
                out.tokens.push(Token {
                    line: tok_line,
                    kind: TokKind::Lit,
                    text: String::new(),
                });
                continue;
            }
            if c == 'b' && at(i + 1, '\'') {
                let tok_line = line;
                advance!(2);
                skip_quoted(&chars, &mut i, &mut line, n, '\'');
                out.tokens.push(Token {
                    line: tok_line,
                    kind: TokKind::Lit,
                    text: String::new(),
                });
                continue;
            }
            // Fall through: plain identifier starting with r/b.
        }

        // String literal.
        if c == '"' {
            let tok_line = line;
            advance!(1);
            skip_quoted(&chars, &mut i, &mut line, n, '"');
            out.tokens.push(Token {
                line: tok_line,
                kind: TokKind::Lit,
                text: String::new(),
            });
            continue;
        }

        // Char literal or lifetime.
        if c == '\'' {
            let tok_line = line;
            // Escape sequence: definitely a char literal.
            if at(i + 1, '\\') {
                advance!(2);
                skip_quoted(&chars, &mut i, &mut line, n, '\'');
                out.tokens.push(Token {
                    line: tok_line,
                    kind: TokKind::Lit,
                    text: String::new(),
                });
                continue;
            }
            // `'x'` (closing quote right after one char): char literal.
            if i + 2 < n && chars[i + 2] == '\'' && chars[i + 1] != '\'' {
                advance!(3);
                out.tokens.push(Token {
                    line: tok_line,
                    kind: TokKind::Lit,
                    text: String::new(),
                });
                continue;
            }
            // Otherwise a lifetime: `'a`, `'static`, `'_`.
            advance!(1);
            let mut text = String::new();
            while i < n && is_ident_cont(chars[i]) {
                text.push(chars[i]);
                advance!(1);
            }
            out.tokens.push(Token {
                line: tok_line,
                kind: TokKind::Lifetime,
                text,
            });
            continue;
        }

        // Number literal (incl. suffixes and simple floats).
        if c.is_ascii_digit() {
            let tok_line = line;
            while i < n && (is_ident_cont(chars[i])) {
                advance!(1);
            }
            // Consume a fractional part only when followed by a digit, so
            // ranges like `0..n` keep their dots as punctuation.
            if at(i, '.') && i + 1 < n && chars[i + 1].is_ascii_digit() {
                advance!(1);
                while i < n && is_ident_cont(chars[i]) {
                    advance!(1);
                }
            }
            out.tokens.push(Token {
                line: tok_line,
                kind: TokKind::Lit,
                text: String::new(),
            });
            continue;
        }

        // Identifier / keyword.
        if is_ident_start(c) {
            let tok_line = line;
            let mut text = String::new();
            while i < n && is_ident_cont(chars[i]) {
                text.push(chars[i]);
                advance!(1);
            }
            out.tokens.push(Token {
                line: tok_line,
                kind: TokKind::Ident,
                text,
            });
            continue;
        }

        // Anything else is single-char punctuation.
        out.tokens.push(Token {
            line,
            kind: TokKind::Punct,
            text: c.to_string(),
        });
        advance!(1);
    }

    // Build the line -> has-code map.
    let max_line = out.tokens.iter().map(|t| t.line).max().unwrap_or(0) as usize;
    out.code_lines = vec![false; max_line + 1];
    for t in &out.tokens {
        out.code_lines[t.line as usize] = true;
    }
    out
}

/// Consume a non-raw quoted literal body up to the closing `quote`,
/// honouring backslash escapes. The opening quote has been consumed.
fn skip_quoted(chars: &[char], i: &mut usize, line: &mut u32, n: usize, quote: char) {
    while *i < n {
        let c = chars[*i];
        if c == '\n' {
            *line += 1;
        }
        *i += 1;
        if c == '\\' {
            if *i < n {
                if chars[*i] == '\n' {
                    *line += 1;
                }
                *i += 1;
            }
        } else if c == quote {
            return;
        }
    }
}

/// Consume a raw string body terminated by `"` followed by `hashes` `#`s.
/// The opening delimiter has been consumed.
fn skip_raw_string(chars: &[char], i: &mut usize, line: &mut u32, n: usize, hashes: usize) {
    while *i < n {
        let c = chars[*i];
        if c == '\n' {
            *line += 1;
        }
        *i += 1;
        if c == '"' {
            let mut k = 0usize;
            while k < hashes && *i + k < n && chars[*i + k] == '#' {
                k += 1;
            }
            if k == hashes {
                *i += hashes;
                return;
            }
        }
    }
}
