//! `analyzer.toml` parsing.
//!
//! The repo is offline, so there is no TOML crate; this module parses the
//! small declarative subset the analyzer needs: `[section]` headers,
//! `key = "string"`, and `key = ["a", "b", ...]` (single- or multi-line
//! arrays), with `#` comments. Anything else is a hard error so config
//! typos fail the lint run instead of silently disabling a rule.

use std::collections::BTreeMap;

/// Parsed analyzer configuration. All paths are repo-relative with `/`
/// separators and matched as suffixes of the scanned file's relative path.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Files where the hot-path-panic rule applies.
    pub hot_path_modules: Vec<String>,
    /// Files where `Ordering::Relaxed` is allowed without an `// ORDER:` note.
    pub relaxed_allowlist: Vec<String>,
    /// Files treated as wire-decode paths by the bounded-decode rule.
    pub decode_modules: Vec<String>,
    /// Files that run on the reactor/poller thread.
    pub reactor_files: Vec<String>,
    /// Top-level directories (repo-relative) excluded from the scan.
    pub exclude_dirs: Vec<String>,
}

impl Config {
    /// Parse the analyzer config from TOML text.
    pub fn parse(src: &str) -> Result<Config, String> {
        let raw = parse_sections(src)?;
        let mut cfg = Config::default();
        for (section, keys) in &raw {
            for (key, value) in keys {
                let slot: &mut Vec<String> = match (section.as_str(), key.as_str()) {
                    ("hot_path_panic", "modules") => &mut cfg.hot_path_modules,
                    ("atomics_ordering_audit", "allow_relaxed_in") => &mut cfg.relaxed_allowlist,
                    ("bounded_decode", "decode_modules") => &mut cfg.decode_modules,
                    ("no_blocking_on_reactor", "files") => &mut cfg.reactor_files,
                    ("workspace", "exclude") => &mut cfg.exclude_dirs,
                    _ => {
                        return Err(format!(
                            "analyzer.toml: unknown key `{key}` in section `[{section}]`"
                        ))
                    }
                };
                *slot = value.clone();
            }
        }
        Ok(cfg)
    }
}

/// Section name -> ordered `(key, values)` pairs.
type Sections = BTreeMap<String, Vec<(String, Vec<String>)>>;

/// Parse the TOML subset into section -> key -> list-of-strings.
/// A bare `key = "value"` becomes a one-element list.
fn parse_sections(src: &str) -> Result<Sections, String> {
    let mut out: Sections = BTreeMap::new();
    let mut section = String::new();
    let mut lines = src.lines().enumerate().peekable();
    while let Some((ln, raw)) = lines.next() {
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            section = name.trim().to_string();
            out.entry(section.clone()).or_default();
            continue;
        }
        let Some(eq) = line.find('=') else {
            return Err(format!("analyzer.toml:{}: expected `key = value`", ln + 1));
        };
        let key = line[..eq].trim().to_string();
        let mut value = line[eq + 1..].trim().to_string();
        // Multi-line array: keep consuming until brackets balance.
        while value.starts_with('[') && !brackets_balanced(&value) {
            let Some((_, next)) = lines.next() else {
                return Err(format!("analyzer.toml:{}: unterminated array", ln + 1));
            };
            value.push(' ');
            value.push_str(strip_comment(next).trim());
        }
        let items = parse_value(&value).map_err(|e| format!("analyzer.toml:{}: {e}", ln + 1))?;
        if section.is_empty() {
            return Err(format!(
                "analyzer.toml:{}: key `{key}` outside any [section]",
                ln + 1
            ));
        }
        out.get_mut(&section).unwrap().push((key, items));
    }
    Ok(out)
}

/// Drop a trailing `#` comment (quote-aware).
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (idx, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..idx],
            _ => {}
        }
    }
    line
}

fn brackets_balanced(s: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    for c in s.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth <= 0
}

/// Parse `"string"` or `["a", "b"]` into a list of strings.
fn parse_value(v: &str) -> Result<Vec<String>, String> {
    let v = v.trim();
    if let Some(s) = parse_string(v) {
        return Ok(vec![s]);
    }
    let Some(body) = v.strip_prefix('[').and_then(|s| s.strip_suffix(']')) else {
        return Err(format!("expected a string or array of strings, got `{v}`"));
    };
    let mut items = Vec::new();
    for part in split_top_level(body) {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        match parse_string(part) {
            Some(s) => items.push(s),
            None => return Err(format!("expected a quoted string, got `{part}`")),
        }
    }
    Ok(items)
}

/// Split an array body on commas outside quotes.
fn split_top_level(s: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for c in s.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if !in_str => parts.push(std::mem::take(&mut cur)),
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        parts.push(cur);
    }
    parts
}

fn parse_string(s: &str) -> Option<String> {
    s.strip_prefix('"')?
        .strip_suffix('"')
        .map(|x| x.to_string())
}
