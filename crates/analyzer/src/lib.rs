//! `iniva-lint`: dependency-free static analysis for consensus-critical
//! invariants.
//!
//! The workspace is built and tested fully offline, so this analyzer is
//! hand-rolled in-tree: a comment/string-aware lexer ([`lexer`]) feeds a
//! token-level rule engine ([`rules`]) configured by `analyzer.toml` at the
//! repo root ([`config`]). Findings are rendered as a table or JSON
//! ([`report`]). See the repo README's "Static analysis" section for the
//! rule catalogue and the `// lint: allow(<rule>) <reason>` escape-hatch
//! policy.

#![forbid(unsafe_code)]

pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use config::Config;
pub use rules::{analyze_source, Finding};

/// Directories never scanned regardless of configuration.
const ALWAYS_EXCLUDED: &[&str] = &["target", ".git", ".claude"];

/// Recursively collect the `.rs` files under `root`, returning repo-relative
/// paths with `/` separators, sorted for deterministic output.
pub fn collect_sources(root: &Path, cfg: &Config) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name().to_string_lossy().into_owned();
            if path.is_dir() {
                let excluded = ALWAYS_EXCLUDED.contains(&name.as_str())
                    || (dir == *root && cfg.exclude_dirs.contains(&name));
                if !excluded && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Run every rule over the workspace rooted at `root`. Returns all findings
/// (active and suppressed) plus the number of files scanned.
pub fn analyze_workspace(root: &Path, cfg: &Config) -> io::Result<(Vec<Finding>, usize)> {
    let files = collect_sources(root, cfg)?;
    let mut findings = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = fs::read_to_string(path)?;
        findings.extend(analyze_source(&rel, &src, cfg));
    }
    findings
        .sort_by(|a, b| (a.file.clone(), a.line, a.rule).cmp(&(b.file.clone(), b.line, b.rule)));
    Ok((findings, files.len()))
}

/// Locate the repo root by walking upward from `start` until a directory
/// containing `analyzer.toml` is found.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("analyzer.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Load `analyzer.toml` from `root`.
pub fn load_config(root: &Path) -> Result<Config, String> {
    let path = root.join("analyzer.toml");
    let text =
        fs::read_to_string(&path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    Config::parse(&text)
}
