//! `iniva-lint` CLI.
//!
//! Usage: `iniva-lint [--root DIR] [--json FILE] [--check] [--list-rules]`
//!
//! Without `--root`, the repo root is located by walking upward from the
//! current directory until `analyzer.toml` is found. `--check` exits with
//! status 1 when any unsuppressed finding remains (the CI gate); `--json`
//! additionally writes the full findings document to a file.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use iniva_analyzer::{analyze_workspace, find_root, load_config, report, rules};

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json_out: Option<PathBuf> = None;
    let mut check = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--json" => json_out = args.next().map(PathBuf::from),
            "--check" => check = true,
            "--list-rules" => {
                for r in rules::ALL_RULES {
                    println!("{r}");
                }
                println!("{}", rules::RULE_ALLOW_REASON);
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "iniva-lint: consensus-critical invariant checks for the Iniva workspace\n\n\
                     USAGE: iniva-lint [--root DIR] [--json FILE] [--check] [--list-rules]\n\n\
                     --root DIR    repo root (default: nearest ancestor with analyzer.toml)\n\
                     --json FILE   write findings as JSON to FILE\n\
                     --check       exit non-zero if any unsuppressed finding remains\n\
                     --list-rules  print the rule names and exit"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("iniva-lint: unknown argument `{other}` (see --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root.or_else(|| std::env::current_dir().ok().and_then(|d| find_root(&d))) {
        Some(r) => r,
        None => {
            eprintln!("iniva-lint: no analyzer.toml found (pass --root)");
            return ExitCode::from(2);
        }
    };

    let cfg = match load_config(&root) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("iniva-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let (findings, files_scanned) = match analyze_workspace(&root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("iniva-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    let active = findings.iter().filter(|f| f.is_active()).count();
    let suppressed = findings.len() - active;

    print!("{}", report::render_table(&findings));
    println!(
        "iniva-lint: {active} finding(s), {suppressed} suppressed, {files_scanned} files scanned"
    );

    if let Some(path) = json_out {
        let doc = report::render_json(&findings, files_scanned);
        if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("iniva-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if check && active > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
