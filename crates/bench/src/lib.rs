//! Benchmark crate; see `benches/`.
