//! Benchmark crate; see `benches/`.
#![forbid(unsafe_code)]
