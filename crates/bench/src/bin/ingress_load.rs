//! Records the client-ingress baseline: open-loop client fleets driving
//! a live loopback cluster through the `iniva-ingress` tier, written to
//! `BENCH_ingress.json`. Three cells per run:
//!
//! * **unloaded** — the same cluster with no ingress tier, drafting from
//!   the synthetic open-loop model: the consensus-throughput reference
//!   the flood cell is gated against.
//! * **sustained** — thousands of concurrent client connections (one
//!   thread + one TCP connection each), each submitting on its own pace
//!   without waiting for commits. Records p50/p99/p999 submit-to-commit
//!   latency from the mempool's own histogram, plus admitted/shed rates.
//!   The mempool is deliberately small relative to the offered load, so
//!   the cell also exercises drop-lowest-fee eviction under pressure.
//! * **hostile flood** — a modest honest fleet bidding high fees beside
//!   a hostile fleet flooding cheap submits far over its token-bucket
//!   budget. The hostile traffic must be shed at the ingress edge (a
//!   `Busy` ack costs one bucket check, no shared state), leaving
//!   consensus throughput within 20% of the unloaded cell.
//!
//! ```sh
//! cargo run --release -p iniva-bench --bin ingress_load
//! cargo run --release -p iniva-bench --bin ingress_load -- out.json
//! cargo run --release -p iniva-bench --bin ingress_load -- --check
//! ```
//!
//! `--check` is the CI smoke gate: the same three cells at a fraction of
//! the scale (connections and seconds), asserting structural health —
//! clients admitted, requests committed through consensus, shedding
//! active, the flood contained — and exiting nonzero on any failure
//! without touching the committed baseline.

use bytes::Bytes;
use iniva::protocol::InivaConfig;
use iniva_ingress::{
    read_frame, write_frame, ClientMsg, IngressOptions, IngressStats, SubmitStatus,
};
use iniva_transport::cluster::ClusterBuilder;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Client threads only hold a frame buffer and a shallow call tree; the
/// default stack would waste address space at thousands of connections.
const CLIENT_STACK: usize = 96 * 1024;

/// What one fleet of identically-behaving clients should do.
#[derive(Clone, Copy)]
struct FleetSpec {
    /// Number of connections (= threads).
    conns: usize,
    /// Pause between submits per client; `None` floods back-to-back.
    pace: Option<Duration>,
    /// Fee bid on every submit.
    fee: u64,
    /// Payload bytes per submit.
    payload: usize,
}

/// Ack counts observed by a client fleet (its side of the ledger; the
/// mempool's [`IngressStats`] is the server side).
#[derive(Default)]
struct FleetCounts {
    sent: AtomicU64,
    accepted: AtomicU64,
    busy: AtomicU64,
}

/// One open-loop client: connect (with retry — thousands of peers race
/// the accept loop), then submit on the spec's pace until stopped or the
/// server goes away, reading one ack per submit.
fn client_loop(
    addr: SocketAddr,
    spec: FleetSpec,
    seed: u64,
    stop: &AtomicBool,
    counts: &FleetCounts,
) {
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut stream = loop {
        match TcpStream::connect(addr) {
            Ok(s) => break s,
            Err(_) if Instant::now() < deadline && !stop.load(Ordering::Relaxed) => {
                thread::sleep(Duration::from_millis(20));
            }
            Err(_) => return,
        }
    };
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let payload = Bytes::from(vec![0x5au8; spec.payload]);
    let mut nonce = 0u64;
    while !stop.load(Ordering::Relaxed) {
        let msg = ClientMsg::Submit {
            // Spread fees a little within the fleet so eviction order is
            // exercised even inside one fee class.
            fee: spec.fee + (seed + nonce) % 4,
            nonce,
            payload: payload.clone(),
        };
        if write_frame(&mut stream, &msg).is_err() {
            return; // server shut down: the run is over
        }
        counts.sent.fetch_add(1, Ordering::Relaxed);
        loop {
            match read_frame(&mut stream) {
                Ok(Some(ClientMsg::SubmitAck { status, .. })) => {
                    match status {
                        SubmitStatus::Accepted => counts.accepted.fetch_add(1, Ordering::Relaxed),
                        SubmitStatus::Busy => counts.busy.fetch_add(1, Ordering::Relaxed),
                        SubmitStatus::Duplicate => 0,
                    };
                    break;
                }
                Ok(Some(_)) => break,
                Ok(None) => return,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                }
                Err(_) => return,
            }
        }
        nonce += 1;
        if let Some(pace) = spec.pace {
            thread::sleep(pace);
        }
    }
}

/// Spawns a fleet round-robin across the replicas' client addresses.
fn spawn_fleet(
    addrs: &[SocketAddr],
    spec: FleetSpec,
    stop: &Arc<AtomicBool>,
    counts: &Arc<FleetCounts>,
) -> Vec<thread::JoinHandle<()>> {
    (0..spec.conns)
        .map(|i| {
            let addr = addrs[i % addrs.len()];
            let stop = Arc::clone(stop);
            let counts = Arc::clone(counts);
            thread::Builder::new()
                .name(format!("ingress-client-{i}"))
                .stack_size(CLIENT_STACK)
                .spawn(move || client_loop(addr, spec, i as u64, &stop, &counts))
                .expect("spawn client thread")
        })
        .collect()
}

/// The shared cluster shape: 4 replicas, near the loopback saturation
/// batch size. `request_rate` only matters for the unloaded cell (with
/// ingress enabled the mempool replaces the synthetic model).
fn cluster_config() -> InivaConfig {
    let mut cfg = InivaConfig::for_tests(4, 1);
    cfg.request_rate = 2_500;
    cfg
}

/// Result of one ingress-driven cell.
struct CellResult {
    stats: IngressStats,
    client_sent: u64,
    client_busy: u64,
    p50_ms: f64,
    p99_ms: f64,
    p999_ms: f64,
    blocks_per_sec: f64,
    committed_reqs_per_sec: f64,
}

/// Runs the cluster with an ingress tier and the given fleets against it.
fn run_ingress_cell(
    cfg: &InivaConfig,
    opts: IngressOptions,
    fleets: &[FleetSpec],
    secs: u64,
) -> CellResult {
    let handle = ClusterBuilder::new(cfg, Duration::from_secs(secs))
        .ingress(opts)
        .launch()
        .expect("cluster starts");
    let ingress = handle.ingress().expect("ingress enabled").clone();
    let stop = Arc::new(AtomicBool::new(false));
    let counts = Arc::new(FleetCounts::default());
    let mut clients = Vec::new();
    for fleet in fleets {
        clients.extend(spawn_fleet(&ingress.client_addrs, *fleet, &stop, &counts));
    }
    let run = handle.join().expect("cluster run");
    stop.store(true, Ordering::Relaxed);
    for c in clients {
        let _ = c.join();
    }

    let stats = ingress.mempool.stats();
    let hist = ingress.mempool.latency();
    let to_ms = |ns: u64| ns as f64 / 1e6;
    let blocks = run
        .nodes
        .iter()
        .map(|n| n.replica.chain.metrics.committed_blocks)
        .max()
        .unwrap_or(0);
    CellResult {
        client_sent: counts.sent.load(Ordering::Relaxed),
        client_busy: counts.busy.load(Ordering::Relaxed),
        p50_ms: to_ms(hist.quantile(0.50)),
        p99_ms: to_ms(hist.quantile(0.99)),
        p999_ms: to_ms(hist.quantile(0.999)),
        blocks_per_sec: blocks as f64 / secs as f64,
        committed_reqs_per_sec: stats.committed as f64 / secs as f64,
        stats,
    }
}

/// Runs the reference cell: same cluster, no ingress, synthetic model.
fn run_unloaded_cell(cfg: &InivaConfig, secs: u64) -> f64 {
    let run = ClusterBuilder::new(cfg, Duration::from_secs(secs))
        .spawn()
        .expect("cluster starts");
    let blocks = run
        .nodes
        .iter()
        .map(|n| n.replica.chain.metrics.committed_blocks)
        .max()
        .unwrap_or(0);
    blocks as f64 / secs as f64
}

struct Scale {
    sustained_conns: usize,
    sustained_secs: u64,
    honest_conns: usize,
    hostile_conns: usize,
    /// Pause between honest submits in the flood cell (ms).
    honest_pace_ms: u64,
    /// Pause between hostile submits in the flood cell (ms).
    hostile_pace_ms: u64,
    flood_secs: u64,
    unloaded_secs: u64,
}

const FULL: Scale = Scale {
    sustained_conns: 2_400,
    sustained_secs: 12,
    honest_conns: 32,
    hostile_conns: 32,
    honest_pace_ms: 100,
    hostile_pace_ms: 20,
    flood_secs: 8,
    unloaded_secs: 8,
};

/// CI smoke: same cells, a fraction of the scale.
const SMOKE: Scale = Scale {
    sustained_conns: 96,
    sustained_secs: 4,
    honest_conns: 8,
    hostile_conns: 8,
    honest_pace_ms: 100,
    hostile_pace_ms: 20,
    flood_secs: 4,
    unloaded_secs: 4,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("BENCH_ingress.json");
    let scale = if check { SMOKE } else { FULL };
    let cfg = cluster_config();

    // Reference cell first: consensus cadence with no client tier at all.
    let unloaded_blocks_per_sec = run_unloaded_cell(&cfg, scale.unloaded_secs);
    println!(
        "unloaded  : {unloaded_blocks_per_sec:.1} blocks/s (synthetic model, no ingress tier)"
    );

    // Sustained open-loop cell: a small mempool relative to the offered
    // load, so backlog pressure exercises eviction and Busy shedding
    // while the proposer drains highest-fee-first.
    let sustained = run_ingress_cell(
        &cfg,
        IngressOptions {
            capacity: 8_192,
            rate_per_client: 1_000,
            burst: 256,
        },
        &[FleetSpec {
            conns: scale.sustained_conns,
            pace: Some(Duration::from_millis(250)),
            fee: 10,
            payload: 64,
        }],
        scale.sustained_secs,
    );
    let s = &sustained.stats;
    let shed = s.shed_busy + s.shed_full;
    let shed_rate = shed as f64 / s.offered.max(1) as f64;
    println!(
        "sustained : {} conns, {} offered, {} admitted, {} shed ({:.1}%), {} evicted, \
         {:.0} reqs/s committed, p50 {:.1} ms, p99 {:.1} ms, p999 {:.1} ms",
        scale.sustained_conns,
        s.offered,
        s.admitted,
        shed,
        shed_rate * 100.0,
        s.evicted,
        sustained.committed_reqs_per_sec,
        sustained.p50_ms,
        sustained.p99_ms,
        sustained.p999_ms,
    );

    // Hostile flood cell: hostile clients bid fee 1 and offer several
    // times their token budget; honest clients bid high and stay under
    // theirs. The token bucket must turn the excess into cheap `Busy`
    // acks at the edge so consensus keeps its unloaded cadence.
    let flood = run_ingress_cell(
        &cfg,
        IngressOptions {
            capacity: 8_192,
            rate_per_client: 15,
            burst: 16,
        },
        &[
            FleetSpec {
                conns: scale.honest_conns,
                pace: Some(Duration::from_millis(scale.honest_pace_ms)),
                fee: 1_000,
                payload: 64,
            },
            FleetSpec {
                conns: scale.hostile_conns,
                pace: Some(Duration::from_millis(scale.hostile_pace_ms)),
                fee: 1,
                payload: 64,
            },
        ],
        scale.flood_secs,
    );
    let f = &flood.stats;
    let flood_ratio = flood.blocks_per_sec / unloaded_blocks_per_sec.max(f64::MIN_POSITIVE);
    println!(
        "flood     : {} honest + {} hostile conns, {} offered, {} admitted, \
         {} rate-limited, {:.1} blocks/s vs unloaded {:.1} ({:.0}%)",
        scale.honest_conns,
        scale.hostile_conns,
        f.offered,
        f.admitted,
        f.shed_busy,
        flood.blocks_per_sec,
        unloaded_blocks_per_sec,
        flood_ratio * 100.0,
    );

    if check {
        // Structural health, not absolute numbers: CI machines vary.
        let mut failures = Vec::new();
        if s.admitted == 0 {
            failures.push("sustained cell admitted nothing".to_string());
        }
        if s.committed == 0 {
            failures.push("sustained cell committed nothing through consensus".to_string());
        }
        if sustained.p50_ms <= 0.0 {
            failures.push("sustained cell recorded no latency samples".to_string());
        }
        if f.shed_busy == 0 {
            failures.push("flood cell never rate-limited the hostile fleet".to_string());
        }
        if f.committed == 0 {
            failures.push("flood cell committed nothing through consensus".to_string());
        }
        if flood_ratio < 0.8 {
            failures.push(format!(
                "hostile flood dragged consensus to {:.0}% of unloaded (gate: 80%)",
                flood_ratio * 100.0
            ));
        }
        if failures.is_empty() {
            println!("ingress smoke: OK");
        } else {
            for f in &failures {
                eprintln!("ingress smoke FAILED: {f}");
            }
            std::process::exit(1);
        }
        return;
    }

    // Hand-rolled JSON: the workspace is offline (no serde); the schema
    // is flat numbers only, like BENCH_transport.json.
    let json = format!(
        "{{\n  \"benchmark\": \"iniva-ingress open-loop client tier\",\n  \
         \"n\": {n},\n  \
         \"unloaded_secs\": {unloaded_secs},\n  \
         \"unloaded_blocks_per_sec\": {unloaded_blocks_per_sec:.1},\n  \
         \"sustained_connections\": {sus_conns},\n  \
         \"sustained_secs\": {sus_secs},\n  \
         \"sustained_offered\": {sus_offered},\n  \
         \"sustained_admitted\": {sus_admitted},\n  \
         \"sustained_shed\": {sus_shed},\n  \
         \"sustained_shed_rate\": {shed_rate:.4},\n  \
         \"sustained_evicted\": {sus_evicted},\n  \
         \"sustained_committed_reqs_per_sec\": {sus_committed:.1},\n  \
         \"sustained_p50_ms\": {p50:.3},\n  \
         \"sustained_p99_ms\": {p99:.3},\n  \
         \"sustained_p999_ms\": {p999:.3},\n  \
         \"sustained_client_sent\": {sus_sent},\n  \
         \"flood_honest_connections\": {honest},\n  \
         \"flood_hostile_connections\": {hostile},\n  \
         \"flood_secs\": {flood_secs},\n  \
         \"flood_offered\": {fl_offered},\n  \
         \"flood_admitted\": {fl_admitted},\n  \
         \"flood_rate_limited\": {fl_busy},\n  \
         \"flood_client_busy_acks\": {fl_client_busy},\n  \
         \"flood_blocks_per_sec\": {fl_blocks:.1},\n  \
         \"flood_vs_unloaded_ratio\": {flood_ratio:.3}\n}}\n",
        n = cfg.n,
        unloaded_secs = scale.unloaded_secs,
        sus_conns = scale.sustained_conns,
        sus_secs = scale.sustained_secs,
        sus_offered = s.offered,
        sus_admitted = s.admitted,
        sus_shed = shed,
        sus_evicted = s.evicted,
        sus_committed = sustained.committed_reqs_per_sec,
        p50 = sustained.p50_ms,
        p99 = sustained.p99_ms,
        p999 = sustained.p999_ms,
        sus_sent = sustained.client_sent,
        honest = scale.honest_conns,
        hostile = scale.hostile_conns,
        flood_secs = scale.flood_secs,
        fl_offered = f.offered,
        fl_admitted = f.admitted,
        fl_busy = f.shed_busy,
        fl_client_busy = flood.client_busy,
        fl_blocks = flood.blocks_per_sec,
    );
    std::fs::write(path, &json).expect("write ingress baseline json");
    println!("\nwrote {path}");
}
