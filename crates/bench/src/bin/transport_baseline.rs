//! Records the live-transport performance baseline: a 4-replica Iniva
//! cluster over loopback TCP, reduced to committed throughput and latency
//! with the shared metric definitions, written to `BENCH_transport.json`.
//!
//! ```sh
//! cargo run --release -p iniva-bench --bin transport_baseline
//! cargo run --release -p iniva-bench --bin transport_baseline -- out.json 8 5
//! #                                      optional: path, n, duration_secs
//! ```
//!
//! The JSON seeds the performance trajectory for future PRs: any change to
//! the transport or the protocol hot path can be compared against the
//! committed numbers.

use iniva::protocol::InivaConfig;
use iniva_consensus::PerfSummary;
use iniva_transport::cluster::run_local_iniva_cluster;
use iniva_transport::CpuMode;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let path = args
        .first()
        .map(String::as_str)
        .unwrap_or("BENCH_transport.json");
    let n: usize = args.get(1).map_or(4, |v| v.parse().expect("n"));
    let duration_secs: u64 = args.get(2).map_or(3, |v| v.parse().expect("duration_secs"));

    let mut cfg = InivaConfig::for_tests(n, ((n as f64 - 1.0).sqrt().round() as u32).max(1));
    // Near the n=4 saturation point, so the recorded latency reflects the
    // pipeline under load. Committed throughput is bounded by the offered
    // rate (the proposer-side draft cursor keeps uncommitted ranges from
    // being re-batched and double-counted).
    cfg.request_rate = 2_000;
    let run = run_local_iniva_cluster(&cfg, Duration::from_secs(duration_secs), CpuMode::Real)
        .expect("cluster starts");
    let agreed = run
        .agreed_prefix_height()
        .expect("committed prefixes agree");

    let cpu_busy: Vec<u64> = run.nodes.iter().map(|nd| nd.runtime.busy).collect();
    let metrics = &run.nodes[0].replica.chain.metrics;
    let point = PerfSummary::from_metrics(metrics, duration_secs as f64, &cpu_busy);
    println!("{}", PerfSummary::table_header());
    println!("{}", point.table_row("live-tcp"));

    let frames: u64 = run.nodes.iter().map(|nd| nd.transport.msgs_sent).sum();
    let bytes: u64 = run.nodes.iter().map(|nd| nd.transport.bytes_sent).sum();
    let reconnects: u64 = run.nodes.iter().map(|nd| nd.transport.reconnects).sum();

    // Hand-rolled JSON: the workspace is offline (no serde); the schema is
    // flat numbers only.
    let json = format!(
        "{{\n  \"benchmark\": \"iniva-transport 4-replica loopback\",\n  \
         \"n\": {n},\n  \"duration_secs\": {duration_secs},\n  \
         \"offered_rate_per_sec\": {rate},\n  \
         \"committed_throughput_per_sec\": {tp:.1},\n  \
         \"median_latency_ms\": {med:.3},\n  \"mean_latency_ms\": {mean:.3},\n  \
         \"agreed_prefix_blocks\": {agreed},\n  \"cpu_mean_pct\": {cpu:.2},\n  \
         \"frames_sent\": {frames},\n  \"body_bytes_sent\": {bytes},\n  \
         \"reconnects\": {reconnects}\n}}\n",
        rate = cfg.request_rate,
        tp = point.throughput,
        med = point.median_latency_ms,
        mean = point.latency_ms,
        cpu = point.cpu_mean_pct,
    );
    std::fs::write(path, &json).expect("write baseline json");
    println!("\nwrote {path}");
}
