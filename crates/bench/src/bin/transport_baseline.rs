//! Records the live-transport performance baseline: a 4-replica Iniva
//! cluster over loopback TCP, reduced to committed throughput and latency
//! with the shared metric definitions, written to `BENCH_transport.json`.
//! Cells per run: the calibrated `SimScheme` stand-in on **both**
//! transport backends — the threaded fabric (baseline continuity) and the
//! epoll reactor (`reactor_*` keys), plus a 50-replica reactor cell
//! (`reactor_n50_*` keys: 50 replicas would need ~7,500 fabric threads on
//! the threaded backend, one poller thread each on the reactor) — and
//! `BlsScheme` (genuine pairing crypto on the wire — 48-byte compressed
//! G1 aggregates, ~50 ms per verification), so the baseline pins the
//! real-crypto latency/throughput delta.
//!
//! ```sh
//! cargo run --release -p iniva-bench --bin transport_baseline
//! cargo run --release -p iniva-bench --bin transport_baseline -- out.json 8 5
//! #                                      optional: path, n, duration_secs
//! ```
//!
//! The JSON seeds the performance trajectory for future PRs: any change to
//! the transport or the protocol hot path can be compared against the
//! committed numbers. CI's bench-smoke gate runs the comparison directly:
//!
//! ```sh
//! cargo run --release -p iniva-bench --bin transport_baseline -- --check BENCH_transport.json
//! ```
//!
//! which re-measures both backends' SimScheme cells, prints measured vs.
//! baseline for triage, and exits nonzero if committed throughput fell —
//! or median latency rose — by more than 25%, if the reactor backend
//! fell behind the threaded one, or if the n=50 reactor cell failed to
//! commit an agreed prefix. (The BLS cell is recorded but not gated: its
//! absolute numbers are dominated by pairing cost, and a handful of
//! blocks per short run would make a percentage gate noisy.)

use iniva::protocol::InivaConfig;
use iniva_consensus::PerfSummary;
use iniva_crypto::bls::{BlsAggregate, BlsScheme};
use iniva_crypto::multisig::VoteScheme;
use iniva_crypto::sim_scheme::SimScheme;
use iniva_transport::cluster::{ClusterBuilder, ClusterRun};
use iniva_transport::{CpuMode, TransportBackend, TransportOptions};
use std::time::{Duration, Instant};

/// Regression gate: measured throughput below, or median latency above,
/// `1 ± TOLERANCE` of the baseline fails the check.
const TOLERANCE: f64 = 0.25;

/// Bench-smoke gate on the batch-verification cells: the 8-aggregate
/// same-message batch must beat per-aggregate verification by at least
/// this factor (the multi-pairing replaces 16 Miller loops + 8 final
/// exponentiations with 2 + 1; the measured ratio sits far above 2, so
/// the gate has wide noise margin).
const BATCH_MIN_SPEEDUP: f64 = 2.0;

/// Measures the 8-aggregate same-message verification cells: per-item
/// (two Miller loops + final exponentiation per aggregate) vs one
/// random-linear-combination batch. Returns `(individual_ms, batch_ms)`
/// as the best of three runs each (min — the steady-state cost without
/// scheduler noise).
fn bls_batch_cells() -> (f64, f64) {
    let scheme = BlsScheme::new(8, b"bench-batch-cells");
    let msg: &[u8] = b"bls-batch-cell-message";
    let aggs: Vec<BlsAggregate> = (0..8).map(|i| scheme.sign(i, msg)).collect();
    // Warm the hash-to-curve cache: both cells measure steady-state
    // verification, not the first-touch hashing.
    assert!(scheme.verify(msg, &aggs[0]));
    let mut individual_ms = f64::MAX;
    let mut batch_ms = f64::MAX;
    for _ in 0..3 {
        let t = Instant::now();
        for agg in &aggs {
            assert!(scheme.verify(msg, agg));
        }
        individual_ms = individual_ms.min(t.elapsed().as_secs_f64() * 1e3);
        let t = Instant::now();
        let groups: Vec<(&[u8], &[BlsAggregate])> = vec![(msg, aggs.as_slice())];
        assert!(scheme.verify_batch(&groups).all_valid());
        batch_ms = batch_ms.min(t.elapsed().as_secs_f64() * 1e3);
    }
    (individual_ms, batch_ms)
}

/// One SimScheme cluster cell reduced to the numbers the baseline keeps.
struct SimCell {
    point: PerfSummary,
    agreed: u64,
    frames: u64,
    bytes: u64,
    reconnects: u64,
}

/// Runs one SimScheme loopback cluster on the given transport backend.
fn run_sim_cell(cfg: &InivaConfig, secs: u64, backend: TransportBackend, cpu: CpuMode) -> SimCell {
    let run = ClusterBuilder::new(cfg, Duration::from_secs(secs))
        .scheme::<SimScheme>()
        .cpu(cpu)
        .transport(TransportOptions {
            backend,
            ..TransportOptions::default()
        })
        .spawn()
        .expect("cluster starts");
    let agreed = run
        .agreed_prefix_height()
        .expect("committed prefixes agree");
    let cpu_busy: Vec<u64> = run.nodes.iter().map(|nd| nd.runtime.busy).collect();
    let point =
        PerfSummary::from_metrics(&run.nodes[0].replica.chain.metrics, secs as f64, &cpu_busy);
    SimCell {
        point,
        agreed,
        frames: run.nodes.iter().map(|nd| nd.transport.msgs_sent).sum(),
        bytes: run.nodes.iter().map(|nd| nd.transport.bytes_sent).sum(),
        reconnects: run.nodes.iter().map(|nd| nd.transport.reconnects).sum(),
    }
}

/// The 50-replica reactor cell's config: same committee-scaling formula
/// as the main cell, CPU costs scaled down so 50 replicas share the
/// machine, and a modest offered rate (the point is fabric scale, not
/// saturation throughput).
fn n50_config() -> InivaConfig {
    let mut cfg = InivaConfig::for_tests(50, 7);
    cfg.request_rate = 500;
    cfg
}

/// Pulls a numeric field out of the flat baseline JSON (the workspace is
/// offline — no serde — and the schema is flat `"key": number` pairs).
fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let rest = &text[text.find(&needle)? + needle.len()..];
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check_against: Option<String> = args.iter().position(|a| a == "--check").map(|i| {
        args.get(i + 1)
            .expect("--check wants a baseline path")
            .clone()
    });
    let args: Vec<String> = args
        .iter()
        .filter(|a| *a != "--check" && Some(a.as_str()) != check_against.as_deref())
        .cloned()
        .collect();
    let path = args
        .first()
        .map(String::as_str)
        .unwrap_or("BENCH_transport.json");
    let n: usize = args.get(1).map_or(4, |v| v.parse().expect("n"));
    let duration_secs: u64 = args.get(2).map_or(3, |v| v.parse().expect("duration_secs"));

    let mut cfg = InivaConfig::for_tests(n, ((n as f64 - 1.0).sqrt().round() as u32).max(1));
    // Near the n=4 saturation point, so the recorded latency reflects the
    // pipeline under load. Committed throughput is bounded by the offered
    // rate (the proposer-side draft cursor keeps uncommitted ranges from
    // being re-batched and double-counted).
    cfg.request_rate = 2_000;
    // The main cell stays pinned to the threaded fabric so the committed
    // trajectory keys keep measuring the same thing across PRs; the
    // reactor runs as its own cell beside it.
    let threaded = run_sim_cell(
        &cfg,
        duration_secs,
        TransportBackend::Threaded,
        CpuMode::Real,
    );
    let point = &threaded.point;
    println!("{}", PerfSummary::table_header());
    println!("{}", point.table_row("live-tcp[sim,threaded]"));

    let reactor = run_sim_cell(
        &cfg,
        duration_secs,
        TransportBackend::Reactor,
        CpuMode::Real,
    );
    println!("{}", reactor.point.table_row("live-tcp[sim,reactor]"));

    // The scale cell: 50 replicas on one machine is only workable on the
    // reactor backend (one poller thread per node vs ~150 fabric threads
    // per node threaded). Structural gate, not a throughput gate.
    let n50_cfg = n50_config();
    let n50_secs = 4;
    let n50 = run_sim_cell(
        &n50_cfg,
        n50_secs,
        TransportBackend::Reactor,
        CpuMode::Scaled(0.01),
    );
    println!("{}", n50.point.table_row("live-tcp[sim,reactor,n=50]"));

    if let Some(baseline_path) = check_against {
        // Bench-smoke mode: compare against the committed baseline and
        // gate on regressions instead of rewriting the file.
        let text = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("read baseline {baseline_path}: {e}"));
        let base_tp = json_number(&text, "committed_throughput_per_sec")
            .expect("baseline committed_throughput_per_sec");
        let base_med = json_number(&text, "median_latency_ms").expect("baseline median_latency_ms");
        println!();
        println!(
            "bench-smoke vs {baseline_path} (tolerance {:.0}%):",
            TOLERANCE * 100.0
        );
        println!(
            "  committed throughput : measured {:>9.1}/s vs baseline {:>9.1}/s ({:+.1}%)",
            point.throughput,
            base_tp,
            (point.throughput / base_tp - 1.0) * 100.0
        );
        println!(
            "  median latency       : measured {:>9.3} ms vs baseline {:>9.3} ms ({:+.1}%)",
            point.median_latency_ms,
            base_med,
            (point.median_latency_ms / base_med - 1.0) * 100.0
        );
        let mut failed = false;
        if point.throughput < base_tp * (1.0 - TOLERANCE) {
            eprintln!("REGRESSION: committed throughput fell more than 25% below the baseline");
            failed = true;
        }
        if point.median_latency_ms > base_med * (1.0 + TOLERANCE) {
            eprintln!("REGRESSION: median committed latency rose more than 25% above the baseline");
            failed = true;
        }
        // Batch-verification cells: the committed baseline must carry the
        // bls_batch_* keys, and a fresh measurement must keep the batch
        // path at least BATCH_MIN_SPEEDUP× faster than per-aggregate
        // verification on the same 8-aggregate batch.
        let base_batch = json_number(&text, "bls_batch_verify8_ms");
        let base_individual = json_number(&text, "bls_batch_individual8_ms");
        if base_batch.is_none() || base_individual.is_none() {
            eprintln!("REGRESSION: baseline is missing the bls_batch_* verification cells");
            failed = true;
        }
        let (individual_ms, batch_ms) = bls_batch_cells();
        println!(
            "  bls batch verify (8) : measured {batch_ms:>9.3} ms vs individual {individual_ms:>9.3} ms ({:.1}x)",
            individual_ms / batch_ms
        );
        if batch_ms * BATCH_MIN_SPEEDUP > individual_ms {
            eprintln!(
                "REGRESSION: batch verification speedup fell below {BATCH_MIN_SPEEDUP}x \
                 ({individual_ms:.3} ms individual vs {batch_ms:.3} ms batched)"
            );
            failed = true;
        }
        // Reactor cells: the committed baseline must carry the reactor_*
        // keys, the reactor backend must hold the baseline committed
        // throughput, and it must not fall behind the threaded fabric
        // measured in the same process.
        match json_number(&text, "reactor_committed_throughput_per_sec") {
            None => {
                eprintln!("REGRESSION: baseline is missing the reactor_* transport cells");
                failed = true;
            }
            Some(base_reactor_tp) => {
                println!(
                    "  reactor throughput   : measured {:>9.1}/s vs baseline {:>9.1}/s ({:+.1}%)",
                    reactor.point.throughput,
                    base_reactor_tp,
                    (reactor.point.throughput / base_reactor_tp - 1.0) * 100.0
                );
                if reactor.point.throughput < base_reactor_tp * (1.0 - TOLERANCE) {
                    eprintln!(
                        "REGRESSION: reactor committed throughput fell more than 25% below \
                         the baseline"
                    );
                    failed = true;
                }
            }
        }
        if reactor.point.throughput < point.throughput * (1.0 - TOLERANCE) {
            eprintln!(
                "REGRESSION: reactor backend fell more than 25% behind the threaded \
                 fabric ({:.1}/s vs {:.1}/s)",
                reactor.point.throughput, point.throughput
            );
            failed = true;
        }
        println!(
            "  reactor n=50 cell    : {} agreed blocks, {} reconnects",
            n50.agreed, n50.reconnects
        );
        if n50.agreed < 1 {
            eprintln!("REGRESSION: n=50 reactor cell failed to commit an agreed prefix");
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!("  within tolerance");
        return;
    }

    let agreed = threaded.agreed;
    let frames = threaded.frames;
    let bytes = threaded.bytes;
    let reconnects = threaded.reconnects;

    // The BLS cell: the same cluster harness monomorphized over real
    // pairing crypto. Offered load sits near the *BLS* saturation point
    // (~50 ms per aggregate verification caps commit cadence at a few
    // blocks per second), mirroring the SimScheme cell's near-saturation
    // stance so the two latency numbers are comparable in kind.
    let mut bls_cfg = cfg.clone();
    bls_cfg.request_rate = 200;
    bls_cfg.tune_for_real_crypto();
    // 3× the sim window: at a few committed blocks per second of real
    // pairing, a short run would record single-digit samples.
    let bls_secs = duration_secs * 3;
    let bls_run: ClusterRun<BlsScheme> =
        ClusterBuilder::new(&bls_cfg, Duration::from_secs(bls_secs))
            .scheme::<BlsScheme>()
            .spawn()
            .expect("BLS cluster starts");
    let bls_agreed = bls_run
        .agreed_prefix_height()
        .expect("BLS committed prefixes agree");
    let bls_busy: Vec<u64> = bls_run.nodes.iter().map(|nd| nd.runtime.busy).collect();
    let bls_point = PerfSummary::from_metrics(
        &bls_run.nodes[0].replica.chain.metrics,
        bls_secs as f64,
        &bls_busy,
    );
    println!("{}", bls_point.table_row("live-tcp[bls]"));
    let bls_frames: u64 = bls_run.nodes.iter().map(|nd| nd.transport.msgs_sent).sum();
    let bls_bytes: u64 = bls_run.nodes.iter().map(|nd| nd.transport.bytes_sent).sum();

    // The batch-verification microcells: 8 same-message aggregates
    // verified per-item vs in one multi-pairing (the hot shape at the
    // tree root each view). These are the `bls_batch_*` keys the
    // bench-smoke gate checks.
    let (bls_individual8_ms, bls_batch8_ms) = bls_batch_cells();
    println!(
        "bls batch verify (8 aggs): {bls_batch8_ms:.3} ms batched vs {bls_individual8_ms:.3} ms individually ({:.1}x)",
        bls_individual8_ms / bls_batch8_ms
    );

    // The pre-retune reference cell: the same BLS cluster under the old
    // hand-guessed widening (Δ = 300 ms, 2 s view timeout) that
    // `tune_for_real_crypto` used before the timer-lag/verify histograms
    // existed to size it. Measured every run so the tuned cell above
    // stays an apples-to-apples before/after pair — the gap between the
    // two *is* the win from measuring instead of guessing.
    let mut widened_cfg = bls_cfg.clone();
    widened_cfg.delta = 300 * iniva_net::MILLIS;
    widened_cfg.view_timeout = 2 * iniva_net::SECS;
    let widened_run: ClusterRun<BlsScheme> =
        ClusterBuilder::new(&widened_cfg, Duration::from_secs(bls_secs))
            .scheme::<BlsScheme>()
            .spawn()
            .expect("widened BLS cluster starts");
    let widened_busy: Vec<u64> = widened_run.nodes.iter().map(|nd| nd.runtime.busy).collect();
    let widened_point = PerfSummary::from_metrics(
        &widened_run.nodes[0].replica.chain.metrics,
        bls_secs as f64,
        &widened_busy,
    );
    println!("{}", widened_point.table_row("live-tcp[bls,Δ=300ms]"));

    // Hand-rolled JSON: the workspace is offline (no serde); the schema is
    // flat numbers only.
    let json = format!(
        "{{\n  \"benchmark\": \"iniva-transport 4-replica loopback\",\n  \
         \"n\": {n},\n  \"duration_secs\": {duration_secs},\n  \
         \"offered_rate_per_sec\": {rate},\n  \
         \"committed_throughput_per_sec\": {tp:.1},\n  \
         \"median_latency_ms\": {med:.3},\n  \"mean_latency_ms\": {mean:.3},\n  \
         \"agreed_prefix_blocks\": {agreed},\n  \"cpu_mean_pct\": {cpu:.2},\n  \
         \"frames_sent\": {frames},\n  \"body_bytes_sent\": {bytes},\n  \
         \"reconnects\": {reconnects},\n  \
         \"reactor_committed_throughput_per_sec\": {reactor_tp:.1},\n  \
         \"reactor_median_latency_ms\": {reactor_med:.3},\n  \
         \"reactor_agreed_prefix_blocks\": {reactor_agreed},\n  \
         \"reactor_reconnects\": {reactor_reconnects},\n  \
         \"reactor_n50_n\": 50,\n  \
         \"reactor_n50_duration_secs\": {n50_secs},\n  \
         \"reactor_n50_committed_throughput_per_sec\": {n50_tp:.1},\n  \
         \"reactor_n50_median_latency_ms\": {n50_med:.3},\n  \
         \"reactor_n50_agreed_prefix_blocks\": {n50_agreed},\n  \
         \"reactor_n50_reconnects\": {n50_reconnects},\n  \
         \"bls_duration_secs\": {bls_secs},\n  \
         \"bls_offered_rate_per_sec\": {bls_rate},\n  \
         \"bls_committed_throughput_per_sec\": {bls_tp:.1},\n  \
         \"bls_median_latency_ms\": {bls_med:.3},\n  \
         \"bls_mean_latency_ms\": {bls_mean:.3},\n  \
         \"bls_agreed_prefix_blocks\": {bls_agreed},\n  \
         \"bls_frames_sent\": {bls_frames},\n  \
         \"bls_body_bytes_sent\": {bls_bytes},\n  \
         \"bls_batch_individual8_ms\": {bls_individual8_ms:.3},\n  \
         \"bls_batch_verify8_ms\": {bls_batch8_ms:.3},\n  \
         \"bls_batch_speedup_x\": {speedup:.2},\n  \
         \"bls_widened_delta_ms\": 300,\n  \
         \"bls_widened_committed_throughput_per_sec\": {widened_tp:.1},\n  \
         \"bls_widened_median_latency_ms\": {widened_med:.3}\n}}\n",
        speedup = bls_individual8_ms / bls_batch8_ms,
        reactor_tp = reactor.point.throughput,
        reactor_med = reactor.point.median_latency_ms,
        reactor_agreed = reactor.agreed,
        reactor_reconnects = reactor.reconnects,
        n50_tp = n50.point.throughput,
        n50_med = n50.point.median_latency_ms,
        n50_agreed = n50.agreed,
        n50_reconnects = n50.reconnects,
        rate = cfg.request_rate,
        tp = point.throughput,
        med = point.median_latency_ms,
        mean = point.latency_ms,
        cpu = point.cpu_mean_pct,
        bls_rate = bls_cfg.request_rate,
        bls_tp = bls_point.throughput,
        bls_med = bls_point.median_latency_ms,
        bls_mean = bls_point.latency_ms,
        widened_tp = widened_point.throughput,
        widened_med = widened_point.median_latency_ms,
    );
    std::fs::write(path, &json).expect("write baseline json");
    println!("\nwrote {path}");
}
