//! Records the live-transport performance baseline: a 4-replica Iniva
//! cluster over loopback TCP, reduced to committed throughput and latency
//! with the shared metric definitions, written to `BENCH_transport.json`.
//! Two cells per run: the calibrated `SimScheme` stand-in (modeled crypto
//! costs spent as real time) and `BlsScheme` (genuine pairing crypto on
//! the wire — 48-byte compressed G1 aggregates, ~50 ms per verification),
//! so the baseline pins the real-crypto latency/throughput delta.
//!
//! ```sh
//! cargo run --release -p iniva-bench --bin transport_baseline
//! cargo run --release -p iniva-bench --bin transport_baseline -- out.json 8 5
//! #                                      optional: path, n, duration_secs
//! ```
//!
//! The JSON seeds the performance trajectory for future PRs: any change to
//! the transport or the protocol hot path can be compared against the
//! committed numbers. CI's bench-smoke gate runs the comparison directly:
//!
//! ```sh
//! cargo run --release -p iniva-bench --bin transport_baseline -- --check BENCH_transport.json
//! ```
//!
//! which re-measures the SimScheme configuration, prints measured vs.
//! baseline for triage, and exits nonzero if committed throughput fell —
//! or median latency rose — by more than 25%. (The BLS cell is recorded
//! but not gated: its absolute numbers are dominated by pairing cost, and
//! a handful of blocks per short run would make a percentage gate noisy.)

use iniva::protocol::InivaConfig;
use iniva_consensus::PerfSummary;
use iniva_crypto::bls::BlsScheme;
use iniva_crypto::sim_scheme::SimScheme;
use iniva_transport::cluster::{run_local_iniva_cluster, ClusterRun};
use iniva_transport::CpuMode;
use std::time::Duration;

/// Regression gate: measured throughput below, or median latency above,
/// `1 ± TOLERANCE` of the baseline fails the check.
const TOLERANCE: f64 = 0.25;

/// Pulls a numeric field out of the flat baseline JSON (the workspace is
/// offline — no serde — and the schema is flat `"key": number` pairs).
fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let rest = &text[text.find(&needle)? + needle.len()..];
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check_against: Option<String> = args.iter().position(|a| a == "--check").map(|i| {
        args.get(i + 1)
            .expect("--check wants a baseline path")
            .clone()
    });
    let args: Vec<String> = args
        .iter()
        .filter(|a| *a != "--check" && Some(a.as_str()) != check_against.as_deref())
        .cloned()
        .collect();
    let path = args
        .first()
        .map(String::as_str)
        .unwrap_or("BENCH_transport.json");
    let n: usize = args.get(1).map_or(4, |v| v.parse().expect("n"));
    let duration_secs: u64 = args.get(2).map_or(3, |v| v.parse().expect("duration_secs"));

    let mut cfg = InivaConfig::for_tests(n, ((n as f64 - 1.0).sqrt().round() as u32).max(1));
    // Near the n=4 saturation point, so the recorded latency reflects the
    // pipeline under load. Committed throughput is bounded by the offered
    // rate (the proposer-side draft cursor keeps uncommitted ranges from
    // being re-batched and double-counted).
    cfg.request_rate = 2_000;
    let run = run_local_iniva_cluster::<SimScheme>(
        &cfg,
        Duration::from_secs(duration_secs),
        CpuMode::Real,
    )
    .expect("cluster starts");
    let agreed = run
        .agreed_prefix_height()
        .expect("committed prefixes agree");

    let cpu_busy: Vec<u64> = run.nodes.iter().map(|nd| nd.runtime.busy).collect();
    let metrics = &run.nodes[0].replica.chain.metrics;
    let point = PerfSummary::from_metrics(metrics, duration_secs as f64, &cpu_busy);
    println!("{}", PerfSummary::table_header());
    println!("{}", point.table_row("live-tcp[sim]"));

    if let Some(baseline_path) = check_against {
        // Bench-smoke mode: compare against the committed baseline and
        // gate on regressions instead of rewriting the file.
        let text = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("read baseline {baseline_path}: {e}"));
        let base_tp = json_number(&text, "committed_throughput_per_sec")
            .expect("baseline committed_throughput_per_sec");
        let base_med = json_number(&text, "median_latency_ms").expect("baseline median_latency_ms");
        println!();
        println!(
            "bench-smoke vs {baseline_path} (tolerance {:.0}%):",
            TOLERANCE * 100.0
        );
        println!(
            "  committed throughput : measured {:>9.1}/s vs baseline {:>9.1}/s ({:+.1}%)",
            point.throughput,
            base_tp,
            (point.throughput / base_tp - 1.0) * 100.0
        );
        println!(
            "  median latency       : measured {:>9.3} ms vs baseline {:>9.3} ms ({:+.1}%)",
            point.median_latency_ms,
            base_med,
            (point.median_latency_ms / base_med - 1.0) * 100.0
        );
        let mut failed = false;
        if point.throughput < base_tp * (1.0 - TOLERANCE) {
            eprintln!("REGRESSION: committed throughput fell more than 25% below the baseline");
            failed = true;
        }
        if point.median_latency_ms > base_med * (1.0 + TOLERANCE) {
            eprintln!("REGRESSION: median committed latency rose more than 25% above the baseline");
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!("  within tolerance");
        return;
    }

    let frames: u64 = run.nodes.iter().map(|nd| nd.transport.msgs_sent).sum();
    let bytes: u64 = run.nodes.iter().map(|nd| nd.transport.bytes_sent).sum();
    let reconnects: u64 = run.nodes.iter().map(|nd| nd.transport.reconnects).sum();

    // The BLS cell: the same cluster harness monomorphized over real
    // pairing crypto. Offered load sits near the *BLS* saturation point
    // (~50 ms per aggregate verification caps commit cadence at a few
    // blocks per second), mirroring the SimScheme cell's near-saturation
    // stance so the two latency numbers are comparable in kind.
    let mut bls_cfg = cfg.clone();
    bls_cfg.request_rate = 200;
    bls_cfg.tune_for_real_crypto();
    // 3× the sim window: at a few committed blocks per second of real
    // pairing, a short run would record single-digit samples.
    let bls_secs = duration_secs * 3;
    let bls_run: ClusterRun<BlsScheme> =
        run_local_iniva_cluster(&bls_cfg, Duration::from_secs(bls_secs), CpuMode::Real)
            .expect("BLS cluster starts");
    let bls_agreed = bls_run
        .agreed_prefix_height()
        .expect("BLS committed prefixes agree");
    let bls_busy: Vec<u64> = bls_run.nodes.iter().map(|nd| nd.runtime.busy).collect();
    let bls_point = PerfSummary::from_metrics(
        &bls_run.nodes[0].replica.chain.metrics,
        bls_secs as f64,
        &bls_busy,
    );
    println!("{}", bls_point.table_row("live-tcp[bls]"));
    let bls_frames: u64 = bls_run.nodes.iter().map(|nd| nd.transport.msgs_sent).sum();
    let bls_bytes: u64 = bls_run.nodes.iter().map(|nd| nd.transport.bytes_sent).sum();

    // Hand-rolled JSON: the workspace is offline (no serde); the schema is
    // flat numbers only.
    let json = format!(
        "{{\n  \"benchmark\": \"iniva-transport 4-replica loopback\",\n  \
         \"n\": {n},\n  \"duration_secs\": {duration_secs},\n  \
         \"offered_rate_per_sec\": {rate},\n  \
         \"committed_throughput_per_sec\": {tp:.1},\n  \
         \"median_latency_ms\": {med:.3},\n  \"mean_latency_ms\": {mean:.3},\n  \
         \"agreed_prefix_blocks\": {agreed},\n  \"cpu_mean_pct\": {cpu:.2},\n  \
         \"frames_sent\": {frames},\n  \"body_bytes_sent\": {bytes},\n  \
         \"reconnects\": {reconnects},\n  \
         \"bls_duration_secs\": {bls_secs},\n  \
         \"bls_offered_rate_per_sec\": {bls_rate},\n  \
         \"bls_committed_throughput_per_sec\": {bls_tp:.1},\n  \
         \"bls_median_latency_ms\": {bls_med:.3},\n  \
         \"bls_mean_latency_ms\": {bls_mean:.3},\n  \
         \"bls_agreed_prefix_blocks\": {bls_agreed},\n  \
         \"bls_frames_sent\": {bls_frames},\n  \
         \"bls_body_bytes_sent\": {bls_bytes}\n}}\n",
        rate = cfg.request_rate,
        tp = point.throughput,
        med = point.median_latency_ms,
        mean = point.latency_ms,
        cpu = point.cpu_mean_pct,
        bls_rate = bls_cfg.request_rate,
        bls_tp = bls_point.throughput,
        bls_med = bls_point.median_latency_ms,
        bls_mean = bls_point.latency_ms,
    );
    std::fs::write(path, &json).expect("write baseline json");
    println!("\nwrote {path}");
}
