//! Merges per-node consensus trace dumps (`trace-<id>.jsonl`, written by
//! `live_cluster --metrics-dir`, the observed cluster harnesses, or
//! `resilience_live --trace`) into one cross-replica per-view timeline
//! and reports where the time went: who led each view, when each replica
//! entered, and how the view's span splits into network, verify and
//! timer wait.
//!
//! ```sh
//! cargo run --release -p iniva-bench --bin view_timeline -- <dump-dir>
//! cargo run --release -p iniva-bench --bin view_timeline -- <dump-dir> --views
//! cargo run --release -p iniva-bench --bin view_timeline -- <dump-dir> --check
//! ```
//!
//! `--views` prints the per-view table on top of the summary. `--check`
//! is the CI smoke gate: exit 0 only when every dump parses, at least
//! one view committed, and every replica that was alive near the end of
//! the run (events in the last 20% of the traced span) observed at
//! least one commit — a revived node that caught up via state transfer
//! passes, a stuck one fails. `--max-failed-pct <pct>` tightens the gate
//! with a ceiling on the failed-view share (the resilience regression
//! gate: the Carousel fix holds the 4-crash cell under 25%).

use iniva_obs::timeline::parse_dump;
use iniva_obs::trace::EventKind;
use iniva_obs::{NodeDump, Timeline, ViewOutcome};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Collects `trace-*.jsonl` files under `dir`, ascending by name.
fn trace_files(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("trace-") && n.ends_with(".jsonl"))
        })
        .collect();
    files.sort();
    Ok(files)
}

fn outcome_label(o: ViewOutcome) -> &'static str {
    match o {
        ViewOutcome::Advanced => "advanced",
        ViewOutcome::FailedNoProposal => "FAILED no-proposal",
        ViewOutcome::FailedNoQuorum => "FAILED no-quorum",
        ViewOutcome::FailedAfterQc => "FAILED after-QC",
        ViewOutcome::Unknown => "(window end)",
    }
}

fn print_views(tl: &Timeline) {
    println!(
        "{:>6} {:>7} {:>10} {:>9} {:>9} {:>9} {:>8} {:>8}  outcome",
        "view", "leader", "span ms", "net ms", "verify", "timer", "entered", "commits"
    );
    for r in &tl.views {
        let b = r.budget();
        let ms = |ns: u64| ns as f64 / 1e6;
        println!(
            "{:>6} {:>7} {:>10.1} {:>9.1} {:>9.1} {:>9.1} {:>8} {:>8}  {}",
            r.view,
            r.leader.map_or("?".into(), |l| l.to_string()),
            ms(b.span_ns),
            ms(b.network_ns),
            ms(b.verify_ns),
            ms(b.timer_ns),
            r.entered.len(),
            r.commits.len(),
            outcome_label(r.outcome),
        );
    }
}

/// The CI gate: every parsed node that was still producing events in
/// the last `tail_fraction` of the traced span must have observed at
/// least one commit.
fn check(dumps: &[NodeDump], tl: &Timeline, max_failed_pct: Option<f64>) -> Result<(), String> {
    if tl.views.iter().all(|r| r.commits.is_empty()) {
        return Err("no committed view anywhere in the traces".into());
    }
    if let Some(ceiling) = max_failed_pct {
        let s = tl.summary();
        if s.views_total > 0 {
            let failed_pct = 100.0 * s.views_failed as f64 / s.views_total as f64;
            if failed_pct > ceiling {
                return Err(format!(
                    "failed-view share {failed_pct:.1}% ({}/{}) exceeds the {ceiling:.1}% ceiling",
                    s.views_failed, s.views_total
                ));
            }
        }
    }
    let span_end = dumps
        .iter()
        .flat_map(|d| d.events.iter().map(|e| e.at))
        .max()
        .unwrap_or(0);
    let tail_start = span_end.saturating_sub(span_end / 5);
    for d in dumps {
        let alive_at_end = d.events.iter().any(|e| e.at >= tail_start);
        if !alive_at_end {
            continue; // crashed and never revived: exempt
        }
        let committed = d
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::Committed { .. }));
        if !committed {
            return Err(format!(
                "replica {} was alive at the end of the run but never observed a commit",
                d.node
            ));
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dir = args
        .iter()
        .enumerate()
        .find(|(i, a)| !a.starts_with("--") && (*i == 0 || args[i - 1] != "--max-failed-pct"))
        .map(|(_, a)| a.as_str())
        .unwrap_or(".");
    let want_views = args.iter().any(|a| a == "--views");
    let want_check = args.iter().any(|a| a == "--check");
    let max_failed_pct = args
        .iter()
        .position(|a| a == "--max-failed-pct")
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            v.parse::<f64>()
                .unwrap_or_else(|_| panic!("--max-failed-pct wants a number, got '{v}'"))
        });

    let files = match trace_files(Path::new(dir)) {
        Ok(f) if !f.is_empty() => f,
        Ok(_) => {
            eprintln!("no trace-*.jsonl files in {dir}");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("cannot read {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut dumps = Vec::new();
    for f in &files {
        let text = match std::fs::read_to_string(f) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {}: {e}", f.display());
                return ExitCode::FAILURE;
            }
        };
        match parse_dump(&text) {
            Ok(d) => dumps.push(d),
            Err(e) => {
                eprintln!("{}: {e}", f.display());
                return ExitCode::FAILURE;
            }
        }
    }

    let tl = Timeline::merge(&dumps);
    println!(
        "merged {} dumps from {dir} ({} views observed)",
        dumps.len(),
        tl.views.len()
    );
    for (node, off) in &tl.offsets_ns {
        if *off != 0 {
            println!(
                "  node {node}: clock offset {:+.3} ms applied",
                *off as f64 / 1e6
            );
        }
    }
    if want_views {
        print_views(&tl);
        println!();
    }
    print!("{}", tl.summary().render());

    if want_check {
        match check(&dumps, &tl, max_failed_pct) {
            Ok(()) => println!("check: OK"),
            Err(e) => {
                eprintln!("check: FAILED — {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
