//! Reruns the Fig. 4 resilience sweep cells — 21 replicas, 0–4 crash
//! faults, round-robin vs Carousel leader policies — over **loopback TCP
//! sockets**, replaying the *same* seeded [`FaultPlan`] the simulator
//! replays, and writes the side-by-side numbers (plus their deltas) to
//! `BENCH_resilience_live.json`.
//!
//! ```sh
//! cargo run --release -p iniva-bench --bin resilience_live
//! cargo run --release -p iniva-bench --bin resilience_live -- out.json 21 3 0.05
//! #                     optional: path, n, duration_secs, cpu_scale
//! ```
//!
//! `cpu_scale` multiplies the calibrated BLS cost model **in both
//! backends** (the cost model lives in the shared replica config), so the
//! comparison stays apples-to-apples on hosts with fewer cores than the
//! paper's testbed: the simulator charges each of the n replicas its own
//! virtual CPU, while the live cluster's n threads share this machine's
//! real ones.

use iniva_net::faults::FaultPlan;
use iniva_sim::resilience::{self, ResiliencePoint, Variant};
use iniva_transport::cluster::run_local_iniva_cluster_with_plan;
use iniva_transport::CpuMode;
use std::fmt::Write as _;
use std::time::Duration;

const VARIANTS: [Variant; 3] = [Variant::Delta5, Variant::Delta10, Variant::Carousel5];
const SEED: u64 = 42;

fn point_json(p: &ResiliencePoint) -> String {
    format!(
        "{{\"throughput_per_sec\": {:.1}, \"latency_ms\": {:.3}, \
         \"failed_views_pct\": {:.2}, \"qc_size\": {:.2}}}",
        p.throughput, p.latency_ms, p.failed_views_pct, p.qc_size
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let path = args
        .first()
        .map(String::as_str)
        .unwrap_or("BENCH_resilience_live.json");
    let n: usize = args.get(1).map_or(21, |v| v.parse().expect("n"));
    let duration_secs: u64 = args.get(2).map_or(3, |v| v.parse().expect("duration_secs"));
    let cpu_scale: f64 = args.get(3).map_or(0.05, |v| v.parse().expect("cpu_scale"));

    let mut cells = Vec::new();
    for variant in VARIANTS {
        // The observer is the (faults+1)-th shuffled member, so a
        // committee of n supports at most n-1 injected crashes.
        for faults in (0..=4usize).take_while(|&f| f < n) {
            let mut cfg = resilience::variant_config(variant);
            if n != resilience::FIG4_N {
                cfg.n = n;
                cfg.internal = ((n as f64 - 1.0).sqrt().round() as u32).max(1);
            }
            cfg.cost = cfg.cost.scaled(cpu_scale);
            let seed = SEED + faults as u64;
            let plan = FaultPlan::random_crashes(n, faults, 0, seed);
            let observer = FaultPlan::shuffled_members(n, seed)[faults];

            let sim = resilience::run_sim_plan(&cfg, &plan, faults, observer, duration_secs, seed);

            let run = run_local_iniva_cluster_with_plan::<iniva_crypto::sim_scheme::SimScheme>(
                &cfg,
                Duration::from_secs(duration_secs),
                CpuMode::Real,
                &plan,
            )
            .expect("cluster starts");
            let live = resilience::measure(
                &run.nodes[observer as usize].replica.chain.metrics,
                faults,
                duration_secs,
            );
            let policy = match variant {
                Variant::Carousel5 => "carousel",
                _ => "round-robin",
            };
            let tp_delta = if sim.throughput > 0.0 {
                (live.throughput - sim.throughput) / sim.throughput * 100.0
            } else {
                0.0
            };
            println!(
                "{:<18} faults={faults}  live {:>8.1}/s  sim {:>8.1}/s  ({tp_delta:+.1}%)  \
                 qc {:.1}/{:.1}  failed views {:.1}%/{:.1}%",
                variant.label(),
                live.throughput,
                sim.throughput,
                live.qc_size,
                sim.qc_size,
                live.failed_views_pct,
                sim.failed_views_pct,
            );
            cells.push(format!(
                "    {{\"variant\": \"{}\", \"policy\": \"{policy}\", \"faults\": {faults},\n     \
                 \"live\": {},\n     \"sim\": {},\n     \
                 \"throughput_delta_pct\": {tp_delta:.1}}}",
                variant.label(),
                point_json(&live),
                point_json(&sim),
            ));
        }
    }

    let mut json = String::new();
    let _ = writeln!(
        json,
        "{{\n  \"benchmark\": \"iniva resilience sweep (Fig. 4): live TCP vs simulator\",\n  \
         \"n\": {n},\n  \"duration_secs\": {duration_secs},\n  \
         \"cpu_scale\": {cpu_scale},\n  \"seed\": {SEED},\n  \"cells\": ["
    );
    let _ = writeln!(json, "{}", cells.join(",\n"));
    let _ = writeln!(json, "  ]\n}}");
    std::fs::write(path, &json).expect("write sweep json");
    println!("\nwrote {path}");
}
