//! Reruns the Fig. 4 resilience sweep cells — 21 replicas, 0–4 crash
//! faults, round-robin vs Carousel leader policies — over **loopback TCP
//! sockets**, replaying the *same* seeded [`FaultPlan`] the simulator
//! replays, and writes the side-by-side numbers (plus their deltas) to
//! `BENCH_resilience_live.json`.
//!
//! ```sh
//! cargo run --release -p iniva-bench --bin resilience_live
//! cargo run --release -p iniva-bench --bin resilience_live -- out.json 21 3 0.05
//! #                     optional: path, n, duration_secs, cpu_scale
//! ```
//!
//! `--trace <dir>` runs every live cell with consensus event tracing:
//! each cell dumps per-node `trace-<id>.jsonl` + `metrics-<id>.json`
//! under `<dir>/<variant>-f<faults>/`, the merged per-view budget
//! (failed-view causes; timer vs network vs verify split) is printed and
//! recorded in the output JSON next to the bench numbers, and the dumps
//! stay on disk for `view_timeline`. `--only <variant>:<faults>` (e.g.
//! `--only carousel5:4`) restricts the sweep to one cell — the Carousel
//! collapse diagnosis loop:
//!
//! ```sh
//! cargo run --release -p iniva-bench --bin resilience_live -- \
//!     --trace /tmp/iniva-trace --only carousel5:4 carousel4.json
//! cargo run --release -p iniva-bench --bin view_timeline -- \
//!     /tmp/iniva-trace/carousel5-f4 --views
//! ```
//!
//! `cpu_scale` multiplies the calibrated BLS cost model **in both
//! backends** (the cost model lives in the shared replica config), so the
//! comparison stays apples-to-apples on hosts with fewer cores than the
//! paper's testbed: the simulator charges each of the n replicas its own
//! virtual CPU, while the live cluster's n threads share this machine's
//! real ones.

use iniva_net::faults::FaultPlan;
use iniva_obs::timeline::parse_dump;
use iniva_obs::{Timeline, TimelineSummary};
use iniva_sim::resilience::{self, ResiliencePoint, Variant};
use iniva_transport::cluster::{ClusterBuilder, ObsOptions};
use std::fmt::Write as _;
use std::path::Path;
use std::time::Duration;

const VARIANTS: [Variant; 3] = [Variant::Delta5, Variant::Delta10, Variant::Carousel5];
const SEED: u64 = 42;

fn point_json(p: &ResiliencePoint) -> String {
    format!(
        "{{\"throughput_per_sec\": {:.1}, \"latency_ms\": {:.3}, \
         \"failed_views_pct\": {:.2}, \"qc_size\": {:.2}}}",
        p.throughput, p.latency_ms, p.failed_views_pct, p.qc_size
    )
}

/// Stable directory/CLI key of a variant (the labels carry δ glyphs).
fn variant_key(v: Variant) -> &'static str {
    match v {
        Variant::Delta5 => "delta5",
        Variant::Delta10 => "delta10",
        Variant::Carousel5 => "carousel5",
    }
}

/// Merges the per-node dumps a traced cell just wrote and returns the
/// run-level accounting.
fn merge_cell_dumps(dir: &Path) -> Result<TimelineSummary, String> {
    let mut dumps = Vec::new();
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| format!("read {}: {e}", dir.display()))?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("trace-") && n.ends_with(".jsonl"))
        })
        .collect();
    entries.sort();
    for path in entries {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        dumps.push(parse_dump(&text).map_err(|e| format!("{}: {e}", path.display()))?);
    }
    if dumps.is_empty() {
        return Err(format!("no trace dumps in {}", dir.display()));
    }
    Ok(Timeline::merge(&dumps).summary())
}

/// The per-view breakdown recorded next to a traced cell's bench numbers.
fn trace_json(s: &TimelineSummary) -> String {
    let ms = |ns: u64| ns as f64 / 1e6;
    format!(
        "{{\"views_total\": {}, \"views_failed\": {}, \
         \"failed_no_proposal\": {}, \"failed_no_quorum\": {}, \"failed_after_qc\": {}, \
         \"failed_budget_ms\": {{\"span\": {:.1}, \"timer\": {:.1}, \"network\": {:.1}, \"verify\": {:.1}}}, \
         \"advanced_budget_ms\": {{\"span\": {:.1}, \"timer\": {:.1}, \"network\": {:.1}, \"verify\": {:.1}}}}}",
        s.views_total,
        s.views_failed,
        s.failed_no_proposal,
        s.failed_no_quorum,
        s.failed_after_qc,
        ms(s.failed_budget.span_ns),
        ms(s.failed_budget.timer_ns),
        ms(s.failed_budget.network_ns),
        ms(s.failed_budget.verify_ns),
        ms(s.advanced_budget.span_ns),
        ms(s.advanced_budget.timer_ns),
        ms(s.advanced_budget.network_ns),
        ms(s.advanced_budget.verify_ns),
    )
}

fn take_flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| -> Option<String> { take_flag(&raw, name) };
    let trace_dir = flag("--trace");
    let only = flag("--only").map(|v| {
        let (key, f) = v
            .split_once(':')
            .unwrap_or_else(|| panic!("--only wants <variant>:<faults>, got '{v}'"));
        let faults: usize = f.parse().unwrap_or_else(|_| panic!("--only faults: '{f}'"));
        (key.to_string(), faults)
    });
    let args: Vec<String> = {
        let mut skip = std::collections::HashSet::new();
        for name in ["--trace", "--only"] {
            if let Some(i) = raw.iter().position(|a| a == name) {
                skip.insert(i);
                skip.insert(i + 1);
            }
        }
        raw.iter()
            .enumerate()
            .filter(|&(i, _)| !skip.contains(&i))
            .map(|(_, a)| a.clone())
            .collect()
    };
    let path = args
        .first()
        .map(String::as_str)
        .unwrap_or("BENCH_resilience_live.json");
    let n: usize = args.get(1).map_or(21, |v| v.parse().expect("n"));
    let duration_secs: u64 = args.get(2).map_or(3, |v| v.parse().expect("duration_secs"));
    let cpu_scale: f64 = args.get(3).map_or(0.05, |v| v.parse().expect("cpu_scale"));

    let mut cells = Vec::new();
    for variant in VARIANTS {
        // The observer is the (faults+1)-th shuffled member, so a
        // committee of n supports at most n-1 injected crashes.
        for faults in (0..=4usize).take_while(|&f| f < n) {
            if let Some((key, f)) = &only {
                if variant_key(variant) != key || faults != *f {
                    continue;
                }
            }
            let mut cfg = resilience::variant_config(variant);
            if n != resilience::FIG4_N {
                cfg.n = n;
                cfg.internal = ((n as f64 - 1.0).sqrt().round() as u32).max(1);
            }
            cfg.cost = cfg.cost.scaled(cpu_scale);
            let seed = SEED + faults as u64;
            let plan = FaultPlan::random_crashes(n, faults, 0, seed);
            let observer = FaultPlan::shuffled_members(n, seed)[faults];

            let sim = resilience::run_sim_plan(&cfg, &plan, faults, observer, duration_secs, seed);

            let cell_dir = trace_dir
                .as_ref()
                .map(|d| Path::new(d).join(format!("{}-f{faults}", variant_key(variant))));
            let mut builder = ClusterBuilder::new(&cfg, Duration::from_secs(duration_secs))
                .scheme::<iniva_crypto::sim_scheme::SimScheme>()
                .faults(&plan);
            if let Some(dir) = &cell_dir {
                builder = builder.observe(ObsOptions::new(dir));
            }
            let run = builder.spawn().expect("cluster starts");
            let live = resilience::measure(
                &run.nodes[observer as usize].replica.chain.metrics,
                faults,
                duration_secs,
            );
            let policy = match variant {
                Variant::Carousel5 => "carousel",
                _ => "round-robin",
            };
            let tp_delta = if sim.throughput > 0.0 {
                (live.throughput - sim.throughput) / sim.throughput * 100.0
            } else {
                0.0
            };
            println!(
                "{:<18} faults={faults}  live {:>8.1}/s  sim {:>8.1}/s  ({tp_delta:+.1}%)  \
                 qc {:.1}/{:.1}  failed views {:.1}%/{:.1}%",
                variant.label(),
                live.throughput,
                sim.throughput,
                live.qc_size,
                sim.qc_size,
                live.failed_views_pct,
                sim.failed_views_pct,
            );
            let trace_field = cell_dir.as_ref().map(|dir| {
                let summary = merge_cell_dumps(dir).expect("merge cell trace dumps");
                println!(
                    "  trace [{}]:\n{}",
                    dir.display(),
                    summary
                        .render()
                        .lines()
                        .map(|l| format!("    {l}"))
                        .collect::<Vec<_>>()
                        .join("\n")
                );
                trace_json(&summary)
            });
            let trace_json_field = trace_field
                .map(|t| format!(",\n     \"live_trace\": {t}"))
                .unwrap_or_default();
            cells.push(format!(
                "    {{\"variant\": \"{}\", \"policy\": \"{policy}\", \"faults\": {faults},\n     \
                 \"live\": {},\n     \"sim\": {},\n     \
                 \"throughput_delta_pct\": {tp_delta:.1}{trace_json_field}}}",
                variant.label(),
                point_json(&live),
                point_json(&sim),
            ));
        }
    }

    let mut json = String::new();
    let _ = writeln!(
        json,
        "{{\n  \"benchmark\": \"iniva resilience sweep (Fig. 4): live TCP vs simulator\",\n  \
         \"n\": {n},\n  \"duration_secs\": {duration_secs},\n  \
         \"cpu_scale\": {cpu_scale},\n  \"seed\": {SEED},\n  \"cells\": ["
    );
    let _ = writeln!(json, "{}", cells.join(",\n"));
    let _ = writeln!(json, "  ]\n}}");
    std::fs::write(path, &json).expect("write sweep json");
    println!("\nwrote {path}");
}
