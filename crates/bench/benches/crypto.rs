//! Microbenchmarks of the from-scratch BLS12-381 substrate. These measured
//! costs calibrate the discrete-event simulator's `CostModel` (relative
//! magnitudes; see DESIGN.md §3).

use criterion::{criterion_group, criterion_main, Criterion};
use iniva_crypto::bls::BlsScheme;
use iniva_crypto::multisig::VoteScheme;
use iniva_crypto::sim_scheme::SimScheme;
use iniva_crypto::{g1, g2, pairing, sha256};
use std::hint::black_box;

fn bench_crypto(c: &mut Criterion) {
    let mut g = c.benchmark_group("bls12-381");
    g.sample_size(10);

    let scheme = BlsScheme::new(8, b"bench");
    let msg = b"benchmark block";

    g.bench_function("sha256_1kib", |b| {
        let data = vec![0xa5u8; 1024];
        b.iter(|| sha256::sha256(black_box(&data)))
    });
    g.bench_function("hash_to_g1", |b| {
        b.iter(|| g1::hash_to_curve(black_box(msg)))
    });
    g.bench_function("g1_scalar_mul", |b| {
        let p = g1::generator();
        b.iter(|| black_box(&p).mul_u64(0xdead_beef_1234))
    });
    g.bench_function("pairing", |b| {
        let p = g1::generator();
        let q = g2::generator();
        b.iter(|| pairing::pairing(black_box(&p), black_box(&q)))
    });
    g.bench_function("bls_sign", |b| b.iter(|| scheme.sign(0, black_box(msg))));
    g.bench_function("bls_verify_single", |b| {
        let sig = scheme.sign(0, msg);
        b.iter(|| assert!(scheme.verify(black_box(msg), &sig)))
    });
    g.bench_function("bls_aggregate_4_with_multiplicity", |b| {
        let sigs: Vec<_> = (0..4).map(|i| scheme.sign(i, msg)).collect();
        b.iter(|| {
            let mut agg = scheme.scale(&sigs[0], 2);
            for s in &sigs[1..] {
                agg = scheme.combine(&agg, &scheme.scale(s, 2));
            }
            agg
        })
    });
    g.bench_function("bls_verify_aggregate_4", |b| {
        let mut agg = scheme.sign(0, msg);
        for i in 1..4 {
            agg = scheme.combine(&agg, &scheme.sign(i, msg));
        }
        b.iter(|| assert!(scheme.verify(black_box(msg), &agg)))
    });
    // Batch verification: the 8-aggregate same-message shape a view's
    // fan-in concentrates at the tree root. The individual cell verifies
    // the same 8 aggregates one by one (16 Miller loops, 8 final
    // exponentiations); the batch cell collapses them into one
    // random-linear-combination multi-pairing (2 Miller loops, 1 final
    // exponentiation, plus 8 cheap 128-bit scalar muls).
    g.bench_function("bls_verify_individual_8", |b| {
        let sigs: Vec<_> = (0..8).map(|i| scheme.sign(i, msg)).collect();
        b.iter(|| {
            for sig in &sigs {
                assert!(scheme.verify(black_box(msg), sig));
            }
        })
    });
    g.bench_function("bls_verify_batch_8", |b| {
        let sigs: Vec<_> = (0..8).map(|i| scheme.sign(i, msg)).collect();
        b.iter(|| {
            let groups: Vec<(&[u8], &[_])> = vec![(black_box(msg).as_slice(), sigs.as_slice())];
            assert!(scheme.verify_batch(&groups).all_valid())
        })
    });
    g.bench_function("bls_verify_batch_8_one_forged_bisect", |b| {
        let mut sigs: Vec<_> = (0..8).map(|i| scheme.sign(i, msg)).collect();
        sigs[5].mults = iniva_crypto::multisig::Multiplicities::singleton(6);
        b.iter(|| {
            let groups: Vec<(&[u8], &[_])> = vec![(black_box(msg).as_slice(), sigs.as_slice())];
            assert_eq!(scheme.verify_batch(&groups).culprits(), &[(0usize, 5usize)])
        })
    });
    // The state-transfer shape: 8 QCs over 8 *distinct* messages — still
    // one shared final exponentiation, 9 Miller loops instead of 16.
    g.bench_function("bls_verify_batch_8_distinct_msgs", |b| {
        let msgs: Vec<Vec<u8>> = (0..8u64)
            .map(|v| [msg, &v.to_be_bytes()[..]].concat())
            .collect();
        let sigs: Vec<_> = msgs
            .iter()
            .enumerate()
            .map(|(i, m)| scheme.sign(i as u32, m))
            .collect();
        b.iter(|| {
            let groups: Vec<(&[u8], &[_])> = msgs
                .iter()
                .zip(&sigs)
                .map(|(m, s)| (m.as_slice(), std::slice::from_ref(s)))
                .collect();
            assert!(scheme.verify_batch(black_box(&groups)).all_valid())
        })
    });
    g.finish();

    // Ablation: the simulation scheme used by Monte-Carlo experiments.
    let mut g = c.benchmark_group("sim-scheme-ablation");
    let sim = SimScheme::new(8, b"bench");
    g.bench_function("sim_sign", |b| b.iter(|| sim.sign(0, black_box(msg))));
    g.bench_function("sim_verify_aggregate_4", |b| {
        let mut agg = sim.sign(0, msg);
        for i in 1..4 {
            agg = sim.combine(&agg, &sim.sign(i, msg));
        }
        b.iter(|| assert!(sim.verify(black_box(msg), &agg)))
    });
    g.finish();
}

criterion_group!(benches, bench_crypto);
criterion_main!(benches);
