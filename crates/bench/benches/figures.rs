//! One Criterion benchmark per paper artifact: each runs a reduced-scale
//! version of the experiment that regenerates the table/figure (full-scale
//! rows are printed by `cargo run --release --example paper_figures`).

use criterion::{criterion_group, criterion_main, Criterion};
use iniva_gosig::GosigConfig;
use iniva_sim::{omission, perf, resilience, reward_sim, table1};
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper-artifacts");
    g.sample_size(10);

    g.bench_function("table1", |b| b.iter(|| black_box(table1::table_1(500, 42))));
    g.bench_function("fig2a_omission_collateral0", |b| {
        b.iter(|| black_box(omission::figure_2a(300, 42)))
    });
    g.bench_function("fig2b_omission_vs_collateral", |b| {
        b.iter(|| black_box(omission::figure_2b(200, 42)))
    });
    g.bench_function("fig2c_reward_deviation", |b| {
        b.iter(|| black_box(reward_sim::figure_2c(200, 42)))
    });
    g.bench_function("fig2d_branch_collateral_cost", |b| {
        b.iter(|| black_box(reward_sim::figure_2d(200, 42)))
    });
    g.bench_function("fig3a_throughput_latency_point", |b| {
        b.iter(|| {
            black_box(perf::run(&perf::PerfParams {
                duration_secs: 3,
                ..perf::PerfParams::base(perf::Protocol::Iniva, 64, 100, 20_000)
            }))
        })
    });
    g.bench_function("fig3b_cpu_point", |b| {
        b.iter(|| {
            black_box(perf::run(&perf::PerfParams {
                duration_secs: 3,
                ..perf::PerfParams::base(perf::Protocol::HotStuff, 64, 100, 20_000)
            }))
        })
    });
    g.bench_function("fig3c_scalability_point_n61", |b| {
        b.iter(|| {
            black_box(perf::run(&perf::PerfParams {
                n: 61,
                internal: 8,
                duration_secs: 3,
                ..perf::PerfParams::base(perf::Protocol::Iniva, 64, 100, 20_000)
            }))
        })
    });
    g.bench_function("fig4_resilience_cell", |b| {
        b.iter(|| black_box(resilience::run(resilience::Variant::Delta5, 2, 3, 7)))
    });
    g.bench_function("gosig_single_instance", |b| {
        use rand::SeedableRng;
        let cfg = GosigConfig::paper(2, 0.1);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        b.iter(|| black_box(iniva_gosig::simulate(&cfg, &mut rng)))
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
