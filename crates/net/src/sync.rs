//! State-transfer wire messages: how a healed or lagging replica fetches
//! the committed prefix it missed.
//!
//! The protocol is a single request/response pair, generic over the block
//! and certificate types (defined in `iniva-consensus`, which this crate
//! cannot depend on): a replica that detects it has fallen behind the
//! committed prefix — typically right after restarting from its
//! write-ahead log — sends [`StateRequest`] to a peer it heard a newer QC
//! from, and the peer answers with [`StateResponse`]: up to
//! [`MAX_STATE_BLOCKS`] consecutive committed blocks starting at the
//! requested height, each paired with the QC certifying it, so the
//! requester can verify every block before grafting it onto its prefix.
//! Longer gaps take multiple rounds — the requester's gap detector fires
//! again on the next QC it observes.

use crate::wire::{DecodeError, Decoder, Encoder, WireDecode, WireEncode};

/// Cap on blocks (and paired QCs) in one [`StateResponse`]: bounds the
/// allocation a decoder performs on a hostile length prefix.
pub const MAX_STATE_BLOCKS: usize = 512;

/// Cap on the **encoded bytes** of one [`StateResponse`] body. Block count
/// alone does not bound the frame: a QC's encoded size grows with its
/// signer set (48-byte compressed point + 12 bytes per signer under BLS,
/// and the block payload on top), so a responder packs entries until the
/// next one would cross this budget — always shipping at least one, so a
/// single oversized entry still makes progress — and the requester's gap
/// detector fetches the rest in further rounds. 256 KiB keeps QC-bearing
/// transfer far below the transport's 64 MiB frame limit while still
/// moving hundreds of blocks per round.
pub const MAX_STATE_RESPONSE_BYTES: usize = 256 * 1024;

/// "Send me your committed prefix from this height up."
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateRequest {
    /// First height the requester is missing (its committed height + 1).
    pub from_height: u64,
}

impl WireEncode for StateRequest {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.from_height);
    }
}

impl WireDecode for StateRequest {
    fn decode(dec: &mut Decoder) -> Result<Self, DecodeError> {
        Ok(StateRequest {
            from_height: dec.get_u64()?,
        })
    }
}

/// A chunk of committed chain: `blocks[i]` is certified by `qcs[i]`, and
/// heights are consecutive from the requested `from_height`.
#[derive(Debug, Clone)]
pub struct StateResponse<B, Q> {
    /// Committed blocks, ascending by height.
    pub blocks: Vec<B>,
    /// `qcs[i]` certifies `blocks[i]`.
    pub qcs: Vec<Q>,
}

impl<B: WireEncode, Q: WireEncode> WireEncode for StateResponse<B, Q> {
    fn encode(&self, enc: &mut Encoder) {
        // One length prefix: the pairing is structural, not coincidental.
        enc.put_u32(self.blocks.len().min(self.qcs.len()) as u32);
        for (b, q) in self.blocks.iter().zip(&self.qcs) {
            b.encode(enc);
            q.encode(enc);
        }
    }
}

impl<B: WireDecode, Q: WireDecode> WireDecode for StateResponse<B, Q> {
    fn decode(dec: &mut Decoder) -> Result<Self, DecodeError> {
        let n = dec.get_u32()? as usize;
        if n > MAX_STATE_BLOCKS {
            return Err(DecodeError::Malformed {
                context: "StateResponse exceeds MAX_STATE_BLOCKS",
            });
        }
        // CAP: `n` was checked against MAX_STATE_BLOCKS above; a hostile
        // count can not size this allocation.
        let mut blocks = Vec::with_capacity(n);
        // CAP: as above — `n` is bounded by MAX_STATE_BLOCKS.
        let mut qcs = Vec::with_capacity(n);
        for _ in 0..n {
            blocks.push(B::decode(dec)?);
            qcs.push(Q::decode(dec)?);
        }
        Ok(StateResponse { blocks, qcs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::Codec;

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct FakeBlock(u64);
    #[derive(Debug, Clone, PartialEq, Eq)]
    struct FakeQc(u64, u8);

    impl WireEncode for FakeBlock {
        fn encode(&self, enc: &mut Encoder) {
            enc.put_u64(self.0);
        }
    }
    impl WireDecode for FakeBlock {
        fn decode(dec: &mut Decoder) -> Result<Self, DecodeError> {
            Ok(FakeBlock(dec.get_u64()?))
        }
    }
    impl WireEncode for FakeQc {
        fn encode(&self, enc: &mut Encoder) {
            enc.put_u64(self.0).put_u8(self.1);
        }
    }
    impl WireDecode for FakeQc {
        fn decode(dec: &mut Decoder) -> Result<Self, DecodeError> {
            Ok(FakeQc(dec.get_u64()?, dec.get_u8()?))
        }
    }

    #[test]
    fn request_roundtrips() {
        let r = StateRequest { from_height: 99 };
        assert_eq!(StateRequest::from_frame(r.to_frame()).unwrap(), r);
    }

    #[test]
    fn response_roundtrips_interleaved() {
        let r: StateResponse<FakeBlock, FakeQc> = StateResponse {
            blocks: (0..5).map(FakeBlock).collect(),
            qcs: (0..5).map(|i| FakeQc(i, i as u8)).collect(),
        };
        let back = StateResponse::<FakeBlock, FakeQc>::from_frame(r.to_frame()).unwrap();
        assert_eq!(back.blocks, r.blocks);
        assert_eq!(back.qcs, r.qcs);
    }

    #[test]
    fn hostile_length_prefix_rejected_before_allocation() {
        let mut enc = Encoder::new();
        enc.put_u32(u32::MAX);
        assert!(matches!(
            StateResponse::<FakeBlock, FakeQc>::from_frame(enc.finish()),
            Err(DecodeError::Malformed { .. })
        ));
    }

    #[test]
    fn truncated_response_errors_cleanly() {
        let r: StateResponse<FakeBlock, FakeQc> = StateResponse {
            blocks: vec![FakeBlock(1)],
            qcs: vec![FakeQc(1, 1)],
        };
        let frame = r.to_frame();
        for cut in 0..frame.len() {
            assert!(StateResponse::<FakeBlock, FakeQc>::from_frame(frame.slice(0..cut)).is_err());
        }
    }

    #[test]
    fn mismatched_vec_lengths_encode_the_paired_prefix() {
        let r: StateResponse<FakeBlock, FakeQc> = StateResponse {
            blocks: (0..3).map(FakeBlock).collect(),
            qcs: vec![FakeQc(0, 0)],
        };
        let back = StateResponse::<FakeBlock, FakeQc>::from_frame(r.to_frame()).unwrap();
        assert_eq!(back.blocks.len(), 1);
        assert_eq!(back.qcs.len(), 1);
    }
}
