//! # iniva-net
//!
//! A deterministic discrete-event network simulator, substituting for the
//! paper's 25-machine cluster (Section VIII-B: 10 Gbps switch, <1 ms
//! latency, 12-core Xeons).
//!
//! Protocol code is written as [`Actor`]s driven by a virtual clock; the
//! simulator models
//!
//! * **propagation latency** per message (base + seeded jitter),
//! * **serialization/bandwidth cost** (bytes / link rate, charged to the
//!   sender's CPU),
//! * **CPU time** for expensive operations (signature verification etc.),
//!   charged explicitly by actors via [`Context::charge_cpu`] with values
//!   calibrated from the real BLS12-381 benchmarks (see [`cost`]),
//! * **crash faults** (a crashed node receives nothing and sends nothing).
//!
//! Each node is a single-server queue: events execute at
//! `max(arrival, node_available)` and expensive handlers push back later
//! work, so CPU saturation translates into latency and throughput loss
//! exactly as on real hardware. Virtual time makes 150-second experiments
//! run in milliseconds and bit-identical across runs (seeded RNG).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod faults;
pub mod sync;
pub mod wire;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// Identity of a simulated node.
pub type NodeId = u32;

/// Virtual time in nanoseconds.
pub type Time = u64;

/// One millisecond in [`Time`] units.
pub const MILLIS: Time = 1_000_000;
/// One microsecond in [`Time`] units.
pub const MICROS: Time = 1_000;
/// One second in [`Time`] units.
pub const SECS: Time = 1_000_000_000;

/// Network parameters.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Base one-way propagation delay between any two nodes.
    pub base_latency: Time,
    /// Uniform jitter added on top of the base latency (`0..=jitter`).
    pub jitter: Time,
    /// Link bandwidth in bytes/second; serialization time `size/bandwidth`
    /// is charged to the sender.
    pub bandwidth_bps: u64,
    /// RNG seed (all runs with the same seed are bit-identical).
    pub seed: u64,
}

impl Default for NetConfig {
    /// The paper's cluster: <1 ms LAN latency, 10 Gbps TOR switch.
    fn default() -> Self {
        NetConfig {
            base_latency: 300 * MICROS,
            jitter: 200 * MICROS,
            bandwidth_bps: 10_000_000_000 / 8,
            seed: 42,
        }
    }
}

/// A protocol state machine driven by the simulator.
pub trait Actor {
    /// Message type exchanged between actors.
    type Msg;

    /// Called once at simulation start.
    fn on_start(&mut self, _ctx: &mut Context<Self::Msg>) {}

    /// Called when a message is delivered to this node.
    fn on_message(&mut self, ctx: &mut Context<Self::Msg>, from: NodeId, msg: Self::Msg);

    /// Called when a runtime delivers several already-queued messages in
    /// one handler turn (the live transport drains its inbound queue into
    /// a batch; the discrete-event simulator delivers per-event and never
    /// calls this). The default preserves per-message semantics exactly;
    /// actors whose verification cost amortizes across messages — batch
    /// pairing verification over a view's signatures — override it.
    fn on_messages(&mut self, ctx: &mut Context<Self::Msg>, batch: Vec<(NodeId, Self::Msg)>) {
        for (from, msg) in batch {
            self.on_message(ctx, from, msg);
        }
    }

    /// Called when a timer set via [`Context::set_timer`] fires.
    fn on_timer(&mut self, _ctx: &mut Context<Self::Msg>, _timer: u64) {}
}

/// Handler-side interface to the simulator: queued sends, timers and CPU
/// charges are applied when the handler returns.
#[derive(Debug)]
pub struct Context<M> {
    /// This node's id.
    pub node: NodeId,
    now: Time,
    outbox: Vec<(NodeId, M, usize)>,
    timers: Vec<(Time, u64)>,
    cpu: Time,
}

impl<M> Context<M> {
    /// Current virtual time (start of this handler's execution).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Sends `msg` of `wire_bytes` size to `to` (delivered after
    /// serialization + propagation delay).
    pub fn send(&mut self, to: NodeId, msg: M, wire_bytes: usize) {
        self.outbox.push((to, msg, wire_bytes));
    }

    /// Schedules `on_timer(timer)` after `delay` of virtual time.
    pub fn set_timer(&mut self, delay: Time, timer: u64) {
        self.timers.push((delay, timer));
    }

    /// Charges `ns` of CPU time to this node: the node is busy (delaying its
    /// later events and all messages queued by this handler) and the time is
    /// recorded for the CPU-utilization metric.
    pub fn charge_cpu(&mut self, ns: Time) {
        self.cpu += ns;
    }

    /// Creates a context for an external runtime (e.g. the real-socket
    /// transport in `iniva-transport`), which drives [`Actor`]s outside the
    /// discrete-event simulator. `now` is the runtime's own clock reading in
    /// nanoseconds.
    pub fn external(node: NodeId, now: Time) -> Self {
        Context {
            node,
            now,
            outbox: Vec::new(),
            timers: Vec::new(),
            cpu: 0,
        }
    }

    /// Consumes the context, handing the queued effects to an external
    /// runtime to apply (sends to ship, timers to schedule, CPU to charge).
    pub fn into_effects(self) -> ContextEffects<M> {
        ContextEffects {
            outbox: self.outbox,
            timers: self.timers,
            cpu: self.cpu,
        }
    }
}

/// The effects an [`Actor`] handler queued on its [`Context`], drained via
/// [`Context::into_effects`] by runtimes other than [`Simulation`].
#[derive(Debug)]
pub struct ContextEffects<M> {
    /// Queued sends: `(destination, message, modeled wire bytes)`.
    pub outbox: Vec<(NodeId, M, usize)>,
    /// Queued timers: `(delay from handler start, timer id)`.
    pub timers: Vec<(Time, u64)>,
    /// CPU time the handler charged.
    pub cpu: Time,
}

enum EventKind<M> {
    Deliver { from: NodeId, msg: M },
    Timer { id: u64 },
}

struct Event<M> {
    at: Time,
    seq: u64,
    node: NodeId,
    kind: EventKind<M>,
}

// Ordering for the BinaryHeap (min-heap via Reverse): by (time, seq).
impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Per-node statistics.
#[derive(Debug, Clone, Default)]
pub struct NodeStats {
    /// Cumulative CPU busy time (charges + serialization).
    pub cpu_busy: Time,
    /// Messages sent.
    pub msgs_sent: u64,
    /// Bytes sent.
    pub bytes_sent: u64,
    /// Messages received (delivered and processed).
    pub msgs_received: u64,
}

/// The discrete-event simulation engine.
pub struct Simulation<A: Actor> {
    actors: Vec<A>,
    crashed: Vec<bool>,
    available: Vec<Time>,
    stats: Vec<NodeStats>,
    queue: BinaryHeap<Reverse<Event<A::Msg>>>,
    now: Time,
    seq: u64,
    config: NetConfig,
    rng: StdRng,
    started: bool,
    /// Directed links whose deliveries are dropped (injected partitions).
    blocked_links: HashSet<(NodeId, NodeId)>,
    /// Extra one-way delay injected per directed link (slow links).
    link_delays: HashMap<(NodeId, NodeId), Time>,
    /// Deliveries dropped by blocked links (monotonic).
    link_drops: u64,
}

impl<A: Actor> Simulation<A> {
    /// Creates a simulation over the given actors (node `i` runs
    /// `actors[i]`).
    pub fn new(config: NetConfig, actors: Vec<A>) -> Self {
        let n = actors.len();
        let rng = StdRng::seed_from_u64(config.seed);
        Simulation {
            actors,
            crashed: vec![false; n],
            available: vec![0; n],
            stats: vec![NodeStats::default(); n],
            queue: BinaryHeap::new(),
            now: 0,
            seq: 0,
            config,
            rng,
            started: false,
            blocked_links: HashSet::new(),
            link_delays: HashMap::new(),
            link_drops: 0,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.actors.len()
    }

    /// True when no actors exist.
    pub fn is_empty(&self) -> bool {
        self.actors.is_empty()
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Marks a node crashed: it stops processing and emitting events.
    pub fn crash(&mut self, node: NodeId) {
        self.crashed[node as usize] = true;
    }

    /// Revives a crashed node. Events that came due while it was down are
    /// gone (a crashed node neither receives nor fires timers); it resumes
    /// inert and rejoins when the protocol next contacts it — exactly the
    /// live runtime's heal semantics.
    pub fn revive(&mut self, node: NodeId) {
        self.crashed[node as usize] = false;
    }

    /// True if `node` has crashed.
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.crashed[node as usize]
    }

    /// Blocks the directed link `from → to`: deliveries on it are dropped
    /// at delivery time (messages already in flight are lost too).
    pub fn block_link(&mut self, from: NodeId, to: NodeId) {
        self.blocked_links.insert((from, to));
    }

    /// Unblocks the directed link `from → to`.
    pub fn unblock_link(&mut self, from: NodeId, to: NodeId) {
        self.blocked_links.remove(&(from, to));
    }

    /// Removes every blocked link and injected link delay.
    pub fn heal_all_links(&mut self) {
        self.blocked_links.clear();
        self.link_delays.clear();
    }

    /// Adds `extra` one-way delay to every message sent on `from → to`
    /// (0 removes the injection).
    pub fn set_link_delay(&mut self, from: NodeId, to: NodeId, extra: Time) {
        if extra == 0 {
            self.link_delays.remove(&(from, to));
        } else {
            self.link_delays.insert((from, to), extra);
        }
    }

    /// Deliveries dropped so far by blocked links.
    pub fn link_drops(&self) -> u64 {
        self.link_drops
    }

    /// Statistics for a node.
    pub fn stats(&self, node: NodeId) -> &NodeStats {
        &self.stats[node as usize]
    }

    /// Immutable access to an actor (for metric extraction).
    pub fn actor(&self, node: NodeId) -> &A {
        &self.actors[node as usize]
    }

    /// Mutable access to an actor (for test instrumentation).
    pub fn actor_mut(&mut self, node: NodeId) -> &mut A {
        &mut self.actors[node as usize]
    }

    fn push(&mut self, at: Time, node: NodeId, kind: EventKind<A::Msg>) {
        self.seq += 1;
        self.queue.push(Reverse(Event {
            at,
            seq: self.seq,
            node,
            kind,
        }));
    }

    fn start(&mut self) {
        self.started = true;
        for i in 0..self.actors.len() {
            if self.crashed[i] {
                continue;
            }
            let mut ctx = Context {
                node: i as NodeId,
                now: 0,
                outbox: Vec::new(),
                timers: Vec::new(),
                cpu: 0,
            };
            self.actors[i].on_start(&mut ctx);
            self.apply(i as NodeId, 0, ctx);
        }
    }

    /// Applies a drained context: CPU charge extends the node's busy window;
    /// messages depart after the handler (plus per-message serialization).
    fn apply(&mut self, node: NodeId, handler_start: Time, ctx: Context<A::Msg>) {
        let ni = node as usize;
        let mut t = handler_start + ctx.cpu;
        self.stats[ni].cpu_busy += ctx.cpu;
        for (to, msg, bytes) in ctx.outbox {
            let ser = (bytes as u128 * SECS as u128 / self.config.bandwidth_bps as u128) as Time;
            t += ser;
            self.stats[ni].cpu_busy += ser;
            self.stats[ni].msgs_sent += 1;
            self.stats[ni].bytes_sent += bytes as u64;
            let jitter = if self.config.jitter > 0 {
                self.rng.gen_range(0..=self.config.jitter)
            } else {
                0
            };
            let extra = self.link_delays.get(&(node, to)).copied().unwrap_or(0);
            let deliver_at = t + self.config.base_latency + jitter + extra;
            self.push(deliver_at, to, EventKind::Deliver { from: node, msg });
        }
        self.available[ni] = self.available[ni].max(t);
        for (delay, id) in ctx.timers {
            self.push(
                handler_start + ctx.cpu + delay,
                node,
                EventKind::Timer { id },
            );
        }
    }

    /// Executes one event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        if !self.started {
            self.start();
        }
        let Some(Reverse(ev)) = self.queue.pop() else {
            return false;
        };
        let ni = ev.node as usize;
        if self.crashed[ni] {
            self.now = self.now.max(ev.at);
            return true;
        }
        // A partitioned link drops its deliveries at delivery time, so a
        // partition injected while messages are in flight loses them too —
        // matching the live transport's reader-path filter.
        if let EventKind::Deliver { from, .. } = &ev.kind {
            if self.blocked_links.contains(&(*from, ev.node)) {
                self.now = self.now.max(ev.at);
                self.link_drops += 1;
                return true;
            }
        }
        // Single-server queue: if the node is still busy, requeue the event
        // for when it frees up.
        if self.available[ni] > ev.at {
            let at = self.available[ni];
            self.push(at, ev.node, ev.kind);
            return true;
        }
        self.now = self.now.max(ev.at);
        let start = ev.at;
        let mut ctx = Context {
            node: ev.node,
            now: start,
            outbox: Vec::new(),
            timers: Vec::new(),
            cpu: 0,
        };
        match ev.kind {
            EventKind::Deliver { from, msg } => {
                self.stats[ni].msgs_received += 1;
                self.actors[ni].on_message(&mut ctx, from, msg);
            }
            EventKind::Timer { id } => {
                self.actors[ni].on_timer(&mut ctx, id);
            }
        }
        self.apply(ev.node, start, ctx);
        true
    }

    /// Runs until the virtual clock passes `deadline` or the event queue
    /// drains. Returns the number of events executed.
    pub fn run_until(&mut self, deadline: Time) -> u64 {
        if !self.started {
            self.start();
        }
        let mut events = 0;
        while let Some(Reverse(ev)) = self.queue.peek() {
            if ev.at > deadline {
                break;
            }
            self.step();
            events += 1;
        }
        self.now = self.now.max(deadline);
        events
    }

    /// Runs until the event queue is empty (only safe for protocols that
    /// quiesce, e.g. single-shot aggregations).
    pub fn run_to_quiescence(&mut self) -> u64 {
        if !self.started {
            self.start();
        }
        let mut events = 0;
        while self.step() {
            events += 1;
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A ping-pong actor: node 0 pings 1, each pong bounces back, `count`
    /// round trips.
    struct PingPong {
        peer: NodeId,
        initiator: bool,
        remaining: u32,
        pub completed_at: Option<Time>,
    }

    impl Actor for PingPong {
        type Msg = u32;

        fn on_start(&mut self, ctx: &mut Context<u32>) {
            if self.initiator {
                ctx.send(self.peer, self.remaining, 100);
            }
        }

        fn on_message(&mut self, ctx: &mut Context<u32>, from: NodeId, msg: u32) {
            if msg == 0 {
                self.completed_at = Some(ctx.now());
                return;
            }
            ctx.send(from, msg - 1, 100);
        }
    }

    fn net(seed: u64) -> NetConfig {
        NetConfig {
            base_latency: MILLIS,
            jitter: 0,
            bandwidth_bps: u64::MAX, // effectively free serialization
            seed,
        }
    }

    #[test]
    fn ping_pong_latency_adds_up() {
        let actors = vec![
            PingPong {
                peer: 1,
                initiator: true,
                remaining: 10,
                completed_at: None,
            },
            PingPong {
                peer: 0,
                initiator: false,
                remaining: 0,
                completed_at: None,
            },
        ];
        let mut sim = Simulation::new(net(1), actors);
        sim.run_to_quiescence();
        // Values 10..=0 travel one hop each (11 hops, 1 ms per hop); the
        // final "0" lands at node 1.
        assert_eq!(sim.actor(1).completed_at, Some(11 * MILLIS));
    }

    #[test]
    fn deterministic_with_same_seed() {
        let mk = || {
            vec![
                PingPong {
                    peer: 1,
                    initiator: true,
                    remaining: 6,
                    completed_at: None,
                },
                PingPong {
                    peer: 0,
                    initiator: false,
                    remaining: 0,
                    completed_at: None,
                },
            ]
        };
        let mut a = Simulation::new(
            NetConfig {
                jitter: MILLIS,
                ..net(7)
            },
            mk(),
        );
        let mut b = Simulation::new(
            NetConfig {
                jitter: MILLIS,
                ..net(7)
            },
            mk(),
        );
        a.run_to_quiescence();
        b.run_to_quiescence();
        assert_eq!(a.actor(1).completed_at, b.actor(1).completed_at);
        assert_eq!(a.now(), b.now());
    }

    #[test]
    fn crashed_node_stops_responding() {
        let actors = vec![
            PingPong {
                peer: 1,
                initiator: true,
                remaining: 10,
                completed_at: None,
            },
            PingPong {
                peer: 0,
                initiator: false,
                remaining: 0,
                completed_at: None,
            },
        ];
        let mut sim = Simulation::new(net(1), actors);
        sim.crash(1);
        sim.run_to_quiescence();
        assert_eq!(sim.actor(1).completed_at, None);
        assert_eq!(sim.stats(1).msgs_received, 0);
    }

    struct Burner {
        fired: Vec<Time>,
    }
    impl Actor for Burner {
        type Msg = ();
        fn on_start(&mut self, ctx: &mut Context<()>) {
            ctx.set_timer(10 * MILLIS, 1);
            ctx.set_timer(20 * MILLIS, 2);
        }
        fn on_message(&mut self, _ctx: &mut Context<()>, _from: NodeId, _msg: ()) {}
        fn on_timer(&mut self, ctx: &mut Context<()>, id: u64) {
            self.fired.push(ctx.now());
            if id == 1 {
                // Burn 15 ms of CPU: the second timer (due at 20 ms) must be
                // delayed until 25 ms by the single-server queue.
                ctx.charge_cpu(15 * MILLIS);
            }
        }
    }

    #[test]
    fn cpu_charge_delays_subsequent_events() {
        let mut sim = Simulation::new(net(1), vec![Burner { fired: vec![] }]);
        sim.run_to_quiescence();
        assert_eq!(sim.actor(0).fired, vec![10 * MILLIS, 25 * MILLIS]);
        assert_eq!(sim.stats(0).cpu_busy, 15 * MILLIS);
    }

    struct Sender;
    impl Actor for Sender {
        type Msg = ();
        fn on_start(&mut self, ctx: &mut Context<()>) {
            ctx.send(1, (), 1_000_000); // 1 MB
        }
        fn on_message(&mut self, _ctx: &mut Context<()>, _from: NodeId, _msg: ()) {}
    }

    #[test]
    fn serialization_time_respects_bandwidth() {
        // 1 MB over 1 MB/s = 1 s of serialization, plus 1 ms latency.
        let cfg = NetConfig {
            base_latency: MILLIS,
            jitter: 0,
            bandwidth_bps: 1_000_000,
            seed: 1,
        };
        let mut sim = Simulation::new(cfg, vec![Sender, Sender]);
        sim.run_to_quiescence();
        assert_eq!(sim.now(), SECS + MILLIS);
        assert_eq!(sim.stats(0).bytes_sent, 1_000_000);
        assert_eq!(sim.stats(0).cpu_busy, SECS);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let actors = vec![
            PingPong {
                peer: 1,
                initiator: true,
                remaining: 1000,
                completed_at: None,
            },
            PingPong {
                peer: 0,
                initiator: false,
                remaining: 0,
                completed_at: None,
            },
        ];
        let mut sim = Simulation::new(net(3), actors);
        sim.run_until(5 * MILLIS);
        assert_eq!(sim.now(), 5 * MILLIS);
        assert!(sim.actor(1).completed_at.is_none());
    }
}
