//! A small hand-rolled binary codec for protocol messages.
//!
//! The simulator passes Rust values directly (wire *sizes* are modeled),
//! but a deployment needs real encodings; this module provides the
//! length-prefixed primitives the protocol types encode themselves with,
//! so the modeled sizes in `iniva-consensus::types` stay honest.
//!
//! Format: little-endian fixed-width integers, `u32`-length-prefixed byte
//! strings, no self-description (schemas are fixed per message type).

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Encoding buffer (newtype over `BytesMut` with the codec's primitives).
#[derive(Debug, Default)]
pub struct Encoder {
    buf: BytesMut,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Encoder {
            buf: BytesMut::new(),
        }
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) -> &mut Self {
        self.buf.put_u8(v);
        self
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) -> &mut Self {
        self.buf.put_u32_le(v);
        self
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.buf.put_u64_le(v);
        self
    }

    /// Appends a length-prefixed byte string.
    ///
    /// # Panics
    /// Panics if `bytes` exceeds `u32::MAX` (not reachable for protocol
    /// messages).
    pub fn put_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        self.put_u32(u32::try_from(bytes.len()).expect("oversized field"));
        self.buf.put_slice(bytes);
        self
    }

    /// Appends a fixed-width array without a length prefix.
    pub fn put_array<const N: usize>(&mut self, bytes: &[u8; N]) -> &mut Self {
        self.buf.put_slice(bytes);
        self
    }

    /// Finalizes into an immutable buffer.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing was written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Decoding error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the field could be read.
    UnexpectedEnd,
    /// A length prefix exceeded the remaining buffer.
    BadLength {
        /// Claimed field length.
        claimed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::UnexpectedEnd => write!(f, "unexpected end of buffer"),
            DecodeError::BadLength { claimed, remaining } => {
                write!(f, "length prefix {claimed} exceeds remaining {remaining} bytes")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Decoding cursor over an immutable buffer.
#[derive(Debug)]
pub struct Decoder {
    buf: Bytes,
}

impl Decoder {
    /// Wraps a buffer.
    pub fn new(buf: Bytes) -> Self {
        Decoder { buf }
    }

    fn need(&self, n: usize) -> Result<(), DecodeError> {
        if self.buf.remaining() < n {
            Err(DecodeError::UnexpectedEnd)
        } else {
            Ok(())
        }
    }

    /// Reads a `u8`.
    pub fn get_u8(&mut self) -> Result<u8, DecodeError> {
        self.need(1)?;
        Ok(self.buf.get_u8())
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, DecodeError> {
        self.need(4)?;
        Ok(self.buf.get_u32_le())
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, DecodeError> {
        self.need(8)?;
        Ok(self.buf.get_u64_le())
    }

    /// Reads a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<Bytes, DecodeError> {
        let len = self.get_u32()? as usize;
        if self.buf.remaining() < len {
            return Err(DecodeError::BadLength {
                claimed: len,
                remaining: self.buf.remaining(),
            });
        }
        Ok(self.buf.copy_to_bytes(len))
    }

    /// Reads a fixed-width array.
    pub fn get_array<const N: usize>(&mut self) -> Result<[u8; N], DecodeError> {
        self.need(N)?;
        let mut out = [0u8; N];
        self.buf.copy_to_slice(&mut out);
        Ok(out)
    }

    /// Bytes left unread.
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }
}

/// Types encodable with this codec.
pub trait WireEncode {
    /// Appends `self` to the encoder.
    fn encode(&self, enc: &mut Encoder);

    /// Convenience one-shot encoding.
    fn to_wire(&self) -> Bytes {
        let mut enc = Encoder::new();
        self.encode(&mut enc);
        enc.finish()
    }
}

/// Types decodable with this codec.
pub trait WireDecode: Sized {
    /// Reads a value from the decoder.
    ///
    /// # Errors
    /// Returns [`DecodeError`] on truncated or malformed input.
    fn decode(dec: &mut Decoder) -> Result<Self, DecodeError>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn primitives_roundtrip() {
        let mut e = Encoder::new();
        e.put_u8(7).put_u32(0xdead_beef).put_u64(u64::MAX);
        e.put_bytes(b"hello").put_array(&[1u8, 2, 3, 4]);
        let mut d = Decoder::new(e.finish());
        assert_eq!(d.get_u8().unwrap(), 7);
        assert_eq!(d.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(d.get_u64().unwrap(), u64::MAX);
        assert_eq!(&d.get_bytes().unwrap()[..], b"hello");
        assert_eq!(d.get_array::<4>().unwrap(), [1, 2, 3, 4]);
        assert_eq!(d.remaining(), 0);
    }

    #[test]
    fn truncated_inputs_error_cleanly() {
        let mut e = Encoder::new();
        e.put_u64(42);
        let bytes = e.finish();
        let mut d = Decoder::new(bytes.slice(0..5));
        assert_eq!(d.get_u64(), Err(DecodeError::UnexpectedEnd));
    }

    #[test]
    fn bad_length_prefix_detected() {
        let mut e = Encoder::new();
        e.put_u32(1000); // claims 1000 bytes follow
        e.put_u8(1);
        let mut d = Decoder::new(e.finish());
        match d.get_bytes() {
            Err(DecodeError::BadLength { claimed: 1000, .. }) => {}
            other => panic!("expected BadLength, got {other:?}"),
        }
    }

    #[test]
    fn empty_byte_string_roundtrips() {
        let mut e = Encoder::new();
        e.put_bytes(b"");
        let mut d = Decoder::new(e.finish());
        assert_eq!(d.get_bytes().unwrap().len(), 0);
    }

    proptest! {
        #[test]
        fn arbitrary_sequences_roundtrip(
            a in any::<u64>(),
            b in any::<u32>(),
            payload in proptest::collection::vec(any::<u8>(), 0..256),
        ) {
            let mut e = Encoder::new();
            e.put_u64(a).put_bytes(&payload).put_u32(b);
            let mut d = Decoder::new(e.finish());
            prop_assert_eq!(d.get_u64().unwrap(), a);
            prop_assert_eq!(&d.get_bytes().unwrap()[..], &payload[..]);
            prop_assert_eq!(d.get_u32().unwrap(), b);
            prop_assert_eq!(d.remaining(), 0);
        }
    }
}
