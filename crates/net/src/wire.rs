//! A small hand-rolled binary codec for protocol messages.
//!
//! The simulator passes Rust values directly (wire *sizes* are modeled),
//! but a deployment needs real encodings; this module provides the
//! length-prefixed primitives the protocol types encode themselves with,
//! so the modeled sizes in `iniva-consensus::types` stay honest.
//!
//! Format: little-endian fixed-width integers, `u32`-length-prefixed byte
//! strings, no self-description (schemas are fixed per message type).

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Encoding buffer (newtype over `BytesMut` with the codec's primitives).
#[derive(Debug, Default)]
pub struct Encoder {
    buf: BytesMut,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Encoder {
            buf: BytesMut::new(),
        }
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) -> &mut Self {
        self.buf.put_u8(v);
        self
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) -> &mut Self {
        self.buf.put_u32_le(v);
        self
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.buf.put_u64_le(v);
        self
    }

    /// Appends a little-endian `u128` (two `u64` limbs, low first).
    pub fn put_u128(&mut self, v: u128) -> &mut Self {
        self.put_u64(v as u64).put_u64((v >> 64) as u64)
    }

    /// Appends an optional value as a presence byte plus the encoding.
    pub fn put_opt<T: WireEncode>(&mut self, v: &Option<T>) -> &mut Self {
        match v {
            None => self.put_u8(0),
            Some(inner) => {
                self.put_u8(1);
                inner.encode(self);
                self
            }
        }
    }

    /// Appends a length-prefixed byte string.
    ///
    /// # Panics
    /// Panics if `bytes` exceeds `u32::MAX` (not reachable for protocol
    /// messages).
    pub fn put_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        // lint: allow(hot-path-panic) encode side, not wire input; panic documented above, unreachable for protocol messages
        self.put_u32(u32::try_from(bytes.len()).expect("oversized field"));
        self.buf.put_slice(bytes);
        self
    }

    /// Appends a fixed-width array without a length prefix.
    pub fn put_array<const N: usize>(&mut self, bytes: &[u8; N]) -> &mut Self {
        self.buf.put_slice(bytes);
        self
    }

    /// Finalizes into an immutable buffer.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing was written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Decoding error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the field could be read.
    UnexpectedEnd,
    /// A length prefix exceeded the remaining buffer.
    BadLength {
        /// Claimed field length.
        claimed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// An enum discriminant byte had no corresponding variant.
    InvalidTag {
        /// The unrecognized discriminant.
        tag: u8,
        /// The type being decoded.
        context: &'static str,
    },
    /// A complete message left unconsumed bytes in the buffer.
    TrailingBytes {
        /// Unconsumed byte count.
        remaining: usize,
    },
    /// A structurally valid encoding violated a value-level invariant
    /// (non-canonical form, out-of-range field).
    Malformed {
        /// The invariant that failed.
        context: &'static str,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::UnexpectedEnd => write!(f, "unexpected end of buffer"),
            DecodeError::BadLength { claimed, remaining } => {
                write!(
                    f,
                    "length prefix {claimed} exceeds remaining {remaining} bytes"
                )
            }
            DecodeError::InvalidTag { tag, context } => {
                write!(f, "invalid discriminant {tag} for {context}")
            }
            DecodeError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after a complete message")
            }
            DecodeError::Malformed { context } => {
                write!(f, "malformed encoding: {context}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Decoding cursor over an immutable buffer.
#[derive(Debug)]
pub struct Decoder {
    buf: Bytes,
}

impl Decoder {
    /// Wraps a buffer.
    pub fn new(buf: Bytes) -> Self {
        Decoder { buf }
    }

    fn need(&self, n: usize) -> Result<(), DecodeError> {
        if self.buf.remaining() < n {
            Err(DecodeError::UnexpectedEnd)
        } else {
            Ok(())
        }
    }

    /// Reads a `u8`.
    pub fn get_u8(&mut self) -> Result<u8, DecodeError> {
        self.need(1)?;
        Ok(self.buf.get_u8())
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, DecodeError> {
        self.need(4)?;
        Ok(self.buf.get_u32_le())
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, DecodeError> {
        self.need(8)?;
        Ok(self.buf.get_u64_le())
    }

    /// Reads a little-endian `u128` (two `u64` limbs, low first).
    pub fn get_u128(&mut self) -> Result<u128, DecodeError> {
        let lo = self.get_u64()? as u128;
        let hi = self.get_u64()? as u128;
        Ok(lo | (hi << 64))
    }

    /// Reads an optional value written by [`Encoder::put_opt`].
    pub fn get_opt<T: WireDecode>(&mut self) -> Result<Option<T>, DecodeError> {
        match self.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(self)?)),
            tag => Err(DecodeError::InvalidTag {
                tag,
                context: "Option",
            }),
        }
    }

    /// Reads a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<Bytes, DecodeError> {
        let len = self.get_u32()? as usize;
        if self.buf.remaining() < len {
            return Err(DecodeError::BadLength {
                claimed: len,
                remaining: self.buf.remaining(),
            });
        }
        Ok(self.buf.copy_to_bytes(len))
    }

    /// Reads a length-prefixed byte string whose claimed length must not
    /// exceed `cap`, rejecting oversized prefixes with
    /// [`DecodeError::Malformed`] *before* any bytes are copied. Use this
    /// for fields whose length an untrusted peer controls (client
    /// payloads), where the plain [`Decoder::get_bytes`] bounds check
    /// against the remaining buffer is not a meaningful policy limit.
    pub fn get_bytes_capped(
        &mut self,
        cap: usize,
        context: &'static str,
    ) -> Result<Bytes, DecodeError> {
        let len = self.get_u32()? as usize;
        if len > cap {
            return Err(DecodeError::Malformed { context });
        }
        if self.buf.remaining() < len {
            return Err(DecodeError::BadLength {
                claimed: len,
                remaining: self.buf.remaining(),
            });
        }
        Ok(self.buf.copy_to_bytes(len))
    }

    /// Reads a fixed-width array.
    pub fn get_array<const N: usize>(&mut self) -> Result<[u8; N], DecodeError> {
        self.need(N)?;
        let mut out = [0u8; N];
        self.buf.copy_to_slice(&mut out);
        Ok(out)
    }

    /// Bytes left unread.
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }
}

/// Types encodable with this codec.
pub trait WireEncode {
    /// Appends `self` to the encoder.
    fn encode(&self, enc: &mut Encoder);

    /// Convenience one-shot encoding.
    fn to_wire(&self) -> Bytes {
        let mut enc = Encoder::new();
        self.encode(&mut enc);
        enc.finish()
    }
}

/// Types decodable with this codec.
pub trait WireDecode: Sized {
    /// Reads a value from the decoder.
    ///
    /// # Errors
    /// Returns [`DecodeError`] on truncated or malformed input.
    fn decode(dec: &mut Decoder) -> Result<Self, DecodeError>;
}

/// A symmetric whole-message codec, shared by the discrete-event simulator
/// (which only *models* wire sizes) and the real-socket transport (which
/// ships the actual bytes). Blanket-implemented for every
/// `WireEncode + WireDecode` type, so protocol message enums defined in
/// `iniva-consensus`, `iniva` and `iniva-gosig` serialize identically for
/// both backends.
///
/// The frame-level contract is strict: `from_frame(to_frame(m)) == m`, a
/// truncated buffer fails with an explicit error (never a panic), and
/// trailing bytes after a complete message are rejected — a frame is one
/// message, not a stream position.
pub trait Codec: WireEncode + WireDecode {
    /// Encodes `self` as one complete frame body.
    fn to_frame(&self) -> Bytes {
        self.to_wire()
    }

    /// Decodes one complete frame body.
    ///
    /// # Errors
    /// Returns [`DecodeError`] on truncated or malformed input, and
    /// [`DecodeError::TrailingBytes`] if the buffer holds more than one
    /// message.
    fn from_frame(bytes: Bytes) -> Result<Self, DecodeError> {
        let mut dec = Decoder::new(bytes);
        let v = Self::decode(&mut dec)?;
        if dec.remaining() > 0 {
            return Err(DecodeError::TrailingBytes {
                remaining: dec.remaining(),
            });
        }
        Ok(v)
    }
}

impl<T: WireEncode + WireDecode> Codec for T {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn primitives_roundtrip() {
        let mut e = Encoder::new();
        e.put_u8(7).put_u32(0xdead_beef).put_u64(u64::MAX);
        e.put_bytes(b"hello").put_array(&[1u8, 2, 3, 4]);
        let mut d = Decoder::new(e.finish());
        assert_eq!(d.get_u8().unwrap(), 7);
        assert_eq!(d.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(d.get_u64().unwrap(), u64::MAX);
        assert_eq!(&d.get_bytes().unwrap()[..], b"hello");
        assert_eq!(d.get_array::<4>().unwrap(), [1, 2, 3, 4]);
        assert_eq!(d.remaining(), 0);
    }

    #[test]
    fn truncated_inputs_error_cleanly() {
        let mut e = Encoder::new();
        e.put_u64(42);
        let bytes = e.finish();
        let mut d = Decoder::new(bytes.slice(0..5));
        assert_eq!(d.get_u64(), Err(DecodeError::UnexpectedEnd));
    }

    #[test]
    fn bad_length_prefix_detected() {
        let mut e = Encoder::new();
        e.put_u32(1000); // claims 1000 bytes follow
        e.put_u8(1);
        let mut d = Decoder::new(e.finish());
        match d.get_bytes() {
            Err(DecodeError::BadLength { claimed: 1000, .. }) => {}
            other => panic!("expected BadLength, got {other:?}"),
        }
    }

    #[test]
    fn empty_byte_string_roundtrips() {
        let mut e = Encoder::new();
        e.put_bytes(b"");
        let mut d = Decoder::new(e.finish());
        assert_eq!(d.get_bytes().unwrap().len(), 0);
    }

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Pair(u64, u8);

    impl WireEncode for Pair {
        fn encode(&self, enc: &mut Encoder) {
            enc.put_u64(self.0).put_u8(self.1);
        }
    }

    impl WireDecode for Pair {
        fn decode(dec: &mut Decoder) -> Result<Self, DecodeError> {
            Ok(Pair(dec.get_u64()?, dec.get_u8()?))
        }
    }

    #[test]
    fn u128_roundtrips() {
        let v = (77u128 << 64) | 0xdead_beef;
        let mut e = Encoder::new();
        e.put_u128(v).put_u128(u128::MAX).put_u128(0);
        let mut d = Decoder::new(e.finish());
        assert_eq!(d.get_u128().unwrap(), v);
        assert_eq!(d.get_u128().unwrap(), u128::MAX);
        assert_eq!(d.get_u128().unwrap(), 0);
        assert_eq!(d.remaining(), 0);
    }

    #[test]
    fn options_roundtrip_and_reject_bad_tags() {
        let mut e = Encoder::new();
        e.put_opt(&Some(Pair(9, 3))).put_opt::<Pair>(&None);
        let mut d = Decoder::new(e.finish());
        assert_eq!(d.get_opt::<Pair>().unwrap(), Some(Pair(9, 3)));
        assert_eq!(d.get_opt::<Pair>().unwrap(), None);

        let mut e = Encoder::new();
        e.put_u8(7);
        let mut d = Decoder::new(e.finish());
        assert_eq!(
            d.get_opt::<Pair>(),
            Err(DecodeError::InvalidTag {
                tag: 7,
                context: "Option"
            })
        );
    }

    #[test]
    fn codec_frames_are_exact() {
        let m = Pair(42, 1);
        assert_eq!(Pair::from_frame(m.to_frame()).unwrap(), m);
        // Truncation: explicit error, no panic.
        assert!(Pair::from_frame(m.to_frame().slice(0..5)).is_err());
        // Trailing garbage: rejected.
        let mut e = Encoder::new();
        m.encode(&mut e);
        e.put_u8(0xff);
        assert_eq!(
            Pair::from_frame(e.finish()),
            Err(DecodeError::TrailingBytes { remaining: 1 })
        );
    }

    proptest! {
        #[test]
        fn arbitrary_sequences_roundtrip(
            a in any::<u64>(),
            b in any::<u32>(),
            payload in proptest::collection::vec(any::<u8>(), 0..256),
        ) {
            let mut e = Encoder::new();
            e.put_u64(a).put_bytes(&payload).put_u32(b);
            let mut d = Decoder::new(e.finish());
            prop_assert_eq!(d.get_u64().unwrap(), a);
            prop_assert_eq!(&d.get_bytes().unwrap()[..], &payload[..]);
            prop_assert_eq!(d.get_u32().unwrap(), b);
            prop_assert_eq!(d.remaining(), 0);
        }
    }
}
