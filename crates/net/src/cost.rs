//! CPU cost model for cryptographic and protocol operations.
//!
//! The paper runs on real hardware where BLS verification dominates CPU; the
//! simulator charges equivalent virtual CPU time. Defaults are calibrated
//! from this repository's own Criterion benchmarks of the from-scratch
//! BLS12-381 implementation scaled to a production-grade library (blst is
//! ~25-40× faster than our correctness-first pairing; the *relative* costs —
//! verify ≫ aggregate > sign ≫ hash — are what shape the figures, and those
//! ratios match). Override any field to study sensitivity.

use crate::{Time, MICROS};

/// Virtual CPU costs (nanoseconds) for protocol operations.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Signing a block hash (scalar mul in G1).
    pub sign: Time,
    /// Verifying a single signature (two pairings via multi-pairing).
    pub verify_single: Time,
    /// Fixed cost of verifying an aggregate (the pairing product).
    pub verify_aggregate_base: Time,
    /// Additional cost per distinct signer in an aggregate (apk accumulation:
    /// one small-scalar G2 mul + add per signer).
    pub verify_aggregate_per_signer: Time,
    /// Combining two aggregates (G1 point addition — cheap).
    pub aggregate_combine: Time,
    /// Hashing/validating one byte of block payload.
    pub hash_per_byte: Time,
    /// Fixed per-message handling overhead (deserialization, dispatch).
    pub msg_overhead: Time,
}

impl Default for CostModel {
    /// Production-scale (blst-class) costs: sign ≈ 200 µs (hash-to-curve +
    /// G1 mul), aggregate verification ≈ 1.4 ms (two pairings) plus a
    /// per-signer apk-accumulation cost. Relative magnitudes
    /// (verify ≫ sign ≫ combine ≫ hash) match our own BLS12-381 benchmarks,
    /// scaled to a production library's absolute speed.
    fn default() -> Self {
        CostModel {
            sign: 200 * MICROS,
            // Individual vote verification at a collecting leader amortizes
            // across batch verification and the testbed's 12 cores; the
            // effective serial cost is well below a cold pairing.
            verify_single: 500 * MICROS,
            verify_aggregate_base: 1_400 * MICROS,
            verify_aggregate_per_signer: 120 * MICROS,
            aggregate_combine: 5 * MICROS,
            hash_per_byte: 3,
            msg_overhead: 10 * MICROS,
        }
    }
}

impl CostModel {
    /// Cost of verifying an aggregate carrying `signers` distinct signers.
    pub fn verify_aggregate(&self, signers: usize) -> Time {
        self.verify_aggregate_base + self.verify_aggregate_per_signer * signers as Time
    }

    /// Cost of batch-verifying aggregates spanning `groups` distinct
    /// messages and `signers` total distinct signers, via a
    /// random-linear-combination multi-pairing: one shared final
    /// exponentiation plus the signature-side Miller loop
    /// (`verify_aggregate_base / 2` together), one message-side Miller
    /// loop per distinct message (another `base / 2` each), and the usual
    /// per-signer apk accumulation (the per-item challenge scalar muls
    /// fold into the same term). A batch of one group degenerates to
    /// exactly [`Self::verify_aggregate`], so call sites can charge this
    /// unconditionally.
    pub fn verify_batch(&self, groups: usize, signers: usize) -> Time {
        self.verify_aggregate_base / 2
            + (groups as Time) * (self.verify_aggregate_base / 2)
            + self.verify_aggregate_per_signer * signers as Time
    }

    /// Cost of validating a block body of `bytes` payload bytes.
    pub fn validate_block(&self, bytes: usize) -> Time {
        self.hash_per_byte * bytes as Time
    }

    /// A cost model scaled by `factor` (e.g. 0.1 for 10× faster CPUs),
    /// useful for sensitivity/ablation benches.
    pub fn scaled(&self, factor: f64) -> Self {
        let s = |t: Time| -> Time { (t as f64 * factor).round() as Time };
        CostModel {
            sign: s(self.sign),
            verify_single: s(self.verify_single),
            verify_aggregate_base: s(self.verify_aggregate_base),
            verify_aggregate_per_signer: s(self.verify_aggregate_per_signer),
            aggregate_combine: s(self.aggregate_combine),
            hash_per_byte: s(self.hash_per_byte),
            msg_overhead: s(self.msg_overhead),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_verification_scales_with_signers() {
        let c = CostModel::default();
        assert!(c.verify_aggregate(10) > c.verify_aggregate(1));
        assert_eq!(
            c.verify_aggregate(10) - c.verify_aggregate(1),
            9 * c.verify_aggregate_per_signer
        );
    }

    #[test]
    fn batch_of_one_group_degenerates_to_aggregate_verification() {
        let c = CostModel::default();
        assert_eq!(c.verify_batch(1, 5), c.verify_aggregate(5));
        // Each extra distinct message adds one Miller loop, far below a
        // full standalone verification.
        let extra = c.verify_batch(4, 5) - c.verify_batch(1, 5);
        assert_eq!(extra, 3 * (c.verify_aggregate_base / 2));
        assert!(c.verify_batch(4, 20) < 4 * c.verify_aggregate(5));
    }

    #[test]
    fn scaling_is_linear() {
        let c = CostModel::default();
        let half = c.scaled(0.5);
        assert_eq!(half.sign, c.sign / 2);
        assert_eq!(half.verify_single, c.verify_single / 2);
    }
}
