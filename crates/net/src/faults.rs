//! Deterministic fault scenarios shared by both backends.
//!
//! A [`FaultPlan`] is a time-indexed script of crash, restart, partition
//! and slow-link events. The same plan replays against the discrete-event
//! simulator (via [`FaultPlan::run_on_sim`]) and against the live TCP
//! runtime (via `iniva_transport::cluster::ClusterFaults`), which is what
//! lets the Fig. 4 resilience sweeps — and any chaos test — compare the
//! two backends cell by cell: one seeded scenario, two executions.
//!
//! Victim selection for the paper's random-crash sweeps uses the seeded
//! shuffle the simulator-only harness (`iniva_sim::resilience`) has used
//! since the seed, so historical numbers are unchanged.

use crate::{Actor, NodeId, Simulation, Time};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One injectable fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultEvent {
    /// Crash `node`: it stops receiving, sending and firing timers.
    Crash(NodeId),
    /// Restart a crashed `node` under a fresh incarnation; it resumes
    /// inert and rejoins when the protocol next contacts it.
    Restart(NodeId),
    /// Process-level restart: the node comes back **from durable
    /// storage** — its in-memory protocol state is rebuilt from the
    /// write-ahead log, then it catches up via state transfer. On the
    /// simulator (which has no disk) this behaves as [`Self::Restart`]:
    /// the revived actor's retained memory plays the role of the
    /// recovered prefix. The live WAL-enabled cluster harness tears the
    /// whole runtime down on the preceding [`Self::Crash`] and rebuilds
    /// replica + transport from disk on this event.
    RestartFromDisk(NodeId),
    /// Symmetric partition: every link between group `a` and group `b`
    /// is cut, both directions.
    Partition {
        /// One side of the cut.
        a: Vec<NodeId>,
        /// The other side.
        b: Vec<NodeId>,
    },
    /// Asymmetric partition: only `from → to` links are cut; replies
    /// still flow.
    PartitionOneWay {
        /// Senders whose frames are dropped.
        from: Vec<NodeId>,
        /// Receivers they cannot reach.
        to: Vec<NodeId>,
    },
    /// Heal every cut link and remove every injected delay.
    HealAllLinks,
    /// Add `extra` one-way delay to every message on `from → to`.
    ///
    /// Backend nuance: the simulator adds pure propagation delay
    /// (messages overlap, throughput unchanged), while the live
    /// transport sleeps in the (single-threaded) outbound lane, which
    /// also serializes the link — a congested-link model. Crash and
    /// partition events behave identically on both backends; slow-link
    /// scenarios are approximations.
    SlowLink {
        /// Sending node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
        /// Injected delay (ns).
        extra: Time,
    },
}

/// A fault scheduled at a point in run time (ns from start).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedFault {
    /// When to inject, in ns of virtual (simulator) or wall (live) time.
    pub at: Time,
    /// What to inject.
    pub fault: FaultEvent,
}

/// A deterministic, replayable chaos scenario.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<TimedFault>,
}

impl FaultPlan {
    /// An empty plan (a fault-free run).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// The scheduled events, in injection order.
    pub fn events(&self) -> &[TimedFault] {
        &self.events
    }

    /// The sub-plan of events scheduled strictly after time zero. The
    /// live cluster harness injects time-zero events once, before any
    /// replica thread starts, and hands only this remainder to its
    /// wall-clock driver — `Restart` bumps an incarnation epoch, so
    /// re-applying it is **not** idempotent.
    pub fn deferred(&self) -> FaultPlan {
        FaultPlan {
            events: self.events.iter().filter(|e| e.at > 0).cloned().collect(),
        }
    }

    fn push(mut self, at: Time, fault: FaultEvent) -> Self {
        self.events.push(TimedFault { at, fault });
        // Keep injection order: by time, insertion order breaking ties.
        self.events.sort_by_key(|e| e.at);
        self
    }

    /// Schedules a crash of `node` at `at`.
    pub fn crash(self, at: Time, node: NodeId) -> Self {
        self.push(at, FaultEvent::Crash(node))
    }

    /// Schedules a restart of `node` at `at`.
    pub fn restart(self, at: Time, node: NodeId) -> Self {
        self.push(at, FaultEvent::Restart(node))
    }

    /// Schedules a restart-from-durable-storage of `node` at `at` (see
    /// [`FaultEvent::RestartFromDisk`]).
    pub fn restart_from_disk(self, at: Time, node: NodeId) -> Self {
        self.push(at, FaultEvent::RestartFromDisk(node))
    }

    /// Schedules a symmetric partition of `a` from `b` at `at`.
    pub fn partition(self, at: Time, a: &[NodeId], b: &[NodeId]) -> Self {
        self.push(
            at,
            FaultEvent::Partition {
                a: a.to_vec(),
                b: b.to_vec(),
            },
        )
    }

    /// Schedules a one-way partition (`from → to` cut) at `at`.
    pub fn partition_one_way(self, at: Time, from: &[NodeId], to: &[NodeId]) -> Self {
        self.push(
            at,
            FaultEvent::PartitionOneWay {
                from: from.to_vec(),
                to: to.to_vec(),
            },
        )
    }

    /// Schedules a heal of all links at `at`.
    pub fn heal_links(self, at: Time) -> Self {
        self.push(at, FaultEvent::HealAllLinks)
    }

    /// Schedules `extra` ns of injected delay on `from → to` at `at`.
    pub fn slow_link(self, at: Time, from: NodeId, to: NodeId, extra: Time) -> Self {
        self.push(at, FaultEvent::SlowLink { from, to, extra })
    }

    /// The committee `0..n` in the seeded shuffle order the resilience
    /// sweeps have always used: crash victims are `[..faults]`, and
    /// `[faults]` is a guaranteed-correct observer.
    pub fn shuffled_members(n: usize, seed: u64) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = (0..n as NodeId).collect();
        ids.shuffle(&mut StdRng::seed_from_u64(seed ^ 0x5eed));
        ids
    }

    /// The Fig. 4 fault model: `faults` crash victims chosen by the seeded
    /// shuffle, all crashed at `at`.
    pub fn random_crashes(n: usize, faults: usize, at: Time, seed: u64) -> Self {
        Self::shuffled_members(n, seed)
            .into_iter()
            .take(faults)
            .fold(FaultPlan::new(), |plan, node| plan.crash(at, node))
    }

    /// Replays the plan against the simulator, running it up to `until`.
    /// Events at time 0 are injected **before** the simulation starts
    /// (a node crashed at 0 never runs `on_start`, exactly as the
    /// pre-plan `Sim::crash()` harnesses behaved). Returns the number of
    /// simulator events executed.
    pub fn run_on_sim<A: Actor>(&self, sim: &mut Simulation<A>, until: Time) -> u64 {
        let mut executed = 0;
        for TimedFault { at, fault } in &self.events {
            if *at > until {
                break;
            }
            if *at > 0 {
                executed += sim.run_until(*at);
            }
            apply_to_sim(sim, fault);
        }
        executed + sim.run_until(until)
    }
}

/// Injects one fault into the simulator.
pub fn apply_to_sim<A: Actor>(sim: &mut Simulation<A>, fault: &FaultEvent) {
    match fault {
        FaultEvent::Crash(node) => sim.crash(*node),
        FaultEvent::Restart(node) | FaultEvent::RestartFromDisk(node) => sim.revive(*node),
        FaultEvent::Partition { a, b } => {
            for &x in a {
                for &y in b {
                    sim.block_link(x, y);
                    sim.block_link(y, x);
                }
            }
        }
        FaultEvent::PartitionOneWay { from, to } => {
            for &x in from {
                for &y in to {
                    sim.block_link(x, y);
                }
            }
        }
        FaultEvent::HealAllLinks => sim.heal_all_links(),
        FaultEvent::SlowLink { from, to, extra } => sim.set_link_delay(*from, *to, *extra),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Context, NetConfig, MILLIS};

    /// A node that pings its successor every 10 ms and counts receipts.
    struct Pinger {
        next: NodeId,
        received: u64,
    }

    impl Actor for Pinger {
        type Msg = ();

        fn on_start(&mut self, ctx: &mut Context<()>) {
            ctx.set_timer(10 * MILLIS, 0);
        }

        fn on_message(&mut self, _ctx: &mut Context<()>, _from: NodeId, _msg: ()) {
            self.received += 1;
        }

        fn on_timer(&mut self, ctx: &mut Context<()>, _id: u64) {
            ctx.send(self.next, (), 16);
            ctx.set_timer(10 * MILLIS, 0);
        }
    }

    fn ring(n: usize) -> Simulation<Pinger> {
        let actors = (0..n)
            .map(|i| Pinger {
                next: ((i + 1) % n) as NodeId,
                received: 0,
            })
            .collect();
        Simulation::new(
            NetConfig {
                base_latency: MILLIS,
                jitter: 0,
                bandwidth_bps: u64::MAX,
                seed: 1,
            },
            actors,
        )
    }

    #[test]
    fn events_stay_time_sorted() {
        let plan = FaultPlan::new()
            .heal_links(300)
            .crash(100, 2)
            .restart(200, 2)
            .crash(100, 3);
        let ats: Vec<Time> = plan.events().iter().map(|e| e.at).collect();
        assert_eq!(ats, vec![100, 100, 200, 300]);
        // Ties keep insertion order.
        assert_eq!(plan.events()[0].fault, FaultEvent::Crash(2));
        assert_eq!(plan.events()[1].fault, FaultEvent::Crash(3));
    }

    #[test]
    fn random_crashes_match_the_historic_shuffle() {
        let victims: Vec<NodeId> = FaultPlan::random_crashes(21, 4, 0, 9)
            .events()
            .iter()
            .map(|e| match e.fault {
                FaultEvent::Crash(n) => n,
                _ => panic!("only crashes expected"),
            })
            .collect();
        assert_eq!(victims.len(), 4);
        assert_eq!(victims, FaultPlan::shuffled_members(21, 9)[..4].to_vec());
        // Deterministic per seed.
        assert_eq!(
            FaultPlan::random_crashes(21, 4, 0, 9),
            FaultPlan::random_crashes(21, 4, 0, 9)
        );
    }

    #[test]
    fn crash_and_restart_on_sim() {
        let mut sim = ring(2);
        let plan = FaultPlan::new().crash(0, 1);
        plan.run_on_sim(&mut sim, 100 * MILLIS);
        assert_eq!(sim.actor(1).received, 0, "crashed-at-0 receives nothing");
        assert!(sim.is_crashed(1));

        // A restarted node receives again (its own timers are gone, but
        // peers still reach it).
        let mut sim = ring(2);
        let plan = FaultPlan::new().crash(0, 1).restart(50 * MILLIS, 1);
        plan.run_on_sim(&mut sim, 200 * MILLIS);
        assert!(!sim.is_crashed(1));
        assert!(
            sim.actor(1).received >= 10,
            "revived node must receive deliveries again ({})",
            sim.actor(1).received
        );
    }

    #[test]
    fn partition_cuts_and_heals_on_sim() {
        let mut sim = ring(2);
        let plan = FaultPlan::new()
            .partition(0, &[0], &[1])
            .heal_links(100 * MILLIS);
        plan.run_on_sim(&mut sim, 200 * MILLIS);
        // While cut, node 0's pings to 1 vanish (≈10 drops); after the
        // heal they land again.
        assert!(sim.link_drops() >= 8, "{} drops", sim.link_drops());
        assert!(
            sim.actor(1).received >= 8,
            "deliveries must resume after heal ({})",
            sim.actor(1).received
        );
    }

    #[test]
    fn one_way_partition_is_asymmetric_on_sim() {
        let mut sim = ring(2);
        let plan = FaultPlan::new().partition_one_way(0, &[0], &[1]);
        plan.run_on_sim(&mut sim, 100 * MILLIS);
        assert_eq!(sim.actor(1).received, 0, "0 → 1 is cut");
        assert!(sim.actor(0).received >= 8, "1 → 0 still flows");
    }

    #[test]
    fn slow_link_delays_deliveries_on_sim() {
        let mut sim = ring(2);
        let plan = FaultPlan::new().slow_link(0, 0, 1, 500 * MILLIS);
        plan.run_on_sim(&mut sim, 200 * MILLIS);
        // 10 ms cadence + 1 ms latency + 500 ms injected delay: nothing
        // sent by node 0 lands within 200 ms.
        assert_eq!(sim.actor(1).received, 0);
        assert!(sim.actor(0).received >= 8, "reverse direction unaffected");
    }
}
