//! Client-facing wire protocol: submit / ack / query on the shared
//! [`iniva_net::wire`] codec stack.
//!
//! The replica-to-replica protocol trusts its peers to the extent that
//! they hold committee keys; clients are untrusted by construction, so
//! this codec is stricter than the internal one: every variable-length
//! field carries an explicit cap checked *before* the bytes are copied
//! ([`Decoder::get_bytes_capped`]), and the stream framing enforces a
//! hard frame ceiling so a hostile length prefix can never drive an
//! allocation.
//!
//! Stream framing is the same shape as the peer transport: a
//! little-endian `u32` body length followed by one [`ClientMsg`] frame
//! body, one message per frame ([`Codec::from_frame`] rejects trailing
//! bytes).

use std::io::{self, Read, Write};

use bytes::Bytes;
use iniva_net::wire::{Codec, DecodeError, Decoder, Encoder, WireDecode, WireEncode};

/// Hard cap on a single client payload. Anything larger is rejected at
/// decode time with [`DecodeError::Malformed`] before allocation.
pub const MAX_CLIENT_PAYLOAD: usize = 64 * 1024;

/// Hard cap on a client frame body: the payload cap plus fixed-field
/// headroom. The stream reader drops the connection on anything larger.
pub const MAX_CLIENT_FRAME: usize = MAX_CLIENT_PAYLOAD + 64;

/// Admission verdict carried in a [`ClientMsg::SubmitAck`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitStatus {
    /// Admitted to the mempool; will be drafted into a block fee-first.
    Accepted,
    /// Shed: rate limit exceeded or mempool full at this fee level.
    /// The client may retry later (ideally with a higher fee).
    Busy,
    /// A submission with this (client, nonce) is already queued,
    /// in-flight, or was just committed.
    Duplicate,
}

impl SubmitStatus {
    fn tag(self) -> u8 {
        match self {
            SubmitStatus::Accepted => 0,
            SubmitStatus::Busy => 1,
            SubmitStatus::Duplicate => 2,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, DecodeError> {
        match tag {
            0 => Ok(SubmitStatus::Accepted),
            1 => Ok(SubmitStatus::Busy),
            2 => Ok(SubmitStatus::Duplicate),
            tag => Err(DecodeError::InvalidTag {
                tag,
                context: "SubmitStatus",
            }),
        }
    }
}

/// One message of the client protocol, in either direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientMsg {
    /// Client → replica: submit a request with a fee bid.
    Submit {
        /// Fee bid; the mempool drafts highest-fee-first and evicts
        /// lowest-fee-first when full.
        fee: u64,
        /// Client-chosen sequence number; (connection, nonce) pairs are
        /// deduplicated until the request commits or is abandoned.
        nonce: u64,
        /// Opaque request body, at most [`MAX_CLIENT_PAYLOAD`] bytes.
        payload: Bytes,
    },
    /// Replica → client: admission verdict for one `Submit`.
    SubmitAck {
        /// Echo of the submitted nonce.
        nonce: u64,
        /// The verdict.
        status: SubmitStatus,
    },
    /// Client → replica: has this block height committed yet?
    Query {
        /// The height being asked about.
        height: u64,
    },
    /// Replica → client: answer to a `Query`.
    QueryResponse {
        /// Echo of the queried height.
        height: u64,
        /// Highest committed height this replica's ingress tier has
        /// observed.
        committed_height: u64,
        /// Whether `height` is at or below the committed frontier.
        committed: bool,
    },
    /// Client → replica: push commit notifications for this connection's
    /// submissions over the connection instead of being polled via
    /// `Query`. Opt-in and sticky for the connection's lifetime; there is
    /// no reply — the acknowledgement is the first `Committed` push.
    Follow,
    /// Replica → client: a followed connection's submission committed.
    Committed {
        /// Echo of the submitted nonce.
        nonce: u64,
        /// Height of the block that carried it.
        height: u64,
    },
}

impl WireEncode for ClientMsg {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            ClientMsg::Submit {
                fee,
                nonce,
                payload,
            } => {
                enc.put_u8(0)
                    .put_u64(*fee)
                    .put_u64(*nonce)
                    .put_bytes(payload);
            }
            ClientMsg::SubmitAck { nonce, status } => {
                enc.put_u8(1).put_u64(*nonce).put_u8(status.tag());
            }
            ClientMsg::Query { height } => {
                enc.put_u8(2).put_u64(*height);
            }
            ClientMsg::QueryResponse {
                height,
                committed_height,
                committed,
            } => {
                enc.put_u8(3)
                    .put_u64(*height)
                    .put_u64(*committed_height)
                    .put_u8(u8::from(*committed));
            }
            ClientMsg::Follow => {
                enc.put_u8(4);
            }
            ClientMsg::Committed { nonce, height } => {
                enc.put_u8(5).put_u64(*nonce).put_u64(*height);
            }
        }
    }
}

impl WireDecode for ClientMsg {
    fn decode(dec: &mut Decoder) -> Result<Self, DecodeError> {
        match dec.get_u8()? {
            0 => Ok(ClientMsg::Submit {
                fee: dec.get_u64()?,
                nonce: dec.get_u64()?,
                payload: dec.get_bytes_capped(MAX_CLIENT_PAYLOAD, "client payload cap")?,
            }),
            1 => Ok(ClientMsg::SubmitAck {
                nonce: dec.get_u64()?,
                status: SubmitStatus::from_tag(dec.get_u8()?)?,
            }),
            2 => Ok(ClientMsg::Query {
                height: dec.get_u64()?,
            }),
            3 => {
                let height = dec.get_u64()?;
                let committed_height = dec.get_u64()?;
                let committed = match dec.get_u8()? {
                    0 => false,
                    1 => true,
                    tag => {
                        return Err(DecodeError::InvalidTag {
                            tag,
                            context: "QueryResponse.committed",
                        })
                    }
                };
                Ok(ClientMsg::QueryResponse {
                    height,
                    committed_height,
                    committed,
                })
            }
            4 => Ok(ClientMsg::Follow),
            5 => Ok(ClientMsg::Committed {
                nonce: dec.get_u64()?,
                height: dec.get_u64()?,
            }),
            tag => Err(DecodeError::InvalidTag {
                tag,
                context: "ClientMsg",
            }),
        }
    }
}

/// Writes one length-prefixed [`ClientMsg`] frame to `w`.
pub fn write_frame<W: Write>(w: &mut W, msg: &ClientMsg) -> io::Result<()> {
    let body = msg.to_frame();
    let len = u32::try_from(body.len()).map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            "client frame exceeds u32 length",
        )
    })?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&body)?;
    Ok(())
}

/// Reads one length-prefixed [`ClientMsg`] frame from `r`.
///
/// Returns `Ok(None)` on clean end-of-stream at a frame boundary. A
/// read timeout *before the first header byte* propagates as the
/// underlying `WouldBlock`/`TimedOut` error so pollers can check their
/// stop flag; once the header has started, the read persists until the
/// frame completes or the stream dies mid-frame (`UnexpectedEof`).
///
/// # Errors
/// `InvalidData` on frames over [`MAX_CLIENT_FRAME`] or bodies that fail
/// [`Codec::from_frame`] — both mean the peer is broken or hostile and
/// the connection should be dropped.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<ClientMsg>> {
    let mut header = [0u8; 4];
    let mut got = 0usize;
    while got < header.len() {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if got > 0
                    && (e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut) =>
            {
                // Mid-header: keep waiting, the frame has started.
            }
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_CLIENT_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("client frame length {len} exceeds cap {MAX_CLIENT_FRAME}"),
        ));
    }
    // CAP: `len` was checked against MAX_CLIENT_FRAME above; a hostile
    // length prefix can not size this allocation.
    let mut body = vec![0u8; len];
    let mut got = 0usize;
    while got < len {
        match r.read(&mut body[got..]) {
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(e) => return Err(e),
        }
    }
    ClientMsg::from_frame(Bytes::from(body))
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: ClientMsg) {
        assert_eq!(ClientMsg::from_frame(msg.to_frame()).unwrap(), msg);
    }

    #[test]
    fn all_variants_roundtrip() {
        roundtrip(ClientMsg::Submit {
            fee: 17,
            nonce: u64::MAX,
            payload: Bytes::copy_from_slice(b"pay"),
        });
        roundtrip(ClientMsg::SubmitAck {
            nonce: 3,
            status: SubmitStatus::Busy,
        });
        roundtrip(ClientMsg::Query { height: 9 });
        roundtrip(ClientMsg::QueryResponse {
            height: 9,
            committed_height: 12,
            committed: true,
        });
        roundtrip(ClientMsg::Follow);
        roundtrip(ClientMsg::Committed {
            nonce: 41,
            height: 7,
        });
    }

    #[test]
    fn oversized_payload_rejected_at_decode() {
        // Encode a Submit whose length prefix claims more than the cap;
        // the decoder must refuse before trying to copy the payload.
        let mut enc = Encoder::new();
        enc.put_u8(0).put_u64(1).put_u64(2);
        enc.put_u32((MAX_CLIENT_PAYLOAD + 1) as u32);
        let err = ClientMsg::from_frame(enc.finish()).unwrap_err();
        assert!(matches!(err, DecodeError::Malformed { .. }), "{err:?}");
    }

    #[test]
    fn max_sized_payload_accepted() {
        roundtrip(ClientMsg::Submit {
            fee: 0,
            nonce: 0,
            payload: Bytes::from(vec![0xabu8; MAX_CLIENT_PAYLOAD]),
        });
    }

    #[test]
    fn non_canonical_bool_rejected() {
        let mut enc = Encoder::new();
        enc.put_u8(3).put_u64(1).put_u64(2).put_u8(2);
        assert_eq!(
            ClientMsg::from_frame(enc.finish()),
            Err(DecodeError::InvalidTag {
                tag: 2,
                context: "QueryResponse.committed",
            })
        );
    }

    #[test]
    fn stream_framing_roundtrips_and_caps() {
        let msg = ClientMsg::Submit {
            fee: 5,
            nonce: 6,
            payload: Bytes::copy_from_slice(b"abc"),
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &msg).unwrap();
        write_frame(&mut buf, &ClientMsg::Query { height: 1 }).unwrap();
        let mut cursor = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), Some(msg));
        assert_eq!(
            read_frame(&mut cursor).unwrap(),
            Some(ClientMsg::Query { height: 1 })
        );
        assert_eq!(read_frame(&mut cursor).unwrap(), None);

        // A hostile frame header over the cap is refused without allocating.
        let huge = (MAX_CLIENT_FRAME as u32 + 1).to_le_bytes();
        let mut cursor = io::Cursor::new(huge.to_vec());
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
