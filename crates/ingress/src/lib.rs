//! Client ingress tier for the Iniva reproduction.
//!
//! Everything upstream of consensus lives here: the client wire
//! protocol ([`wire`]), the fee-ordered bounded [`mempool`] the
//! proposer drafts real blocks from, per-connection token-bucket
//! admission control ([`limiter`]), and the TCP [`server`] that ties
//! them together. The consensus side sees none of it directly — the
//! only coupling is the [`RequestSource`] hook on `ChainState`, which
//! the [`Mempool`] implements.
//!
//! Enable it on a live cluster with `ClusterBuilder::ingress` (shared
//! pool across in-process replicas) or `live_cluster --client-listen`
//! (one pool per process); drive it with the `ingress_load` bench.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod limiter;
pub mod mempool;
pub mod server;
pub mod wire;

/// Locks `m`, recovering the guard if a previous holder panicked.
///
/// The mempool and server mutexes protect plain collections that stay
/// structurally valid at any point the holder could panic; propagating
/// poison would let one panicking connection thread take down `draft` /
/// `committed` on the consensus path with it.
pub(crate) fn relock<T>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

pub use iniva_consensus::chain::RequestSource;
pub use limiter::TokenBucket;
pub use mempool::{CommitInbox, CommitNote, IngressOptions, IngressStats, Mempool};
pub use server::IngressServer;
pub use wire::{
    read_frame, write_frame, ClientMsg, SubmitStatus, MAX_CLIENT_FRAME, MAX_CLIENT_PAYLOAD,
};
