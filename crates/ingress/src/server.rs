//! The client-facing TCP listener: accepts connections, enforces
//! per-connection rate limits, and feeds admitted submits into the
//! shared [`Mempool`].
//!
//! Threading model: one nonblocking accept loop per server plus one
//! small-stack thread per client connection — client connections are
//! mostly idle (blocked in a read with a short timeout), so thousands
//! of them cost file descriptors and stacks, not CPU. The hot path per
//! submit is: frame read → bounded decode → token-bucket check →
//! mempool admission → ack write.
//!
//! Backpressure is explicit at two levels: a client over its token
//! budget gets a `Busy` ack (cheap, no shared state touched), and a
//! client that stops draining acks hits the connection's write timeout
//! and is dropped — consensus never waits on a slow client socket.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use crate::limiter::TokenBucket;
use crate::mempool::{IngressOptions, Mempool};
use crate::wire::{read_frame, write_frame, ClientMsg, SubmitStatus};

/// Stack size for connection threads: they hold one frame buffer and a
/// shallow call tree, so the default 8 MiB would waste address space at
/// thousands of connections.
const CONN_STACK: usize = 128 * 1024;

/// How long a connection read blocks before re-checking the stop flag.
const READ_POLL: Duration = Duration::from_millis(100);

/// How long an ack write may block before the client is judged
/// non-draining and dropped.
const WRITE_TIMEOUT: Duration = Duration::from_secs(1);

/// A running client listener. Dropping (or [`IngressServer::shutdown`])
/// stops the accept loop and joins every connection thread.
pub struct IngressServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl IngressServer {
    /// Starts serving clients on `listener`, admitting into `mempool`.
    pub fn start(
        listener: TcpListener,
        mempool: Arc<Mempool>,
        opts: &IngressOptions,
    ) -> io::Result<IngressServer> {
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            let opts = opts.clone();
            thread::Builder::new()
                .name(format!("ingress-accept-{}", local_addr.port()))
                .spawn(move || accept_loop(listener, mempool, opts, stop, conns))?
        };
        Ok(IngressServer {
            local_addr,
            stop,
            accept: Some(accept),
            conns,
        })
    }

    /// The address clients connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting, signals every connection thread, and joins them.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let handles = std::mem::take(&mut *crate::relock(&self.conns));
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for IngressServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(
    listener: TcpListener,
    mempool: Arc<Mempool>,
    opts: IngressOptions,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let client = mempool.next_client_id();
                let pool = Arc::clone(&mempool);
                let stop = Arc::clone(&stop);
                let opts = opts.clone();
                let handle = thread::Builder::new()
                    .name(format!("ingress-conn-{client}"))
                    .stack_size(CONN_STACK)
                    .spawn(move || {
                        let _ = serve_connection(stream, client, pool, &opts, &stop);
                    });
                // Thread exhaustion sheds the connection (the closure —
                // and the stream it owns — is dropped with the error),
                // and the server keeps accepting.
                if let Ok(h) = handle {
                    crate::relock(&conns).push(h);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn serve_connection(
    mut stream: TcpStream,
    client: u64,
    mempool: Arc<Mempool>,
    opts: &IngressOptions,
    stop: &AtomicBool,
) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(READ_POLL))?;
    stream.set_write_timeout(Some(WRITE_TIMEOUT))?;
    let mut bucket = TokenBucket::new(opts.rate_per_client, opts.burst);
    // Present after a `Follow`: commit notes to push between reads. The
    // READ_POLL tick bounds push latency at ~100 ms on an idle connection.
    let mut inbox: Option<Arc<crate::mempool::CommitInbox>> = None;
    let result = loop {
        if stop.load(Ordering::SeqCst) {
            break Ok(());
        }
        if let Some(ib) = &inbox {
            let mut dead = false;
            for note in ib.drain() {
                let push = ClientMsg::Committed {
                    nonce: note.nonce,
                    height: note.height,
                };
                if write_frame(&mut stream, &push).is_err() {
                    dead = true;
                    break;
                }
            }
            if dead {
                break Ok(());
            }
        }
        let msg = match read_frame(&mut stream) {
            Ok(Some(msg)) => msg,
            Ok(None) => break Ok(()), // clean disconnect
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue; // idle poll tick; re-check stop and the inbox
            }
            Err(_) => break Ok(()), // hostile frame or dead socket: drop
        };
        let reply = match msg {
            ClientMsg::Submit {
                fee,
                nonce,
                payload,
            } => {
                let status = if bucket.try_take() {
                    mempool.submit(client, nonce, fee, payload.len())
                } else {
                    mempool.note_rate_limited();
                    SubmitStatus::Busy
                };
                ClientMsg::SubmitAck { nonce, status }
            }
            ClientMsg::Query { height } => {
                let committed_height = mempool.committed_height();
                ClientMsg::QueryResponse {
                    height,
                    committed_height,
                    committed: height <= committed_height && committed_height > 0,
                }
            }
            ClientMsg::Follow => {
                // No reply: the acknowledgement is the first push.
                inbox = Some(mempool.follow(client));
                continue;
            }
            // Server-to-client messages arriving here mean a broken peer.
            ClientMsg::SubmitAck { .. }
            | ClientMsg::QueryResponse { .. }
            | ClientMsg::Committed { .. } => break Ok(()),
        };
        if write_frame(&mut stream, &reply).is_err() {
            break Ok(()); // non-draining or dead client
        }
    };
    if inbox.is_some() {
        mempool.unfollow(client);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn start_pool_server(opts: IngressOptions) -> (Arc<Mempool>, IngressServer) {
        let pool = Arc::new(Mempool::new(&opts));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let server = IngressServer::start(listener, Arc::clone(&pool), &opts).unwrap();
        (pool, server)
    }

    fn submit(stream: &mut TcpStream, fee: u64, nonce: u64) -> SubmitStatus {
        write_frame(
            stream,
            &ClientMsg::Submit {
                fee,
                nonce,
                payload: Bytes::copy_from_slice(b"req"),
            },
        )
        .unwrap();
        match read_frame(stream).unwrap() {
            Some(ClientMsg::SubmitAck { nonce: n, status }) => {
                assert_eq!(n, nonce);
                status
            }
            other => panic!("expected ack, got {other:?}"),
        }
    }

    #[test]
    fn submits_flow_end_to_end_and_rate_limit_sheds() {
        let (pool, server) = start_pool_server(IngressOptions {
            capacity: 1024,
            rate_per_client: 1, // one refill/sec: only the burst passes
            burst: 4,
        });
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut accepted = 0;
        let mut busy = 0;
        for nonce in 0..8 {
            match submit(&mut stream, 10, nonce) {
                SubmitStatus::Accepted => accepted += 1,
                SubmitStatus::Busy => busy += 1,
                SubmitStatus::Duplicate => panic!("unexpected duplicate"),
            }
        }
        assert_eq!(accepted, 4);
        assert_eq!(busy, 4);
        // Replay of an admitted nonce (tokens refill too slowly, but the
        // dedup check happens first only when a token is available —
        // give the bucket a second).
        thread::sleep(Duration::from_millis(1100));
        assert_eq!(submit(&mut stream, 10, 0), SubmitStatus::Duplicate);
        let stats = pool.stats();
        assert_eq!(stats.admitted, 4);
        assert_eq!(stats.shed_busy, 4);
        assert_eq!(stats.duplicates, 1);
        server.shutdown();
    }

    #[test]
    fn query_tracks_committed_height() {
        use iniva_consensus::chain::RequestSource;
        let (pool, server) = start_pool_server(IngressOptions::default());
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(submit(&mut stream, 1, 0), SubmitStatus::Accepted);
        assert_eq!(pool.draft(0, 10), 1);
        pool.committed(5, 0, 1);
        write_frame(&mut stream, &ClientMsg::Query { height: 4 }).unwrap();
        match read_frame(&mut stream).unwrap() {
            Some(ClientMsg::QueryResponse {
                height: 4,
                committed_height: 5,
                committed: true,
            }) => {}
            other => panic!("unexpected reply: {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn follow_pushes_commits_without_polling() {
        use iniva_consensus::chain::RequestSource;
        let (pool, server) = start_pool_server(IngressOptions::default());
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        write_frame(&mut stream, &ClientMsg::Follow).unwrap();
        assert_eq!(submit(&mut stream, 1, 42), SubmitStatus::Accepted);
        assert_eq!(pool.draft(0, 10), 1);
        pool.committed(3, 0, 1);
        // The commit arrives with no Query issued.
        match read_frame(&mut stream).unwrap() {
            Some(ClientMsg::Committed {
                nonce: 42,
                height: 3,
            }) => {}
            other => panic!("expected commit push, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn hostile_oversized_frame_drops_connection_not_server() {
        let (pool, server) = start_pool_server(IngressOptions::default());
        let mut bad = TcpStream::connect(server.local_addr()).unwrap();
        bad.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        use std::io::Write;
        bad.write_all(&(crate::wire::MAX_CLIENT_FRAME as u32 + 1).to_le_bytes())
            .unwrap();
        // The hostile connection gets dropped...
        let mut probe = [0u8; 1];
        use std::io::Read;
        assert_eq!(bad.read(&mut probe).unwrap_or(0), 0);
        // ...while a well-behaved client still gets served.
        let mut good = TcpStream::connect(server.local_addr()).unwrap();
        good.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        assert_eq!(submit(&mut good, 1, 0), SubmitStatus::Accepted);
        assert_eq!(pool.stats().admitted, 1);
        server.shutdown();
    }
}
