//! Per-connection token-bucket rate limiting.
//!
//! Each ingress connection thread owns one bucket; a submit that finds
//! the bucket empty is acked `Busy` without ever touching the shared
//! mempool lock, so a flooding client pays only its own thread's time.

use std::time::Instant;

/// A token bucket: `rate` tokens/sec refill up to a `burst` ceiling,
/// one token per admitted submit.
#[derive(Debug)]
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    /// A bucket refilling at `rate_per_sec` with `burst` capacity,
    /// starting full. `rate_per_sec == 0` disables limiting entirely.
    pub fn new(rate_per_sec: u64, burst: u64) -> TokenBucket {
        TokenBucket {
            rate: rate_per_sec as f64,
            burst: (burst.max(1)) as f64,
            tokens: (burst.max(1)) as f64,
            last: Instant::now(),
        }
    }

    /// Takes one token if available.
    pub fn try_take(&mut self) -> bool {
        self.try_take_at(Instant::now())
    }

    /// Clock-injected variant for deterministic tests.
    pub fn try_take_at(&mut self, now: Instant) -> bool {
        if self.rate == 0.0 {
            return true;
        }
        let dt = now.saturating_duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + dt * self.rate).min(self.burst);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn burst_then_shed_then_refill() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(10, 5);
        // The full burst passes...
        for _ in 0..5 {
            assert!(b.try_take_at(t0));
        }
        // ...then the bucket is dry at the same instant...
        assert!(!b.try_take_at(t0));
        // ...and refills at 10/sec: 100 ms buys exactly one token.
        let t1 = t0 + Duration::from_millis(100);
        assert!(b.try_take_at(t1));
        assert!(!b.try_take_at(t1));
    }

    #[test]
    fn refill_is_capped_at_burst() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(1_000, 3);
        for _ in 0..3 {
            assert!(b.try_take_at(t0));
        }
        // An hour of refill still only buys the burst depth.
        let t1 = t0 + Duration::from_secs(3600);
        for _ in 0..3 {
            assert!(b.try_take_at(t1));
        }
        assert!(!b.try_take_at(t1));
    }

    #[test]
    fn zero_rate_disables_limiting() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(0, 1);
        for _ in 0..10_000 {
            assert!(b.try_take_at(t0));
        }
    }
}
