//! Bounded, fee-ordered mempool with (client, nonce) dedup.
//!
//! The mempool is the bridge between untrusted client traffic and the
//! proposer: admission happens on ingress connection threads via
//! [`Mempool::submit`], and whichever replica currently proposes drains
//! it through the [`RequestSource`] hook (`draft` claims the
//! highest-fee entries for a block's sequence range, `committed`
//! settles a range once the commit rule fires and returns
//! submit-to-commit latencies).
//!
//! Accounting invariant, preserved end to end:
//! `committed ≤ drafted ≤ admitted ≤ offered`. Every counter below is
//! monotone; `admitted − (drafted + evicted)` is the current queue
//! depth, and drafted entries either commit or are eventually
//! abandoned (their block's view failed) — the same open-loop
//! trade-off the synthetic draft cursor makes.
//!
//! Policy:
//! - **ordering** — highest fee drafts first; FIFO within a fee level.
//! - **full** — a new submission evicts the cheapest queued entry only
//!   if it outbids it (strictly higher fee); the evicted client may
//!   resubmit. Otherwise the newcomer is shed with an explicit `Busy`.
//! - **dedup** — (client, nonce) pairs stay reserved from admission
//!   until commit or abandonment, so replayed submits get `Duplicate`
//!   instead of burning block space.
//!
//! Blocks in this reproduction carry size-modeled payloads (`batch_start`,
//! `batch_len`, `payload_per_req`), so the mempool accounts for payload
//! *sizes* and fee ordering but drops the opaque payload bytes at
//! admission — what flows into a block is the admission itself.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use iniva_consensus::chain::RequestSource;
use iniva_obs::{Counter, EventKind, Gauge, Histogram, Registry, Tracer};

use crate::wire::SubmitStatus;

/// Ingress tier configuration: mempool bounds plus the per-connection
/// admission rate. One struct serves the cluster builder, the TOML
/// config, and the CLI.
#[derive(Debug, Clone)]
pub struct IngressOptions {
    /// Maximum queued (admitted, not yet drafted) entries.
    pub capacity: usize,
    /// Sustained per-connection submit rate (submits/sec) enforced by a
    /// token bucket on each connection thread; `0` disables limiting.
    pub rate_per_client: u64,
    /// Token bucket depth: how large a burst a client may front-load.
    pub burst: u64,
}

impl Default for IngressOptions {
    fn default() -> Self {
        IngressOptions {
            capacity: 65_536,
            rate_per_client: 1_000,
            burst: 256,
        }
    }
}

/// An admitted entry waiting in the queue.
struct Queued {
    client: u64,
    nonce: u64,
    admitted_ns: u64,
}

/// A drafted entry awaiting commit, keyed by its block sequence number.
struct Drafted {
    client: u64,
    nonce: u64,
    admitted_ns: u64,
}

#[derive(Default)]
struct Inner {
    /// Admission order id → entry. Order ids are unique forever.
    queued: HashMap<u64, Queued>,
    /// (fee, Reverse(order)): max element = highest fee, oldest within
    /// the fee (drafting pops the back); min element = lowest fee,
    /// newest within the fee (eviction pops the front).
    by_fee: BTreeSet<(u64, Reverse<u64>)>,
    /// Reserved (client, nonce) pairs: queued or drafted-not-settled.
    dedup: HashSet<(u64, u64)>,
    /// seq → drafted entry, settled (or abandoned) in seq order.
    ledger: BTreeMap<u64, Drafted>,
    next_order: u64,
}

/// Monotone counters snapshot; see the module docs for the invariant.
#[derive(Debug, Clone, Copy, Default)]
pub struct IngressStats {
    /// Submits that reached admission (including ones shed there) plus
    /// rate-limited submits acked `Busy` on the connection thread.
    pub offered: u64,
    /// Submits admitted to the queue.
    pub admitted: u64,
    /// Submits refused as (client, nonce) replays.
    pub duplicates: u64,
    /// Submits acked `Busy` by the per-connection token bucket.
    pub shed_busy: u64,
    /// Submits acked `Busy` because the queue was full and the fee did
    /// not outbid the cheapest queued entry.
    pub shed_full: u64,
    /// Admitted entries later displaced by a higher-fee submission.
    pub evicted: u64,
    /// Entries drafted into proposed blocks.
    pub drafted: u64,
    /// Drafted entries whose block committed.
    pub committed: u64,
    /// Drafted entries given up on (failed views, overwritten ranges).
    pub abandoned: u64,
    /// Current queue depth.
    pub depth: u64,
    /// Highest committed block height observed.
    pub committed_height: u64,
}

/// One commit notification for a followed connection: the submission
/// identified by `nonce` settled in the block at `height`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitNote {
    /// The client-chosen nonce of the committed submission.
    pub nonce: u64,
    /// Height of the block that carried it.
    pub height: u64,
}

/// Pending notifications beyond this are dropped oldest-first: a client
/// that stops reading cannot grow replica memory, and a dropped note
/// degrades to the pre-push world (the client falls back to `Query`).
const INBOX_CAP: usize = 4096;

/// A per-connection mailbox of [`CommitNote`]s, filled by
/// [`RequestSource::committed`] on whichever thread settles the block and
/// drained by the connection that called [`Mempool::follow`].
pub struct CommitInbox {
    notes: Mutex<VecDeque<CommitNote>>,
    /// Invoked (outside all locks) after new notes land, so a
    /// readiness-driven server can schedule a flush.
    waker: Mutex<Option<Box<dyn Fn() + Send + Sync>>>,
}

impl CommitInbox {
    fn new() -> CommitInbox {
        CommitInbox {
            notes: Mutex::new(VecDeque::new()),
            waker: Mutex::new(None),
        }
    }

    /// Installs the wakeup hook run after each push batch.
    pub fn set_waker(&self, waker: Box<dyn Fn() + Send + Sync>) {
        *crate::relock(&self.waker) = Some(waker);
    }

    /// Takes every pending note.
    pub fn drain(&self) -> Vec<CommitNote> {
        crate::relock(&self.notes).drain(..).collect()
    }

    fn push(&self, note: CommitNote) {
        let mut g = crate::relock(&self.notes);
        if g.len() >= INBOX_CAP {
            g.pop_front();
        }
        g.push_back(note);
    }

    fn wake(&self) {
        if let Some(w) = crate::relock(&self.waker).as_ref() {
            // A waker is caller-supplied code running on the commit path;
            // if it panics, the panic must stop here — otherwise one broken
            // follower connection kills `committed()` for the whole node.
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(w));
        }
    }
}

/// The shared mempool. In-process clusters share one instance across
/// every replica's ingress listener (mirroring the shared committee
/// keyring); multi-process deployments get one per process.
pub struct Mempool {
    inner: Mutex<Inner>,
    capacity: usize,
    /// Drafted-but-unsettled entries beyond this are abandoned oldest
    /// first, bounding memory under sustained view failures.
    ledger_cap: usize,
    epoch: Instant,
    next_client: AtomicU64,
    committed_height: AtomicU64,
    /// client id → commit inbox, for connections that sent `Follow`.
    subscribers: Mutex<HashMap<u64, Arc<CommitInbox>>>,
    registry: Registry,
    offered: Counter,
    admitted: Counter,
    duplicates: Counter,
    shed_busy: Counter,
    shed_full: Counter,
    evicted: Counter,
    drafted: Counter,
    committed: Counter,
    abandoned: Counter,
    payload_bytes: Counter,
    depth: Gauge,
    height_gauge: Gauge,
    latency: Histogram,
    tracer: Mutex<Tracer>,
}

impl Mempool {
    /// Creates an empty mempool with the given bounds.
    pub fn new(opts: &IngressOptions) -> Mempool {
        let registry = Registry::new();
        Mempool {
            inner: Mutex::new(Inner::default()),
            capacity: opts.capacity.max(1),
            ledger_cap: opts.capacity.max(1).saturating_mul(4),
            epoch: Instant::now(),
            next_client: AtomicU64::new(0),
            committed_height: AtomicU64::new(0),
            subscribers: Mutex::new(HashMap::new()),
            offered: registry.counter("ingress.offered"),
            admitted: registry.counter("ingress.admitted"),
            duplicates: registry.counter("ingress.duplicates"),
            shed_busy: registry.counter("ingress.shed_busy"),
            shed_full: registry.counter("ingress.shed_full"),
            evicted: registry.counter("ingress.evicted"),
            drafted: registry.counter("ingress.drafted"),
            committed: registry.counter("ingress.committed"),
            abandoned: registry.counter("ingress.abandoned"),
            payload_bytes: registry.counter("ingress.payload_bytes"),
            depth: registry.gauge("ingress.depth"),
            height_gauge: registry.gauge("ingress.committed_height"),
            latency: registry.histogram("ingress.submit_to_commit_ns"),
            registry,
            tracer: Mutex::new(Tracer::disabled()),
        }
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    /// Allocates a connection-scoped client id, unique across every
    /// server sharing this pool.
    pub fn next_client_id(&self) -> u64 {
        // ORDER: the counter only needs unique values; no other memory is
        // published through it.
        self.next_client.fetch_add(1, Ordering::Relaxed)
    }

    /// Attaches a tracer; drafts emit [`EventKind::IngressBatch`].
    pub fn set_tracer(&self, tracer: Tracer) {
        *crate::relock(&self.tracer) = tracer;
    }

    /// Admission decision for one submit. Counted as offered either way.
    pub fn submit(&self, client: u64, nonce: u64, fee: u64, payload_len: usize) -> SubmitStatus {
        self.offered.inc();
        let mut g = crate::relock(&self.inner);
        if !g.dedup.insert((client, nonce)) {
            self.duplicates.inc();
            return SubmitStatus::Duplicate;
        }
        if g.queued.len() >= self.capacity {
            // Full: the newcomer must outbid the cheapest queued entry.
            match g.by_fee.iter().next().copied() {
                Some((low_fee, Reverse(order))) if low_fee < fee => {
                    g.by_fee.remove(&(low_fee, Reverse(order)));
                    // by_fee and queued are kept in sync, but a desync must
                    // degrade to a mis-counted eviction, not a panic on the
                    // submit path.
                    if let Some(old) = g.queued.remove(&order) {
                        g.dedup.remove(&(old.client, old.nonce));
                    }
                    self.evicted.inc();
                }
                _ => {
                    g.dedup.remove(&(client, nonce));
                    self.shed_full.inc();
                    return SubmitStatus::Busy;
                }
            }
        }
        let order = g.next_order;
        g.next_order += 1;
        g.queued.insert(
            order,
            Queued {
                client,
                nonce,
                admitted_ns: self.now_ns(),
            },
        );
        g.by_fee.insert((fee, Reverse(order)));
        self.admitted.inc();
        self.payload_bytes.add(payload_len as u64);
        self.depth.set(g.queued.len() as u64);
        SubmitStatus::Accepted
    }

    /// Records a submit shed by a connection's token bucket (the
    /// connection thread acks `Busy` without touching the queue).
    pub fn note_rate_limited(&self) {
        self.offered.inc();
        self.shed_busy.inc();
    }

    /// Highest committed block height settled through this pool.
    pub fn committed_height(&self) -> u64 {
        // ORDER: monotone watermark read for acks/queries; callers need no
        // happens-before with the commit that raised it.
        self.committed_height.load(Ordering::Relaxed)
    }

    /// The `ingress.*` metrics series (counters, depth gauge, and the
    /// submit-to-commit latency histogram).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The submit-to-commit latency histogram (nanoseconds).
    pub fn latency(&self) -> &Histogram {
        &self.latency
    }

    /// Typed counters snapshot.
    pub fn stats(&self) -> IngressStats {
        IngressStats {
            offered: self.offered.get(),
            admitted: self.admitted.get(),
            duplicates: self.duplicates.get(),
            shed_busy: self.shed_busy.get(),
            shed_full: self.shed_full.get(),
            evicted: self.evicted.get(),
            drafted: self.drafted.get(),
            committed: self.committed.get(),
            abandoned: self.abandoned.get(),
            depth: self.depth.get(),
            committed_height: self.committed_height(),
        }
    }

    /// Current queue depth.
    pub fn depth(&self) -> usize {
        crate::relock(&self.inner).queued.len()
    }

    /// Subscribes `client`'s connection to commit pushes: every later
    /// settlement of one of its drafted submissions lands in the returned
    /// inbox (idempotent — a repeated `Follow` reuses the same inbox).
    pub fn follow(&self, client: u64) -> Arc<CommitInbox> {
        Arc::clone(
            crate::relock(&self.subscribers)
                .entry(client)
                .or_insert_with(|| Arc::new(CommitInbox::new())),
        )
    }

    /// Drops `client`'s subscription (connection closed).
    pub fn unfollow(&self, client: u64) {
        crate::relock(&self.subscribers).remove(&client);
    }
}

impl RequestSource for Mempool {
    fn draft(&self, start: u64, max: u32) -> u32 {
        let mut g = crate::relock(&self.inner);
        let mut n: u32 = 0;
        while n < max {
            let Some(&(fee, Reverse(order))) = g.by_fee.iter().next_back() else {
                break;
            };
            g.by_fee.remove(&(fee, Reverse(order)));
            // A by_fee/queued desync must skip the stale fee entry, not
            // panic on the proposer's draft path.
            let Some(e) = g.queued.remove(&order) else {
                continue;
            };
            let seq = start + n as u64;
            if let Some(prev) = g.ledger.insert(
                seq,
                Drafted {
                    client: e.client,
                    nonce: e.nonce,
                    admitted_ns: e.admitted_ns,
                },
            ) {
                // A competing proposer already drafted this seq (forked
                // view); the earlier claim can never settle.
                g.dedup.remove(&(prev.client, prev.nonce));
                self.abandoned.inc();
            }
            n += 1;
        }
        // Bound drafted-but-unsettled state: abandon the oldest ranges
        // (their views failed long ago) and free the nonces.
        while g.ledger.len() > self.ledger_cap {
            let Some((_, d)) = g.ledger.pop_first() else {
                break; // len() > cap >= 1 implies non-empty; never panic here
            };
            g.dedup.remove(&(d.client, d.nonce));
            self.abandoned.inc();
        }
        if n > 0 {
            self.drafted.add(n as u64);
        }
        self.depth.set(g.queued.len() as u64);
        let depth = g.queued.len() as u64;
        drop(g);
        let tracer = crate::relock(&self.tracer).clone();
        if tracer.enabled() && n > 0 {
            tracer.emit(
                tracer.now(),
                EventKind::IngressBatch {
                    start,
                    len: n,
                    depth,
                },
            );
        }
        n
    }

    fn committed(&self, height: u64, start: u64, len: u32) -> Vec<u64> {
        let now = self.now_ns();
        let mut latencies = Vec::new();
        let mut settled: Vec<(u64, u64)> = Vec::new();
        let mut g = crate::relock(&self.inner);
        for seq in start..start.saturating_add(len as u64) {
            if let Some(d) = g.ledger.remove(&seq) {
                g.dedup.remove(&(d.client, d.nonce));
                settled.push((d.client, d.nonce));
                let lat = now.saturating_sub(d.admitted_ns);
                self.latency.record(lat);
                latencies.push(lat);
            }
        }
        drop(g);
        if !latencies.is_empty() {
            self.committed.add(latencies.len() as u64);
        }
        // ORDER: monotone watermark; readers only compare against it (see
        // `committed_height`), no other memory is published through it.
        self.committed_height.fetch_max(height, Ordering::Relaxed);
        self.height_gauge.raise(height);
        // Commit-push: deliver notes to followed connections. Inboxes are
        // collected under the subscriber lock but filled and woken outside
        // it, so a waker can never deadlock back into the mempool.
        if !settled.is_empty() {
            let mut notify: Vec<(Arc<CommitInbox>, u64)> = Vec::new();
            {
                let subs = crate::relock(&self.subscribers);
                if !subs.is_empty() {
                    for &(client, nonce) in &settled {
                        if let Some(inbox) = subs.get(&client) {
                            notify.push((Arc::clone(inbox), nonce));
                        }
                    }
                }
            }
            for (inbox, nonce) in &notify {
                inbox.push(CommitNote {
                    nonce: *nonce,
                    height,
                });
            }
            let mut woken: Vec<*const CommitInbox> = Vec::new();
            for (inbox, _) in &notify {
                let p = Arc::as_ptr(inbox);
                if !woken.contains(&p) {
                    woken.push(p);
                    inbox.wake();
                }
            }
        }
        latencies
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_pool(capacity: usize) -> Mempool {
        Mempool::new(&IngressOptions {
            capacity,
            ..IngressOptions::default()
        })
    }

    #[test]
    fn duplicate_nonces_rejected_until_committed() {
        let pool = small_pool(8);
        assert_eq!(pool.submit(1, 7, 10, 4), SubmitStatus::Accepted);
        assert_eq!(pool.submit(1, 7, 99, 4), SubmitStatus::Duplicate);
        // Still reserved while drafted.
        assert_eq!(pool.draft(0, 8), 1);
        assert_eq!(pool.submit(1, 7, 99, 4), SubmitStatus::Duplicate);
        // Freed after commit.
        assert_eq!(pool.committed(1, 0, 1).len(), 1);
        assert_eq!(pool.submit(1, 7, 99, 4), SubmitStatus::Accepted);
    }

    #[test]
    fn draft_pops_highest_fee_fifo_within_fee() {
        let pool = small_pool(8);
        pool.submit(0, 0, 5, 0);
        pool.submit(1, 0, 9, 0);
        pool.submit(2, 0, 5, 0);
        pool.submit(3, 0, 9, 0);
        assert_eq!(pool.draft(0, 3), 3);
        // seq 0 = fee 9 from client 1 (oldest of the 9s), seq 1 = fee 9
        // from client 3, seq 2 = fee 5 from client 0. Settle and check
        // which nonces free up in that order.
        pool.committed(1, 0, 2);
        assert_eq!(pool.submit(1, 0, 1, 0), SubmitStatus::Accepted);
        assert_eq!(pool.submit(3, 0, 1, 0), SubmitStatus::Accepted);
        assert_eq!(pool.submit(0, 0, 1, 0), SubmitStatus::Duplicate); // still drafted
    }

    #[test]
    fn full_pool_sheds_unless_outbid() {
        let pool = small_pool(2);
        assert_eq!(pool.submit(0, 0, 5, 0), SubmitStatus::Accepted);
        assert_eq!(pool.submit(1, 0, 7, 0), SubmitStatus::Accepted);
        // Equal fee does not displace.
        assert_eq!(pool.submit(2, 0, 5, 0), SubmitStatus::Busy);
        // A higher bid evicts the cheapest (client 0) and frees its nonce.
        assert_eq!(pool.submit(3, 0, 6, 0), SubmitStatus::Accepted);
        assert_eq!(pool.submit(0, 0, 8, 0), SubmitStatus::Accepted);
        let s = pool.stats();
        assert_eq!(s.shed_full, 1);
        assert_eq!(s.evicted, 2); // fee-6 entry evicted in turn by fee-8
        assert_eq!(s.depth, 2);
    }

    #[test]
    fn eviction_prefers_newest_within_cheapest_fee() {
        let pool = small_pool(2);
        pool.submit(0, 0, 5, 0);
        pool.submit(1, 0, 5, 0);
        assert_eq!(pool.submit(2, 0, 9, 0), SubmitStatus::Accepted);
        // Client 1 (newest fee-5) was evicted — its nonce is free again
        // (Busy, not Duplicate: the still-full pool sheds the low bid) —
        // while client 0 remains queued and dedup'd.
        assert_eq!(pool.submit(1, 0, 1, 0), SubmitStatus::Busy);
        assert_eq!(pool.submit(0, 0, 1, 0), SubmitStatus::Duplicate);
    }

    #[test]
    fn accounting_invariant_holds_under_churn() {
        let pool = small_pool(16);
        for i in 0..200u64 {
            pool.submit(i % 8, i, i % 13, 32);
        }
        let mut next = 0u64;
        for round in 0..10u64 {
            let n = pool.draft(next, 7);
            if round % 2 == 0 {
                pool.committed(round + 1, next, n);
            } // odd rounds: abandoned range
            next += n as u64;
        }
        let s = pool.stats();
        assert!(s.committed <= s.drafted, "{s:?}");
        assert!(s.drafted <= s.admitted, "{s:?}");
        assert!(s.admitted <= s.offered, "{s:?}");
        assert_eq!(s.admitted - s.drafted - s.evicted, s.depth, "{s:?}");
        assert_eq!(
            s.offered,
            s.admitted + s.duplicates + s.shed_full + s.shed_busy,
            "{s:?}"
        );
    }

    #[test]
    fn committed_latencies_settle_once() {
        let pool = small_pool(8);
        pool.submit(0, 0, 1, 0);
        pool.submit(0, 1, 1, 0);
        assert_eq!(pool.draft(10, 8), 2);
        assert_eq!(pool.committed(3, 10, 2).len(), 2);
        // A second replica reporting the same range settles nothing new.
        assert_eq!(pool.committed(3, 10, 2).len(), 0);
        assert_eq!(pool.committed_height(), 3);
        assert_eq!(pool.latency().count(), 2);
    }

    #[test]
    fn followed_connections_get_commit_notes() {
        let pool = small_pool(8);
        let inbox = pool.follow(1);
        let woke = Arc::new(AtomicU64::new(0));
        let w = Arc::clone(&woke);
        inbox.set_waker(Box::new(move || {
            w.fetch_add(1, Ordering::SeqCst);
        }));
        pool.submit(1, 7, 10, 4);
        pool.submit(2, 3, 10, 4); // client 2 did not follow
        assert_eq!(pool.draft(0, 8), 2);
        pool.committed(5, 0, 2);
        assert_eq!(
            inbox.drain(),
            vec![CommitNote {
                nonce: 7,
                height: 5
            }]
        );
        assert!(woke.load(Ordering::SeqCst) >= 1, "waker never ran");
        // After unfollow, later commits are no longer delivered.
        pool.unfollow(1);
        pool.submit(1, 8, 10, 4);
        assert_eq!(pool.draft(2, 8), 1);
        pool.committed(6, 2, 1);
        assert!(inbox.drain().is_empty());
    }

    #[test]
    fn ledger_overflow_abandons_oldest_and_frees_nonces() {
        let pool = Mempool::new(&IngressOptions {
            capacity: 4,
            ..IngressOptions::default()
        });
        // ledger_cap = 16; draft 20 entries across failed views.
        for i in 0..20u64 {
            assert_eq!(pool.submit(9, i, 1, 0), SubmitStatus::Accepted);
            assert_eq!(pool.draft(i, 1), 1);
        }
        let s = pool.stats();
        assert_eq!(s.abandoned, 4);
        // The abandoned nonces (oldest four) are submittable again.
        assert_eq!(pool.submit(9, 0, 1, 0), SubmitStatus::Accepted);
        assert_eq!(pool.submit(9, 19, 1, 0), SubmitStatus::Duplicate);
    }

    /// Poisons `m` the way a real incident would: a thread panics while
    /// holding the guard.
    fn poison<T: Send>(m: &std::sync::Mutex<T>) {
        std::thread::scope(|s| {
            let _ = s
                .spawn(|| {
                    let _g = m.lock().unwrap();
                    panic!("poison");
                })
                .join();
        });
        assert!(m.lock().is_err(), "mutex should be poisoned");
    }

    /// Regression: a panic on one server thread used to poison the pool
    /// and turn every later `submit`/`draft`/`committed` into a panic,
    /// taking down all client connections at once. `relock` recovers the
    /// guard, so the pool keeps serving.
    #[test]
    fn poisoned_pool_keeps_serving_submit_draft_commit() {
        let pool = small_pool(8);
        assert_eq!(pool.submit(1, 0, 10, 4), SubmitStatus::Accepted);
        poison(&pool.inner);
        assert_eq!(pool.submit(1, 1, 10, 4), SubmitStatus::Accepted);
        assert_eq!(pool.draft(0, 8), 2);
        assert_eq!(pool.committed(1, 0, 2).len(), 2);
        assert_eq!(pool.stats().committed, 2);
    }

    /// Regression: a follower's waker is caller-supplied code running on
    /// the commit path; one panicking waker used to unwind through
    /// `committed()` and kill settlement for the whole node.
    #[test]
    fn panicking_waker_does_not_unwind_into_committed() {
        let pool = small_pool(8);
        let inbox = pool.follow(1);
        inbox.set_waker(Box::new(|| panic!("broken follower")));
        assert_eq!(pool.submit(1, 0, 10, 4), SubmitStatus::Accepted);
        assert_eq!(pool.draft(0, 8), 1);
        // The waker panics inside this call; it must still settle.
        assert_eq!(pool.committed(1, 0, 1).len(), 1);
        assert_eq!(inbox.drain().len(), 1);
        // And the inbox stays usable afterwards.
        assert_eq!(pool.submit(1, 1, 10, 4), SubmitStatus::Accepted);
        assert_eq!(pool.draft(1, 8), 1);
        assert_eq!(pool.committed(2, 1, 1).len(), 1);
        assert_eq!(inbox.drain().len(), 1);
    }
}
