//! A bounded seen-message cache.
//!
//! Outbound lanes stamp every frame with a per-sender sequence number; the
//! receive path records `(sender, epoch, seq)` triples and drops
//! duplicates. The normal point-to-point flow never repeats a triple —
//! duplicates appear when a reconnecting peer conservatively replays its
//! last frame, or when a future gossip layer forwards the same message
//! along two paths.
//!
//! The *epoch* is the sender's incarnation counter from the connection
//! handshake: a replica healed from an injected crash restarts its
//! sequence numbers under a bumped epoch, so its fresh `(epoch', 1)`
//! frames are distinct from the pre-crash `(epoch, 1)` entries and are
//! never falsely deduped.
//!
//! The cache is a FIFO ring over a hash set: O(1) insert/lookup, strictly
//! bounded memory, oldest entries evicted first.

use iniva_net::NodeId;
use std::collections::{HashSet, VecDeque};

/// One remembered delivery: sender, sender incarnation epoch, sequence.
type Key = (NodeId, u32, u64);

/// Bounded `(sender, epoch, sequence)` duplicate filter.
#[derive(Debug)]
pub struct DedupCache {
    seen: HashSet<Key>,
    order: VecDeque<Key>,
    capacity: usize,
}

impl DedupCache {
    /// Creates a cache remembering the most recent `capacity` entries.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "dedup cache needs capacity");
        DedupCache {
            seen: HashSet::with_capacity(capacity),
            order: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Records `(from, epoch, seq)`. Returns `true` if the triple is new
    /// (deliver) and `false` if it was already seen (drop).
    pub fn insert(&mut self, from: NodeId, epoch: u32, seq: u64) -> bool {
        if !self.seen.insert((from, epoch, seq)) {
            return false;
        }
        self.order.push_back((from, epoch, seq));
        if self.order.len() > self.capacity {
            let oldest = self.order.pop_front().expect("ring not empty");
            self.seen.remove(&oldest);
        }
        true
    }

    /// Entries currently remembered.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_delivery_accepted_duplicate_dropped() {
        let mut c = DedupCache::new(8);
        assert!(c.insert(1, 0, 10));
        assert!(!c.insert(1, 0, 10));
        assert!(
            c.insert(2, 0, 10),
            "same seq from another sender is distinct"
        );
        assert!(c.insert(1, 0, 11));
    }

    #[test]
    fn capacity_evicts_oldest_first() {
        let mut c = DedupCache::new(3);
        for seq in 0..3 {
            assert!(c.insert(0, 0, seq));
        }
        assert!(c.insert(0, 0, 3), "new entry");
        assert_eq!(c.len(), 3);
        // seq 0 was evicted: a replay of it is (wrongly but boundedly)
        // accepted again, while the still-cached ones are dropped.
        assert!(c.insert(0, 0, 0));
        assert!(!c.insert(0, 0, 2));
    }

    #[test]
    fn cache_never_grows_past_its_bound() {
        let mut c = DedupCache::new(16);
        for seq in 0..10_000u64 {
            c.insert(3, (seq % 5) as u32, seq);
            assert!(c.len() <= 16);
        }
        assert_eq!(c.len(), 16);
    }

    #[test]
    fn replay_across_reconnect_same_epoch_dropped() {
        // A reconnecting lane replays its last frame under the *same*
        // epoch (the process did not restart): still a duplicate.
        let mut c = DedupCache::new(64);
        assert!(c.insert(5, 2, 41));
        // ... connection drops, lane redials, replays seq 41 ...
        assert!(!c.insert(5, 2, 41));
        assert!(c.insert(5, 2, 42));
    }

    #[test]
    fn healed_replica_with_fresh_epoch_not_falsely_deduped() {
        let mut c = DedupCache::new(64);
        // First incarnation sends seqs 1..=3.
        for seq in 1..=3 {
            assert!(c.insert(7, 0, seq));
        }
        // Healed incarnation restarts its sequence space under epoch 1:
        // the same numeric seqs must be delivered, not deduped.
        for seq in 1..=3 {
            assert!(c.insert(7, 1, seq), "epoch 1 seq {seq} falsely deduped");
        }
        // But replays *within* the new epoch are still dropped.
        assert!(!c.insert(7, 1, 2));
        // And a late replay from the dead epoch stays dropped too.
        assert!(!c.insert(7, 0, 3));
    }
}
