//! A bounded seen-message cache.
//!
//! Outbound lanes stamp every frame with a per-sender sequence number; the
//! receive path records `(sender, seq)` pairs and drops duplicates. The
//! normal point-to-point flow never repeats a pair — duplicates appear when
//! a reconnecting peer conservatively replays its last frame, or when a
//! future gossip layer forwards the same message along two paths.
//!
//! The cache is a FIFO ring over a hash set: O(1) insert/lookup, strictly
//! bounded memory, oldest entries evicted first.

use iniva_net::NodeId;
use std::collections::{HashSet, VecDeque};

/// Bounded `(sender, sequence)` duplicate filter.
#[derive(Debug)]
pub struct DedupCache {
    seen: HashSet<(NodeId, u64)>,
    order: VecDeque<(NodeId, u64)>,
    capacity: usize,
}

impl DedupCache {
    /// Creates a cache remembering the most recent `capacity` entries.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "dedup cache needs capacity");
        DedupCache {
            seen: HashSet::with_capacity(capacity),
            order: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Records `(from, seq)`. Returns `true` if the pair is new (deliver)
    /// and `false` if it was already seen (drop).
    pub fn insert(&mut self, from: NodeId, seq: u64) -> bool {
        if !self.seen.insert((from, seq)) {
            return false;
        }
        self.order.push_back((from, seq));
        if self.order.len() > self.capacity {
            let oldest = self.order.pop_front().expect("ring not empty");
            self.seen.remove(&oldest);
        }
        true
    }

    /// Entries currently remembered.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_delivery_accepted_duplicate_dropped() {
        let mut c = DedupCache::new(8);
        assert!(c.insert(1, 10));
        assert!(!c.insert(1, 10));
        assert!(c.insert(2, 10), "same seq from another sender is distinct");
        assert!(c.insert(1, 11));
    }

    #[test]
    fn capacity_evicts_oldest_first() {
        let mut c = DedupCache::new(3);
        for seq in 0..3 {
            assert!(c.insert(0, seq));
        }
        assert!(c.insert(0, 3), "new entry");
        assert_eq!(c.len(), 3);
        // seq 0 was evicted: a replay of it is (wrongly but boundedly)
        // accepted again, while the still-cached ones are dropped.
        assert!(c.insert(0, 0));
        assert!(!c.insert(0, 2));
    }
}
