//! The peer fabric: a listener accepting inbound connections (one reader
//! thread per connection) and a reconnecting outbound lane per peer.
//!
//! Connections are asymmetric: each node *dials* every peer for its own
//! outbound traffic and *accepts* the peers' dials for inbound traffic, so
//! a pair of nodes shares two TCP connections and no tie-breaking is
//! needed. Outbound lanes queue frames while the peer is unreachable and
//! reconnect with capped exponential backoff — a replica that restarts is
//! re-integrated without any action from the others.

use crate::dedup::DedupCache;
use crate::frame;
use iniva_net::wire::Codec;
use iniva_net::NodeId;
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// A message delivered by the transport.
#[derive(Debug)]
pub struct Incoming<M> {
    /// Sending node.
    pub from: NodeId,
    /// Decoded message.
    pub msg: M,
}

/// Transport-level counters (all monotonic).
#[derive(Debug, Default)]
pub struct TransportStats {
    /// Frames sent (including loopback self-sends).
    pub msgs_sent: AtomicU64,
    /// Encoded body bytes sent.
    pub bytes_sent: AtomicU64,
    /// Frames delivered to the receiver.
    pub msgs_received: AtomicU64,
    /// Encoded body bytes received.
    pub bytes_received: AtomicU64,
    /// Duplicate frames dropped by the dedup cache.
    pub dups_dropped: AtomicU64,
    /// Outbound reconnect attempts that succeeded.
    pub reconnects: AtomicU64,
}

/// A plain-value copy of [`TransportStats`], taken at a point in time.
#[derive(Debug, Clone, Copy, Default)]
pub struct TransportSnapshot {
    /// Frames sent (including loopback self-sends).
    pub msgs_sent: u64,
    /// Encoded body bytes sent.
    pub bytes_sent: u64,
    /// Frames delivered to the receiver.
    pub msgs_received: u64,
    /// Encoded body bytes received.
    pub bytes_received: u64,
    /// Duplicate frames dropped by the dedup cache.
    pub dups_dropped: u64,
    /// Outbound reconnect attempts that succeeded.
    pub reconnects: u64,
}

impl TransportStats {
    fn bump(counter: &AtomicU64, by: u64) {
        counter.fetch_add(by, Ordering::Relaxed);
    }

    /// A point-in-time copy of all counters.
    pub fn snapshot(&self) -> TransportSnapshot {
        TransportSnapshot {
            msgs_sent: self.msgs_sent.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            msgs_received: self.msgs_received.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            dups_dropped: self.dups_dropped.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
        }
    }
}

/// How many `(sender, seq)` pairs the duplicate filter remembers.
const DEDUP_CAPACITY: usize = 4096;

/// Backoff bounds for outbound reconnects.
const BACKOFF_START: Duration = Duration::from_millis(10);
const BACKOFF_CAP: Duration = Duration::from_millis(500);

/// Read timeout on inbound connections; bounds how long a reader thread
/// takes to observe shutdown.
const READ_TIMEOUT: Duration = Duration::from_millis(200);

/// Idle gap after which an outbound lane probes its connection for a dead
/// peer before the next write (a busy lane learns from write errors
/// instead, keeping the hot path probe-free).
const PROBE_AFTER_IDLE: Duration = Duration::from_millis(50);

enum Outbound {
    Frame(Vec<u8>),
    Stop,
}

struct PeerLane {
    tx: Sender<Outbound>,
    handle: JoinHandle<()>,
}

/// The TCP message fabric for one node.
pub struct Transport<M> {
    node: NodeId,
    local_addr: SocketAddr,
    lanes: HashMap<NodeId, PeerLane>,
    /// Loopback: self-sends skip the socket layer entirely.
    incoming_tx: Sender<Incoming<M>>,
    incoming_rx: Receiver<Incoming<M>>,
    stats: Arc<TransportStats>,
    shutdown: Arc<AtomicBool>,
    listener_handle: Option<JoinHandle<()>>,
    seq: u64,
}

impl<M: Codec + Send + 'static> Transport<M> {
    /// Binds a listener on `listen` (use port 0 for an ephemeral port) and
    /// starts outbound lanes towards every peer in `peers` (entries whose
    /// id equals `node` are ignored, so a full cluster map can be passed).
    pub fn bind(
        node: NodeId,
        listen: SocketAddr,
        peers: &[(NodeId, SocketAddr)],
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(listen)?;
        Self::start(node, listener, peers)
    }

    /// Starts the fabric over an already-bound listener. Useful when a
    /// whole cluster binds ephemeral ports first and exchanges the actual
    /// addresses afterwards (see [`crate::cluster`]).
    pub fn start(
        node: NodeId,
        listener: TcpListener,
        peers: &[(NodeId, SocketAddr)],
    ) -> io::Result<Self> {
        let local_addr = listener.local_addr()?;
        let (incoming_tx, incoming_rx) = mpsc::channel();
        let stats = Arc::new(TransportStats::default());
        let shutdown = Arc::new(AtomicBool::new(false));

        let listener_handle = {
            let tx = incoming_tx.clone();
            let stats = Arc::clone(&stats);
            let shutdown = Arc::clone(&shutdown);
            listener.set_nonblocking(true)?;
            thread::Builder::new()
                .name(format!("iniva-accept-{node}"))
                .spawn(move || accept_loop(listener, tx, stats, shutdown))
                .expect("spawn accept thread")
        };

        let mut lanes = HashMap::new();
        for &(peer, addr) in peers {
            if peer == node {
                continue;
            }
            let (tx, rx) = mpsc::channel();
            let stats = Arc::clone(&stats);
            let shutdown = Arc::clone(&shutdown);
            let handle = thread::Builder::new()
                .name(format!("iniva-out-{node}-to-{peer}"))
                .spawn(move || outbound_loop(node, addr, rx, stats, shutdown))
                .expect("spawn outbound thread");
            lanes.insert(peer, PeerLane { tx, handle });
        }

        Ok(Transport {
            node,
            local_addr,
            lanes,
            incoming_tx,
            incoming_rx,
            stats,
            shutdown,
            listener_handle: Some(listener_handle),
            seq: 0,
        })
    }

    /// This node's id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The listener's actual address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Transport counters.
    pub fn stats(&self) -> &TransportStats {
        &self.stats
    }

    /// Sends `msg` to `to`. Self-sends are delivered directly; unknown
    /// destinations and oversized messages are dropped (matching the
    /// simulator, where a send to a crashed node vanishes). Never blocks:
    /// frames queue on the outbound lane until the peer is reachable.
    pub fn send(&mut self, to: NodeId, msg: &M) {
        let body = msg.to_frame();
        if to == self.node {
            TransportStats::bump(&self.stats.msgs_sent, 1);
            TransportStats::bump(&self.stats.bytes_sent, body.len() as u64);
            TransportStats::bump(&self.stats.msgs_received, 1);
            TransportStats::bump(&self.stats.bytes_received, body.len() as u64);
            // Re-decode instead of cloning: M need not be Clone, and the
            // loopback path then exercises the same codec as the sockets.
            if let Ok(decoded) = M::from_frame(body) {
                let _ = self.incoming_tx.send(Incoming {
                    from: to,
                    msg: decoded,
                });
            }
            return;
        }
        let Some(lane) = self.lanes.get(&to) else {
            return;
        };
        // Enforce the same bound the receiver's parser enforces: a frame it
        // would reject as corrupt must never be queued (the lane would
        // reconnect and replay it forever).
        let Ok(len) = u32::try_from(body.len() + 8) else {
            return;
        };
        if len > frame::MAX_FRAME_BYTES {
            return;
        }
        TransportStats::bump(&self.stats.msgs_sent, 1);
        TransportStats::bump(&self.stats.bytes_sent, body.len() as u64);
        self.seq += 1;
        let mut framed = Vec::with_capacity(12 + body.len());
        framed.extend_from_slice(&len.to_le_bytes());
        framed.extend_from_slice(&self.seq.to_le_bytes());
        framed.extend_from_slice(&body);
        let _ = lane.tx.send(Outbound::Frame(framed));
    }

    /// Receives the next message, waiting up to `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Incoming<M>> {
        self.incoming_rx.recv_timeout(timeout).ok()
    }

    /// Receives without waiting.
    pub fn try_recv(&self) -> Option<Incoming<M>> {
        self.incoming_rx.try_recv().ok()
    }

    /// Stops all threads and closes the listener. Called by `Drop`; exposed
    /// for explicit, joined shutdown in tests.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for (_, lane) in self.lanes.drain() {
            let _ = lane.tx.send(Outbound::Stop);
            let _ = lane.handle.join();
        }
        if let Some(h) = self.listener_handle.take() {
            let _ = h.join();
        }
    }
}

impl<M> Drop for Transport<M> {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for (_, lane) in self.lanes.drain() {
            let _ = lane.tx.send(Outbound::Stop);
            let _ = lane.handle.join();
        }
        if let Some(h) = self.listener_handle.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop<M: Codec + Send + 'static>(
    listener: TcpListener,
    tx: Sender<Incoming<M>>,
    stats: Arc<TransportStats>,
    shutdown: Arc<AtomicBool>,
) {
    // One duplicate filter for the whole node, shared across connections:
    // a frame replayed on a *new* connection after a reconnect must still
    // be recognized as already delivered.
    let dedup = Arc::new(Mutex::new(DedupCache::new(DEDUP_CAPACITY)));
    let mut readers: Vec<JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let tx = tx.clone();
                let stats = Arc::clone(&stats);
                let shutdown = Arc::clone(&shutdown);
                let dedup = Arc::clone(&dedup);
                let reader = thread::Builder::new()
                    .name("iniva-reader".into())
                    .spawn(move || reader_loop(stream, tx, stats, shutdown, dedup))
                    .expect("spawn reader thread");
                readers.push(reader);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(20));
            }
            Err(_) => break,
        }
    }
    for r in readers {
        let _ = r.join();
    }
}

fn reader_loop<M: Codec>(
    mut stream: TcpStream,
    tx: Sender<Incoming<M>>,
    stats: Arc<TransportStats>,
    shutdown: Arc<AtomicBool>,
    dedup: Arc<Mutex<DedupCache>>,
) {
    // The accept loop may hand over a non-blocking socket; readers block
    // with a timeout instead so they can observe shutdown. Reads append to
    // a buffer and frames are parsed incrementally, so a timeout landing
    // mid-frame never loses stream position.
    if stream.set_nonblocking(false).is_err()
        || stream.set_read_timeout(Some(READ_TIMEOUT)).is_err()
    {
        return;
    }
    let mut buf: Vec<u8> = Vec::with_capacity(64 * 1024);
    let mut chunk = [0u8; 64 * 1024];
    let mut from: Option<NodeId> = None;
    while !shutdown.load(Ordering::SeqCst) {
        // Drain every complete unit currently buffered.
        loop {
            if from.is_none() {
                match frame::parse_handshake(&buf) {
                    Ok(Some((consumed, peer))) => {
                        buf.drain(..consumed);
                        from = Some(peer);
                        continue;
                    }
                    Ok(None) => break,
                    Err(_) => return,
                }
            }
            match frame::parse_frame(&buf) {
                Ok(frame::FrameParse::Incomplete) => break,
                Ok(frame::FrameParse::Complete {
                    consumed,
                    seq,
                    body,
                }) => {
                    let sender = from.expect("handshake complete");
                    let decoded = M::from_frame(bytes::Bytes::from(buf[body].to_vec()));
                    buf.drain(..consumed);
                    let Ok(msg) = decoded else {
                        return; // undecodable body: drop the connection
                    };
                    let fresh = dedup.lock().expect("dedup lock").insert(sender, seq);
                    if !fresh {
                        TransportStats::bump(&stats.dups_dropped, 1);
                        continue;
                    }
                    TransportStats::bump(&stats.msgs_received, 1);
                    TransportStats::bump(&stats.bytes_received, (consumed - 12) as u64);
                    if tx.send(Incoming { from: sender, msg }).is_err() {
                        return; // receiver gone
                    }
                }
                Err(_) => return, // corrupt framing: the peer will redial
            }
        }
        match io::Read::read(&mut stream, &mut chunk) {
            Ok(0) => return, // EOF
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if would_block(&e) => continue,
            Err(_) => return,
        }
    }
}

/// Probes an outbound (write-only) connection for peer shutdown: lanes
/// never expect inbound data, so a successful zero-byte read means EOF and
/// a reset means the peer is gone. Unexpected data is discarded.
fn conn_is_dead(stream: &mut TcpStream) -> bool {
    if stream.set_nonblocking(true).is_err() {
        return true;
    }
    let mut probe = [0u8; 256];
    let dead = match io::Read::read(stream, &mut probe) {
        Ok(0) => true,
        Ok(_) => false,
        Err(e) if would_block(&e) => false,
        Err(_) => true,
    };
    if stream.set_nonblocking(false).is_err() {
        return true;
    }
    dead
}

fn would_block(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut | io::ErrorKind::Interrupted
    )
}

fn outbound_loop(
    node: NodeId,
    addr: SocketAddr,
    rx: Receiver<Outbound>,
    stats: Arc<TransportStats>,
    shutdown: Arc<AtomicBool>,
) {
    let mut conn: Option<TcpStream> = None;
    let mut backoff = BACKOFF_START;
    let mut last_write = Instant::now();
    'main: while !shutdown.load(Ordering::SeqCst) {
        let framed = match rx.recv_timeout(Duration::from_millis(200)) {
            Ok(Outbound::Frame(f)) => f,
            Ok(Outbound::Stop) | Err(RecvTimeoutError::Disconnected) => return,
            Err(RecvTimeoutError::Timeout) => continue,
        };
        // Deliver this frame, reconnecting as often as needed.
        loop {
            if shutdown.load(Ordering::SeqCst) {
                return;
            }
            if conn.is_none() {
                if let Ok(mut stream) =
                    TcpStream::connect_timeout(&addr, Duration::from_millis(500))
                {
                    if stream.set_nodelay(true).is_ok()
                        && frame::write_handshake(&mut stream, node).is_ok()
                    {
                        TransportStats::bump(&stats.reconnects, 1);
                        conn = Some(stream);
                        backoff = BACKOFF_START;
                    }
                }
                if conn.is_none() {
                    thread::sleep(backoff);
                    backoff = (backoff * 2).min(BACKOFF_CAP);
                    continue;
                }
            }
            let stream = conn.as_mut().expect("connected");
            // A dead peer turns writes into silent local-buffer successes
            // until the RST arrives. Probe for EOF before writing — but
            // only after an idle gap: on a busy lane the previous write
            // would have surfaced the error, and probing every frame costs
            // three syscalls on the hot path.
            if last_write.elapsed() >= PROBE_AFTER_IDLE && conn_is_dead(stream) {
                conn = None;
                continue;
            }
            let stream = conn.as_mut().expect("connected");
            match std::io::Write::write_all(stream, &framed) {
                Ok(()) => {
                    last_write = Instant::now();
                    continue 'main;
                }
                Err(_) => {
                    // Connection died mid-write: reconnect and resend this
                    // frame. The receiver's dedup cache absorbs the case
                    // where the write had actually gone through.
                    conn = None;
                }
            }
        }
    }
}
