//! The peer fabric: a listener accepting inbound connections and a
//! reconnecting outbound lane per peer, driven by one of two engines
//! selected via [`TransportOptions::backend`] — the epoll reactor
//! ([`crate::reactor`], default: every socket on one poller thread) or the
//! original thread-per-connection fabric (one reader thread per inbound
//! connection plus one blocking lane thread per peer).
//!
//! Connections are asymmetric: each node *dials* every peer for its own
//! outbound traffic and *accepts* the peers' dials for inbound traffic, so
//! a pair of nodes shares two TCP connections and no tie-breaking is
//! needed. Outbound lanes queue frames while the peer is unreachable and
//! reconnect with capped exponential backoff — a replica that restarts is
//! re-integrated without any action from the others.
//!
//! Lanes are **bounded** ([`TransportOptions::lane_capacity`], drop-oldest
//! policy): a peer that stays partitioned or crashed for a long chaos run
//! cannot grow the sender's memory without bound. Fault injection — crash
//! via [`NodeFaults`], link block/delay via [`LinkFaults`] — is filtered
//! on the send path, in the lanes and on the reader path; every injected
//! drop is counted in [`TransportStats::faults_dropped`].

use crate::dedup::DedupCache;
use crate::faults::{LinkFaults, NodeFaults};
use crate::frame;
use iniva_net::wire::Codec;
use iniva_net::NodeId;
use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// A message delivered by the transport.
#[derive(Debug)]
pub struct Incoming<M> {
    /// Sending node.
    pub from: NodeId,
    /// Decoded message.
    pub msg: M,
}

/// Which connection engine a [`Transport`] runs on.
///
/// Both speak the identical wire protocol and fault semantics; they
/// differ only in how sockets are driven, so the two can be compared
/// differentially on the same test suite (CI runs both).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportBackend {
    /// Thread-per-connection: one reader thread per inbound connection
    /// plus one blocking outbound-lane thread per peer. Simple, but
    /// thread count scales with cluster size.
    Threaded,
    /// One epoll reactor thread ([`crate::reactor`]) owning every socket:
    /// non-blocking I/O, coalesced `writev` flushes, zero-copy frame
    /// decode, and (via [`Transport::serve_clients`]) client ingress on
    /// the same poller. The default.
    Reactor,
}

impl Default for TransportBackend {
    /// Reads `INIVA_TRANSPORT_BACKEND` (`"threaded"` / `"reactor"`), so
    /// CI can run the whole suite against either engine; defaults to
    /// [`TransportBackend::Reactor`].
    fn default() -> Self {
        match std::env::var("INIVA_TRANSPORT_BACKEND").as_deref() {
            Ok("threaded") => TransportBackend::Threaded,
            _ => TransportBackend::Reactor,
        }
    }
}

/// Tuning knobs for a [`Transport`].
#[derive(Debug, Clone, Copy)]
pub struct TransportOptions {
    /// Max frames queued per outbound lane; when full the **oldest**
    /// queued frame is evicted (counted in
    /// [`TransportStats::lane_evicted`]). Protocol traffic is dominated by
    /// the freshest view, so shedding the stalest backlog first is the
    /// policy that lets a healed peer catch up fastest.
    pub lane_capacity: usize,
    /// The connection engine (see [`TransportBackend`]).
    pub backend: TransportBackend,
}

impl Default for TransportOptions {
    fn default() -> Self {
        TransportOptions {
            lane_capacity: 16_384,
            backend: TransportBackend::default(),
        }
    }
}

/// Transport-level counters (monotonic except the `queue_depth` gauge).
#[derive(Debug, Default)]
pub struct TransportStats {
    /// Frames sent (including loopback self-sends).
    pub msgs_sent: AtomicU64,
    /// Encoded body bytes sent.
    pub bytes_sent: AtomicU64,
    /// Frames delivered to the receiver.
    pub msgs_received: AtomicU64,
    /// Encoded body bytes received.
    pub bytes_received: AtomicU64,
    /// Duplicate frames dropped by the dedup cache.
    pub dups_dropped: AtomicU64,
    /// Outbound reconnect attempts that succeeded.
    pub reconnects: AtomicU64,
    /// Frames dropped by injected faults (node down, link blocked, stale
    /// incarnation epoch) across the send path, lanes and reader path.
    pub faults_dropped: AtomicU64,
    /// Frames evicted from full outbound lanes (drop-oldest policy).
    pub lane_evicted: AtomicU64,
    /// Frames queued across all outbound lanes: a gauge, refreshed by
    /// [`Transport::snapshot`] (the counters above are monotonic).
    pub queue_depth: AtomicU64,
}

/// A plain-value copy of [`TransportStats`], taken at a point in time.
#[derive(Debug, Clone, Copy, Default)]
pub struct TransportSnapshot {
    /// Frames sent (including loopback self-sends).
    pub msgs_sent: u64,
    /// Encoded body bytes sent.
    pub bytes_sent: u64,
    /// Frames delivered to the receiver.
    pub msgs_received: u64,
    /// Encoded body bytes received.
    pub bytes_received: u64,
    /// Duplicate frames dropped by the dedup cache.
    pub dups_dropped: u64,
    /// Outbound reconnect attempts that succeeded.
    pub reconnects: u64,
    /// Frames dropped by injected faults.
    pub faults_dropped: u64,
    /// Frames evicted from full outbound lanes.
    pub lane_evicted: u64,
    /// Frames queued across all outbound lanes at snapshot time.
    pub queue_depth: u64,
}

impl TransportStats {
    pub(crate) fn bump(counter: &AtomicU64, by: u64) {
        // ORDER: monotone stat counter; readers only observe totals via
        // `snapshot`, no other memory is published through it.
        counter.fetch_add(by, Ordering::Relaxed);
    }

    /// Reads one stat counter for a snapshot.
    fn read(counter: &AtomicU64) -> u64 {
        // ORDER: snapshots are advisory observability reads; each counter
        // is independently monotone and no cross-counter consistency is
        // promised.
        counter.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of all counters.
    pub fn snapshot(&self) -> TransportSnapshot {
        TransportSnapshot {
            msgs_sent: Self::read(&self.msgs_sent),
            bytes_sent: Self::read(&self.bytes_sent),
            msgs_received: Self::read(&self.msgs_received),
            bytes_received: Self::read(&self.bytes_received),
            dups_dropped: Self::read(&self.dups_dropped),
            reconnects: Self::read(&self.reconnects),
            faults_dropped: Self::read(&self.faults_dropped),
            lane_evicted: Self::read(&self.lane_evicted),
            queue_depth: Self::read(&self.queue_depth),
        }
    }
}

/// Mirrors a transport snapshot into `registry` under the `transport.`
/// prefix (idempotent: values are stored, not added). `queue_depth` lands
/// as a gauge; everything else as counters.
pub fn export_transport_snapshot(snap: &TransportSnapshot, registry: &iniva_obs::Registry) {
    registry
        .counter("transport.msgs_sent")
        .store(snap.msgs_sent);
    registry
        .counter("transport.bytes_sent")
        .store(snap.bytes_sent);
    registry
        .counter("transport.msgs_received")
        .store(snap.msgs_received);
    registry
        .counter("transport.bytes_received")
        .store(snap.bytes_received);
    registry
        .counter("transport.dups_dropped")
        .store(snap.dups_dropped);
    registry
        .counter("transport.reconnects")
        .store(snap.reconnects);
    registry
        .counter("transport.faults_dropped")
        .store(snap.faults_dropped);
    registry
        .counter("transport.lane_evicted")
        .store(snap.lane_evicted);
    registry
        .gauge("transport.queue_depth")
        .set(snap.queue_depth);
}

/// How many `(sender, epoch, seq)` triples the duplicate filter remembers.
pub(crate) const DEDUP_CAPACITY: usize = 4096;

/// Backoff bounds for outbound reconnects.
pub(crate) const BACKOFF_START: Duration = Duration::from_millis(10);
pub(crate) const BACKOFF_CAP: Duration = Duration::from_millis(500);

/// Read timeout on inbound connections; bounds how long a reader thread
/// takes to observe shutdown.
const READ_TIMEOUT: Duration = Duration::from_millis(200);

/// Idle gap after which an outbound lane probes its connection for a dead
/// peer before the next write (a busy lane learns from write errors
/// instead, keeping the hot path probe-free).
const PROBE_AFTER_IDLE: Duration = Duration::from_millis(50);

/// A bounded, epoch-tagged frame queue feeding one outbound lane (a
/// blocking thread on the threaded backend, a reactor source on the epoll
/// backend).
///
/// Drop-oldest on overflow; closable. A hand-rolled `Mutex` + `Condvar`
/// queue instead of `mpsc` because the bound and the eviction must happen
/// on the *sender* side, which channels cannot do.
pub(crate) struct LaneQueue {
    state: Mutex<LaneState>,
    cv: Condvar,
    capacity: usize,
}

struct LaneState {
    frames: VecDeque<(u32, Vec<u8>)>,
    closed: bool,
}

enum LanePop {
    Frame(u32, Vec<u8>),
    Timeout,
    Closed,
}

impl LaneQueue {
    fn new(capacity: usize) -> Self {
        LaneQueue {
            state: Mutex::new(LaneState {
                frames: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
            capacity,
        }
    }

    /// Enqueues a frame under `epoch`; returns `true` if the oldest queued
    /// frame was evicted to make room.
    fn push(&self, epoch: u32, framed: Vec<u8>) -> bool {
        let mut st = crate::reactor::relock(&self.state);
        if st.closed {
            return false;
        }
        let evicted = if st.frames.len() >= self.capacity.max(1) {
            st.frames.pop_front();
            true
        } else {
            false
        };
        st.frames.push_back((epoch, framed));
        drop(st);
        self.cv.notify_one();
        evicted
    }

    fn pop_timeout(&self, timeout: Duration) -> LanePop {
        let mut st = crate::reactor::relock(&self.state);
        let deadline = Instant::now() + timeout;
        loop {
            if let Some((epoch, framed)) = st.frames.pop_front() {
                return LanePop::Frame(epoch, framed);
            }
            if st.closed {
                return LanePop::Closed;
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return LanePop::Timeout;
            }
            let (guard, _) = self
                .cv
                .wait_timeout(st, left)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            st = guard;
        }
    }

    /// Pops without waiting — the reactor lane drains under readiness
    /// notifications instead of blocking on the condvar.
    pub(crate) fn try_pop(&self) -> Option<(u32, Vec<u8>)> {
        crate::reactor::relock(&self.state).frames.pop_front()
    }

    fn close(&self) {
        crate::reactor::relock(&self.state).closed = true;
        self.cv.notify_all();
    }

    pub(crate) fn len(&self) -> usize {
        crate::reactor::relock(&self.state).frames.len()
    }
}

struct PeerLane {
    queue: Arc<LaneQueue>,
    handle: JoinHandle<()>,
}

/// The connection engine behind a [`Transport`]: either the original
/// thread-per-connection fabric or the epoll reactor (see
/// [`TransportBackend`]). Both feed the same `incoming_tx` channel and
/// count into the same [`TransportStats`].
enum Fabric {
    Threaded {
        lanes: HashMap<NodeId, PeerLane>,
        shutdown: Arc<AtomicBool>,
        listener_handle: Option<JoinHandle<()>>,
    },
    Reactor {
        handle: crate::reactor::Handle,
        thread: Option<JoinHandle<()>>,
        lanes: HashMap<NodeId, (Arc<LaneQueue>, crate::reactor::Token)>,
    },
}

/// What a lane thread shares with its `Transport`.
struct LaneShared {
    node: NodeId,
    peer: NodeId,
    addr: SocketAddr,
    queue: Arc<LaneQueue>,
    stats: Arc<TransportStats>,
    shutdown: Arc<AtomicBool>,
    node_faults: Arc<NodeFaults>,
    link_faults: Arc<LinkFaults>,
}

/// The TCP message fabric for one node.
pub struct Transport<M> {
    node: NodeId,
    local_addr: SocketAddr,
    fabric: Fabric,
    /// Loopback: self-sends skip the socket layer entirely.
    incoming_tx: Sender<Incoming<M>>,
    incoming_rx: Receiver<Incoming<M>>,
    stats: Arc<TransportStats>,
    node_faults: Arc<NodeFaults>,
    link_faults: Arc<LinkFaults>,
    seq: u64,
    /// Incarnation under which `seq` counts; a heal resets the sequence.
    sent_epoch: u32,
}

impl<M: Codec + Send + 'static> Transport<M> {
    /// Binds a listener on `listen` (use port 0 for an ephemeral port) and
    /// starts outbound lanes towards every peer in `peers` (entries whose
    /// id equals `node` are ignored, so a full cluster map can be passed).
    pub fn bind(
        node: NodeId,
        listen: SocketAddr,
        peers: &[(NodeId, SocketAddr)],
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(listen)?;
        Self::start(node, listener, peers)
    }

    /// Starts the fabric over an already-bound listener with default
    /// options and a private (unshared) fault surface.
    pub fn start(
        node: NodeId,
        listener: TcpListener,
        peers: &[(NodeId, SocketAddr)],
    ) -> io::Result<Self> {
        Self::start_with(
            node,
            listener,
            peers,
            TransportOptions::default(),
            Arc::new(NodeFaults::new()),
            Arc::new(LinkFaults::new()),
        )
    }

    /// Starts the fabric over an already-bound listener. `node_faults` is
    /// this node's crash switch; `link_faults` is the (typically
    /// cluster-shared) link filter. Useful when a whole cluster binds
    /// ephemeral ports first and exchanges the actual addresses afterwards
    /// (see [`crate::cluster`]).
    pub fn start_with(
        node: NodeId,
        listener: TcpListener,
        peers: &[(NodeId, SocketAddr)],
        options: TransportOptions,
        node_faults: Arc<NodeFaults>,
        link_faults: Arc<LinkFaults>,
    ) -> io::Result<Self> {
        Self::start_with_stats(
            node,
            listener,
            peers,
            options,
            node_faults,
            link_faults,
            Arc::new(TransportStats::default()),
        )
    }

    /// [`Transport::start_with`], but counting into a caller-provided
    /// stats block instead of a fresh one. A restart-capable harness
    /// passes the *same* `Arc` to every incarnation of a node, so the
    /// counters are cumulative across rebuilds: nothing a dying lane
    /// counted (evictions, fault drops) is lost when the next
    /// incarnation starts from zero. Callers doing so must treat the
    /// final snapshot as the node's total, not fold per-incarnation
    /// snapshots on top (that would double-count).
    #[allow(clippy::too_many_arguments)]
    pub fn start_with_stats(
        node: NodeId,
        listener: TcpListener,
        peers: &[(NodeId, SocketAddr)],
        options: TransportOptions,
        node_faults: Arc<NodeFaults>,
        link_faults: Arc<LinkFaults>,
        stats: Arc<TransportStats>,
    ) -> io::Result<Self> {
        let local_addr = listener.local_addr()?;
        let (incoming_tx, incoming_rx) = mpsc::channel();
        listener.set_nonblocking(true)?;

        let fabric = match options.backend {
            TransportBackend::Threaded => {
                let shutdown = Arc::new(AtomicBool::new(false));
                let listener_handle = {
                    let tx = incoming_tx.clone();
                    let stats = Arc::clone(&stats);
                    let shutdown = Arc::clone(&shutdown);
                    let node_faults = Arc::clone(&node_faults);
                    let link_faults = Arc::clone(&link_faults);
                    thread::Builder::new()
                        .name(format!("iniva-accept-{node}"))
                        .spawn(move || {
                            accept_loop(
                                node,
                                listener,
                                tx,
                                stats,
                                shutdown,
                                node_faults,
                                link_faults,
                            )
                        })?
                };

                let mut lanes = HashMap::new();
                for &(peer, addr) in peers {
                    if peer == node {
                        continue;
                    }
                    let queue = Arc::new(LaneQueue::new(options.lane_capacity));
                    let shared = LaneShared {
                        node,
                        peer,
                        addr,
                        queue: Arc::clone(&queue),
                        stats: Arc::clone(&stats),
                        shutdown: Arc::clone(&shutdown),
                        node_faults: Arc::clone(&node_faults),
                        link_faults: Arc::clone(&link_faults),
                    };
                    let handle = thread::Builder::new()
                        .name(format!("iniva-out-{node}-to-{peer}"))
                        .spawn(move || outbound_loop(shared))?;
                    lanes.insert(peer, PeerLane { queue, handle });
                }
                Fabric::Threaded {
                    lanes,
                    shutdown,
                    listener_handle: Some(listener_handle),
                }
            }
            TransportBackend::Reactor => {
                use std::os::fd::AsRawFd;
                let mut reactor = crate::reactor::Reactor::new()?;
                let ctx = Arc::new(crate::fabric::PeerCtx {
                    node,
                    tx: incoming_tx.clone(),
                    stats: Arc::clone(&stats),
                    node_faults: Arc::clone(&node_faults),
                    link_faults: Arc::clone(&link_faults),
                    dedup: Mutex::new(DedupCache::new(DEDUP_CAPACITY)),
                });
                let listener_fd = listener.as_raw_fd();
                reactor.register(
                    Box::new(crate::fabric::PeerListener::new(listener, Arc::clone(&ctx))),
                    Some(listener_fd),
                    crate::reactor::Interest::READ,
                )?;
                let mut lanes = HashMap::new();
                for &(peer, addr) in peers {
                    if peer == node {
                        continue;
                    }
                    let queue = Arc::new(LaneQueue::new(options.lane_capacity));
                    // No fd yet: the lane dials lazily on its first frame,
                    // exactly like the threaded backend.
                    let token = reactor.register(
                        Box::new(crate::fabric::OutboundLane::new(
                            peer,
                            addr,
                            Arc::clone(&queue),
                            Arc::clone(&ctx),
                        )),
                        None,
                        crate::reactor::Interest::NONE,
                    )?;
                    lanes.insert(peer, (queue, token));
                }
                let handle = reactor.handle();
                let thread = thread::Builder::new()
                    .name(format!("iniva-reactor-{node}"))
                    .spawn(move || reactor.run())?;
                Fabric::Reactor {
                    handle,
                    thread: Some(thread),
                    lanes,
                }
            }
        };

        Ok(Transport {
            node,
            local_addr,
            fabric,
            incoming_tx,
            incoming_rx,
            stats,
            node_faults,
            link_faults,
            seq: 0,
            sent_epoch: 0,
        })
    }

    /// This node's id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The listener's actual address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Transport counters.
    pub fn stats(&self) -> &TransportStats {
        &self.stats
    }

    /// A point-in-time copy of the counters with the lane-queue gauge
    /// refreshed.
    pub fn snapshot(&self) -> TransportSnapshot {
        let depth = self.queue_depth() as u64;
        // ORDER: advisory gauge refresh; the value is read back only via
        // `TransportStats::snapshot`, with no ordering dependency.
        self.stats.queue_depth.store(depth, Ordering::Relaxed);
        self.stats.snapshot()
    }

    /// Frames currently queued across all outbound lanes.
    pub fn queue_depth(&self) -> usize {
        match &self.fabric {
            Fabric::Threaded { lanes, .. } => lanes.values().map(|l| l.queue.len()).sum(),
            Fabric::Reactor { lanes, .. } => lanes.values().map(|(q, _)| q.len()).sum(),
        }
    }

    /// This node's crash/heal switch.
    pub fn node_faults(&self) -> Arc<NodeFaults> {
        Arc::clone(&self.node_faults)
    }

    /// The link filter this transport consults.
    pub fn link_faults(&self) -> Arc<LinkFaults> {
        Arc::clone(&self.link_faults)
    }

    /// Sends `msg` to `to`. Self-sends are delivered directly; unknown
    /// destinations and oversized messages are dropped (matching the
    /// simulator, where a send to a crashed node vanishes). Never blocks:
    /// frames queue on the (bounded) outbound lane until the peer is
    /// reachable. A crashed (killed) node or a blocked link drops the
    /// frame instead, counted in [`TransportStats::faults_dropped`].
    pub fn send(&mut self, to: NodeId, msg: &M) {
        if self.node_faults.is_down() {
            TransportStats::bump(&self.stats.faults_dropped, 1);
            return;
        }
        let epoch = self.node_faults.epoch();
        if epoch != self.sent_epoch {
            // Healed under a new incarnation: restart the sequence space.
            self.sent_epoch = epoch;
            self.seq = 0;
        }
        let body = msg.to_frame();
        if to == self.node {
            TransportStats::bump(&self.stats.msgs_sent, 1);
            TransportStats::bump(&self.stats.bytes_sent, body.len() as u64);
            TransportStats::bump(&self.stats.msgs_received, 1);
            TransportStats::bump(&self.stats.bytes_received, body.len() as u64);
            // Re-decode instead of cloning: M need not be Clone, and the
            // loopback path then exercises the same codec as the sockets.
            if let Ok(decoded) = M::from_frame(body) {
                let _ = self.incoming_tx.send(Incoming {
                    from: to,
                    msg: decoded,
                });
            }
            return;
        }
        if self.link_faults.blocked(self.node, to) {
            TransportStats::bump(&self.stats.faults_dropped, 1);
            return;
        }
        // Locate the destination lane on whichever fabric is running; the
        // reactor lane additionally needs a wakeup after the push.
        let (queue, wake) = match &self.fabric {
            Fabric::Threaded { lanes, .. } => {
                let Some(lane) = lanes.get(&to) else {
                    return;
                };
                (&lane.queue, None)
            }
            Fabric::Reactor { lanes, handle, .. } => {
                let Some((queue, token)) = lanes.get(&to) else {
                    return;
                };
                (queue, Some((handle, *token)))
            }
        };
        // Enforce the same bound the receiver's parser enforces: a frame it
        // would reject as corrupt must never be queued (the lane would
        // reconnect and replay it forever).
        let Ok(len) = u32::try_from(body.len() + 8) else {
            return;
        };
        if len > frame::MAX_FRAME_BYTES {
            return;
        }
        TransportStats::bump(&self.stats.msgs_sent, 1);
        TransportStats::bump(&self.stats.bytes_sent, body.len() as u64);
        self.seq += 1;
        let mut framed = Vec::with_capacity(12 + body.len());
        framed.extend_from_slice(&len.to_le_bytes());
        framed.extend_from_slice(&self.seq.to_le_bytes());
        framed.extend_from_slice(&body);
        if queue.push(epoch, framed) {
            TransportStats::bump(&self.stats.lane_evicted, 1);
        }
        if let Some((handle, token)) = wake {
            handle.notify(token);
        }
    }

    /// Receives the next message, waiting up to `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Incoming<M>> {
        self.incoming_rx.recv_timeout(timeout).ok()
    }

    /// Receives without waiting.
    pub fn try_recv(&self) -> Option<Incoming<M>> {
        self.incoming_rx.try_recv().ok()
    }

    /// Registers `listener`'s client sockets on this transport's reactor:
    /// accepted connections speak the `iniva-ingress` client wire protocol
    /// (submit/ack, query, commit follow) against `mempool`, multiplexed on
    /// the *same* poller as the peer fabric — client count never implies
    /// thread count. Only available on the [`TransportBackend::Reactor`]
    /// backend; the threaded backend keeps the thread-per-client
    /// [`iniva_ingress::IngressServer`] and returns `Unsupported` here.
    pub fn serve_clients(
        &self,
        listener: TcpListener,
        mempool: Arc<iniva_ingress::Mempool>,
        opts: &iniva_ingress::IngressOptions,
    ) -> io::Result<()> {
        match &self.fabric {
            Fabric::Reactor { handle, .. } => {
                use std::os::fd::AsRawFd;
                listener.set_nonblocking(true)?;
                let fd = listener.as_raw_fd();
                let ctx = Arc::new(crate::fabric::ClientCtx {
                    mempool,
                    opts: opts.clone(),
                    handle: handle.clone(),
                });
                handle.register(
                    Box::new(crate::fabric::ClientListener::new(listener, ctx)),
                    Some(fd),
                    crate::reactor::Interest::READ,
                );
                Ok(())
            }
            Fabric::Threaded { .. } => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "client ingress on the shared poller requires the reactor backend",
            )),
        }
    }

    /// Stops all threads and closes the listener. Called by `Drop`; exposed
    /// for explicit, joined shutdown in tests.
    pub fn shutdown(&mut self) {
        teardown(&mut self.fabric);
    }
}

impl<M> Drop for Transport<M> {
    fn drop(&mut self) {
        teardown(&mut self.fabric);
    }
}

/// Stops whichever engine is running and joins its threads (idempotent).
fn teardown(fabric: &mut Fabric) {
    match fabric {
        Fabric::Threaded {
            lanes,
            shutdown,
            listener_handle,
        } => {
            shutdown.store(true, Ordering::SeqCst);
            for (_, lane) in lanes.drain() {
                lane.queue.close();
                let _ = lane.handle.join();
            }
            if let Some(h) = listener_handle.take() {
                let _ = h.join();
            }
        }
        Fabric::Reactor {
            handle,
            thread,
            lanes,
        } => {
            for (_, (queue, _)) in lanes.drain() {
                queue.close();
            }
            handle.shutdown();
            if let Some(t) = thread.take() {
                let _ = t.join();
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn accept_loop<M: Codec + Send + 'static>(
    node: NodeId,
    listener: TcpListener,
    tx: Sender<Incoming<M>>,
    stats: Arc<TransportStats>,
    shutdown: Arc<AtomicBool>,
    node_faults: Arc<NodeFaults>,
    link_faults: Arc<LinkFaults>,
) {
    // One duplicate filter for the whole node, shared across connections:
    // a frame replayed on a *new* connection after a reconnect must still
    // be recognized as already delivered.
    let dedup = Arc::new(Mutex::new(DedupCache::new(DEDUP_CAPACITY)));
    let mut readers: Vec<JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let tx = tx.clone();
                let stats = Arc::clone(&stats);
                let shutdown = Arc::clone(&shutdown);
                let dedup = Arc::clone(&dedup);
                let node_faults = Arc::clone(&node_faults);
                let link_faults = Arc::clone(&link_faults);
                let reader = thread::Builder::new()
                    .name("iniva-reader".into())
                    .spawn(move || {
                        reader_loop(
                            node,
                            stream,
                            tx,
                            stats,
                            shutdown,
                            dedup,
                            node_faults,
                            link_faults,
                        )
                    });
                // Shed the connection if the OS refuses a reader thread —
                // the peer redials; a spawn failure must not kill the
                // accept loop for every other peer.
                match reader {
                    Ok(handle) => readers.push(handle),
                    Err(_) => continue,
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(20));
            }
            Err(_) => break,
        }
    }
    for r in readers {
        let _ = r.join();
    }
}

#[allow(clippy::too_many_arguments)]
fn reader_loop<M: Codec>(
    node: NodeId,
    mut stream: TcpStream,
    tx: Sender<Incoming<M>>,
    stats: Arc<TransportStats>,
    shutdown: Arc<AtomicBool>,
    dedup: Arc<Mutex<DedupCache>>,
    node_faults: Arc<NodeFaults>,
    link_faults: Arc<LinkFaults>,
) {
    // The accept loop may hand over a non-blocking socket; readers block
    // with a timeout instead so they can observe shutdown. Reads append to
    // a buffer and frames are parsed incrementally, so a timeout landing
    // mid-frame never loses stream position.
    if stream.set_nonblocking(false).is_err()
        || stream.set_read_timeout(Some(READ_TIMEOUT)).is_err()
    {
        return;
    }
    let mut buf: Vec<u8> = Vec::with_capacity(64 * 1024);
    let mut chunk = [0u8; 64 * 1024];
    let mut from: Option<(NodeId, u32)> = None;
    while !shutdown.load(Ordering::SeqCst) {
        // Drain every complete unit currently buffered.
        loop {
            if from.is_none() {
                match frame::parse_handshake(&buf) {
                    Ok(Some((consumed, peer, epoch))) => {
                        buf.drain(..consumed);
                        from = Some((peer, epoch));
                        continue;
                    }
                    Ok(None) => break,
                    Err(_) => return,
                }
            }
            match frame::parse_frame(&buf) {
                Ok(frame::FrameParse::Incomplete) => break,
                Ok(frame::FrameParse::Complete {
                    consumed,
                    seq,
                    body,
                }) => {
                    let Some((sender, sender_epoch)) = from else {
                        // Unreachable by construction (the handshake arm
                        // above either set `from` or broke out), but a
                        // hostile peer must not be able to turn a broken
                        // assumption into a reader panic.
                        return;
                    };
                    // Fault filter first: a frame a crashed node would
                    // never have received, or one crossing a blocked
                    // link, vanishes exactly as in the simulator.
                    if node_faults.is_down() || link_faults.blocked(sender, node) {
                        buf.drain(..consumed);
                        TransportStats::bump(&stats.faults_dropped, 1);
                        continue;
                    }
                    let decoded = M::from_frame(bytes::Bytes::from(buf[body].to_vec()));
                    buf.drain(..consumed);
                    let Ok(msg) = decoded else {
                        return; // undecodable body: drop the connection
                    };
                    let fresh = crate::reactor::relock(&dedup).insert(sender, sender_epoch, seq);
                    if !fresh {
                        TransportStats::bump(&stats.dups_dropped, 1);
                        continue;
                    }
                    TransportStats::bump(&stats.msgs_received, 1);
                    TransportStats::bump(&stats.bytes_received, (consumed - 12) as u64);
                    if tx.send(Incoming { from: sender, msg }).is_err() {
                        return; // receiver gone
                    }
                }
                Err(_) => return, // corrupt framing: the peer will redial
            }
        }
        match io::Read::read(&mut stream, &mut chunk) {
            Ok(0) => return, // EOF
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if would_block(&e) => continue,
            Err(_) => return,
        }
    }
}

/// Probes an outbound (write-only) connection for peer shutdown: lanes
/// never expect inbound data, so a successful zero-byte read means EOF and
/// a reset means the peer is gone. Unexpected data is discarded.
fn conn_is_dead(stream: &mut TcpStream) -> bool {
    if stream.set_nonblocking(true).is_err() {
        return true;
    }
    let mut probe = [0u8; 256];
    let dead = match io::Read::read(stream, &mut probe) {
        Ok(0) => true,
        Ok(_) => false,
        Err(e) if would_block(&e) => false,
        Err(_) => true,
    };
    if stream.set_nonblocking(false).is_err() {
        return true;
    }
    dead
}

pub(crate) fn would_block(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut | io::ErrorKind::Interrupted
    )
}

fn outbound_loop(shared: LaneShared) {
    let LaneShared {
        node,
        peer,
        addr,
        queue,
        stats,
        shutdown,
        node_faults,
        link_faults,
    } = shared;
    let mut conn: Option<TcpStream> = None;
    // Incarnation the current connection's handshake was written under; a
    // frame from a newer epoch forces a re-handshake so the receiver keys
    // its dedup entries by the fresh epoch.
    let mut conn_epoch = 0u32;
    let mut backoff = BACKOFF_START;
    let mut last_write = Instant::now();
    // The first successful dial is the lane coming up, not a *re*connect:
    // only count once a previously-working connection had to be rebuilt.
    let mut ever_connected = false;
    'main: while !shutdown.load(Ordering::SeqCst) {
        let (epoch, framed) = match queue.pop_timeout(Duration::from_millis(200)) {
            LanePop::Frame(epoch, framed) => (epoch, framed),
            LanePop::Closed => return,
            LanePop::Timeout => continue,
        };
        // Deliver this frame, reconnecting as often as needed.
        let mut delayed = false;
        loop {
            if shutdown.load(Ordering::SeqCst) {
                return;
            }
            // Injected faults: a crashed sender's backlog, a frame from a
            // dead incarnation, or a blocked link all drop the frame.
            if node_faults.is_down()
                || epoch != node_faults.epoch()
                || link_faults.blocked(node, peer)
            {
                TransportStats::bump(&stats.faults_dropped, 1);
                continue 'main;
            }
            // Slow-link injection: once per frame (not per reconnect
            // retry of the same frame), sliced so a pending shutdown is
            // observed within ~20 ms instead of after the whole delay.
            if !delayed {
                delayed = true;
                if let Some(delay) = link_faults.delay(node, peer) {
                    let deadline = Instant::now() + delay;
                    loop {
                        if shutdown.load(Ordering::SeqCst) {
                            return;
                        }
                        let left = deadline.saturating_duration_since(Instant::now());
                        if left.is_zero() {
                            break;
                        }
                        thread::sleep(left.min(Duration::from_millis(20)));
                    }
                }
            }
            if conn.is_some() && conn_epoch != epoch {
                conn = None; // re-handshake under the new incarnation
            }
            if conn.is_none() {
                if let Ok(mut stream) =
                    TcpStream::connect_timeout(&addr, Duration::from_millis(500))
                {
                    if stream.set_nodelay(true).is_ok()
                        && frame::write_handshake(&mut stream, node, epoch).is_ok()
                    {
                        if ever_connected {
                            TransportStats::bump(&stats.reconnects, 1);
                        } else {
                            ever_connected = true;
                        }
                        conn = Some(stream);
                        conn_epoch = epoch;
                        backoff = BACKOFF_START;
                    }
                }
                if conn.is_none() {
                    thread::sleep(backoff);
                    backoff = (backoff * 2).min(BACKOFF_CAP);
                    continue;
                }
            }
            let Some(stream) = conn.as_mut() else {
                continue; // unreachable: the dial above just set `conn`
            };
            // A dead peer turns writes into silent local-buffer successes
            // until the RST arrives. Probe for EOF before writing — but
            // only after an idle gap: on a busy lane the previous write
            // would have surfaced the error, and probing every frame costs
            // three syscalls on the hot path.
            if last_write.elapsed() >= PROBE_AFTER_IDLE && conn_is_dead(stream) {
                conn = None;
                continue;
            }
            let Some(stream) = conn.as_mut() else {
                continue; // unreachable: the probe above kept `conn`
            };
            match std::io::Write::write_all(stream, &framed) {
                Ok(()) => {
                    last_write = Instant::now();
                    continue 'main;
                }
                Err(_) => {
                    // Connection died mid-write: reconnect and resend this
                    // frame. The receiver's dedup cache absorbs the case
                    // where the write had actually gone through.
                    conn = None;
                }
            }
        }
    }
}
