//! # iniva-transport
//!
//! A real-socket transport runtime for the Iniva protocol stack: the same
//! [`Actor`](iniva_net::Actor) state machines that run under the
//! deterministic discrete-event simulator (`iniva-net`) execute here over
//! actual `std::net` TCP connections — `InivaReplica`, `StarReplica` and
//! friends run **unmodified** in both backends.
//!
//! The paper's evaluation ran 25 machines behind a 10 Gbps switch; the
//! simulator substitutes virtual time for that cluster, and this crate
//! substitutes the cluster back: real sockets, real clocks, real CPU time.
//!
//! * [`frame`] — length-prefixed framing over a TCP stream, carrying
//!   [`Codec`](iniva_net::wire::Codec)-encoded protocol messages plus a
//!   per-sender sequence number and an identifying handshake.
//! * [`dedup`] — a bounded seen-message cache dropping duplicate
//!   `(sender, sequence)` deliveries (e.g. replays after a reconnect).
//! * [`reactor`] — a dependency-free epoll event loop (raw
//!   `epoll_create1`/`epoll_ctl`/`epoll_wait`/`eventfd` syscalls): sources
//!   register fds with read/write interest, get readiness callbacks plus
//!   cross-thread notifications and deadlines, all on one poller thread.
//! * [`transport`] — the peer fabric: one listener and a reconnecting
//!   outbound lane per peer, driven either by the reactor (default: every
//!   peer *and* ingress-client socket on one poller, zero-copy frame
//!   decode, coalesced `writev` flushes) or by the original
//!   thread-per-connection engine
//!   ([`TransportBackend`](transport::TransportBackend)).
//! * [`runtime`] — the event loop implementing the simulator's `Context`
//!   contract: queued sends go to the transport, timers to a
//!   monotonic-clock timer wheel, and CPU charges become real elapsed time.
//! * [`faults`] — the chaos surface: per-node crash/heal switches with
//!   incarnation epochs ([`NodeFaults`]) and a cluster-shared link filter
//!   for partitions and slow links ([`LinkFaults`]), filtered on the send
//!   path, in the lanes and on the reader path.
//! * [`config`] — a TOML-style cluster/peer-list file format for
//!   multi-process deployments.
//! * [`cluster`] — the harness running an n-replica Iniva cluster on
//!   loopback threads behind one entry point,
//!   [`ClusterBuilder`](cluster::ClusterBuilder), used by the integration
//!   tests, the `live_cluster` example and the transport benchmark
//!   baseline. `.faults(plan)` replays an `iniva_net::faults::FaultPlan`
//!   against the live cluster (via
//!   [`ClusterFaults`](cluster::ClusterFaults)), so the same seeded chaos
//!   scenario runs on the simulator and on sockets; `.wal(dir)` adds
//!   process-level chaos — `Crash` tears a replica's entire runtime and
//!   sockets down, and `RestartFromDisk` rebuilds it from its
//!   `iniva-storage` write-ahead log, after which it catches up via
//!   state transfer; `.ingress(opts)` bolts on the `iniva-ingress`
//!   client tier feeding the proposer from a real fee-ordered mempool.

#![warn(missing_docs)]
// The raw-syscall layer in `reactor::sys` is the only place unsafe is
// permitted in the workspace (every other crate carries
// `#![forbid(unsafe_code)]`); inside it, each unsafe operation must sit in
// an explicit `unsafe { }` block with its own `// SAFETY:` comment even
// within unsafe fns.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod cluster;
pub mod config;
pub mod dedup;
mod fabric;
pub mod faults;
pub mod frame;
pub mod reactor;
pub mod runtime;
pub mod transport;

pub use config::{ClusterConfig, ConfigError, Peer};
pub use faults::{LinkFaults, NodeFaults};
pub use runtime::{CpuMode, Runtime, RuntimeStats};
pub use transport::{
    Incoming, Transport, TransportBackend, TransportOptions, TransportSnapshot, TransportStats,
};
