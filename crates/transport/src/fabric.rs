//! The reactor-backed connection engine: [`Source`] implementations for
//! every socket a node owns — the peer listener, inbound peer
//! connections, outbound lanes, and (via `Transport::serve_clients`) the
//! ingress-client listener and its sessions — all multiplexed on one
//! [`crate::reactor`] poller thread.
//!
//! Semantics mirror the threaded fabric exactly (same wire protocol,
//! same fault filters, same dedup and stats), with two hot-path
//! differences: inbound frames are decoded from a *shared* receive
//! buffer (`bytes` shim slices of one `Arc<[u8]>` per read batch, no
//! per-frame `Vec`), and outbound lanes flush with coalesced `writev`
//! batches instead of one `write_all` per frame.

use crate::dedup::DedupCache;
use crate::faults::{LinkFaults, NodeFaults};
use crate::frame;
use crate::reactor::{sys, Action, Ctl, Handle, Interest, Source};
use crate::transport::{
    would_block, Incoming, LaneQueue, TransportStats, BACKOFF_CAP, BACKOFF_START,
};
use iniva_ingress::{
    ClientMsg, CommitInbox, IngressOptions, Mempool, SubmitStatus, TokenBucket, MAX_CLIENT_FRAME,
};
use iniva_net::wire::Codec;
use iniva_net::NodeId;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Read chunk per syscall; also the early-exit threshold (a short read
/// means the socket is drained, skipping the final `EAGAIN` round trip).
const READ_CHUNK: usize = 64 * 1024;

/// Frames pulled from a lane queue into the in-flight flush window. Also
/// caps the `writev` iovec count.
const MAX_INFLIGHT: usize = 64;

/// Give up on a non-blocking connect after this long (the threaded
/// backend's `connect_timeout`).
const CONNECT_TIMEOUT: Duration = Duration::from_millis(500);

/// A client session buffering more than this much un-flushed reply data
/// is judged non-draining and dropped (the threaded server's
/// `WRITE_TIMEOUT` analogue).
const CLIENT_WBUF_CAP: usize = 256 * 1024;

/// What every peer-fabric source shares: the delivery channel, counters,
/// fault switches, and the node-wide duplicate filter (one filter across
/// all connections, so a replay on a *new* connection after a reconnect
/// is still recognized).
pub(crate) struct PeerCtx<M> {
    pub(crate) node: NodeId,
    pub(crate) tx: Sender<Incoming<M>>,
    pub(crate) stats: Arc<TransportStats>,
    pub(crate) node_faults: Arc<NodeFaults>,
    pub(crate) link_faults: Arc<LinkFaults>,
    pub(crate) dedup: Mutex<DedupCache>,
}

/// Accepts inbound peer connections and spawns a [`PeerConn`] per socket.
pub(crate) struct PeerListener<M> {
    listener: TcpListener,
    ctx: Arc<PeerCtx<M>>,
}

impl<M> PeerListener<M> {
    pub(crate) fn new(listener: TcpListener, ctx: Arc<PeerCtx<M>>) -> Self {
        PeerListener { listener, ctx }
    }
}

impl<M: Codec + Send + 'static> Source for PeerListener<M> {
    fn ready(&mut self, ctl: &mut Ctl<'_>, _readable: bool, _writable: bool) -> Action {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let fd = stream.as_raw_fd();
                    ctl.spawn(
                        Box::new(PeerConn {
                            stream,
                            pending: Vec::with_capacity(READ_CHUNK),
                            from: None,
                            ctx: Arc::clone(&self.ctx),
                        }),
                        Some(fd),
                        Interest::READ,
                    );
                }
                Err(e) if would_block(&e) => break,
                Err(_) => break, // transient accept error; stay registered
            }
        }
        Action::Keep
    }
}

/// One inbound peer connection: handshake, then a stream of frames
/// decoded from a shared receive buffer.
struct PeerConn<M> {
    stream: TcpStream,
    /// Bytes read but not yet parsed (at most a partial frame once a
    /// drain completes).
    pending: Vec<u8>,
    /// Set once the handshake parses: (peer id, peer incarnation epoch).
    from: Option<(NodeId, u32)>,
    ctx: Arc<PeerCtx<M>>,
}

impl<M: Codec> PeerConn<M> {
    /// Parses everything buffered. The zero-copy step: once at least one
    /// complete frame is buffered, the buffer is frozen into a single
    /// shared allocation and each body is decoded from a zero-copy slice
    /// of it — one `Arc<[u8]>` per read batch instead of one `Vec` per
    /// frame.
    fn drain(&mut self) -> Action {
        if self.from.is_none() {
            match frame::parse_handshake(&self.pending) {
                Ok(Some((consumed, peer, epoch))) => {
                    self.pending.drain(..consumed);
                    self.from = Some((peer, epoch));
                }
                Ok(None) => return Action::Keep,
                Err(_) => return Action::Drop,
            }
        }
        let Some((sender, sender_epoch)) = self.from else {
            // Unreachable by construction (the handshake arm above either
            // set `from` or returned), but a hostile peer must never be
            // able to turn a broken assumption into a poller panic.
            return Action::Drop;
        };
        // Fast path: no complete frame buffered — no allocation at all.
        match frame::parse_frame(&self.pending) {
            Ok(frame::FrameParse::Incomplete) => return Action::Keep,
            Ok(frame::FrameParse::Complete { .. }) => {}
            Err(_) => return Action::Drop, // corrupt framing: peer redials
        }
        let shared = bytes::Bytes::from(std::mem::take(&mut self.pending));
        let mut offset = 0usize;
        let verdict = loop {
            match frame::parse_frame(&shared[offset..]) {
                Ok(frame::FrameParse::Incomplete) => break Action::Keep,
                Err(_) => break Action::Drop,
                Ok(frame::FrameParse::Complete {
                    consumed,
                    seq,
                    body,
                }) => {
                    let start = offset;
                    offset += consumed;
                    // Fault filter first: a frame a crashed node would
                    // never have received, or one crossing a blocked
                    // link, vanishes exactly as in the simulator.
                    if self.ctx.node_faults.is_down()
                        || self.ctx.link_faults.blocked(sender, self.ctx.node)
                    {
                        TransportStats::bump(&self.ctx.stats.faults_dropped, 1);
                        continue;
                    }
                    let frame_body = shared.slice(start + body.start..start + body.end);
                    let Ok(msg) = M::from_frame(frame_body) else {
                        break Action::Drop; // undecodable body: drop the connection
                    };
                    let fresh =
                        crate::reactor::relock(&self.ctx.dedup).insert(sender, sender_epoch, seq);
                    if !fresh {
                        TransportStats::bump(&self.ctx.stats.dups_dropped, 1);
                        continue;
                    }
                    TransportStats::bump(&self.ctx.stats.msgs_received, 1);
                    TransportStats::bump(&self.ctx.stats.bytes_received, (consumed - 12) as u64);
                    if self.ctx.tx.send(Incoming { from: sender, msg }).is_err() {
                        break Action::Drop; // receiver gone
                    }
                }
            }
        };
        if verdict == Action::Keep && offset < shared.len() {
            // Carry the partial tail into the next read batch.
            self.pending.extend_from_slice(&shared[offset..]);
        }
        verdict
    }
}

impl<M: Codec + Send + 'static> Source for PeerConn<M> {
    fn ready(&mut self, _ctl: &mut Ctl<'_>, readable: bool, _writable: bool) -> Action {
        if !readable {
            return Action::Keep;
        }
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => return Action::Drop, // EOF
                Ok(n) => {
                    self.pending.extend_from_slice(&chunk[..n]);
                    if self.drain() == Action::Drop {
                        return Action::Drop;
                    }
                    if n < chunk.len() {
                        break; // socket drained
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) if would_block(&e) => break,
                Err(_) => return Action::Drop,
            }
        }
        Action::Keep
    }
}

/// Connection state of an outbound lane.
enum LaneConn {
    /// No socket; dials on the next frame (after any pending backoff).
    Idle,
    /// Non-blocking connect in flight; completion arrives as writability.
    Connecting {
        stream: TcpStream,
        epoch: u32,
        started: Instant,
    },
    /// Established; the handshake leads the byte stream.
    Connected {
        stream: TcpStream,
        epoch: u32,
        hs: [u8; frame::HANDSHAKE_BYTES],
        hs_written: usize,
    },
}

impl LaneConn {
    fn epoch(&self) -> Option<u32> {
        match self {
            LaneConn::Idle => None,
            LaneConn::Connecting { epoch, .. } | LaneConn::Connected { epoch, .. } => Some(*epoch),
        }
    }
}

enum Flush {
    /// Everything in flight (and the handshake) hit the socket.
    Done,
    /// `EAGAIN` mid-flush: wait for writability.
    Blocked,
    /// The connection died; tear down and redial.
    Dead,
}

/// The outbound lane to one peer: drains the bounded drop-oldest
/// [`LaneQueue`] through a reconnecting non-blocking socket, flushing
/// with coalesced `writev` batches.
pub(crate) struct OutboundLane<M> {
    peer: NodeId,
    addr: SocketAddr,
    queue: Arc<LaneQueue>,
    ctx: Arc<PeerCtx<M>>,
    conn: LaneConn,
    /// Frames claimed from the queue, awaiting (or mid-) flush, tagged
    /// with the incarnation epoch they were admitted under.
    inflight: VecDeque<(u32, Vec<u8>)>,
    /// Bytes of `inflight[0]` already written.
    written: usize,
    /// A frame held back by an injected slow-link delay, released at the
    /// stored instant. Blocks admission behind it (delays are serial per
    /// frame, as in the threaded lane).
    delayed: Option<(Instant, u32, Vec<u8>)>,
    backoff: Duration,
    /// Earliest next dial (backoff after a failed dial; `None` = now).
    next_attempt: Option<Instant>,
    /// The first successful dial is the lane coming up, not a reconnect.
    ever_connected: bool,
}

impl<M> OutboundLane<M> {
    pub(crate) fn new(
        peer: NodeId,
        addr: SocketAddr,
        queue: Arc<LaneQueue>,
        ctx: Arc<PeerCtx<M>>,
    ) -> Self {
        OutboundLane {
            peer,
            addr,
            queue,
            ctx,
            conn: LaneConn::Idle,
            inflight: VecDeque::new(),
            written: 0,
            delayed: None,
            backoff: BACKOFF_START,
            next_attempt: None,
            ever_connected: false,
        }
    }

    /// Drops the socket (deregistering its fd first) without touching the
    /// backlog; in-flight frames are replayed on the next connection and
    /// the receiver's dedup cache absorbs any double delivery.
    fn drop_conn(&mut self, ctl: &mut Ctl<'_>) {
        if !matches!(self.conn, LaneConn::Idle) {
            ctl.set_fd(None, Interest::NONE);
            self.conn = LaneConn::Idle;
        }
        self.written = 0;
    }

    /// Drops every queued, in-flight and held frame (a crashed sender's
    /// backlog vanishes), counting each as an injected-fault drop.
    fn purge_backlog(&mut self) {
        let mut dropped = self.inflight.len() as u64;
        self.inflight.clear();
        self.written = 0;
        if self.delayed.take().is_some() {
            dropped += 1;
        }
        while self.queue.try_pop().is_some() {
            dropped += 1;
        }
        if dropped > 0 {
            TransportStats::bump(&self.ctx.stats.faults_dropped, dropped);
        }
    }

    /// Drops claimed frames admitted under a dead incarnation.
    fn purge_stale(&mut self, epoch: u32) {
        let before = self.inflight.len();
        self.inflight.retain(|(e, _)| *e == epoch);
        let mut dropped = (before - self.inflight.len()) as u64;
        if self.delayed.as_ref().is_some_and(|(_, e, _)| *e != epoch) {
            self.delayed = None;
            dropped += 1;
        }
        if dropped > 0 {
            self.written = 0; // any partial front write died with its conn
            TransportStats::bump(&self.ctx.stats.faults_dropped, dropped);
        }
    }

    /// Claims frames from the queue into the flush window, applying the
    /// same per-frame fault filters the threaded lane applies at
    /// delivery time: stale epoch and blocked link drop the frame; a
    /// slow link parks it in the delay slot (stalling admission, so
    /// delays stay serial).
    fn admit(&mut self, epoch: u32) {
        if self.delayed.is_some() {
            return;
        }
        while self.inflight.len() < MAX_INFLIGHT {
            let Some((e, framed)) = self.queue.try_pop() else {
                break;
            };
            if e != epoch || self.ctx.link_faults.blocked(self.ctx.node, self.peer) {
                TransportStats::bump(&self.ctx.stats.faults_dropped, 1);
                continue;
            }
            if let Some(delay) = self.ctx.link_faults.delay(self.ctx.node, self.peer) {
                self.delayed = Some((Instant::now() + delay, e, framed));
                break;
            }
            self.inflight.push_back((e, framed));
        }
    }

    fn dial_failed(&mut self) {
        self.next_attempt = Some(Instant::now() + self.backoff);
        self.backoff = (self.backoff * 2).min(BACKOFF_CAP);
    }

    fn promote(&mut self, stream: TcpStream, epoch: u32) {
        let _ = stream.set_nodelay(true);
        if self.ever_connected {
            TransportStats::bump(&self.ctx.stats.reconnects, 1);
        } else {
            self.ever_connected = true;
        }
        self.backoff = BACKOFF_START;
        self.next_attempt = None;
        self.written = 0;
        self.conn = LaneConn::Connected {
            stream,
            epoch,
            hs: frame::handshake_bytes(self.ctx.node, epoch),
            hs_written: 0,
        };
    }

    /// Writes the handshake, then `writev`-flushes up to [`MAX_INFLIGHT`]
    /// frames per syscall, popping fully-written frames as the byte count
    /// comes back.
    fn flush_conn(
        &mut self,
        stream: &mut TcpStream,
        hs: &[u8; frame::HANDSHAKE_BYTES],
        hs_written: &mut usize,
    ) -> Flush {
        while *hs_written < hs.len() {
            match stream.write(&hs[*hs_written..]) {
                Ok(0) => return Flush::Dead,
                Ok(n) => *hs_written += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) if would_block(&e) => return Flush::Blocked,
                Err(_) => return Flush::Dead,
            }
        }
        let fd = stream.as_raw_fd();
        loop {
            if self.inflight.is_empty() {
                return Flush::Done;
            }
            let mut iovs: Vec<sys::IoVec> =
                Vec::with_capacity(self.inflight.len().min(MAX_INFLIGHT));
            for (i, (_, framed)) in self.inflight.iter().enumerate().take(MAX_INFLIGHT) {
                let seg: &[u8] = if i == 0 {
                    &framed[self.written..]
                } else {
                    framed
                };
                iovs.push(sys::IoVec {
                    base: seg.as_ptr(),
                    len: seg.len(),
                });
            }
            match sys::writev_fd(fd, &iovs) {
                Ok(mut n) => {
                    while n > 0 {
                        let front_left = self.inflight[0].1.len() - self.written;
                        if n >= front_left {
                            n -= front_left;
                            self.written = 0;
                            self.inflight.pop_front();
                        } else {
                            self.written += n;
                            n = 0;
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) if would_block(&e) => return Flush::Blocked,
                Err(_) => return Flush::Dead,
            }
        }
    }

    /// The lane state machine, run after every readiness / notify /
    /// deadline event. Loops until there is nothing actionable, then
    /// re-arms the deadline (delay release, dial backoff, connect
    /// timeout).
    fn pump(&mut self, ctl: &mut Ctl<'_>) -> Action {
        let action = self.pump_inner(ctl);
        self.arm_deadline(ctl);
        action
    }

    fn pump_inner(&mut self, ctl: &mut Ctl<'_>) -> Action {
        loop {
            if self.ctx.node_faults.is_down() {
                self.purge_backlog();
                self.drop_conn(ctl);
                return Action::Keep;
            }
            let epoch = self.ctx.node_faults.epoch();
            self.purge_stale(epoch);
            if self.conn.epoch().is_some_and(|e| e != epoch) {
                // Healed under a new incarnation: re-handshake so the
                // receiver keys its dedup entries by the fresh epoch.
                self.drop_conn(ctl);
                self.next_attempt = None;
            }
            if let Some((at, e, framed)) = self.delayed.take() {
                if at <= Instant::now() {
                    self.inflight.push_back((e, framed));
                } else {
                    self.delayed = Some((at, e, framed));
                }
            }
            match std::mem::replace(&mut self.conn, LaneConn::Idle) {
                LaneConn::Idle => {
                    // Claiming frames waits until a connection is up, so
                    // while the peer is unreachable the *queue* fills and
                    // sheds oldest — the lane must not become a second,
                    // unbounded buffer. Dialing peeks at the queue depth
                    // instead.
                    if self.inflight.is_empty() && self.delayed.is_none() && self.queue.len() == 0 {
                        return Action::Keep; // nothing to send; dials are lazy
                    }
                    if self.next_attempt.is_some_and(|at| at > Instant::now()) {
                        return Action::Keep; // backoff pending; deadline re-arms us
                    }
                    self.next_attempt = None;
                    match sys::connect_nonblocking(&self.addr) {
                        Ok((stream, done)) => {
                            let fd = stream.as_raw_fd();
                            ctl.set_fd(Some(fd), Interest::BOTH);
                            if done {
                                self.promote(stream, epoch);
                            } else {
                                self.conn = LaneConn::Connecting {
                                    stream,
                                    epoch,
                                    started: Instant::now(),
                                };
                                return Action::Keep;
                            }
                        }
                        Err(_) => {
                            self.dial_failed();
                            return Action::Keep;
                        }
                    }
                }
                LaneConn::Connecting {
                    stream,
                    epoch: conn_epoch,
                    started,
                } => match stream.take_error() {
                    Ok(None) => match stream.peer_addr() {
                        Ok(_) => self.promote(stream, conn_epoch),
                        Err(e) if e.kind() == io::ErrorKind::NotConnected => {
                            if started.elapsed() >= CONNECT_TIMEOUT {
                                ctl.set_fd(None, Interest::NONE);
                                drop(stream);
                                self.dial_failed();
                            } else {
                                self.conn = LaneConn::Connecting {
                                    stream,
                                    epoch: conn_epoch,
                                    started,
                                };
                            }
                            return Action::Keep;
                        }
                        Err(_) => {
                            ctl.set_fd(None, Interest::NONE);
                            drop(stream);
                            self.dial_failed();
                            return Action::Keep;
                        }
                    },
                    Ok(Some(_)) | Err(_) => {
                        ctl.set_fd(None, Interest::NONE);
                        drop(stream);
                        self.dial_failed();
                        return Action::Keep;
                    }
                },
                LaneConn::Connected {
                    mut stream,
                    epoch: conn_epoch,
                    hs,
                    mut hs_written,
                } => {
                    self.admit(epoch);
                    match self.flush_conn(&mut stream, &hs, &mut hs_written) {
                        Flush::Done => {
                            self.conn = LaneConn::Connected {
                                stream,
                                epoch: conn_epoch,
                                hs,
                                hs_written,
                            };
                            ctl.set_interest(Interest::READ);
                            if self.queue.len() == 0 || self.delayed.is_some() {
                                return Action::Keep;
                            }
                            // More frames arrived while flushing: go again.
                        }
                        Flush::Blocked => {
                            self.conn = LaneConn::Connected {
                                stream,
                                epoch: conn_epoch,
                                hs,
                                hs_written,
                            };
                            ctl.set_interest(Interest::BOTH);
                            return Action::Keep;
                        }
                        Flush::Dead => {
                            // Died mid-write: redial immediately (no
                            // backoff, as in the threaded lane) and replay
                            // in-flight frames; receiver dedup absorbs
                            // double delivery.
                            ctl.set_fd(None, Interest::NONE);
                            drop(stream);
                            self.written = 0;
                            self.next_attempt = None;
                        }
                    }
                }
            }
        }
    }

    fn arm_deadline(&mut self, ctl: &mut Ctl<'_>) {
        let mut at: Option<Instant> = None;
        let mut consider = |t: Instant| {
            at = Some(at.map_or(t, |a| a.min(t)));
        };
        if let Some((t, _, _)) = &self.delayed {
            consider(*t);
        }
        if let Some(t) = self.next_attempt {
            if !self.inflight.is_empty() || self.delayed.is_some() || self.queue.len() > 0 {
                consider(t);
            }
        }
        if let LaneConn::Connecting { started, .. } = &self.conn {
            consider(*started + CONNECT_TIMEOUT);
        }
        ctl.set_deadline(at);
    }
}

impl<M: Codec + Send + 'static> Source for OutboundLane<M> {
    fn ready(&mut self, ctl: &mut Ctl<'_>, readable: bool, _writable: bool) -> Action {
        if readable {
            if let LaneConn::Connected { stream, .. } = &mut self.conn {
                // Lanes never expect inbound data: readability is the EOF
                // / reset probe (replacing the threaded `conn_is_dead`).
                let mut probe = [0u8; 1024];
                loop {
                    match stream.read(&mut probe) {
                        Ok(0) => {
                            self.drop_conn(ctl);
                            self.next_attempt = None;
                            break;
                        }
                        Ok(_) => continue, // unexpected data: discard
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(e) if would_block(&e) => break,
                        Err(_) => {
                            self.drop_conn(ctl);
                            self.next_attempt = None;
                            break;
                        }
                    }
                }
            }
        }
        self.pump(ctl)
    }

    fn notified(&mut self, ctl: &mut Ctl<'_>) -> Action {
        self.pump(ctl)
    }

    fn deadline(&mut self, ctl: &mut Ctl<'_>) -> Action {
        self.pump(ctl)
    }
}

/// What every ingress-client source shares.
pub(crate) struct ClientCtx {
    pub(crate) mempool: Arc<Mempool>,
    pub(crate) opts: IngressOptions,
    /// For commit-push wakers: the inbox fills on a consensus thread and
    /// must wake the poller to flush.
    pub(crate) handle: Handle,
}

/// Accepts ingress-client connections onto the shared poller.
pub(crate) struct ClientListener {
    listener: TcpListener,
    ctx: Arc<ClientCtx>,
}

impl ClientListener {
    pub(crate) fn new(listener: TcpListener, ctx: Arc<ClientCtx>) -> Self {
        ClientListener { listener, ctx }
    }
}

impl Source for ClientListener {
    fn ready(&mut self, ctl: &mut Ctl<'_>, _readable: bool, _writable: bool) -> Action {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let fd = stream.as_raw_fd();
                    let bucket =
                        TokenBucket::new(self.ctx.opts.rate_per_client, self.ctx.opts.burst);
                    ctl.spawn(
                        Box::new(ClientSession {
                            stream,
                            client: self.ctx.mempool.next_client_id(),
                            ctx: Arc::clone(&self.ctx),
                            bucket,
                            rbuf: Vec::new(),
                            wbuf: Vec::new(),
                            wpos: 0,
                            inbox: None,
                        }),
                        Some(fd),
                        Interest::READ,
                    );
                }
                Err(e) if would_block(&e) => break,
                Err(_) => break,
            }
        }
        Action::Keep
    }
}

/// One ingress-client connection on the reactor: the same submit / query
/// / follow protocol the threaded [`iniva_ingress::IngressServer`]
/// speaks, without a thread per client.
struct ClientSession {
    stream: TcpStream,
    client: u64,
    ctx: Arc<ClientCtx>,
    bucket: TokenBucket,
    rbuf: Vec<u8>,
    /// Pending reply bytes; `wpos` bytes of the front already written.
    wbuf: Vec<u8>,
    wpos: usize,
    /// Present after a `Follow`: commit notes to push.
    inbox: Option<Arc<CommitInbox>>,
}

impl ClientSession {
    /// Queues a reply frame; `false` (tear the session down) if the encoded
    /// body can not be framed.
    #[must_use]
    fn enqueue(&mut self, msg: &ClientMsg) -> bool {
        let body = msg.to_frame();
        let Ok(len) = u32::try_from(body.len()) else {
            return false; // reply exceeds the u32 length prefix: drop client
        };
        self.wbuf.extend_from_slice(&len.to_le_bytes());
        self.wbuf.extend_from_slice(&body);
        true
    }

    /// Decodes every complete frame buffered, sharing one allocation
    /// across the batch (the peer path's zero-copy discipline; a Submit
    /// payload is never copied before admission inspects it).
    fn drain(&mut self, ctl: &mut Ctl<'_>) -> Action {
        let complete = |buf: &[u8]| -> io::Result<Option<usize>> {
            if buf.len() < 4 {
                return Ok(None);
            }
            let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
            if len > MAX_CLIENT_FRAME {
                return Err(io::ErrorKind::InvalidData.into());
            }
            if buf.len() < 4 + len {
                return Ok(None);
            }
            Ok(Some(len))
        };
        match complete(&self.rbuf) {
            Ok(Some(_)) => {}
            Ok(None) => return Action::Keep,
            Err(_) => return Action::Drop, // hostile length prefix
        }
        let shared = bytes::Bytes::from(std::mem::take(&mut self.rbuf));
        let mut offset = 0usize;
        let verdict = loop {
            match complete(&shared[offset..]) {
                Ok(None) => break Action::Keep,
                Err(_) => break Action::Drop,
                Ok(Some(len)) => {
                    let body = shared.slice(offset + 4..offset + 4 + len);
                    offset += 4 + len;
                    let Ok(msg) = ClientMsg::from_frame(body) else {
                        break Action::Drop;
                    };
                    if self.handle_msg(ctl, msg) == Action::Drop {
                        break Action::Drop;
                    }
                }
            }
        };
        if verdict == Action::Keep && offset < shared.len() {
            self.rbuf.extend_from_slice(&shared[offset..]);
        }
        verdict
    }

    fn handle_msg(&mut self, ctl: &mut Ctl<'_>, msg: ClientMsg) -> Action {
        match msg {
            ClientMsg::Submit {
                fee,
                nonce,
                payload,
            } => {
                let status = if self.bucket.try_take() {
                    self.ctx
                        .mempool
                        .submit(self.client, nonce, fee, payload.len())
                } else {
                    self.ctx.mempool.note_rate_limited();
                    SubmitStatus::Busy
                };
                if !self.enqueue(&ClientMsg::SubmitAck { nonce, status }) {
                    return Action::Drop;
                }
            }
            ClientMsg::Query { height } => {
                let committed_height = self.ctx.mempool.committed_height();
                if !self.enqueue(&ClientMsg::QueryResponse {
                    height,
                    committed_height,
                    committed: height <= committed_height && committed_height > 0,
                }) {
                    return Action::Drop;
                }
            }
            ClientMsg::Follow => {
                if self.inbox.is_none() {
                    let inbox = self.ctx.mempool.follow(self.client);
                    let handle = self.ctx.handle.clone();
                    let token = ctl.token();
                    inbox.set_waker(Box::new(move || handle.notify(token)));
                    self.inbox = Some(inbox);
                }
            }
            // Server-to-client messages arriving here mean a broken peer.
            ClientMsg::SubmitAck { .. }
            | ClientMsg::QueryResponse { .. }
            | ClientMsg::Committed { .. } => return Action::Drop,
        }
        Action::Keep
    }

    /// Turns pending commit notes into `Committed` frames; `false` tears
    /// the session down.
    #[must_use]
    fn push_commits(&mut self) -> bool {
        if let Some(inbox) = self.inbox.clone() {
            for note in inbox.drain() {
                if !self.enqueue(&ClientMsg::Committed {
                    nonce: note.nonce,
                    height: note.height,
                }) {
                    return false;
                }
            }
        }
        true
    }

    fn flush(&mut self, ctl: &mut Ctl<'_>) -> Action {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => return Action::Drop,
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) if would_block(&e) => {
                    if self.wbuf.len() - self.wpos > CLIENT_WBUF_CAP {
                        return Action::Drop; // non-draining client
                    }
                    ctl.set_interest(Interest::BOTH);
                    return Action::Keep;
                }
                Err(_) => return Action::Drop,
            }
        }
        self.wbuf.clear();
        self.wpos = 0;
        ctl.set_interest(Interest::READ);
        Action::Keep
    }
}

impl Source for ClientSession {
    fn ready(&mut self, ctl: &mut Ctl<'_>, readable: bool, _writable: bool) -> Action {
        if readable {
            let mut chunk = [0u8; READ_CHUNK];
            loop {
                match self.stream.read(&mut chunk) {
                    Ok(0) => return Action::Drop,
                    Ok(n) => {
                        self.rbuf.extend_from_slice(&chunk[..n]);
                        if self.drain(ctl) == Action::Drop {
                            return Action::Drop;
                        }
                        if n < chunk.len() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) if would_block(&e) => break,
                    Err(_) => return Action::Drop,
                }
            }
        }
        if !self.push_commits() {
            return Action::Drop;
        }
        self.flush(ctl)
    }

    fn notified(&mut self, ctl: &mut Ctl<'_>) -> Action {
        if !self.push_commits() {
            return Action::Drop;
        }
        self.flush(ctl)
    }
}

impl Drop for ClientSession {
    fn drop(&mut self) {
        if self.inbox.is_some() {
            self.ctx.mempool.unfollow(self.client);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iniva_net::wire::{DecodeError, Decoder, Encoder, WireDecode, WireEncode};
    use std::sync::mpsc;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    struct TestMsg(u64);

    impl WireEncode for TestMsg {
        fn encode(&self, enc: &mut Encoder) {
            enc.put_u64(self.0);
        }
    }
    impl WireDecode for TestMsg {
        fn decode(dec: &mut Decoder) -> Result<Self, DecodeError> {
            Ok(TestMsg(dec.get_u64()?))
        }
    }

    /// A socket for `PeerConn`'s `stream` field; `drain` never touches it.
    fn dummy_stream() -> TcpStream {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let stream = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let _accepted = listener.accept().unwrap();
        stream
    }

    fn peer_conn(tx: Sender<Incoming<TestMsg>>) -> PeerConn<TestMsg> {
        PeerConn {
            stream: dummy_stream(),
            pending: Vec::new(),
            from: None,
            ctx: Arc::new(PeerCtx {
                node: 0,
                tx,
                stats: Arc::new(TransportStats::default()),
                node_faults: Arc::new(NodeFaults::new()),
                link_faults: Arc::new(LinkFaults::new()),
                dedup: Mutex::new(DedupCache::new(64)),
            }),
        }
    }

    /// Handshake from peer 7 followed by one frame carrying `msg`.
    fn wire_bytes(seq: u64, msg: TestMsg) -> Vec<u8> {
        let body = msg.to_frame();
        let mut bytes = frame::handshake_bytes(7, 1).to_vec();
        bytes.extend_from_slice(&u32::try_from(body.len() + 8).unwrap().to_le_bytes());
        bytes.extend_from_slice(&seq.to_le_bytes());
        bytes.extend_from_slice(&body);
        bytes
    }

    /// Regression: a panic on any thread holding the shared dedup filter
    /// used to poison it, and the next inbound frame — hostile or honest —
    /// panicked the poller thread, killing every connection of the node.
    /// `relock` recovers the guard instead.
    #[test]
    fn poisoned_dedup_does_not_panic_the_poller() {
        let (tx, rx) = mpsc::channel();
        let mut conn = peer_conn(tx);
        std::thread::scope(|s| {
            let dedup = &conn.ctx.dedup;
            let _ = s
                .spawn(|| {
                    let _g = dedup.lock().unwrap();
                    panic!("poison");
                })
                .join();
        });
        assert!(conn.ctx.dedup.lock().is_err(), "dedup should be poisoned");

        conn.pending = wire_bytes(1, TestMsg(42));
        assert_eq!(conn.drain(), Action::Keep);
        let got = rx.try_recv().expect("frame should be delivered");
        assert_eq!(got.from, 7);
        assert_eq!(got.msg, TestMsg(42));
    }

    /// Regression: corrupt framing from a hostile peer must tear down that
    /// one connection (`Action::Drop`), never unwind the poller.
    #[test]
    fn corrupt_frame_drops_connection_without_panic() {
        let (tx, _rx) = mpsc::channel();
        let mut conn = peer_conn(tx);
        let mut bytes = frame::handshake_bytes(7, 1).to_vec();
        // Length prefix below the 8-byte minimum: unrecoverable framing.
        bytes.extend_from_slice(&3u32.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 16]);
        conn.pending = bytes;
        assert_eq!(conn.drain(), Action::Drop);
    }

    /// Regression: an undecodable body after valid framing is a hostile
    /// input, not an invariant violation — the connection drops and
    /// already-parsed frames stay delivered.
    #[test]
    fn undecodable_body_drops_connection_after_delivering_good_frames() {
        let (tx, rx) = mpsc::channel();
        let mut conn = peer_conn(tx);
        let mut bytes = wire_bytes(1, TestMsg(9));
        // Second frame: valid length/seq, 3-byte body no TestMsg decodes.
        bytes.extend_from_slice(&11u32.to_le_bytes());
        bytes.extend_from_slice(&2u64.to_le_bytes());
        bytes.extend_from_slice(&[0xff, 0xff, 0xff]);
        conn.pending = bytes;
        assert_eq!(conn.drain(), Action::Drop);
        assert_eq!(
            rx.try_recv().expect("first frame delivered").msg,
            TestMsg(9)
        );
    }
}
