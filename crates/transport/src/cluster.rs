//! A loopback Iniva cluster: n replicas as threads, each with its own
//! [`Runtime`] and TCP [`Transport`] on `127.0.0.1` ephemeral ports.
//!
//! This is the "one machine, n processes-worth of sockets" configuration —
//! every message crosses a real TCP connection with real framing, exactly
//! as in a multi-host deployment, minus propagation delay. The integration
//! tests, the `live_cluster` example and the transport benchmark baseline
//! all run through this harness.

use crate::runtime::{CpuMode, Runtime, RuntimeStats};
use crate::transport::{Transport, TransportSnapshot};
use iniva::protocol::{InivaConfig, InivaReplica};
use iniva_crypto::sim_scheme::SimScheme;
use std::io;
use std::net::{IpAddr, Ipv4Addr, SocketAddr, TcpListener};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Duration;

/// Result of one replica's run.
pub struct NodeRun {
    /// The replica, with its chain and metrics, after the run.
    pub replica: InivaReplica<SimScheme>,
    /// Event-loop counters.
    pub runtime: RuntimeStats,
    /// Socket counters.
    pub transport: TransportSnapshot,
}

/// Result of a whole cluster run.
pub struct ClusterRun {
    /// Per-replica results, indexed by committee id.
    pub nodes: Vec<NodeRun>,
    /// The wall-clock load duration.
    pub duration: Duration,
}

impl ClusterRun {
    /// The greatest height every replica has committed (the cluster's
    /// agreed prefix length), or an error naming the first divergence.
    ///
    /// Agreement is checked pairwise over the full committed logs: any two
    /// replicas that both committed a height must have the same block hash
    /// there — the safety property of the protocol, asserted over real
    /// sockets.
    pub fn agreed_prefix_height(&self) -> Result<u64, String> {
        use std::collections::HashMap;
        let mut canonical: HashMap<u64, ([u8; 32], usize)> = HashMap::new();
        for (id, node) in self.nodes.iter().enumerate() {
            for &(height, hash) in node.replica.chain.committed_log() {
                match canonical.get(&height) {
                    None => {
                        canonical.insert(height, (hash, id));
                    }
                    Some(&(other, owner)) if other != hash => {
                        return Err(format!(
                            "replicas {owner} and {id} disagree at height {height}"
                        ));
                    }
                    Some(_) => {}
                }
            }
        }
        Ok(self
            .nodes
            .iter()
            .map(|n| n.replica.chain.committed_height())
            .min()
            .unwrap_or(0))
    }
}

/// Runs an `cfg.n`-replica Iniva cluster over loopback TCP for `duration`,
/// then collects every replica's final state.
///
/// # Errors
/// Propagates socket setup failures (binding listeners, starting lanes).
pub fn run_local_iniva_cluster(
    cfg: &InivaConfig,
    duration: Duration,
    cpu: CpuMode,
) -> io::Result<ClusterRun> {
    let n = cfg.n;
    let loopback = SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), 0);
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind(loopback))
        .collect::<io::Result<_>>()?;
    let peers: Vec<(u32, SocketAddr)> = listeners
        .iter()
        .enumerate()
        .map(|(id, l)| Ok((id as u32, l.local_addr()?)))
        .collect::<io::Result<_>>()?;

    let scheme = Arc::new(SimScheme::new(n, b"live-cluster"));
    // Align every runtime's epoch: replicas construct their runtime (which
    // pins the epoch instant) only after all threads are ready.
    let barrier = Arc::new(Barrier::new(n));
    let mut handles = Vec::with_capacity(n);
    for (id, listener) in listeners.into_iter().enumerate() {
        let peers = peers.clone();
        let cfg = cfg.clone();
        let scheme = Arc::clone(&scheme);
        let barrier = Arc::clone(&barrier);
        let handle = thread::Builder::new()
            .name(format!("iniva-replica-{id}"))
            .spawn(move || -> io::Result<NodeRun> {
                let transport = Transport::start(id as u32, listener, &peers)?;
                let replica = InivaReplica::new(id as u32, cfg, scheme);
                barrier.wait();
                let mut runtime = Runtime::new(replica, transport, cpu);
                runtime.run_for(duration);
                let (replica, runtime, transport) = runtime.finish();
                Ok(NodeRun {
                    replica,
                    runtime,
                    transport,
                })
            })
            .expect("spawn replica thread");
        handles.push(handle);
    }

    let mut nodes = Vec::with_capacity(n);
    for handle in handles {
        nodes.push(handle.join().expect("replica thread panicked")?);
    }
    Ok(ClusterRun { nodes, duration })
}
