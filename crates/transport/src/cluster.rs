//! A loopback Iniva cluster: n replicas as threads, each with its own
//! [`Runtime`] and TCP [`Transport`] on `127.0.0.1` ephemeral ports.
//!
//! This is the "one machine, n processes-worth of sockets" configuration —
//! every message crosses a real TCP connection with real framing, exactly
//! as in a multi-host deployment, minus propagation delay. The integration
//! tests, the `live_cluster` example and the transport benchmark baseline
//! all run through this harness.
//!
//! Chaos runs use the same harness: [`ClusterFaults`] aggregates every
//! replica's [`NodeFaults`] switch plus the shared [`LinkFaults`] filter,
//! and [`run_local_iniva_cluster_with_plan`] replays a seeded
//! [`FaultPlan`] — the *same* plan type the simulator replays via
//! `FaultPlan::run_on_sim` — against the live sockets from a driver
//! thread, so the Fig. 4 resilience sweeps compare one scenario across
//! both backends.

use crate::faults::{LinkFaults, NodeFaults};
use crate::runtime::{CpuMode, Runtime, RuntimeStats};
use crate::transport::{Transport, TransportOptions, TransportSnapshot};
use iniva::protocol::{InivaConfig, InivaReplica};
use iniva_crypto::sim_scheme::SimScheme;
use iniva_net::faults::{FaultEvent, FaultPlan};
use iniva_net::NodeId;
use std::io;
use std::net::{IpAddr, Ipv4Addr, SocketAddr, TcpListener};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

/// Result of one replica's run.
pub struct NodeRun {
    /// The replica, with its chain and metrics, after the run.
    pub replica: InivaReplica<SimScheme>,
    /// Event-loop counters.
    pub runtime: RuntimeStats,
    /// Socket counters.
    pub transport: TransportSnapshot,
}

/// Result of a whole cluster run.
pub struct ClusterRun {
    /// Per-replica results, indexed by committee id.
    pub nodes: Vec<NodeRun>,
    /// The wall-clock load duration.
    pub duration: Duration,
}

impl ClusterRun {
    /// The greatest height every replica in `ids` has committed (the
    /// group's agreed prefix length), or an error naming the first
    /// divergence.
    ///
    /// Agreement is checked pairwise over the full committed logs: any two
    /// replicas that both committed a height must have the same block hash
    /// there — the safety property of the protocol, asserted over real
    /// sockets. Chaos tests pass the *surviving* replicas as `ids`;
    /// crashed nodes still must not have committed a conflicting block,
    /// so their logs are checked for consistency too, but their (stalled)
    /// heights don't drag the prefix down.
    pub fn agreed_prefix_height_of(&self, ids: &[usize]) -> Result<u64, String> {
        use std::collections::HashMap;
        let mut canonical: HashMap<u64, ([u8; 32], usize)> = HashMap::new();
        for (id, node) in self.nodes.iter().enumerate() {
            for &(height, hash) in node.replica.chain.committed_log() {
                match canonical.get(&height) {
                    None => {
                        canonical.insert(height, (hash, id));
                    }
                    Some(&(other, owner)) if other != hash => {
                        return Err(format!(
                            "replicas {owner} and {id} disagree at height {height}"
                        ));
                    }
                    Some(_) => {}
                }
            }
        }
        Ok(ids
            .iter()
            .map(|&i| self.nodes[i].replica.chain.committed_height())
            .min()
            .unwrap_or(0))
    }

    /// [`Self::agreed_prefix_height_of`] over every replica.
    pub fn agreed_prefix_height(&self) -> Result<u64, String> {
        let all: Vec<usize> = (0..self.nodes.len()).collect();
        self.agreed_prefix_height_of(&all)
    }
}

/// Kill/heal/partition surface for one in-process cluster: every node's
/// crash switch plus the shared link filter, addressed by committee id.
#[derive(Clone)]
pub struct ClusterFaults {
    nodes: Vec<Arc<NodeFaults>>,
    links: Arc<LinkFaults>,
}

impl ClusterFaults {
    /// Fault handles for an `n`-replica cluster, initially all healthy.
    pub fn new(n: usize) -> Self {
        ClusterFaults {
            nodes: (0..n).map(|_| Arc::new(NodeFaults::new())).collect(),
            links: Arc::new(LinkFaults::new()),
        }
    }

    /// The crash switch of replica `id` (shared with its transport).
    pub fn node(&self, id: NodeId) -> Arc<NodeFaults> {
        Arc::clone(&self.nodes[id as usize])
    }

    /// The cluster-wide link filter.
    pub fn links(&self) -> Arc<LinkFaults> {
        Arc::clone(&self.links)
    }

    /// Crashes replica `id`.
    pub fn kill(&self, id: NodeId) {
        self.nodes[id as usize].kill();
    }

    /// Heals replica `id` under a fresh incarnation epoch.
    pub fn heal(&self, id: NodeId) {
        self.nodes[id as usize].heal();
    }

    /// Symmetrically partitions group `a` from group `b`.
    pub fn partition(&self, a: &[NodeId], b: &[NodeId]) {
        self.links.partition(a, b);
    }

    /// Heals every cut link and removes every injected delay.
    pub fn heal_all_links(&self) {
        self.links.heal_all();
    }

    /// Injects `delay` before every frame shipped on `from → to`.
    pub fn slow_link(&self, from: NodeId, to: NodeId, delay: Duration) {
        self.links.slow_link(from, to, delay);
    }

    /// Injects one [`FaultPlan`] event.
    pub fn apply(&self, fault: &FaultEvent) {
        match fault {
            FaultEvent::Crash(node) => self.kill(*node),
            FaultEvent::Restart(node) => self.heal(*node),
            FaultEvent::Partition { a, b } => self.partition(a, b),
            FaultEvent::PartitionOneWay { from, to } => {
                for &x in from {
                    for &y in to {
                        self.links.block_one_way(x, y);
                    }
                }
            }
            FaultEvent::HealAllLinks => self.heal_all_links(),
            FaultEvent::SlowLink { from, to, extra } => {
                self.slow_link(*from, *to, Duration::from_nanos(*extra));
            }
        }
    }

    /// Replays `plan` against wall time: each event fires `event.at`
    /// nanoseconds after `start`; events scheduled past `until` are
    /// skipped (mirroring `FaultPlan::run_on_sim`'s cutoff, so a plan
    /// outliving the run cannot stall the harness). Runs on the calling
    /// thread (the cluster harness dedicates a driver thread to it).
    pub fn drive(&self, plan: &FaultPlan, start: Instant, until: Duration) {
        for ev in plan.events() {
            if Duration::from_nanos(ev.at) > until {
                break;
            }
            let at = start + Duration::from_nanos(ev.at);
            if let Some(wait) = at.checked_duration_since(Instant::now()) {
                thread::sleep(wait);
            }
            self.apply(&ev.fault);
        }
    }
}

/// The canonical crash → partition → heal scenario shared by the chaos
/// acceptance test (`crates/transport/tests/chaos.rs`) and the
/// `live_cluster --chaos` demo, so the demo always shows exactly the
/// scenario the test pins.
///
/// 7 replicas whose commit cadence is dominated by the (identical)
/// protocol timers rather than CPU or propagation time — one node stays
/// crashed from t=0, keeping the 2ND-CHANCE timer δ on every view's
/// critical path, deterministic in both backends, while the scaled-down
/// cost model keeps 7 spinning replica threads within one core. The plan:
/// crash the seeded victim at 0, cut the survivors 3|4 (both sides below
/// quorum(7) = 5 with the victim down, so commits stall completely) at
/// 2 s, heal the links at 3.5 s.
///
/// Returns `(config, plan, victim, survivors)`.
pub fn chaos_demo_scenario(seed: u64) -> (InivaConfig, FaultPlan, NodeId, Vec<NodeId>) {
    use iniva_net::{MILLIS, SECS};
    let mut cfg = InivaConfig::for_tests(7, 2);
    cfg.request_rate = 2_000;
    cfg.cost = cfg.cost.scaled(0.05);
    cfg.sc_on_quorum = true;
    cfg.second_chance_timer = Some(50 * MILLIS);

    let members = FaultPlan::shuffled_members(cfg.n, seed);
    let (victim, o) = (members[0], members[1..].to_vec());
    let plan = FaultPlan::new()
        .crash(0, victim)
        .partition(2 * SECS, &[o[0], o[1], o[2]], &[o[3], o[4], o[5], victim])
        .heal_links(3_500 * MILLIS);
    (cfg, plan, victim, o)
}

/// Runs an `cfg.n`-replica Iniva cluster over loopback TCP for `duration`,
/// then collects every replica's final state.
///
/// # Errors
/// Propagates socket setup failures (binding listeners, starting lanes).
pub fn run_local_iniva_cluster(
    cfg: &InivaConfig,
    duration: Duration,
    cpu: CpuMode,
) -> io::Result<ClusterRun> {
    run_local_iniva_cluster_with_plan(cfg, duration, cpu, &FaultPlan::new())
}

/// Runs an `cfg.n`-replica Iniva cluster over loopback TCP for `duration`
/// while a driver thread injects `plan` — crash, heal, partition and
/// slow-link events at their scheduled wall-clock offsets — then collects
/// every replica's final state.
///
/// # Errors
/// Propagates socket setup failures (binding listeners, starting lanes).
pub fn run_local_iniva_cluster_with_plan(
    cfg: &InivaConfig,
    duration: Duration,
    cpu: CpuMode,
    plan: &FaultPlan,
) -> io::Result<ClusterRun> {
    let n = cfg.n;
    let loopback = SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), 0);
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind(loopback))
        .collect::<io::Result<_>>()?;
    let peers: Vec<(u32, SocketAddr)> = listeners
        .iter()
        .enumerate()
        .map(|(id, l)| Ok((id as u32, l.local_addr()?)))
        .collect::<io::Result<_>>()?;

    let scheme = Arc::new(SimScheme::new(n, b"live-cluster"));
    let faults = ClusterFaults::new(n);
    // Time-zero events are injected exactly once, before any replica
    // thread starts, so a node crashed at 0 never runs `on_start` — the
    // exact semantics of `FaultPlan::run_on_sim` on the simulator. The
    // driver below gets only the deferred remainder: a re-applied
    // `Restart` would bump the incarnation epoch a second time and
    // spuriously drop frames queued under the first one.
    for ev in plan.events().iter().filter(|ev| ev.at == 0) {
        faults.apply(&ev.fault);
    }
    // Every transport is constructed *here*, before any replica thread or
    // barrier wait: a socket setup failure (fd exhaustion on a large
    // sweep, say) propagates as the documented io::Error instead of
    // leaving the other threads deadlocked on a barrier that can never
    // fill.
    let mut transports = Vec::with_capacity(n);
    for (id, listener) in listeners.into_iter().enumerate() {
        transports.push(Transport::start_with(
            id as u32,
            listener,
            &peers,
            TransportOptions::default(),
            faults.node(id as u32),
            faults.links(),
        )?);
    }

    // Align every runtime's epoch: replicas construct their runtime (which
    // pins the epoch instant) only after all threads are ready. The +1 is
    // the fault driver, so plan offsets share the same time zero.
    let barrier = Arc::new(Barrier::new(n + 1));
    let mut handles = Vec::with_capacity(n);
    for (id, transport) in transports.into_iter().enumerate() {
        let cfg = cfg.clone();
        let scheme = Arc::clone(&scheme);
        let barrier = Arc::clone(&barrier);
        let handle = thread::Builder::new()
            .name(format!("iniva-replica-{id}"))
            .spawn(move || -> NodeRun {
                let replica = InivaReplica::new(id as u32, cfg, scheme);
                barrier.wait();
                let mut runtime = Runtime::new(replica, transport, cpu);
                runtime.run_for(duration);
                let (replica, runtime, transport) = runtime.finish();
                NodeRun {
                    replica,
                    runtime,
                    transport,
                }
            })
            .expect("spawn replica thread");
        handles.push(handle);
    }

    let driver = {
        let faults = faults.clone();
        let plan = plan.deferred();
        let barrier = Arc::clone(&barrier);
        thread::Builder::new()
            .name("iniva-fault-driver".into())
            .spawn(move || {
                barrier.wait();
                faults.drive(&plan, Instant::now(), duration);
            })
            .expect("spawn fault driver")
    };

    let mut nodes = Vec::with_capacity(n);
    for handle in handles {
        nodes.push(handle.join().expect("replica thread panicked"));
    }
    let _ = driver.join();
    Ok(ClusterRun { nodes, duration })
}
