//! A loopback Iniva cluster: n replicas as threads, each with its own
//! [`Runtime`] and TCP [`Transport`] on `127.0.0.1` ephemeral ports.
//!
//! This is the "one machine, n processes-worth of sockets" configuration —
//! every message crosses a real TCP connection with real framing, exactly
//! as in a multi-host deployment, minus propagation delay. The integration
//! tests, the `live_cluster` example and the transport benchmark baseline
//! all run through this harness.
//!
//! Chaos runs use the same harness: [`ClusterFaults`] aggregates every
//! replica's [`NodeFaults`] switch plus the shared [`LinkFaults`] filter,
//! and [`run_local_iniva_cluster_with_plan`] replays a seeded
//! [`FaultPlan`] — the *same* plan type the simulator replays via
//! `FaultPlan::run_on_sim` — against the live sockets from a driver
//! thread, so the Fig. 4 resilience sweeps compare one scenario across
//! both backends.
//!
//! The whole harness is generic over the vote scheme
//! ([`WireScheme`](iniva_crypto::multisig::WireScheme)): the same cluster
//! functions run the calibrated [`SimScheme`] stand-in *or* real BLS
//! pairing crypto ([`iniva_crypto::bls::BlsScheme`]) end to end — codec,
//! framing, WAL and state transfer included — selected by one type
//! parameter (`run_local_iniva_cluster::<BlsScheme>(..)`). `SimScheme`
//! remains the default type parameter so scheme-agnostic code keeps
//! reading naturally.

use crate::faults::{LinkFaults, NodeFaults};
use crate::runtime::{export_runtime_stats, CpuMode, Runtime, RuntimeStats};
use crate::transport::{
    export_transport_snapshot, Transport, TransportOptions, TransportSnapshot, TransportStats,
};
use iniva::protocol::{InivaConfig, InivaReplica};
use iniva_crypto::multisig::WireScheme;
use iniva_crypto::sim_scheme::SimScheme;
use iniva_net::faults::{FaultEvent, FaultPlan};
use iniva_net::NodeId;
use iniva_obs::{Registry, Tracer};
use iniva_storage::ChainWal;
use std::io;
use std::net::{IpAddr, Ipv4Addr, SocketAddr, TcpListener};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// The committee seed every replica of a local cluster derives its keyring
/// from (common knowledge, like the peer list).
pub const CLUSTER_SEED: &[u8] = b"live-cluster";

/// Observability options for a cluster run: where each node dumps its
/// metrics registry (`metrics-<id>.json`) and event trace
/// (`trace-<id>.jsonl`), and how many events the per-node ring keeps.
/// The dump directory is the input to the `view_timeline` analyzer.
#[derive(Clone, Debug)]
pub struct ObsOptions {
    /// Directory receiving per-node dumps (created if missing).
    pub metrics_dir: PathBuf,
    /// Ring capacity of each node's tracer; oldest events are shed (and
    /// counted as dropped) beyond it.
    pub trace_capacity: usize,
}

impl ObsOptions {
    /// Options dumping into `metrics_dir` with the default ring capacity
    /// (64 Ki events — hours of consensus at benchmark view rates).
    pub fn new(metrics_dir: impl Into<PathBuf>) -> Self {
        ObsOptions {
            metrics_dir: metrics_dir.into(),
            trace_capacity: 65_536,
        }
    }
}

/// Writes one node's registry + trace dumps into `obs.metrics_dir`.
fn dump_node_obs(
    obs: &ObsOptions,
    id: NodeId,
    registry: &Registry,
    tracer: &Tracer,
) -> io::Result<()> {
    std::fs::create_dir_all(&obs.metrics_dir)?;
    std::fs::write(
        obs.metrics_dir.join(format!("metrics-{id}.json")),
        registry.to_json(),
    )?;
    tracer.write_jsonl(&obs.metrics_dir.join(format!("trace-{id}.jsonl")))
}

/// Result of one replica's run.
pub struct NodeRun<S: WireScheme = SimScheme> {
    /// The replica, with its chain and metrics, after the run.
    pub replica: InivaReplica<S>,
    /// Event-loop counters.
    pub runtime: RuntimeStats,
    /// Socket counters.
    pub transport: TransportSnapshot,
}

/// Result of a whole cluster run.
pub struct ClusterRun<S: WireScheme = SimScheme> {
    /// Per-replica results, indexed by committee id.
    pub nodes: Vec<NodeRun<S>>,
    /// The wall-clock load duration.
    pub duration: Duration,
}

impl<S: WireScheme> ClusterRun<S> {
    /// The greatest height every replica in `ids` has committed (the
    /// group's agreed prefix length), or an error naming the first
    /// divergence.
    ///
    /// Agreement is checked pairwise over the full committed logs: any two
    /// replicas that both committed a height must have the same block hash
    /// there — the safety property of the protocol, asserted over real
    /// sockets. Chaos tests pass the *surviving* replicas as `ids`;
    /// crashed nodes still must not have committed a conflicting block,
    /// so their logs are checked for consistency too, but their (stalled)
    /// heights don't drag the prefix down.
    pub fn agreed_prefix_height_of(&self, ids: &[usize]) -> Result<u64, String> {
        use std::collections::HashMap;
        let mut canonical: HashMap<u64, ([u8; 32], usize)> = HashMap::new();
        for (id, node) in self.nodes.iter().enumerate() {
            for &(height, hash) in node.replica.chain.committed_log() {
                match canonical.get(&height) {
                    None => {
                        canonical.insert(height, (hash, id));
                    }
                    Some(&(other, owner)) if other != hash => {
                        return Err(format!(
                            "replicas {owner} and {id} disagree at height {height}"
                        ));
                    }
                    Some(_) => {}
                }
            }
        }
        Ok(ids
            .iter()
            .map(|&i| self.nodes[i].replica.chain.committed_height())
            .min()
            .unwrap_or(0))
    }

    /// [`Self::agreed_prefix_height_of`] over every replica.
    pub fn agreed_prefix_height(&self) -> Result<u64, String> {
        let all: Vec<usize> = (0..self.nodes.len()).collect();
        self.agreed_prefix_height_of(&all)
    }
}

/// Lifecycle phase of one replica "process" in a restart-capable cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// The replica process is (or should be) running.
    Running,
    /// The replica process is dead; its runtime and sockets are torn down.
    Down,
    /// A restart from durable storage was requested; the lifecycle thread
    /// consumes this and rebuilds replica + transport from the WAL.
    RestartPending,
}

/// Process-lifecycle switch for one replica in a WAL-enabled cluster run:
/// the restart-capable harness's analogue of `kill -9` + "start the
/// binary again". Where [`NodeFaults`] silences a node *inside* a living
/// transport, this tells the replica's lifecycle thread to tear the whole
/// runtime down and, later, rebuild it from disk.
#[derive(Debug)]
pub struct NodeControl {
    phase: Mutex<Phase>,
    cv: Condvar,
}

impl Default for NodeControl {
    fn default() -> Self {
        NodeControl {
            phase: Mutex::new(Phase::Running),
            cv: Condvar::new(),
        }
    }
}

impl NodeControl {
    /// Marks the process dead: the lifecycle thread exits its runtime and
    /// drops the transport (sockets close, peers see dead connections).
    pub fn set_down(&self) {
        *self.phase.lock().expect("control lock") = Phase::Down;
        self.cv.notify_all();
    }

    /// Requests a restart from durable storage.
    pub fn request_restart(&self) {
        *self.phase.lock().expect("control lock") = Phase::RestartPending;
        self.cv.notify_all();
    }

    /// True while the process should not be running (the runtime's stop
    /// hook: also true when a restart is pending, since a restart begins
    /// by tearing the current incarnation down).
    pub fn stop_requested(&self) -> bool {
        *self.phase.lock().expect("control lock") != Phase::Running
    }

    /// True while the process is down with no restart pending.
    fn is_down(&self) -> bool {
        *self.phase.lock().expect("control lock") == Phase::Down
    }

    /// Blocks until the process should run (consuming a pending restart)
    /// or `deadline` passes while down; returns `false` in the latter
    /// case.
    fn wait_runnable(&self, deadline: Instant) -> bool {
        let mut phase = self.phase.lock().expect("control lock");
        loop {
            match *phase {
                Phase::Running => return true,
                Phase::RestartPending => {
                    *phase = Phase::Running;
                    return true;
                }
                Phase::Down => {
                    let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                        return false;
                    };
                    let (guard, _) = self.cv.wait_timeout(phase, left).expect("control wait");
                    phase = guard;
                }
            }
        }
    }
}

/// Kill/heal/partition surface for one in-process cluster: every node's
/// crash switch plus the shared link filter, addressed by committee id.
/// WAL-enabled runs additionally consult each node's [`NodeControl`] for
/// process-level kill/restart-from-disk.
#[derive(Clone)]
pub struct ClusterFaults {
    nodes: Vec<Arc<NodeFaults>>,
    links: Arc<LinkFaults>,
    controls: Vec<Arc<NodeControl>>,
}

impl ClusterFaults {
    /// Fault handles for an `n`-replica cluster, initially all healthy.
    pub fn new(n: usize) -> Self {
        ClusterFaults {
            nodes: (0..n).map(|_| Arc::new(NodeFaults::new())).collect(),
            links: Arc::new(LinkFaults::new()),
            controls: (0..n).map(|_| Arc::new(NodeControl::default())).collect(),
        }
    }

    /// The process-lifecycle switch of replica `id` (observed only by the
    /// restart-capable WAL harness).
    pub fn control(&self, id: NodeId) -> Arc<NodeControl> {
        Arc::clone(&self.controls[id as usize])
    }

    /// The crash switch of replica `id` (shared with its transport).
    pub fn node(&self, id: NodeId) -> Arc<NodeFaults> {
        Arc::clone(&self.nodes[id as usize])
    }

    /// The cluster-wide link filter.
    pub fn links(&self) -> Arc<LinkFaults> {
        Arc::clone(&self.links)
    }

    /// Crashes replica `id`.
    pub fn kill(&self, id: NodeId) {
        self.nodes[id as usize].kill();
    }

    /// Heals replica `id` under a fresh incarnation epoch.
    pub fn heal(&self, id: NodeId) {
        self.nodes[id as usize].heal();
    }

    /// Symmetrically partitions group `a` from group `b`.
    pub fn partition(&self, a: &[NodeId], b: &[NodeId]) {
        self.links.partition(a, b);
    }

    /// Heals every cut link and removes every injected delay.
    pub fn heal_all_links(&self) {
        self.links.heal_all();
    }

    /// Injects `delay` before every frame shipped on `from → to`.
    pub fn slow_link(&self, from: NodeId, to: NodeId, delay: Duration) {
        self.links.slow_link(from, to, delay);
    }

    /// Injects one [`FaultPlan`] event.
    pub fn apply(&self, fault: &FaultEvent) {
        match fault {
            FaultEvent::Crash(node) => {
                // Transport-level silence takes effect immediately; the
                // process-level control is observed only by WAL-enabled
                // lifecycle threads, which then tear the runtime down.
                self.kill(*node);
                self.controls[*node as usize].set_down();
            }
            FaultEvent::Restart(node) => self.heal(*node),
            FaultEvent::RestartFromDisk(node) => {
                self.heal(*node);
                self.controls[*node as usize].request_restart();
            }
            FaultEvent::Partition { a, b } => self.partition(a, b),
            FaultEvent::PartitionOneWay { from, to } => {
                for &x in from {
                    for &y in to {
                        self.links.block_one_way(x, y);
                    }
                }
            }
            FaultEvent::HealAllLinks => self.heal_all_links(),
            FaultEvent::SlowLink { from, to, extra } => {
                self.slow_link(*from, *to, Duration::from_nanos(*extra));
            }
        }
    }

    /// Replays `plan` against wall time: each event fires `event.at`
    /// nanoseconds after `start`; events scheduled past `until` are
    /// skipped (mirroring `FaultPlan::run_on_sim`'s cutoff, so a plan
    /// outliving the run cannot stall the harness). Runs on the calling
    /// thread (the cluster harness dedicates a driver thread to it).
    pub fn drive(&self, plan: &FaultPlan, start: Instant, until: Duration) {
        for ev in plan.events() {
            if Duration::from_nanos(ev.at) > until {
                break;
            }
            let at = start + Duration::from_nanos(ev.at);
            if let Some(wait) = at.checked_duration_since(Instant::now()) {
                thread::sleep(wait);
            }
            self.apply(&ev.fault);
        }
    }
}

/// The canonical crash → partition → heal scenario shared by the chaos
/// acceptance test (`crates/transport/tests/chaos.rs`) and the
/// `live_cluster --chaos` demo, so the demo always shows exactly the
/// scenario the test pins.
///
/// 7 replicas whose commit cadence is dominated by the (identical)
/// protocol timers rather than CPU or propagation time — one node stays
/// crashed from t=0, keeping the 2ND-CHANCE timer δ on every view's
/// critical path, deterministic in both backends, while the scaled-down
/// cost model keeps 7 spinning replica threads within one core. The plan:
/// crash the seeded victim at 0, cut the survivors 3|4 (both sides below
/// quorum(7) = 5 with the victim down, so commits stall completely) at
/// 2 s, heal the links at 3.5 s.
///
/// Returns `(config, plan, victim, survivors)`.
pub fn chaos_demo_scenario(seed: u64) -> (InivaConfig, FaultPlan, NodeId, Vec<NodeId>) {
    use iniva_net::{MILLIS, SECS};
    let mut cfg = InivaConfig::for_tests(7, 2);
    cfg.request_rate = 2_000;
    cfg.cost = cfg.cost.scaled(0.05);
    cfg.sc_on_quorum = true;
    cfg.second_chance_timer = Some(50 * MILLIS);

    let members = FaultPlan::shuffled_members(cfg.n, seed);
    let (victim, o) = (members[0], members[1..].to_vec());
    let plan = FaultPlan::new()
        .crash(0, victim)
        .partition(2 * SECS, &[o[0], o[1], o[2]], &[o[3], o[4], o[5], victim])
        .heal_links(3_500 * MILLIS);
    (cfg, plan, victim, o)
}

/// Runs an `cfg.n`-replica Iniva cluster over loopback TCP for `duration`,
/// then collects every replica's final state.
///
/// # Errors
/// Propagates socket setup failures (binding listeners, starting lanes).
pub fn run_local_iniva_cluster<S: WireScheme>(
    cfg: &InivaConfig,
    duration: Duration,
    cpu: CpuMode,
) -> io::Result<ClusterRun<S>> {
    run_local_iniva_cluster_with_plan::<S>(cfg, duration, cpu, &FaultPlan::new())
}

/// A releasable start line: workers arrive and wait for a go/abort
/// verdict. Unlike a `Barrier`, the harness can release everyone with
/// "abort" when a later setup step (a thread spawn, say) fails — the
/// already-spawned workers exit instead of deadlocking on a barrier that
/// can never fill, which is what lets the cluster setup paths return a
/// usable `io::Error` to chaos tests under CI.
struct StartGate {
    state: Mutex<(usize, Option<bool>)>,
    cv: Condvar,
}

impl StartGate {
    fn new() -> Self {
        StartGate {
            state: Mutex::new((0, None)),
            cv: Condvar::new(),
        }
    }

    /// Worker side: report readiness, wait for the verdict. `true` = go.
    fn arrive_and_wait(&self) -> bool {
        let mut st = self.state.lock().expect("gate lock");
        st.0 += 1;
        self.cv.notify_all();
        loop {
            if let Some(go) = st.1 {
                return go;
            }
            st = self.cv.wait(st).expect("gate wait");
        }
    }

    /// Harness side: wait for `workers` arrivals, then release them all
    /// at once (the shared time zero every plan offset is relative to).
    fn go(&self, workers: usize) {
        let mut st = self.state.lock().expect("gate lock");
        while st.0 < workers {
            st = self.cv.wait(st).expect("gate wait");
        }
        st.1 = Some(true);
        self.cv.notify_all();
    }

    /// Harness side: release every current and future arriver with
    /// "abort".
    fn abort(&self) {
        self.state.lock().expect("gate lock").1 = Some(false);
        self.cv.notify_all();
    }
}

/// Joins `handles`, surfacing panics as errors; used on both the success
/// and the abort path.
fn join_runs<S: WireScheme>(
    handles: Vec<thread::JoinHandle<io::Result<NodeRun<S>>>>,
) -> io::Result<Vec<NodeRun<S>>> {
    let mut nodes = Vec::with_capacity(handles.len());
    for handle in handles {
        nodes.push(
            handle
                .join()
                .map_err(|_| io::Error::other("replica thread panicked"))??,
        );
    }
    Ok(nodes)
}

/// Spawns replica lifecycle threads and the fault driver behind one
/// [`StartGate`]; on any spawn failure the gate aborts, every thread
/// spawned so far exits, and the error propagates.
fn launch_cluster<S: WireScheme, F>(
    n: usize,
    plan: &FaultPlan,
    faults: &ClusterFaults,
    duration: Duration,
    spawn_replica: F,
) -> io::Result<Vec<NodeRun<S>>>
where
    F: Fn(usize, Arc<StartGate>) -> io::Result<thread::JoinHandle<io::Result<NodeRun<S>>>>,
{
    let gate = Arc::new(StartGate::new());
    let mut handles = Vec::with_capacity(n);
    for id in 0..n {
        match spawn_replica(id, Arc::clone(&gate)) {
            Ok(handle) => handles.push(handle),
            Err(e) => {
                gate.abort();
                let _ = join_runs(handles);
                return Err(e);
            }
        }
    }
    let driver = {
        let faults = faults.clone();
        let plan = plan.deferred();
        let gate = Arc::clone(&gate);
        thread::Builder::new()
            .name("iniva-fault-driver".into())
            .spawn(move || {
                if gate.arrive_and_wait() {
                    faults.drive(&plan, Instant::now(), duration);
                }
            })
    };
    let driver = match driver {
        Ok(d) => d,
        Err(e) => {
            gate.abort();
            let _ = join_runs(handles);
            return Err(e);
        }
    };
    // Replicas + driver all ready: release the shared time zero.
    gate.go(n + 1);
    let nodes = join_runs(handles);
    let _ = driver.join();
    nodes
}

/// Runs an `cfg.n`-replica Iniva cluster over loopback TCP for `duration`
/// while a driver thread injects `plan` — crash, heal, partition and
/// slow-link events at their scheduled wall-clock offsets — then collects
/// every replica's final state.
///
/// # Errors
/// Propagates socket and thread setup failures (binding listeners,
/// starting lanes, spawning replica or driver threads).
pub fn run_local_iniva_cluster_with_plan<S: WireScheme>(
    cfg: &InivaConfig,
    duration: Duration,
    cpu: CpuMode,
    plan: &FaultPlan,
) -> io::Result<ClusterRun<S>> {
    run_plan_impl::<S>(cfg, duration, cpu, plan, None)
}

/// [`run_local_iniva_cluster_with_plan`] with observability: every
/// replica runs with a live tracer and a metrics registry, and dumps
/// `metrics-<id>.json` + `trace-<id>.jsonl` into `obs.metrics_dir` when
/// the run ends — ready for the `view_timeline` analyzer.
///
/// # Errors
/// Propagates socket, thread and dump-file I/O failures.
pub fn run_local_iniva_cluster_observed<S: WireScheme>(
    cfg: &InivaConfig,
    duration: Duration,
    cpu: CpuMode,
    plan: &FaultPlan,
    obs: &ObsOptions,
) -> io::Result<ClusterRun<S>> {
    run_plan_impl::<S>(cfg, duration, cpu, plan, Some(obs))
}

fn run_plan_impl<S: WireScheme>(
    cfg: &InivaConfig,
    duration: Duration,
    cpu: CpuMode,
    plan: &FaultPlan,
    obs: Option<&ObsOptions>,
) -> io::Result<ClusterRun<S>> {
    let n = cfg.n;
    let loopback = SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), 0);
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind(loopback))
        .collect::<io::Result<_>>()?;
    let peers: Vec<(u32, SocketAddr)> = listeners
        .iter()
        .enumerate()
        .map(|(id, l)| Ok((id as u32, l.local_addr()?)))
        .collect::<io::Result<_>>()?;

    let scheme = Arc::new(S::new_committee(n, CLUSTER_SEED));
    let faults = ClusterFaults::new(n);
    // Time-zero events are injected exactly once, before any replica
    // thread starts, so a node crashed at 0 never runs `on_start` — the
    // exact semantics of `FaultPlan::run_on_sim` on the simulator. The
    // driver gets only the deferred remainder: a re-applied `Restart`
    // would bump the incarnation epoch a second time and spuriously drop
    // frames queued under the first one.
    for ev in plan.events().iter().filter(|ev| ev.at == 0) {
        faults.apply(&ev.fault);
    }
    // Every transport is constructed *here*, before any replica thread:
    // a socket setup failure (fd exhaustion on a large sweep, say)
    // propagates as the documented io::Error with nothing to unwind.
    let mut transports = Vec::with_capacity(n);
    for (id, listener) in listeners.into_iter().enumerate() {
        transports.push(Transport::start_with(
            id as u32,
            listener,
            &peers,
            TransportOptions::default(),
            faults.node(id as u32),
            faults.links(),
        )?);
    }

    let slots: Vec<Mutex<Option<Transport<_>>>> = transports
        .into_iter()
        .map(|t| Mutex::new(Some(t)))
        .collect();
    let nodes = launch_cluster(n, plan, &faults, duration, |id, gate| {
        let transport = slots[id]
            .lock()
            .expect("transport handoff")
            .take()
            .expect("one transport per replica id");
        let cfg = cfg.clone();
        let scheme = Arc::clone(&scheme);
        let obs = obs.cloned();
        thread::Builder::new()
            .name(format!("iniva-replica-{id}"))
            .spawn(move || -> io::Result<NodeRun<S>> {
                let mut replica = InivaReplica::new(id as u32, cfg, Arc::clone(&scheme));
                if !gate.arrive_and_wait() {
                    return Err(io::Error::other("cluster setup aborted"));
                }
                // The gate released every replica together, so these
                // per-thread epochs are within microseconds of each
                // other; the tracer's wall-clock anchor absorbs the
                // residue at merge time.
                let epoch = Instant::now();
                let node_obs = obs.as_ref().map(|o| {
                    let registry = Registry::new();
                    let tracer = Tracer::live(id as u32, o.trace_capacity, epoch);
                    replica.set_observability(&registry, tracer.clone());
                    (registry, tracer)
                });
                let mut runtime = Runtime::with_epoch(replica, transport, cpu, epoch);
                if let Some((registry, _)) = &node_obs {
                    runtime.set_observability(registry);
                }
                runtime.run_for(duration);
                let (mut replica, runtime, transport) = runtime.finish();
                if let (Some(o), Some((registry, tracer))) = (&obs, &node_obs) {
                    export_runtime_stats(&runtime, registry);
                    export_transport_snapshot(&transport, registry);
                    replica.chain.metrics.export(registry);
                    // One keyring is shared by the whole in-process
                    // cluster, so `crypto.*` reads as the cluster total
                    // on every node.
                    scheme.export_observability(registry);
                    dump_node_obs(o, id as u32, registry, tracer)?;
                }
                Ok(NodeRun {
                    replica,
                    runtime,
                    transport,
                })
            })
    })?;
    Ok(ClusterRun { nodes, duration })
}

/// Folds one incarnation's event-loop counters into a per-node total.
fn fold_runtime(total: &mut RuntimeStats, inc: RuntimeStats) {
    total.cpu_charged += inc.cpu_charged;
    total.busy += inc.busy;
    total.msgs_delivered += inc.msgs_delivered;
    total.timers_fired += inc.timers_fired;
}

/// Rebinds a restarting replica's listen address, retrying briefly: the
/// previous incarnation's listener is closed by the time `finish()`
/// returns, but the OS may need a beat to release the port.
fn bind_retry(addr: SocketAddr, deadline: Instant) -> io::Result<TcpListener> {
    loop {
        match TcpListener::bind(addr) {
            Ok(listener) => return Ok(listener),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(e);
                }
                thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// Runs an `cfg.n`-replica Iniva cluster over loopback TCP with **durable
/// chain state**: each replica journals its commits and views to a
/// write-ahead log under `wal_root/replica-<id>/` (`iniva-storage`), and
/// the plan's process-level faults actually happen — [`FaultEvent::Crash`]
/// tears the victim's entire runtime and sockets down (the in-process
/// equivalent of `kill -9`), and [`FaultEvent::RestartFromDisk`] rebuilds
/// replica + transport from the TOML-equivalent peer list and the WAL,
/// after which the replica rehydrates its committed prefix from disk and
/// catches up via `StateRequest`/`StateResponse`.
///
/// `wal_root` is created if needed; pre-existing replica logs are
/// recovered (so a harness can also be used to *resume* a cluster).
/// `options` tunes every transport — chaos tests pass a small
/// [`TransportOptions::lane_capacity`] so that peers shed (rather than
/// replay) most of the history a dead replica missed, forcing the
/// restarted replica to close the gap through state transfer instead of
/// lane-backlog replay.
///
/// # Errors
/// Propagates socket, WAL-I/O and thread setup failures.
pub fn run_local_iniva_cluster_with_wal<S: WireScheme>(
    cfg: &InivaConfig,
    duration: Duration,
    cpu: CpuMode,
    plan: &FaultPlan,
    wal_root: &Path,
    options: TransportOptions,
) -> io::Result<ClusterRun<S>> {
    run_wal_impl::<S>(cfg, duration, cpu, plan, wal_root, options, None)
}

/// [`run_local_iniva_cluster_with_wal`] with observability (see
/// [`run_local_iniva_cluster_observed`]): one registry and one tracer
/// per node span *every incarnation* of that node — a replica rebuilt
/// from its WAL keeps counting into the same series and tracing onto
/// the same ring, so restarts lose nothing.
///
/// # Errors
/// Propagates socket, WAL-I/O, thread and dump-file I/O failures.
pub fn run_local_iniva_cluster_with_wal_observed<S: WireScheme>(
    cfg: &InivaConfig,
    duration: Duration,
    cpu: CpuMode,
    plan: &FaultPlan,
    wal_root: &Path,
    options: TransportOptions,
    obs: &ObsOptions,
) -> io::Result<ClusterRun<S>> {
    run_wal_impl::<S>(cfg, duration, cpu, plan, wal_root, options, Some(obs))
}

#[allow(clippy::too_many_arguments)]
fn run_wal_impl<S: WireScheme>(
    cfg: &InivaConfig,
    duration: Duration,
    cpu: CpuMode,
    plan: &FaultPlan,
    wal_root: &Path,
    options: TransportOptions,
    obs: Option<&ObsOptions>,
) -> io::Result<ClusterRun<S>> {
    let n = cfg.n;
    std::fs::create_dir_all(wal_root)?;
    let loopback = SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), 0);
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind(loopback))
        .collect::<io::Result<_>>()?;
    let peers: Vec<(u32, SocketAddr)> = listeners
        .iter()
        .enumerate()
        .map(|(id, l)| Ok((id as u32, l.local_addr()?)))
        .collect::<io::Result<_>>()?;

    let scheme = Arc::new(S::new_committee(n, CLUSTER_SEED));
    let faults = ClusterFaults::new(n);
    for ev in plan.events().iter().filter(|ev| ev.at == 0) {
        faults.apply(&ev.fault);
    }

    let slots: Vec<Mutex<Option<TcpListener>>> =
        listeners.into_iter().map(|l| Mutex::new(Some(l))).collect();
    let nodes = launch_cluster(n, plan, &faults, duration, |id, gate| {
        let listener = slots[id]
            .lock()
            .expect("listener handoff")
            .take()
            .expect("one listener per replica id");
        let cfg = cfg.clone();
        let scheme = Arc::clone(&scheme);
        let peers = peers.clone();
        let addr = peers[id].1;
        let node_faults = faults.node(id as u32);
        let link_faults = faults.links();
        let control = faults.control(id as u32);
        let wal_dir: PathBuf = wal_root.join(format!("replica-{id}"));
        let obs = obs.cloned();
        thread::Builder::new()
            .name(format!("iniva-replica-{id}"))
            .spawn(move || -> io::Result<NodeRun<S>> {
                replica_lifecycle(
                    id as u32,
                    cfg,
                    scheme,
                    &peers,
                    listener,
                    addr,
                    options,
                    node_faults,
                    link_faults,
                    control,
                    gate,
                    duration,
                    cpu,
                    &wal_dir,
                    obs,
                )
            })
    })?;
    Ok(ClusterRun { nodes, duration })
}

/// One replica's process lifecycle in a WAL-enabled run: (re)build the
/// transport and the WAL-recovered replica, run until the deadline or a
/// process-level fault, tear down, repeat. Each incarnation opens the
/// log, rehydrates the committed prefix and resumes at the recovered
/// view — the same code path an actual restarted `live_cluster --config
/// --id --wal-dir` process takes.
#[allow(clippy::too_many_arguments)]
fn replica_lifecycle<S: WireScheme>(
    id: NodeId,
    cfg: InivaConfig,
    scheme: Arc<S>,
    peers: &[(u32, SocketAddr)],
    listener: TcpListener,
    addr: SocketAddr,
    options: TransportOptions,
    node_faults: Arc<NodeFaults>,
    link_faults: Arc<LinkFaults>,
    control: Arc<NodeControl>,
    gate: Arc<StartGate>,
    duration: Duration,
    cpu: CpuMode,
    wal_dir: &Path,
    obs: Option<ObsOptions>,
) -> io::Result<NodeRun<S>> {
    let mut pending_listener = Some(listener);
    if !gate.arrive_and_wait() {
        return Err(io::Error::other("cluster setup aborted"));
    }
    let time_zero = Instant::now();
    let deadline = time_zero + duration;
    let mut runtime_total = RuntimeStats::default();
    let mut last_incarnation: Option<InivaReplica<S>> = None;
    // One stats block and (when observing) one registry + tracer span
    // every incarnation of this node: restarts keep counting into the
    // same series instead of starting fresh blocks whose predecessors'
    // tails (lane evictions counted while a lane died, say) got lost
    // with the torn-down transport.
    let shared_stats = Arc::new(TransportStats::default());
    let node_obs = obs.as_ref().map(|o| {
        (
            Registry::new(),
            Tracer::live(id, o.trace_capacity, time_zero),
        )
    });
    loop {
        if control.is_down() {
            // The process is dead: close the listening socket too, so
            // peers' dials are refused instead of queueing against a
            // corpse's backlog.
            pending_listener = None;
        }
        if !control.wait_runnable(deadline) {
            break; // still down when the run ended
        }
        if Instant::now() >= deadline {
            break;
        }
        let listener = match pending_listener.take() {
            Some(l) => l,
            None => bind_retry(addr, deadline)?,
        };
        let transport = Transport::start_with_stats(
            id,
            listener,
            peers,
            options,
            Arc::clone(&node_faults),
            Arc::clone(&link_faults),
            Arc::clone(&shared_stats),
        )?;
        let (mut wal, recovered) = ChainWal::<S>::open(wal_dir)?;
        let mut replica = InivaReplica::recover(
            id,
            cfg.clone(),
            Arc::clone(&scheme),
            recovered.commits,
            recovered.view,
        );
        if let Some((registry, tracer)) = &node_obs {
            wal.set_observability(registry, tracer.clone());
            replica.set_observability(registry, tracer.clone());
        }
        replica.chain.set_commit_sink(Box::new(wal));
        // Every incarnation shares the cluster's time zero, so metrics
        // stay on one time axis across restarts.
        let mut runtime = Runtime::with_epoch(replica, transport, cpu, time_zero);
        if let Some((registry, _)) = &node_obs {
            runtime.set_observability(registry);
        }
        runtime.run_deadline(deadline, || control.stop_requested());
        let (replica, stats, _snapshot) = runtime.finish();
        fold_runtime(&mut runtime_total, stats);
        last_incarnation = Some(replica);
    }
    // The shared block is cumulative across incarnations, so the final
    // snapshot *is* the node total — no per-incarnation folding (which
    // would now double-count).
    let transport_total = shared_stats.snapshot();
    let mut replica = match last_incarnation {
        Some(r) => r,
        None => {
            // Crashed at time zero and never restarted: report whatever
            // the disk holds (an empty log for a fresh run).
            let (_, recovered) = ChainWal::<S>::open(wal_dir)?;
            InivaReplica::recover(id, cfg, scheme.clone(), recovered.commits, recovered.view)
        }
    };
    if let (Some(o), Some((registry, tracer))) = (&obs, &node_obs) {
        export_runtime_stats(&runtime_total, registry);
        export_transport_snapshot(&transport_total, registry);
        replica.chain.metrics.export(registry);
        scheme.export_observability(registry);
        dump_node_obs(o, id, registry, tracer)?;
    }
    Ok(NodeRun {
        replica,
        runtime: runtime_total,
        transport: transport_total,
    })
}
