//! A loopback Iniva cluster: n replicas as threads, each with its own
//! [`Runtime`] and TCP [`Transport`] on `127.0.0.1` ephemeral ports.
//!
//! This is the "one machine, n processes-worth of sockets" configuration —
//! every message crosses a real TCP connection with real framing, exactly
//! as in a multi-host deployment, minus propagation delay. The integration
//! tests, the `live_cluster` example and the transport benchmark baseline
//! all run through this harness.
//!
//! [`ClusterBuilder`] is the single entry point: every capability is a
//! builder method, composing freely —
//!
//! ```no_run
//! # use iniva_transport::cluster::{ClusterBuilder, ObsOptions};
//! # use iniva::protocol::InivaConfig;
//! # use iniva_net::faults::FaultPlan;
//! # use std::time::Duration;
//! # fn main() -> std::io::Result<()> {
//! # let cfg = InivaConfig::for_tests(4, 1);
//! # let plan = FaultPlan::new();
//! let run = ClusterBuilder::new(&cfg, Duration::from_secs(2))
//!     .scheme::<iniva_crypto::bls::BlsScheme>() // default: SimScheme
//!     .faults(&plan)                            // chaos injection
//!     .wal("/tmp/wal")                          // durable, restartable
//!     .observe(ObsOptions::new("/tmp/obs"))     // metrics + traces
//!     .ingress(Default::default())              // client mempool tier
//!     .spawn()?;
//! # Ok(()) }
//! ```
//!
//! Chaos runs replay a seeded [`FaultPlan`] — the *same* plan type the
//! simulator replays via `FaultPlan::run_on_sim` — against the live
//! sockets from a driver thread ([`ClusterFaults`] aggregates every
//! replica's [`NodeFaults`] switch plus the shared [`LinkFaults`]
//! filter), so the Fig. 4 resilience sweeps compare one scenario across
//! both backends. With [`ClusterBuilder::ingress`], every replica also
//! runs a client-facing listener feeding one shared fee-ordered mempool
//! (`iniva-ingress`), and the proposer drafts blocks from *that* instead
//! of the synthetic workload model; [`ClusterBuilder::launch`] returns a
//! non-blocking [`ClusterHandle`] so load generators can drive clients
//! while the cluster runs.
//!
//! The whole harness is generic over the vote scheme
//! ([`WireScheme`](iniva_crypto::multisig::WireScheme)): the same builder
//! runs the calibrated [`SimScheme`] stand-in *or* real BLS pairing
//! crypto ([`iniva_crypto::bls::BlsScheme`]) end to end — codec,
//! framing, WAL and state transfer included — selected by one type
//! parameter (`.scheme::<BlsScheme>()`). `SimScheme` remains the default
//! type parameter so scheme-agnostic code keeps reading naturally.

use crate::faults::{LinkFaults, NodeFaults};
use crate::runtime::{export_runtime_stats, CpuMode, Runtime, RuntimeStats};
use crate::transport::{
    export_transport_snapshot, Transport, TransportBackend, TransportOptions, TransportSnapshot,
    TransportStats,
};
use iniva::protocol::{InivaConfig, InivaReplica};
use iniva_crypto::multisig::WireScheme;
use iniva_crypto::sim_scheme::SimScheme;
use iniva_ingress::{IngressOptions, IngressServer, Mempool, RequestSource};
use iniva_net::faults::{FaultEvent, FaultPlan};
use iniva_net::NodeId;
use iniva_obs::{Registry, Tracer};
use iniva_storage::ChainWal;
use std::io;
use std::marker::PhantomData;
use std::net::{IpAddr, Ipv4Addr, SocketAddr, TcpListener};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// The committee seed every replica of a local cluster derives its keyring
/// from (common knowledge, like the peer list).
pub const CLUSTER_SEED: &[u8] = b"live-cluster";

/// Observability options for a cluster run: where each node dumps its
/// metrics registry (`metrics-<id>.json`) and event trace
/// (`trace-<id>.jsonl`), and how many events the per-node ring keeps.
/// The dump directory is the input to the `view_timeline` analyzer.
#[derive(Clone, Debug)]
pub struct ObsOptions {
    /// Directory receiving per-node dumps (created if missing).
    pub metrics_dir: PathBuf,
    /// Ring capacity of each node's tracer; oldest events are shed (and
    /// counted as dropped) beyond it.
    pub trace_capacity: usize,
}

impl ObsOptions {
    /// Options dumping into `metrics_dir` with the default ring capacity
    /// (64 Ki events — hours of consensus at benchmark view rates).
    pub fn new(metrics_dir: impl Into<PathBuf>) -> Self {
        ObsOptions {
            metrics_dir: metrics_dir.into(),
            trace_capacity: 65_536,
        }
    }
}

/// Writes one node's registry + trace dumps into `obs.metrics_dir`.
fn dump_node_obs(
    obs: &ObsOptions,
    id: NodeId,
    registry: &Registry,
    tracer: &Tracer,
) -> io::Result<()> {
    std::fs::create_dir_all(&obs.metrics_dir)?;
    std::fs::write(
        obs.metrics_dir.join(format!("metrics-{id}.json")),
        registry.to_json(),
    )?;
    tracer.write_jsonl(&obs.metrics_dir.join(format!("trace-{id}.jsonl")))
}

/// Result of one replica's run.
pub struct NodeRun<S: WireScheme = SimScheme> {
    /// The replica, with its chain and metrics, after the run.
    pub replica: InivaReplica<S>,
    /// Event-loop counters.
    pub runtime: RuntimeStats,
    /// Socket counters.
    pub transport: TransportSnapshot,
}

/// Result of a whole cluster run.
pub struct ClusterRun<S: WireScheme = SimScheme> {
    /// Per-replica results, indexed by committee id.
    pub nodes: Vec<NodeRun<S>>,
    /// The wall-clock load duration.
    pub duration: Duration,
    /// The client ingress tier, when [`ClusterBuilder::ingress`] enabled
    /// one. The servers are already shut down; the mempool's counters
    /// and latency histogram hold the run's client-side totals.
    pub ingress: Option<IngressRun>,
}

impl<S: WireScheme> ClusterRun<S> {
    /// The greatest height every replica in `ids` has committed (the
    /// group's agreed prefix length), or an error naming the first
    /// divergence.
    ///
    /// Agreement is checked pairwise over the full committed logs: any two
    /// replicas that both committed a height must have the same block hash
    /// there — the safety property of the protocol, asserted over real
    /// sockets. Chaos tests pass the *surviving* replicas as `ids`;
    /// crashed nodes still must not have committed a conflicting block,
    /// so their logs are checked for consistency too, but their (stalled)
    /// heights don't drag the prefix down.
    pub fn agreed_prefix_height_of(&self, ids: &[usize]) -> Result<u64, String> {
        use std::collections::HashMap;
        let mut canonical: HashMap<u64, ([u8; 32], usize)> = HashMap::new();
        for (id, node) in self.nodes.iter().enumerate() {
            for &(height, hash) in node.replica.chain.committed_log() {
                match canonical.get(&height) {
                    None => {
                        canonical.insert(height, (hash, id));
                    }
                    Some(&(other, owner)) if other != hash => {
                        return Err(format!(
                            "replicas {owner} and {id} disagree at height {height}"
                        ));
                    }
                    Some(_) => {}
                }
            }
        }
        Ok(ids
            .iter()
            .map(|&i| self.nodes[i].replica.chain.committed_height())
            .min()
            .unwrap_or(0))
    }

    /// [`Self::agreed_prefix_height_of`] over every replica.
    pub fn agreed_prefix_height(&self) -> Result<u64, String> {
        let all: Vec<usize> = (0..self.nodes.len()).collect();
        self.agreed_prefix_height_of(&all)
    }
}

/// Lifecycle phase of one replica "process" in a restart-capable cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// The replica process is (or should be) running.
    Running,
    /// The replica process is dead; its runtime and sockets are torn down.
    Down,
    /// A restart from durable storage was requested; the lifecycle thread
    /// consumes this and rebuilds replica + transport from the WAL.
    RestartPending,
}

/// Process-lifecycle switch for one replica in a WAL-enabled cluster run:
/// the restart-capable harness's analogue of `kill -9` + "start the
/// binary again". Where [`NodeFaults`] silences a node *inside* a living
/// transport, this tells the replica's lifecycle thread to tear the whole
/// runtime down and, later, rebuild it from disk.
#[derive(Debug)]
pub struct NodeControl {
    phase: Mutex<Phase>,
    cv: Condvar,
}

impl Default for NodeControl {
    fn default() -> Self {
        NodeControl {
            phase: Mutex::new(Phase::Running),
            cv: Condvar::new(),
        }
    }
}

impl NodeControl {
    /// Marks the process dead: the lifecycle thread exits its runtime and
    /// drops the transport (sockets close, peers see dead connections).
    pub fn set_down(&self) {
        *self.phase.lock().expect("control lock") = Phase::Down;
        self.cv.notify_all();
    }

    /// Requests a restart from durable storage.
    pub fn request_restart(&self) {
        *self.phase.lock().expect("control lock") = Phase::RestartPending;
        self.cv.notify_all();
    }

    /// True while the process should not be running (the runtime's stop
    /// hook: also true when a restart is pending, since a restart begins
    /// by tearing the current incarnation down).
    pub fn stop_requested(&self) -> bool {
        *self.phase.lock().expect("control lock") != Phase::Running
    }

    /// True while the process is down with no restart pending.
    fn is_down(&self) -> bool {
        *self.phase.lock().expect("control lock") == Phase::Down
    }

    /// Blocks until the process should run (consuming a pending restart)
    /// or `deadline` passes while down; returns `false` in the latter
    /// case.
    fn wait_runnable(&self, deadline: Instant) -> bool {
        let mut phase = self.phase.lock().expect("control lock");
        loop {
            match *phase {
                Phase::Running => return true,
                Phase::RestartPending => {
                    *phase = Phase::Running;
                    return true;
                }
                Phase::Down => {
                    let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                        return false;
                    };
                    let (guard, _) = self.cv.wait_timeout(phase, left).expect("control wait");
                    phase = guard;
                }
            }
        }
    }
}

/// Kill/heal/partition surface for one in-process cluster: every node's
/// crash switch plus the shared link filter, addressed by committee id.
/// WAL-enabled runs additionally consult each node's [`NodeControl`] for
/// process-level kill/restart-from-disk.
#[derive(Clone)]
pub struct ClusterFaults {
    nodes: Vec<Arc<NodeFaults>>,
    links: Arc<LinkFaults>,
    controls: Vec<Arc<NodeControl>>,
}

impl ClusterFaults {
    /// Fault handles for an `n`-replica cluster, initially all healthy.
    pub fn new(n: usize) -> Self {
        ClusterFaults {
            nodes: (0..n).map(|_| Arc::new(NodeFaults::new())).collect(),
            links: Arc::new(LinkFaults::new()),
            controls: (0..n).map(|_| Arc::new(NodeControl::default())).collect(),
        }
    }

    /// The process-lifecycle switch of replica `id` (observed only by the
    /// restart-capable WAL harness).
    pub fn control(&self, id: NodeId) -> Arc<NodeControl> {
        Arc::clone(&self.controls[id as usize])
    }

    /// The crash switch of replica `id` (shared with its transport).
    pub fn node(&self, id: NodeId) -> Arc<NodeFaults> {
        Arc::clone(&self.nodes[id as usize])
    }

    /// The cluster-wide link filter.
    pub fn links(&self) -> Arc<LinkFaults> {
        Arc::clone(&self.links)
    }

    /// Crashes replica `id`.
    pub fn kill(&self, id: NodeId) {
        self.nodes[id as usize].kill();
    }

    /// Heals replica `id` under a fresh incarnation epoch.
    pub fn heal(&self, id: NodeId) {
        self.nodes[id as usize].heal();
    }

    /// Symmetrically partitions group `a` from group `b`.
    pub fn partition(&self, a: &[NodeId], b: &[NodeId]) {
        self.links.partition(a, b);
    }

    /// Heals every cut link and removes every injected delay.
    pub fn heal_all_links(&self) {
        self.links.heal_all();
    }

    /// Injects `delay` before every frame shipped on `from → to`.
    pub fn slow_link(&self, from: NodeId, to: NodeId, delay: Duration) {
        self.links.slow_link(from, to, delay);
    }

    /// Injects one [`FaultPlan`] event.
    pub fn apply(&self, fault: &FaultEvent) {
        match fault {
            FaultEvent::Crash(node) => {
                // Transport-level silence takes effect immediately; the
                // process-level control is observed only by WAL-enabled
                // lifecycle threads, which then tear the runtime down.
                self.kill(*node);
                self.controls[*node as usize].set_down();
            }
            FaultEvent::Restart(node) => self.heal(*node),
            FaultEvent::RestartFromDisk(node) => {
                self.heal(*node);
                self.controls[*node as usize].request_restart();
            }
            FaultEvent::Partition { a, b } => self.partition(a, b),
            FaultEvent::PartitionOneWay { from, to } => {
                for &x in from {
                    for &y in to {
                        self.links.block_one_way(x, y);
                    }
                }
            }
            FaultEvent::HealAllLinks => self.heal_all_links(),
            FaultEvent::SlowLink { from, to, extra } => {
                self.slow_link(*from, *to, Duration::from_nanos(*extra));
            }
        }
    }

    /// Replays `plan` against wall time: each event fires `event.at`
    /// nanoseconds after `start`; events scheduled past `until` are
    /// skipped (mirroring `FaultPlan::run_on_sim`'s cutoff, so a plan
    /// outliving the run cannot stall the harness). Runs on the calling
    /// thread (the cluster harness dedicates a driver thread to it).
    pub fn drive(&self, plan: &FaultPlan, start: Instant, until: Duration) {
        for ev in plan.events() {
            if Duration::from_nanos(ev.at) > until {
                break;
            }
            let at = start + Duration::from_nanos(ev.at);
            if let Some(wait) = at.checked_duration_since(Instant::now()) {
                thread::sleep(wait);
            }
            self.apply(&ev.fault);
        }
    }
}

/// The canonical crash → partition → heal scenario shared by the chaos
/// acceptance test (`crates/transport/tests/chaos.rs`) and the
/// `live_cluster --chaos` demo, so the demo always shows exactly the
/// scenario the test pins.
///
/// 7 replicas whose commit cadence is dominated by the (identical)
/// protocol timers rather than CPU or propagation time — one node stays
/// crashed from t=0, keeping the 2ND-CHANCE timer δ on every view's
/// critical path, deterministic in both backends, while the scaled-down
/// cost model keeps 7 spinning replica threads within one core. The plan:
/// crash the seeded victim at 0, cut the survivors 3|4 (both sides below
/// quorum(7) = 5 with the victim down, so commits stall completely) at
/// 2 s, heal the links at 3.5 s.
///
/// Returns `(config, plan, victim, survivors)`.
pub fn chaos_demo_scenario(seed: u64) -> (InivaConfig, FaultPlan, NodeId, Vec<NodeId>) {
    use iniva_net::{MILLIS, SECS};
    let mut cfg = InivaConfig::for_tests(7, 2);
    cfg.request_rate = 2_000;
    cfg.cost = cfg.cost.scaled(0.05);
    cfg.sc_on_quorum = true;
    cfg.second_chance_timer = Some(50 * MILLIS);

    let members = FaultPlan::shuffled_members(cfg.n, seed);
    let (victim, o) = (members[0], members[1..].to_vec());
    let plan = FaultPlan::new()
        .crash(0, victim)
        .partition(2 * SECS, &[o[0], o[1], o[2]], &[o[3], o[4], o[5], victim])
        .heal_links(3_500 * MILLIS);
    (cfg, plan, victim, o)
}

/// A running client ingress tier: one client-facing listener per replica,
/// all feeding one shared [`Mempool`]. Cloneable (the mempool is shared),
/// handed out by [`ClusterHandle::ingress`] while the cluster runs and
/// attached to [`ClusterRun`] afterwards.
#[derive(Clone)]
pub struct IngressRun {
    /// Client-facing listen addresses, indexed by replica id.
    pub client_addrs: Vec<SocketAddr>,
    /// The shared mempool: admission stats, depth, and the
    /// submit-to-commit latency histogram.
    pub mempool: Arc<Mempool>,
}

/// The live ingress servers plus the handles [`IngressRun`] publishes;
/// servers are private so only the harness can shut them down.
struct IngressTier {
    run: IngressRun,
    servers: Vec<IngressServer>,
    attach: Arc<IngressAttach>,
}

/// What the run implementations need to wire the ingress tier into each
/// replica: the shared mempool (the proposer's request source) and, on
/// the reactor backend, the client listeners each node attaches to its
/// own poller via [`Transport::serve_clients`].
struct IngressAttach {
    mempool: Arc<Mempool>,
    opts: IngressOptions,
    /// Per-replica client listeners awaiting reactor attachment; all
    /// `None` on the threaded backend (the [`IngressServer`]s own them).
    pending: Vec<Mutex<Option<TcpListener>>>,
    /// Per-replica client addresses, for rebinding after a WAL restart
    /// tears the previous incarnation's poller (and its listener) down.
    client_addrs: Vec<SocketAddr>,
}

fn start_ingress_tier(
    n: usize,
    opts: &IngressOptions,
    backend: TransportBackend,
) -> io::Result<IngressTier> {
    let loopback = SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), 0);
    let mempool = Arc::new(Mempool::new(opts));
    let mut client_addrs = Vec::with_capacity(n);
    let mut servers = Vec::new();
    let mut pending = Vec::with_capacity(n);
    for _ in 0..n {
        let listener = TcpListener::bind(loopback)?;
        client_addrs.push(listener.local_addr()?);
        match backend {
            // Threaded: dedicated accept/connection threads per replica.
            TransportBackend::Threaded => {
                servers.push(IngressServer::start(listener, Arc::clone(&mempool), opts)?);
                pending.push(Mutex::new(None));
            }
            // Reactor: no threads here — each listener is parked until
            // its replica's transport exists, then served off the same
            // poller as the peer sockets.
            TransportBackend::Reactor => pending.push(Mutex::new(Some(listener))),
        }
    }
    Ok(IngressTier {
        run: IngressRun {
            client_addrs: client_addrs.clone(),
            mempool: Arc::clone(&mempool),
        },
        servers,
        attach: Arc::new(IngressAttach {
            mempool,
            opts: opts.clone(),
            pending,
            client_addrs,
        }),
    })
}

/// A cluster launched without blocking: the replicas run on background
/// threads while the caller keeps the handle — the way load generators
/// drive clients against the ingress tier *during* the run. [`Self::join`]
/// blocks until the run's deadline and returns the [`ClusterRun`].
pub struct ClusterHandle<S: WireScheme = SimScheme> {
    thread: thread::JoinHandle<io::Result<ClusterRun<S>>>,
    ingress: Option<IngressRun>,
}

impl<S: WireScheme> ClusterHandle<S> {
    /// The ingress tier, when the builder enabled one: live while the
    /// cluster runs, so clients can connect to `client_addrs` now.
    pub fn ingress(&self) -> Option<&IngressRun> {
        self.ingress.as_ref()
    }

    /// Waits for the run to end and returns its result.
    ///
    /// # Errors
    /// Propagates the run's own error, or reports a panicked harness
    /// thread.
    pub fn join(self) -> io::Result<ClusterRun<S>> {
        self.thread
            .join()
            .map_err(|_| io::Error::other("cluster harness thread panicked"))?
    }
}

/// Builds and runs a local loopback Iniva cluster: `cfg.n` replica
/// threads, each with its own [`Runtime`] and TCP [`Transport`], plus a
/// fault-plan driver thread. Every capability is opt-in through one
/// builder method; see the [module docs](self) for the composition
/// overview.
///
/// [`Self::spawn`] runs the cluster to completion on the calling thread;
/// [`Self::launch`] returns immediately with a [`ClusterHandle`] (needed
/// to drive ingress clients while the cluster runs).
#[must_use = "a ClusterBuilder does nothing until spawn() or launch()"]
pub struct ClusterBuilder<S: WireScheme = SimScheme> {
    cfg: InivaConfig,
    duration: Duration,
    cpu: CpuMode,
    plan: FaultPlan,
    wal: Option<PathBuf>,
    options: TransportOptions,
    obs: Option<ObsOptions>,
    ingress: Option<IngressOptions>,
    _scheme: PhantomData<S>,
}

impl ClusterBuilder<SimScheme> {
    /// A builder for a `cfg.n`-replica cluster running for `duration`,
    /// with the calibrated [`SimScheme`], real CPU accounting, no
    /// faults, no WAL, no observability and no ingress tier.
    pub fn new(cfg: &InivaConfig, duration: Duration) -> ClusterBuilder<SimScheme> {
        ClusterBuilder {
            cfg: cfg.clone(),
            duration,
            cpu: CpuMode::Real,
            plan: FaultPlan::new(),
            wal: None,
            options: TransportOptions::default(),
            obs: None,
            ingress: None,
            _scheme: PhantomData,
        }
    }
}

impl<S: WireScheme> ClusterBuilder<S> {
    /// Selects the vote scheme (e.g.
    /// `.scheme::<iniva_crypto::bls::BlsScheme>()` for real pairing
    /// crypto). The default is [`SimScheme`].
    pub fn scheme<S2: WireScheme>(self) -> ClusterBuilder<S2> {
        ClusterBuilder {
            cfg: self.cfg,
            duration: self.duration,
            cpu: self.cpu,
            plan: self.plan,
            wal: self.wal,
            options: self.options,
            obs: self.obs,
            ingress: self.ingress,
            _scheme: PhantomData,
        }
    }

    /// Overrides the CPU cost accounting mode (default:
    /// [`CpuMode::Real`]).
    pub fn cpu(mut self, cpu: CpuMode) -> Self {
        self.cpu = cpu;
        self
    }

    /// Replays `plan` against the live sockets from a driver thread:
    /// crash, heal, partition and slow-link events fire at their
    /// scheduled wall-clock offsets. With [`Self::wal`], process-level
    /// faults ([`FaultEvent::Crash`], [`FaultEvent::RestartFromDisk`])
    /// tear down and rebuild whole replica runtimes.
    pub fn faults(mut self, plan: &FaultPlan) -> Self {
        self.plan = plan.clone();
        self
    }

    /// Makes chain state durable: each replica journals commits and
    /// views to a write-ahead log under `wal_root/replica-<id>/`
    /// (`iniva-storage`), crashes tear the whole runtime down, and
    /// restarts recover from disk then catch up via state transfer.
    /// Pre-existing replica logs are recovered, so a harness can also
    /// *resume* a cluster.
    pub fn wal(mut self, wal_root: impl Into<PathBuf>) -> Self {
        self.wal = Some(wal_root.into());
        self
    }

    /// Tunes every replica's transport — chaos tests pass a small
    /// [`TransportOptions::lane_capacity`] so peers shed (rather than
    /// replay) most of the history a dead replica missed, forcing the
    /// restarted replica through state transfer instead of lane-backlog
    /// replay.
    pub fn transport(mut self, options: TransportOptions) -> Self {
        self.options = options;
        self
    }

    /// Runs every replica with a live tracer and metrics registry,
    /// dumping `metrics-<id>.json` + `trace-<id>.jsonl` (and, with
    /// ingress, `ingress.json` + `ingress-trace.jsonl`) into
    /// `obs.metrics_dir` when the run ends — ready for the
    /// `view_timeline` analyzer. Combined with [`Self::wal`], one
    /// registry and tracer per node span every incarnation, so restarts
    /// lose nothing.
    pub fn observe(mut self, obs: ObsOptions) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Adds a client ingress tier: one client-facing TCP listener per
    /// replica, all feeding one shared bounded fee-ordered [`Mempool`]
    /// with per-client token-bucket rate limiting. The proposer then
    /// drafts blocks from the mempool instead of the synthetic workload
    /// model, and submit-to-commit latency is measured per request.
    pub fn ingress(mut self, opts: IngressOptions) -> Self {
        self.ingress = Some(opts);
        self
    }

    /// Runs the cluster to completion and collects every replica's final
    /// state.
    ///
    /// # Errors
    /// Propagates socket, thread, WAL-I/O and dump-file setup failures.
    pub fn spawn(self) -> io::Result<ClusterRun<S>> {
        let tier = match &self.ingress {
            Some(opts) => Some(start_ingress_tier(self.cfg.n, opts, self.options.backend)?),
            None => None,
        };
        self.run_with(tier)
    }

    /// Starts the cluster on a background thread and returns a handle
    /// immediately, so the caller can drive ingress clients (or other
    /// out-of-band work) while the run is live.
    ///
    /// # Errors
    /// Propagates ingress listener binding and thread spawn failures;
    /// failures *inside* the run surface from [`ClusterHandle::join`].
    pub fn launch(self) -> io::Result<ClusterHandle<S>> {
        let tier = match &self.ingress {
            Some(opts) => Some(start_ingress_tier(self.cfg.n, opts, self.options.backend)?),
            None => None,
        };
        let ingress = tier.as_ref().map(|t| t.run.clone());
        let thread = thread::Builder::new()
            .name("iniva-cluster-harness".into())
            .spawn(move || self.run_with(tier))?;
        Ok(ClusterHandle { thread, ingress })
    }

    fn run_with(self, tier: Option<IngressTier>) -> io::Result<ClusterRun<S>> {
        let attach = tier.as_ref().map(|t| Arc::clone(&t.attach));
        // The ingress tier shares the consensus tier's observability
        // epoch closely enough: its tracer is anchored here, just before
        // the replicas' shared time zero, and carries the pseudo-node id
        // `n` (one past the committee).
        let ingress_tracer = match (&self.obs, &attach) {
            (Some(obs), Some(att)) => {
                let tracer = Tracer::live(self.cfg.n as u32, obs.trace_capacity, Instant::now());
                att.mempool.set_tracer(tracer.clone());
                Some(tracer)
            }
            _ => None,
        };
        let result = match &self.wal {
            None => run_plan_impl::<S>(
                &self.cfg,
                self.duration,
                self.cpu,
                &self.plan,
                self.options,
                self.obs.as_ref(),
                attach.clone(),
            ),
            Some(wal_root) => run_wal_impl::<S>(
                &self.cfg,
                self.duration,
                self.cpu,
                &self.plan,
                wal_root,
                self.options,
                self.obs.as_ref(),
                attach.clone(),
            ),
        };
        let Some(tier) = tier else {
            return result;
        };
        // Stop serving clients before reporting results, so the final
        // admission counters are quiescent.
        for server in tier.servers {
            server.shutdown();
        }
        let mut run = result?;
        if let Some(obs) = &self.obs {
            std::fs::create_dir_all(&obs.metrics_dir)?;
            std::fs::write(
                obs.metrics_dir.join("ingress.json"),
                tier.run.mempool.registry().to_json(),
            )?;
            if let Some(tracer) = &ingress_tracer {
                // Named so the `trace-<id>.jsonl` glob the view-timeline
                // analyzer consumes doesn't pick up the ingress
                // pseudo-node as a replica.
                tracer.write_jsonl(&obs.metrics_dir.join("ingress-trace.jsonl"))?;
            }
        }
        run.ingress = Some(tier.run);
        Ok(run)
    }
}

/// A releasable start line: workers arrive and wait for a go/abort
/// verdict. Unlike a `Barrier`, the harness can release everyone with
/// "abort" when a later setup step (a thread spawn, say) fails — the
/// already-spawned workers exit instead of deadlocking on a barrier that
/// can never fill, which is what lets the cluster setup paths return a
/// usable `io::Error` to chaos tests under CI.
struct StartGate {
    state: Mutex<(usize, Option<bool>)>,
    cv: Condvar,
}

impl StartGate {
    fn new() -> Self {
        StartGate {
            state: Mutex::new((0, None)),
            cv: Condvar::new(),
        }
    }

    /// Worker side: report readiness, wait for the verdict. `true` = go.
    fn arrive_and_wait(&self) -> bool {
        let mut st = self.state.lock().expect("gate lock");
        st.0 += 1;
        self.cv.notify_all();
        loop {
            if let Some(go) = st.1 {
                return go;
            }
            st = self.cv.wait(st).expect("gate wait");
        }
    }

    /// Harness side: wait for `workers` arrivals, then release them all
    /// at once (the shared time zero every plan offset is relative to).
    fn go(&self, workers: usize) {
        let mut st = self.state.lock().expect("gate lock");
        while st.0 < workers {
            st = self.cv.wait(st).expect("gate wait");
        }
        st.1 = Some(true);
        self.cv.notify_all();
    }

    /// Harness side: release every current and future arriver with
    /// "abort".
    fn abort(&self) {
        self.state.lock().expect("gate lock").1 = Some(false);
        self.cv.notify_all();
    }
}

/// Joins `handles`, surfacing panics as errors; used on both the success
/// and the abort path.
fn join_runs<S: WireScheme>(
    handles: Vec<thread::JoinHandle<io::Result<NodeRun<S>>>>,
) -> io::Result<Vec<NodeRun<S>>> {
    let mut nodes = Vec::with_capacity(handles.len());
    for handle in handles {
        nodes.push(
            handle
                .join()
                .map_err(|_| io::Error::other("replica thread panicked"))??,
        );
    }
    Ok(nodes)
}

/// Spawns replica lifecycle threads and the fault driver behind one
/// [`StartGate`]; on any spawn failure the gate aborts, every thread
/// spawned so far exits, and the error propagates.
fn launch_cluster<S: WireScheme, F>(
    n: usize,
    plan: &FaultPlan,
    faults: &ClusterFaults,
    duration: Duration,
    spawn_replica: F,
) -> io::Result<Vec<NodeRun<S>>>
where
    F: Fn(usize, Arc<StartGate>) -> io::Result<thread::JoinHandle<io::Result<NodeRun<S>>>>,
{
    let gate = Arc::new(StartGate::new());
    let mut handles = Vec::with_capacity(n);
    for id in 0..n {
        match spawn_replica(id, Arc::clone(&gate)) {
            Ok(handle) => handles.push(handle),
            Err(e) => {
                gate.abort();
                let _ = join_runs(handles);
                return Err(e);
            }
        }
    }
    let driver = {
        let faults = faults.clone();
        let plan = plan.deferred();
        let gate = Arc::clone(&gate);
        thread::Builder::new()
            .name("iniva-fault-driver".into())
            .spawn(move || {
                if gate.arrive_and_wait() {
                    faults.drive(&plan, Instant::now(), duration);
                }
            })
    };
    let driver = match driver {
        Ok(d) => d,
        Err(e) => {
            gate.abort();
            let _ = join_runs(handles);
            return Err(e);
        }
    };
    // Replicas + driver all ready: release the shared time zero.
    gate.go(n + 1);
    let nodes = join_runs(handles);
    let _ = driver.join();
    nodes
}

#[allow(clippy::too_many_arguments)]
fn run_plan_impl<S: WireScheme>(
    cfg: &InivaConfig,
    duration: Duration,
    cpu: CpuMode,
    plan: &FaultPlan,
    options: TransportOptions,
    obs: Option<&ObsOptions>,
    ingress: Option<Arc<IngressAttach>>,
) -> io::Result<ClusterRun<S>> {
    let n = cfg.n;
    let loopback = SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), 0);
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind(loopback))
        .collect::<io::Result<_>>()?;
    let peers: Vec<(u32, SocketAddr)> = listeners
        .iter()
        .enumerate()
        .map(|(id, l)| Ok((id as u32, l.local_addr()?)))
        .collect::<io::Result<_>>()?;

    let scheme = Arc::new(S::new_committee(n, CLUSTER_SEED));
    let faults = ClusterFaults::new(n);
    // Time-zero events are injected exactly once, before any replica
    // thread starts, so a node crashed at 0 never runs `on_start` — the
    // exact semantics of `FaultPlan::run_on_sim` on the simulator. The
    // driver gets only the deferred remainder: a re-applied `Restart`
    // would bump the incarnation epoch a second time and spuriously drop
    // frames queued under the first one.
    for ev in plan.events().iter().filter(|ev| ev.at == 0) {
        faults.apply(&ev.fault);
    }
    // Every transport is constructed *here*, before any replica thread:
    // a socket setup failure (fd exhaustion on a large sweep, say)
    // propagates as the documented io::Error with nothing to unwind.
    let mut transports = Vec::with_capacity(n);
    for (id, listener) in listeners.into_iter().enumerate() {
        transports.push(Transport::start_with(
            id as u32,
            listener,
            &peers,
            options,
            faults.node(id as u32),
            faults.links(),
        )?);
    }
    // Reactor-backed ingress: each replica's client listener joins its
    // transport's poller; peer and client sockets share one thread.
    if let Some(att) = &ingress {
        for (id, transport) in transports.iter().enumerate() {
            let pending = att.pending[id]
                .lock()
                .expect("client listener handoff")
                .take();
            if let Some(listener) = pending {
                transport.serve_clients(listener, Arc::clone(&att.mempool), &att.opts)?;
            }
        }
    }
    let mempool = ingress.as_ref().map(|att| Arc::clone(&att.mempool));

    let slots: Vec<Mutex<Option<Transport<_>>>> = transports
        .into_iter()
        .map(|t| Mutex::new(Some(t)))
        .collect();
    let nodes = launch_cluster(n, plan, &faults, duration, |id, gate| {
        let transport = slots[id]
            .lock()
            .expect("transport handoff")
            .take()
            .expect("one transport per replica id");
        let cfg = cfg.clone();
        let scheme = Arc::clone(&scheme);
        let obs = obs.cloned();
        let mempool = mempool.clone();
        thread::Builder::new()
            .name(format!("iniva-replica-{id}"))
            .spawn(move || -> io::Result<NodeRun<S>> {
                let mut replica = InivaReplica::new(id as u32, cfg, Arc::clone(&scheme));
                if let Some(pool) = &mempool {
                    replica
                        .chain
                        .set_request_source(Arc::clone(pool) as Arc<dyn RequestSource>);
                }
                if !gate.arrive_and_wait() {
                    return Err(io::Error::other("cluster setup aborted"));
                }
                // The gate released every replica together, so these
                // per-thread epochs are within microseconds of each
                // other; the tracer's wall-clock anchor absorbs the
                // residue at merge time.
                let epoch = Instant::now();
                let node_obs = obs.as_ref().map(|o| {
                    let registry = Registry::new();
                    let tracer = Tracer::live(id as u32, o.trace_capacity, epoch);
                    replica.set_observability(&registry, tracer.clone());
                    (registry, tracer)
                });
                let mut runtime = Runtime::with_epoch(replica, transport, cpu, epoch);
                if let Some((registry, _)) = &node_obs {
                    runtime.set_observability(registry);
                }
                runtime.run_for(duration);
                let (mut replica, runtime, transport) = runtime.finish();
                if let (Some(o), Some((registry, tracer))) = (&obs, &node_obs) {
                    export_runtime_stats(&runtime, registry);
                    export_transport_snapshot(&transport, registry);
                    replica.chain.metrics.export(registry);
                    // One keyring is shared by the whole in-process
                    // cluster, so `crypto.*` reads as the cluster total
                    // on every node.
                    scheme.export_observability(registry);
                    dump_node_obs(o, id as u32, registry, tracer)?;
                }
                Ok(NodeRun {
                    replica,
                    runtime,
                    transport,
                })
            })
    })?;
    Ok(ClusterRun {
        nodes,
        duration,
        ingress: None,
    })
}

/// Folds one incarnation's event-loop counters into a per-node total.
fn fold_runtime(total: &mut RuntimeStats, inc: RuntimeStats) {
    total.cpu_charged += inc.cpu_charged;
    total.busy += inc.busy;
    total.msgs_delivered += inc.msgs_delivered;
    total.timers_fired += inc.timers_fired;
}

/// Rebinds a restarting replica's listen address, retrying briefly: the
/// previous incarnation's listener is closed by the time `finish()`
/// returns, but the OS may need a beat to release the port.
fn bind_retry(addr: SocketAddr, deadline: Instant) -> io::Result<TcpListener> {
    loop {
        match TcpListener::bind(addr) {
            Ok(listener) => return Ok(listener),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(e);
                }
                thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_wal_impl<S: WireScheme>(
    cfg: &InivaConfig,
    duration: Duration,
    cpu: CpuMode,
    plan: &FaultPlan,
    wal_root: &Path,
    options: TransportOptions,
    obs: Option<&ObsOptions>,
    ingress: Option<Arc<IngressAttach>>,
) -> io::Result<ClusterRun<S>> {
    let n = cfg.n;
    std::fs::create_dir_all(wal_root)?;
    let loopback = SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), 0);
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind(loopback))
        .collect::<io::Result<_>>()?;
    let peers: Vec<(u32, SocketAddr)> = listeners
        .iter()
        .enumerate()
        .map(|(id, l)| Ok((id as u32, l.local_addr()?)))
        .collect::<io::Result<_>>()?;

    let scheme = Arc::new(S::new_committee(n, CLUSTER_SEED));
    let faults = ClusterFaults::new(n);
    for ev in plan.events().iter().filter(|ev| ev.at == 0) {
        faults.apply(&ev.fault);
    }

    let slots: Vec<Mutex<Option<TcpListener>>> =
        listeners.into_iter().map(|l| Mutex::new(Some(l))).collect();
    let nodes = launch_cluster(n, plan, &faults, duration, |id, gate| {
        let listener = slots[id]
            .lock()
            .expect("listener handoff")
            .take()
            .expect("one listener per replica id");
        let cfg = cfg.clone();
        let scheme = Arc::clone(&scheme);
        let peers = peers.clone();
        let addr = peers[id].1;
        let node_faults = faults.node(id as u32);
        let link_faults = faults.links();
        let control = faults.control(id as u32);
        let wal_dir: PathBuf = wal_root.join(format!("replica-{id}"));
        let obs = obs.cloned();
        let ingress = ingress.clone();
        thread::Builder::new()
            .name(format!("iniva-replica-{id}"))
            .spawn(move || -> io::Result<NodeRun<S>> {
                replica_lifecycle(
                    id as u32,
                    cfg,
                    scheme,
                    &peers,
                    listener,
                    addr,
                    options,
                    node_faults,
                    link_faults,
                    control,
                    gate,
                    duration,
                    cpu,
                    &wal_dir,
                    obs,
                    ingress,
                )
            })
    })?;
    Ok(ClusterRun {
        nodes,
        duration,
        ingress: None,
    })
}

/// One replica's process lifecycle in a WAL-enabled run: (re)build the
/// transport and the WAL-recovered replica, run until the deadline or a
/// process-level fault, tear down, repeat. Each incarnation opens the
/// log, rehydrates the committed prefix and resumes at the recovered
/// view — the same code path an actual restarted `live_cluster --config
/// --id --wal-dir` process takes.
#[allow(clippy::too_many_arguments)]
fn replica_lifecycle<S: WireScheme>(
    id: NodeId,
    cfg: InivaConfig,
    scheme: Arc<S>,
    peers: &[(u32, SocketAddr)],
    listener: TcpListener,
    addr: SocketAddr,
    options: TransportOptions,
    node_faults: Arc<NodeFaults>,
    link_faults: Arc<LinkFaults>,
    control: Arc<NodeControl>,
    gate: Arc<StartGate>,
    duration: Duration,
    cpu: CpuMode,
    wal_dir: &Path,
    obs: Option<ObsOptions>,
    ingress: Option<Arc<IngressAttach>>,
) -> io::Result<NodeRun<S>> {
    let mut pending_listener = Some(listener);
    if !gate.arrive_and_wait() {
        return Err(io::Error::other("cluster setup aborted"));
    }
    let time_zero = Instant::now();
    let deadline = time_zero + duration;
    let mut runtime_total = RuntimeStats::default();
    let mut last_incarnation: Option<InivaReplica<S>> = None;
    // One stats block and (when observing) one registry + tracer span
    // every incarnation of this node: restarts keep counting into the
    // same series instead of starting fresh blocks whose predecessors'
    // tails (lane evictions counted while a lane died, say) got lost
    // with the torn-down transport.
    let shared_stats = Arc::new(TransportStats::default());
    let node_obs = obs.as_ref().map(|o| {
        (
            Registry::new(),
            Tracer::live(id, o.trace_capacity, time_zero),
        )
    });
    loop {
        if control.is_down() {
            // The process is dead: close the listening socket too, so
            // peers' dials are refused instead of queueing against a
            // corpse's backlog.
            pending_listener = None;
        }
        if !control.wait_runnable(deadline) {
            break; // still down when the run ended
        }
        if Instant::now() >= deadline {
            break;
        }
        let listener = match pending_listener.take() {
            Some(l) => l,
            None => bind_retry(addr, deadline)?,
        };
        let transport = Transport::start_with_stats(
            id,
            listener,
            peers,
            options,
            Arc::clone(&node_faults),
            Arc::clone(&link_faults),
            Arc::clone(&shared_stats),
        )?;
        // Reactor-backed ingress: re-attach this node's client listener
        // to the fresh incarnation's poller. The first incarnation takes
        // the tier's parked listener; restarts rebind the same address
        // (the dead poller closed it on teardown).
        if let Some(att) = &ingress {
            if options.backend == TransportBackend::Reactor {
                let pending = att.pending[id as usize]
                    .lock()
                    .expect("client listener handoff")
                    .take();
                let client_listener = match pending {
                    Some(l) => l,
                    None => bind_retry(att.client_addrs[id as usize], deadline)?,
                };
                transport.serve_clients(client_listener, Arc::clone(&att.mempool), &att.opts)?;
            }
        }
        let (mut wal, recovered) = ChainWal::<S>::open(wal_dir)?;
        let mut replica = InivaReplica::recover(
            id,
            cfg.clone(),
            Arc::clone(&scheme),
            recovered.commits,
            recovered.view,
        );
        if let Some((registry, tracer)) = &node_obs {
            wal.set_observability(registry, tracer.clone());
            replica.set_observability(registry, tracer.clone());
        }
        replica.chain.set_commit_sink(Box::new(wal));
        // The shared mempool spans incarnations like the registry does:
        // requests drafted by a previous incarnation stay claimed, and
        // recovery's committed prefix settles them on replay.
        if let Some(att) = &ingress {
            replica
                .chain
                .set_request_source(Arc::clone(&att.mempool) as Arc<dyn RequestSource>);
        }
        // Every incarnation shares the cluster's time zero, so metrics
        // stay on one time axis across restarts.
        let mut runtime = Runtime::with_epoch(replica, transport, cpu, time_zero);
        if let Some((registry, _)) = &node_obs {
            runtime.set_observability(registry);
        }
        runtime.run_deadline(deadline, || control.stop_requested());
        let (replica, stats, _snapshot) = runtime.finish();
        fold_runtime(&mut runtime_total, stats);
        last_incarnation = Some(replica);
    }
    // The shared block is cumulative across incarnations, so the final
    // snapshot *is* the node total — no per-incarnation folding (which
    // would now double-count).
    let transport_total = shared_stats.snapshot();
    let mut replica = match last_incarnation {
        Some(r) => r,
        None => {
            // Crashed at time zero and never restarted: report whatever
            // the disk holds (an empty log for a fresh run).
            let (_, recovered) = ChainWal::<S>::open(wal_dir)?;
            InivaReplica::recover(id, cfg, scheme.clone(), recovered.commits, recovered.view)
        }
    };
    if let (Some(o), Some((registry, tracer))) = (&obs, &node_obs) {
        export_runtime_stats(&runtime_total, registry);
        export_transport_snapshot(&transport_total, registry);
        replica.chain.metrics.export(registry);
        scheme.export_observability(registry);
        dump_node_obs(o, id, registry, tracer)?;
    }
    Ok(NodeRun {
        replica,
        runtime: runtime_total,
        transport: transport_total,
    })
}
