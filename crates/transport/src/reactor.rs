//! A single-threaded epoll reactor: one poller owning every socket a node
//! speaks through — peer listener, inbound peer connections, outbound
//! lanes, and (when ingress is attached) client sessions.
//!
//! No external crates: the `epoll_create1` / `epoll_ctl` / `epoll_wait` /
//! `eventfd` syscalls are wrapped directly in [`sys`], the way
//! `crates/shims` shims rand/bytes. Sockets stay `std::net` types
//! (switched to non-blocking); only readiness plumbing and `writev` go
//! through the raw layer.
//!
//! Model: each registered [`Source`] owns its socket and is driven by
//! three callbacks — [`Source::ready`] (epoll readiness, level-triggered),
//! [`Source::notified`] (another thread called [`Handle::notify`], e.g. a
//! producer pushed onto a lane queue), and [`Source::deadline`] (a timer
//! the source armed via [`Ctl::set_deadline`] fired). Callbacks get a
//! [`Ctl`] to re-register interest (the `EAGAIN` → `EPOLLOUT` dance),
//! swap file descriptors (reconnects), arm timers (backoff, injected
//! link delays) and spawn new sources (accepted connections). Cross-thread
//! wakeups ride one `eventfd` with a pending-flag so a burst of sends
//! costs at most one `write(2)`.

use std::collections::HashMap;
use std::io;
use std::os::unix::io::RawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Locks `m`, recovering the guard if a previous holder panicked.
///
/// Every mutex in this crate protects plain data (queues, maps) that stays
/// structurally valid at any point the holder could panic, so poisoning is
/// only a signal — propagating it would let one panicking worker thread
/// cascade into killing the node's entire networking layer.
pub(crate) fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Raw syscall layer: direct `extern "C"` declarations of the libc
/// symbols the `std` runtime already links, plus the kernel ABI structs
/// and constants they need. Linux-only, like the rest of the live
/// transport's assumptions (loopback clusters, `kill -9` chaos).
pub mod sys {
    use std::ffi::{c_int, c_uint, c_void};
    use std::io;
    use std::net::{SocketAddr, TcpStream};
    use std::os::unix::io::{FromRawFd, RawFd};

    /// `EPOLLIN`: readable.
    pub const EPOLLIN: u32 = 0x001;
    /// `EPOLLOUT`: writable.
    pub const EPOLLOUT: u32 = 0x004;
    /// `EPOLLERR`: error condition (always reported, never masked).
    pub const EPOLLERR: u32 = 0x008;
    /// `EPOLLHUP`: hangup (always reported, never masked).
    pub const EPOLLHUP: u32 = 0x010;
    /// `EPOLLRDHUP`: peer shut down its write side.
    pub const EPOLLRDHUP: u32 = 0x2000;

    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EFD_CLOEXEC: c_int = 0o2000000;
    const EFD_NONBLOCK: c_int = 0o4000;
    const AF_INET: c_int = 2;
    const AF_INET6: c_int = 10;
    const SOCK_STREAM: c_int = 1;
    const SOCK_NONBLOCK: c_int = 0o4000;
    const SOCK_CLOEXEC: c_int = 0o2000000;
    const EINPROGRESS: i32 = 115;
    const EINTR: i32 = 4;

    /// One epoll event, in the x86-64 kernel ABI layout (packed: the
    /// 64-bit `data` member is not 8-aligned).
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        /// Readiness bit set (`EPOLL*` flags).
        pub events: u32,
        /// User data: the registration token.
        pub data: u64,
    }

    /// One `writev` segment (`struct iovec`).
    #[repr(C)]
    pub struct IoVec {
        /// Segment base.
        pub base: *const u8,
        /// Segment length in bytes.
        pub len: usize,
    }

    #[repr(C)]
    struct SockAddrIn {
        family: u16,
        port: u16,
        addr: u32,
        zero: [u8; 8],
    }

    #[repr(C)]
    struct SockAddrIn6 {
        family: u16,
        port: u16,
        flowinfo: u32,
        addr: [u8; 16],
        scope_id: u32,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
        fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
        fn connect(fd: c_int, addr: *const c_void, len: u32) -> c_int;
        fn writev(fd: c_int, iov: *const IoVec, iovcnt: c_int) -> isize;
    }

    /// Creates an epoll instance (close-on-exec).
    pub fn epoll_create() -> io::Result<RawFd> {
        // SAFETY: epoll_create1 takes no pointers; the returned fd is
        // validated before use.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(fd)
    }

    fn ctl(epfd: RawFd, op: c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        // SAFETY: `ev` is a live stack value for the duration of the call;
        // the kernel copies it before returning.
        let rc = unsafe { epoll_ctl(epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` under `token` for `events`.
    pub fn epoll_add(epfd: RawFd, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        ctl(epfd, EPOLL_CTL_ADD, fd, events, token)
    }

    /// Changes the interest set of an already-registered `fd`.
    pub fn epoll_mod(epfd: RawFd, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        ctl(epfd, EPOLL_CTL_MOD, fd, events, token)
    }

    /// Deregisters `fd`. Failure is fine (the fd may already be closed).
    pub fn epoll_del(epfd: RawFd, fd: RawFd) {
        let _ = ctl(epfd, EPOLL_CTL_DEL, fd, 0, 0);
    }

    /// Waits up to `timeout_ms` (`-1` = forever) for events; `EINTR`
    /// surfaces as zero events.
    pub fn epoll_pwait(epfd: RawFd, events: &mut [EpollEvent], timeout_ms: i32) -> usize {
        // SAFETY: `events` is a valid mutable slice; maxevents equals its
        // length, so the kernel writes at most `events.len()` entries.
        let n = unsafe { epoll_wait(epfd, events.as_mut_ptr(), events.len() as c_int, timeout_ms) };
        if n < 0 {
            return 0; // EINTR or a dying epoll fd: treat as a timeout
        }
        n as usize
    }

    /// Creates the wakeup eventfd (non-blocking, close-on-exec).
    pub fn eventfd_new() -> io::Result<RawFd> {
        // SAFETY: eventfd takes no pointers; the returned fd is validated
        // before use.
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(fd)
    }

    /// Posts one wakeup (adds 1 to the eventfd counter).
    pub fn eventfd_post(fd: RawFd) {
        let one: u64 = 1;
        // SAFETY: the buffer is a live 8-byte stack value and the count
        // matches its size exactly.
        let _ = unsafe { write(fd, (&one as *const u64).cast(), 8) };
    }

    /// Drains the eventfd counter (non-blocking; empty is fine).
    pub fn eventfd_drain(fd: RawFd) {
        let mut buf = 0u64;
        // SAFETY: the buffer is a live 8-byte stack value and the count
        // matches its size exactly.
        let _ = unsafe { read(fd, (&mut buf as *mut u64).cast(), 8) };
    }

    /// Closes a raw fd owned by the reactor (epoll / eventfd).
    pub fn close_fd(fd: RawFd) {
        // SAFETY: callers pass fds the reactor owns exclusively (epoll /
        // eventfd), each closed exactly once on drop.
        let _ = unsafe { close(fd) };
    }

    /// Gathering write; returns the bytes written.
    pub fn writev_fd(fd: RawFd, iov: &[IoVec]) -> io::Result<usize> {
        // SAFETY: `iov` is a valid slice of IoVec whose base/len fields are
        // derived from live byte slices borrowed for this call; iovcnt
        // equals the slice length.
        let n = unsafe { writev(fd, iov.as_ptr(), iov.len() as c_int) };
        if n < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(n as usize)
    }

    /// Starts a non-blocking TCP connect to `addr`. Returns the stream
    /// plus `true` when the connection completed synchronously; on
    /// `false`, completion (or failure) is reported by epoll as
    /// writability, after which `TcpStream::take_error` holds the
    /// verdict.
    pub fn connect_nonblocking(addr: &SocketAddr) -> io::Result<(TcpStream, bool)> {
        let domain = match addr {
            SocketAddr::V4(_) => AF_INET,
            SocketAddr::V6(_) => AF_INET6,
        };
        // SAFETY: socket takes no pointers; the returned fd is validated
        // before use.
        let fd = unsafe { socket(domain, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        let rc = match addr {
            SocketAddr::V4(v4) => {
                let sa = SockAddrIn {
                    family: AF_INET as u16,
                    port: v4.port().to_be(),
                    addr: u32::from_ne_bytes(v4.ip().octets()),
                    zero: [0; 8],
                };
                // SAFETY: `sa` is a live, fully initialized sockaddr_in and
                // the passed length is exactly its size.
                unsafe {
                    connect(
                        fd,
                        (&sa as *const SockAddrIn).cast(),
                        std::mem::size_of::<SockAddrIn>() as u32,
                    )
                }
            }
            SocketAddr::V6(v6) => {
                let sa = SockAddrIn6 {
                    family: AF_INET6 as u16,
                    port: v6.port().to_be(),
                    flowinfo: v6.flowinfo(),
                    addr: v6.ip().octets(),
                    scope_id: v6.scope_id(),
                };
                // SAFETY: `sa` is a live, fully initialized sockaddr_in6 and
                // the passed length is exactly its size.
                unsafe {
                    connect(
                        fd,
                        (&sa as *const SockAddrIn6).cast(),
                        std::mem::size_of::<SockAddrIn6>() as u32,
                    )
                }
            }
        };
        if rc == 0 {
            // SAFETY: `fd` was just created by socket(), is owned by no
            // other wrapper, and ownership transfers to the TcpStream.
            return Ok((unsafe { TcpStream::from_raw_fd(fd) }, true));
        }
        let err = io::Error::last_os_error();
        if err.raw_os_error() == Some(EINPROGRESS) || err.raw_os_error() == Some(EINTR) {
            // SAFETY: as above — fresh fd, exclusive ownership transfers to
            // the TcpStream.
            return Ok((unsafe { TcpStream::from_raw_fd(fd) }, false));
        }
        // SAFETY: the connect failed terminally; `fd` was never wrapped, so
        // it is closed here exactly once.
        unsafe {
            close(fd);
        }
        Err(err)
    }
}

/// Identifies one registered [`Source`] for the lifetime of the reactor.
pub type Token = u64;

/// The token reserved for the internal wakeup eventfd.
const WAKE_TOKEN: Token = u64::MAX;

/// Which readiness events a source wants from its fd.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Deliver readability.
    pub readable: bool,
    /// Deliver writability.
    pub writable: bool,
}

impl Interest {
    /// Readable only — the steady state of every connection (EOF watch).
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Readable + writable — armed while a flush hit `EAGAIN`.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
    /// No readiness (errors and hangups are still delivered by epoll).
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };

    fn events(self) -> u32 {
        let mut bits = sys::EPOLLRDHUP;
        if self.readable {
            bits |= sys::EPOLLIN;
        }
        if self.writable {
            bits |= sys::EPOLLOUT;
        }
        bits
    }
}

/// What a [`Source`] callback tells the reactor to do with it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Stay registered.
    Keep,
    /// Deregister and drop the source (closing its socket).
    Drop,
}

/// One fd-owning participant of the event loop.
///
/// All callbacks run on the reactor thread; a source never needs its own
/// synchronization. Level-triggered semantics: `ready` fires again as
/// long as the condition holds, so handlers may stop early, but should
/// drain until `EAGAIN` to keep syscall counts low.
pub trait Source: Send {
    /// The fd registered for this source became ready. `readable` /
    /// `writable` include error and hangup conditions (an attempted I/O
    /// then surfaces the error).
    fn ready(&mut self, ctl: &mut Ctl<'_>, readable: bool, writable: bool) -> Action;

    /// Another thread called [`Handle::notify`] with this source's token.
    fn notified(&mut self, ctl: &mut Ctl<'_>) -> Action {
        let _ = ctl;
        Action::Keep
    }

    /// The deadline armed via [`Ctl::set_deadline`] fired (and was
    /// cleared; re-arm to keep a periodic timer).
    fn deadline(&mut self, ctl: &mut Ctl<'_>) -> Action {
        let _ = ctl;
        Action::Keep
    }
}

struct Entry {
    source: Box<dyn Source>,
    fd: Option<RawFd>,
    interest: Interest,
    deadline: Option<Instant>,
}

struct Inject {
    token: Token,
    source: Box<dyn Source>,
    fd: Option<RawFd>,
    interest: Interest,
}

struct Shared {
    eventfd: RawFd,
    wake_pending: AtomicBool,
    shutdown: AtomicBool,
    notified: Mutex<Vec<Token>>,
    injects: Mutex<Vec<Inject>>,
    next_token: AtomicU64,
}

impl Drop for Shared {
    fn drop(&mut self) {
        // Closed only when the last Handle *and* the reactor are gone, so
        // a post-shutdown notify can never write into a recycled fd.
        sys::close_fd(self.eventfd);
    }
}

/// A cloneable cross-thread handle to a running [`Reactor`].
#[derive(Clone)]
pub struct Handle {
    shared: Arc<Shared>,
}

impl Handle {
    /// Queues a [`Source::notified`] callback for `token` and wakes the
    /// loop. Duplicate notifies between two loop iterations coalesce.
    pub fn notify(&self, token: Token) {
        relock(&self.shared.notified).push(token);
        self.wake();
    }

    /// Registers a new source from outside the loop; its fd is added to
    /// the poller on the next iteration. Returns the source's token.
    pub fn register(
        &self,
        source: Box<dyn Source>,
        fd: Option<RawFd>,
        interest: Interest,
    ) -> Token {
        // ORDER: the counter only needs unique values; no other memory is
        // published through it.
        let token = self.shared.next_token.fetch_add(1, Ordering::Relaxed);
        relock(&self.shared.injects).push(Inject {
            token,
            source,
            fd,
            interest,
        });
        self.wake();
        token
    }

    /// Asks the loop to exit; every source (and its socket) is dropped.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Bypass the wake-pending suppression: shutdown must always land.
        sys::eventfd_post(self.shared.eventfd);
    }

    fn wake(&self) {
        if !self.shared.wake_pending.swap(true, Ordering::SeqCst) {
            sys::eventfd_post(self.shared.eventfd);
        }
    }
}

/// The registration/timer surface a [`Source`] callback drives.
///
/// Fd and interest changes hit `epoll_ctl` immediately; spawned sources
/// are installed right after the current callback returns.
pub struct Ctl<'a> {
    epfd: RawFd,
    token: Token,
    fd: &'a mut Option<RawFd>,
    interest: &'a mut Interest,
    deadline: &'a mut Option<Instant>,
    spawned: &'a mut Vec<Inject>,
    next_token: &'a AtomicU64,
}

impl Ctl<'_> {
    /// This source's own token (e.g. to hand to a cross-thread waker).
    pub fn token(&self) -> Token {
        self.token
    }

    /// Swaps the registered fd: the old one (if any) is deregistered —
    /// do this *before* dropping the socket — and the new one added with
    /// `interest`. `None` leaves the source alive but fd-less (an idle
    /// lane between connections).
    pub fn set_fd(&mut self, fd: Option<RawFd>, interest: Interest) {
        if let Some(old) = *self.fd {
            sys::epoll_del(self.epfd, old);
        }
        *self.fd = fd;
        *self.interest = interest;
        if let Some(new) = fd {
            let _ = sys::epoll_add(self.epfd, new, interest.events(), self.token);
        }
    }

    /// Re-registers interest on the current fd (no-op when unchanged —
    /// the `EAGAIN` hot path pays an `epoll_ctl` only on transitions).
    pub fn set_interest(&mut self, interest: Interest) {
        if interest == *self.interest {
            return;
        }
        *self.interest = interest;
        if let Some(fd) = *self.fd {
            let _ = sys::epoll_mod(self.epfd, fd, interest.events(), self.token);
        }
    }

    /// Arms (or clears) this source's timer. One deadline per source; it
    /// is cleared when it fires.
    pub fn set_deadline(&mut self, at: Option<Instant>) {
        *self.deadline = at;
    }

    /// Registers a new source (an accepted connection, typically),
    /// installed after the current callback returns.
    pub fn spawn(
        &mut self,
        source: Box<dyn Source>,
        fd: Option<RawFd>,
        interest: Interest,
    ) -> Token {
        // ORDER: the counter only needs unique values; no other memory is
        // published through it.
        let token = self.next_token.fetch_add(1, Ordering::Relaxed);
        self.spawned.push(Inject {
            token,
            source,
            fd,
            interest,
        });
        token
    }
}

enum Event {
    Ready(bool, bool),
    Notify,
    Deadline,
}

/// The event loop: owns the epoll fd and every registered source.
///
/// Construct with [`Reactor::new`], register the initial sources, take a
/// [`Handle`], then hand the reactor to a dedicated thread running
/// [`Reactor::run`].
pub struct Reactor {
    epfd: RawFd,
    entries: HashMap<Token, Entry>,
    shared: Arc<Shared>,
}

impl Reactor {
    /// Creates the poller and its wakeup eventfd.
    pub fn new() -> io::Result<Reactor> {
        let epfd = sys::epoll_create()?;
        let eventfd = match sys::eventfd_new() {
            Ok(fd) => fd,
            Err(e) => {
                sys::close_fd(epfd);
                return Err(e);
            }
        };
        if let Err(e) = sys::epoll_add(epfd, eventfd, sys::EPOLLIN, WAKE_TOKEN) {
            sys::close_fd(epfd);
            // eventfd closed by Shared's Drop below? Not constructed yet:
            sys::close_fd(eventfd);
            return Err(e);
        }
        Ok(Reactor {
            epfd,
            entries: HashMap::new(),
            shared: Arc::new(Shared {
                eventfd,
                wake_pending: AtomicBool::new(false),
                shutdown: AtomicBool::new(false),
                notified: Mutex::new(Vec::new()),
                injects: Mutex::new(Vec::new()),
                next_token: AtomicU64::new(0),
            }),
        })
    }

    /// A cross-thread handle (cloneable) to this reactor.
    pub fn handle(&self) -> Handle {
        Handle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Registers a source before the loop starts (startup path; use
    /// [`Handle::register`] once the loop runs).
    ///
    /// # Errors
    /// Propagates the `epoll_ctl` failure when `fd` cannot be added.
    pub fn register(
        &mut self,
        source: Box<dyn Source>,
        fd: Option<RawFd>,
        interest: Interest,
    ) -> io::Result<Token> {
        // ORDER: the counter only needs unique values; no other memory is
        // published through it.
        let token = self.shared.next_token.fetch_add(1, Ordering::Relaxed);
        if let Some(fd) = fd {
            sys::epoll_add(self.epfd, fd, interest.events(), token)?;
        }
        self.entries.insert(
            token,
            Entry {
                source,
                fd,
                interest,
                deadline: None,
            },
        );
        Ok(token)
    }

    /// Runs the loop until [`Handle::shutdown`]; consumes the reactor.
    /// Dropping it closes the epoll fd and every source's socket.
    pub fn run(mut self) {
        let mut events = [sys::EpollEvent { events: 0, data: 0 }; 256];
        loop {
            self.apply_injects();
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let timeout = self.next_timeout_ms();
            let n = sys::epoll_pwait(self.epfd, &mut events, timeout);
            for ev in events.iter().take(n) {
                let token = ev.data;
                if token == WAKE_TOKEN {
                    continue; // drained below, every iteration
                }
                let bits = ev.events;
                let err = bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0;
                let readable = err || bits & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0;
                let writable = err || bits & sys::EPOLLOUT != 0;
                self.dispatch(token, Event::Ready(readable, writable));
            }
            self.drain_notifications();
            self.fire_deadlines();
        }
    }

    fn apply_injects(&mut self) {
        let injects = std::mem::take(&mut *relock(&self.shared.injects));
        for inj in injects {
            self.install(inj);
        }
    }

    fn install(&mut self, inj: Inject) {
        if let Some(fd) = inj.fd {
            if sys::epoll_add(self.epfd, fd, inj.interest.events(), inj.token).is_err() {
                return; // source dropped; its socket closes
            }
        }
        self.entries.insert(
            inj.token,
            Entry {
                source: inj.source,
                fd: inj.fd,
                interest: inj.interest,
                deadline: None,
            },
        );
    }

    fn drain_notifications(&mut self) {
        // Order matters for the lost-wakeup race: drain the eventfd,
        // clear the pending flag, *then* take the token list. A token
        // pushed after the take is paired with a flag set after the
        // clear, whose eventfd write lands in the next epoll_wait.
        sys::eventfd_drain(self.shared.eventfd);
        self.shared.wake_pending.store(false, Ordering::SeqCst);
        let mut tokens = std::mem::take(&mut *relock(&self.shared.notified));
        tokens.sort_unstable();
        tokens.dedup();
        for token in tokens {
            self.dispatch(token, Event::Notify);
        }
        self.apply_injects();
    }

    fn fire_deadlines(&mut self) {
        let now = Instant::now();
        let due: Vec<Token> = self
            .entries
            .iter()
            .filter(|(_, e)| e.deadline.is_some_and(|d| d <= now))
            .map(|(&t, _)| t)
            .collect();
        for token in due {
            match self.entries.get_mut(&token) {
                Some(e) if e.deadline.is_some_and(|d| d <= now) => e.deadline = None,
                _ => continue, // re-armed later or dropped by a prior dispatch
            }
            self.dispatch(token, Event::Deadline);
        }
    }

    fn next_timeout_ms(&self) -> i32 {
        let next = self.entries.values().filter_map(|e| e.deadline).min();
        match next {
            Some(at) => {
                let left = at.saturating_duration_since(Instant::now());
                // Round up so the loop never spins at a sub-ms remainder.
                left.as_millis().min(500) as i32 + i32::from(left.subsec_nanos() % 1_000_000 != 0)
            }
            // No timer armed: sleep until a readiness event or a wakeup.
            // Capped as a safety net, not a correctness requirement.
            None => 500,
        }
    }

    fn dispatch(&mut self, token: Token, event: Event) {
        let Some(mut entry) = self.entries.remove(&token) else {
            return; // stale event for a dropped source
        };
        let mut spawned = Vec::new();
        let action = {
            let mut ctl = Ctl {
                epfd: self.epfd,
                token,
                fd: &mut entry.fd,
                interest: &mut entry.interest,
                deadline: &mut entry.deadline,
                spawned: &mut spawned,
                next_token: &self.shared.next_token,
            };
            match event {
                Event::Ready(r, w) => entry.source.ready(&mut ctl, r, w),
                Event::Notify => entry.source.notified(&mut ctl),
                Event::Deadline => entry.source.deadline(&mut ctl),
            }
        };
        match action {
            Action::Keep => {
                self.entries.insert(token, entry);
            }
            Action::Drop => {
                if let Some(fd) = entry.fd {
                    sys::epoll_del(self.epfd, fd);
                }
                // entry drops here: the source's socket closes
            }
        }
        for inj in spawned {
            self.install(inj);
        }
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        // Sources first (their sockets close), then the poller itself.
        self.entries.clear();
        sys::close_fd(self.epfd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::sync::mpsc;
    use std::thread;
    use std::time::Duration;

    /// Echoes everything it reads back on the same socket, buffering
    /// across EAGAIN with interest re-registration.
    struct Echo {
        stream: TcpStream,
        out: Vec<u8>,
    }

    impl Source for Echo {
        fn ready(&mut self, ctl: &mut Ctl<'_>, readable: bool, writable: bool) -> Action {
            if readable {
                let mut buf = [0u8; 4096];
                loop {
                    match self.stream.read(&mut buf) {
                        Ok(0) => return Action::Drop,
                        Ok(n) => self.out.extend_from_slice(&buf[..n]),
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(_) => return Action::Drop,
                    }
                }
            }
            let _ = writable;
            while !self.out.is_empty() {
                match self.stream.write(&self.out) {
                    Ok(0) => return Action::Drop,
                    Ok(n) => {
                        self.out.drain(..n);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        ctl.set_interest(Interest::BOTH);
                        return Action::Keep;
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => return Action::Drop,
                }
            }
            ctl.set_interest(Interest::READ);
            Action::Keep
        }
    }

    struct EchoListener {
        listener: TcpListener,
    }

    impl Source for EchoListener {
        fn ready(&mut self, ctl: &mut Ctl<'_>, _r: bool, _w: bool) -> Action {
            loop {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        stream.set_nonblocking(true).unwrap();
                        let fd = {
                            use std::os::unix::io::AsRawFd;
                            stream.as_raw_fd()
                        };
                        ctl.spawn(
                            Box::new(Echo {
                                stream,
                                out: Vec::new(),
                            }),
                            Some(fd),
                            Interest::READ,
                        );
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
            Action::Keep
        }
    }

    #[test]
    fn echoes_across_the_poller() {
        use std::os::unix::io::AsRawFd;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        listener.set_nonblocking(true).unwrap();
        let mut reactor = Reactor::new().unwrap();
        let fd = listener.as_raw_fd();
        reactor
            .register(
                Box::new(EchoListener { listener }),
                Some(fd),
                Interest::READ,
            )
            .unwrap();
        let handle = reactor.handle();
        let t = thread::spawn(move || reactor.run());

        let mut a = TcpStream::connect(addr).unwrap();
        let mut b = TcpStream::connect(addr).unwrap();
        a.write_all(b"hello reactor").unwrap();
        b.write_all(b"second client").unwrap();
        let mut buf = [0u8; 13];
        a.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello reactor");
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"second client");

        handle.shutdown();
        t.join().unwrap();
    }

    struct Ticker {
        period: Duration,
        fired: mpsc::Sender<Instant>,
    }

    impl Source for Ticker {
        fn ready(&mut self, _ctl: &mut Ctl<'_>, _r: bool, _w: bool) -> Action {
            Action::Keep
        }

        fn notified(&mut self, ctl: &mut Ctl<'_>) -> Action {
            ctl.set_deadline(Some(Instant::now() + self.period));
            Action::Keep
        }

        fn deadline(&mut self, ctl: &mut Ctl<'_>) -> Action {
            let _ = self.fired.send(Instant::now());
            ctl.set_deadline(Some(Instant::now() + self.period));
            Action::Keep
        }
    }

    #[test]
    fn deadlines_fire_and_rearm() {
        let mut reactor = Reactor::new().unwrap();
        let (tx, rx) = mpsc::channel();
        let token = reactor
            .register(
                Box::new(Ticker {
                    period: Duration::from_millis(10),
                    fired: tx,
                }),
                None,
                Interest::NONE,
            )
            .unwrap();
        let handle = reactor.handle();
        let t = thread::spawn(move || reactor.run());
        let start = Instant::now();
        handle.notify(token); // arms the first deadline
        for _ in 0..3 {
            rx.recv_timeout(Duration::from_secs(2)).unwrap();
        }
        assert!(start.elapsed() >= Duration::from_millis(25), "fired early");
        handle.shutdown();
        t.join().unwrap();
    }

    #[test]
    fn late_registration_and_notify_coalescing() {
        let reactor = Reactor::new().unwrap();
        let handle = reactor.handle();
        let t = thread::spawn(move || reactor.run());

        struct Counter {
            hits: Arc<AtomicU64>,
        }
        impl Source for Counter {
            fn ready(&mut self, _ctl: &mut Ctl<'_>, _r: bool, _w: bool) -> Action {
                Action::Keep
            }
            fn notified(&mut self, _ctl: &mut Ctl<'_>) -> Action {
                self.hits.fetch_add(1, Ordering::SeqCst);
                Action::Keep
            }
        }
        let hits = Arc::new(AtomicU64::new(0));
        let token = handle.register(
            Box::new(Counter {
                hits: Arc::clone(&hits),
            }),
            None,
            Interest::NONE,
        );
        for _ in 0..100 {
            handle.notify(token);
        }
        let deadline = Instant::now() + Duration::from_secs(2);
        while hits.load(Ordering::SeqCst) == 0 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(5));
        }
        let seen = hits.load(Ordering::SeqCst);
        assert!(seen >= 1, "notify never delivered");
        assert!(seen <= 100, "notify multiplied");
        handle.shutdown();
        t.join().unwrap();
    }

    #[test]
    fn nonblocking_connect_reports_status() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (stream, done) = sys::connect_nonblocking(&addr).unwrap();
        // Loopback may complete synchronously or not; either way the
        // connection becomes established and carries data.
        if !done {
            let mut spins = 0;
            while stream.peer_addr().is_err() {
                thread::sleep(Duration::from_millis(1));
                spins += 1;
                assert!(spins < 2000, "connect never completed");
            }
        }
        assert!(stream.take_error().unwrap().is_none());
        let (mut accepted, _) = listener.accept().unwrap();
        let mut s = stream;
        s.set_nonblocking(false).unwrap();
        s.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        accepted.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
    }
}
