//! Fault injection for the live transport: crash/heal a node, partition
//! or slow individual links.
//!
//! The simulator has had `Sim::crash()` since the seed; this module gives
//! the socket runtime the same surface so the paper's resilience sweeps
//! (Fig. 4) can run where they matter — over real connections. Faults are
//! injected *inside* the transport rather than by killing processes, which
//! keeps chaos runs deterministic per plan and lets a single test drive
//! crash → partition → heal sequences without racing the OS:
//!
//! * [`NodeFaults`] is one node's crash switch. While down, the node's
//!   transport neither sends (queued frames are discarded by the lanes)
//!   nor delivers (reader threads drop parsed frames), and its [`Runtime`]
//!   discards due timers — exactly the simulator's crashed-node semantics.
//!   [`NodeFaults::heal`] bumps the node's *incarnation epoch*: outbound
//!   sequence numbers restart and every lane re-handshakes, so peers'
//!   duplicate filters treat the healed node as a fresh sender.
//! * [`LinkFaults`] is the cluster-wide link filter, shared by every
//!   in-process transport: directed `(from, to)` pairs can be blocked
//!   (checked on the send path *and* the reader path, so asymmetric
//!   partitions work) or slowed by a per-frame delay in the outbound lane.
//!
//! [`Runtime`]: crate::runtime::Runtime

use iniva_net::NodeId;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// One node's crash/heal switch plus its incarnation epoch.
#[derive(Debug, Default)]
pub struct NodeFaults {
    down: AtomicBool,
    epoch: AtomicU32,
}

impl NodeFaults {
    /// A fresh, healthy node (epoch 0).
    pub fn new() -> Self {
        NodeFaults::default()
    }

    /// Crashes the node: no sends, no deliveries, no timers until healed.
    pub fn kill(&self) {
        self.down.store(true, Ordering::SeqCst);
    }

    /// Heals the node under a fresh incarnation epoch.
    pub fn heal(&self) {
        self.epoch.fetch_add(1, Ordering::SeqCst);
        self.down.store(false, Ordering::SeqCst);
    }

    /// True while the node is crashed.
    pub fn is_down(&self) -> bool {
        self.down.load(Ordering::SeqCst)
    }

    /// The current incarnation epoch (0 until the first heal).
    pub fn epoch(&self) -> u32 {
        self.epoch.load(Ordering::SeqCst)
    }
}

/// Cluster-wide link fault state, shared across transports.
///
/// `active` short-circuits the per-frame checks: in fault-free operation
/// (every benchmark and non-chaos test) the hot path costs one relaxed
/// atomic load, no lock.
#[derive(Debug, Default)]
pub struct LinkFaults {
    active: AtomicBool,
    blocked: Mutex<HashSet<(NodeId, NodeId)>>,
    delays: Mutex<HashMap<(NodeId, NodeId), Duration>>,
}

impl LinkFaults {
    /// A fault-free link map.
    pub fn new() -> Self {
        LinkFaults::default()
    }

    fn refresh_active(&self) {
        let any = !self.blocked.lock().expect("blocked lock").is_empty()
            || !self.delays.lock().expect("delays lock").is_empty();
        self.active.store(any, Ordering::SeqCst);
    }

    /// Blocks the directed link `from → to` (frames are dropped, counted
    /// in `TransportStats::faults_dropped`).
    pub fn block_one_way(&self, from: NodeId, to: NodeId) {
        self.blocked
            .lock()
            .expect("blocked lock")
            .insert((from, to));
        self.active.store(true, Ordering::SeqCst);
    }

    /// Symmetrically partitions group `a` from group `b`: every cross
    /// link, both directions.
    pub fn partition(&self, a: &[NodeId], b: &[NodeId]) {
        let mut blocked = self.blocked.lock().expect("blocked lock");
        for &x in a {
            for &y in b {
                blocked.insert((x, y));
                blocked.insert((y, x));
            }
        }
        drop(blocked);
        self.active.store(true, Ordering::SeqCst);
    }

    /// Removes every blocked link and every injected delay.
    pub fn heal_all(&self) {
        self.blocked.lock().expect("blocked lock").clear();
        self.delays.lock().expect("delays lock").clear();
        self.active.store(false, Ordering::SeqCst);
    }

    /// Unblocks the directed link `from → to`.
    pub fn unblock_one_way(&self, from: NodeId, to: NodeId) {
        self.blocked
            .lock()
            .expect("blocked lock")
            .remove(&(from, to));
        self.refresh_active();
    }

    /// Injects `delay` before every frame shipped on `from → to`
    /// (`Duration::ZERO` removes the injection).
    ///
    /// The lane is single-threaded, so the sleep also **serializes** the
    /// link — throughput caps near `1/delay`. This models a slow,
    /// congested link; the simulator's `SlowLink` instead adds pure
    /// propagation delay (frames overlap, throughput unchanged), so
    /// scope cross-backend comparisons of slow-link scenarios
    /// accordingly.
    pub fn slow_link(&self, from: NodeId, to: NodeId, delay: Duration) {
        let mut delays = self.delays.lock().expect("delays lock");
        if delay.is_zero() {
            delays.remove(&(from, to));
        } else {
            delays.insert((from, to), delay);
        }
        drop(delays);
        self.refresh_active();
    }

    /// True if frames on `from → to` must be dropped.
    pub fn blocked(&self, from: NodeId, to: NodeId) -> bool {
        // ORDER: fast-path gate only; fault injection promises no
        // happens-before with in-flight frames, and a stale read merely
        // delays when an injected fault takes effect by one frame.
        if !self.active.load(Ordering::Relaxed) {
            return false;
        }
        crate::reactor::relock(&self.blocked).contains(&(from, to))
    }

    /// The injected delay on `from → to`, if any.
    pub fn delay(&self, from: NodeId, to: NodeId) -> Option<Duration> {
        // ORDER: fast-path gate only; see `blocked`.
        if !self.active.load(Ordering::Relaxed) {
            return None;
        }
        crate::reactor::relock(&self.delays)
            .get(&(from, to))
            .copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_heal_bumps_epoch() {
        let f = NodeFaults::new();
        assert!(!f.is_down());
        assert_eq!(f.epoch(), 0);
        f.kill();
        assert!(f.is_down());
        assert_eq!(f.epoch(), 0, "kill alone keeps the incarnation");
        f.heal();
        assert!(!f.is_down());
        assert_eq!(f.epoch(), 1);
        f.kill();
        f.heal();
        assert_eq!(f.epoch(), 2);
    }

    #[test]
    fn partition_blocks_both_directions_until_healed() {
        let l = LinkFaults::new();
        assert!(!l.blocked(0, 3));
        l.partition(&[0, 1], &[2, 3]);
        assert!(l.blocked(0, 2) && l.blocked(2, 0));
        assert!(l.blocked(1, 3) && l.blocked(3, 1));
        assert!(!l.blocked(0, 1), "intra-group links stay up");
        assert!(!l.blocked(2, 3));
        l.heal_all();
        assert!(!l.blocked(0, 2));
    }

    #[test]
    fn one_way_blocks_are_asymmetric() {
        let l = LinkFaults::new();
        l.block_one_way(4, 5);
        assert!(l.blocked(4, 5));
        assert!(!l.blocked(5, 4));
        l.unblock_one_way(4, 5);
        assert!(!l.blocked(4, 5));
    }

    #[test]
    fn slow_link_is_directed_and_removable() {
        let l = LinkFaults::new();
        assert_eq!(l.delay(1, 2), None);
        l.slow_link(1, 2, Duration::from_millis(30));
        assert_eq!(l.delay(1, 2), Some(Duration::from_millis(30)));
        assert_eq!(l.delay(2, 1), None);
        l.slow_link(1, 2, Duration::ZERO);
        assert_eq!(l.delay(1, 2), None);
    }
}
