//! TOML-style cluster configuration for multi-process deployments.
//!
//! A minimal, dependency-free parser for the subset of TOML the cluster
//! needs — one optional `[cluster]` table of scalar settings and one
//! `[[peers]]` array-of-tables entry per replica:
//!
//! ```toml
//! [cluster]
//! scheme = "sim"        # vote scheme, "sim" or "bls" (cluster-wide)
//! internal = 2          # aggregators per tree
//! batch = 100           # max requests per block
//! payload = 64          # bytes per request
//! rate = 10000          # open-loop client requests/second
//! duration_secs = 10    # load duration
//! # metrics_dir = "/tmp/iniva-obs"   # optional: per-process observability dumps
//! # client_listen = "127.0.0.1:7200" # optional: client ingress base address
//! # mempool = 65536                  # ingress mempool capacity (requests)
//! # client_rate = 1000               # per-client token refill rate (submits/s)
//! # client_burst = 256               # per-client token bucket burst
//!
//! [[peers]]
//! id = 0
//! addr = "127.0.0.1:7100"
//!
//! [[peers]]
//! id = 1
//! addr = "127.0.0.1:7101"
//! ```
//!
//! Comments (`# ...`), blank lines, integer and quoted-string values are
//! supported; anything else is rejected with a line-numbered error.

use std::fmt;
use std::net::SocketAddr;

/// One replica endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Peer {
    /// Committee id (must be `0..n`, unique).
    pub id: u32,
    /// Listen/dial address.
    pub addr: SocketAddr,
}

/// A parsed cluster configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterConfig {
    /// The committee, sorted by id (`peers.len()` is `n`).
    pub peers: Vec<Peer>,
    /// Internal aggregators per tree.
    pub internal: u32,
    /// Max requests batched per block.
    pub max_batch: u32,
    /// Payload bytes per request.
    pub payload_per_req: u32,
    /// Open-loop client request rate (requests/second).
    pub request_rate: u64,
    /// Load duration in seconds.
    pub duration_secs: u64,
    /// Vote scheme every process of the cluster must run (`"sim"` or
    /// `"bls"`). Part of the shared config because it is as much common
    /// knowledge as the peer list: a replica decoding frames under the
    /// wrong scheme would silently drop every connection and stall, so
    /// launchers validate their compiled scheme against this field and
    /// fail by name instead.
    pub scheme: String,
    /// Directory for observability dumps (`metrics-<id>.json`,
    /// `trace-<id>.jsonl` per process), shared like the peer list so one
    /// key turns tracing on for the whole cluster and `view_timeline`
    /// finds every node's dump in one place. `None` (default) disables
    /// observability.
    pub metrics_dir: Option<String>,
    /// Base address for the client ingress tier: replica `id` listens
    /// for client connections on this address's port **plus `id`**
    /// (mirroring how [`Self::local`] lays out peer ports). `None`
    /// (default) disables ingress — replicas draft from the synthetic
    /// open-loop workload model instead.
    pub client_listen: Option<String>,
    /// Ingress mempool capacity in requests (admissions beyond it evict
    /// the cheapest queued request or shed with `Busy`).
    pub mempool: u64,
    /// Per-client token-bucket refill rate, submits/second (0 disables
    /// rate limiting).
    pub client_rate: u64,
    /// Per-client token-bucket burst size.
    pub client_burst: u64,
}

impl ClusterConfig {
    /// Committee size.
    pub fn n(&self) -> usize {
        self.peers.len()
    }

    /// The peer list as `(id, addr)` pairs for [`crate::Transport`].
    pub fn peer_addrs(&self) -> Vec<(u32, SocketAddr)> {
        self.peers.iter().map(|p| (p.id, p.addr)).collect()
    }

    /// The address of peer `id`.
    pub fn addr_of(&self, id: u32) -> Option<SocketAddr> {
        self.peers.iter().find(|p| p.id == id).map(|p| p.addr)
    }

    /// The client ingress listen address of peer `id`: `client_listen`'s
    /// port plus `id`. `None` when ingress is disabled.
    pub fn client_addr_of(&self, id: u32) -> Option<SocketAddr> {
        let base: SocketAddr = self.client_listen.as_ref()?.parse().ok()?;
        let mut addr = base;
        addr.set_port(base.port() + id as u16);
        Some(addr)
    }

    /// The mempool / rate-limit knobs as [`iniva_ingress::IngressOptions`].
    pub fn ingress_options(&self) -> iniva_ingress::IngressOptions {
        iniva_ingress::IngressOptions {
            capacity: self.mempool as usize,
            rate_per_client: self.client_rate,
            burst: self.client_burst,
        }
    }

    /// A loopback cluster of `n` consecutive ports starting at `base_port`.
    pub fn local(n: usize, base_port: u16) -> Self {
        ClusterConfig {
            peers: (0..n)
                .map(|i| Peer {
                    id: i as u32,
                    addr: format!("127.0.0.1:{}", base_port + i as u16)
                        .parse()
                        .unwrap(),
                })
                .collect(),
            ..ClusterConfig::defaults()
        }
    }

    fn defaults() -> Self {
        let ingress = iniva_ingress::IngressOptions::default();
        ClusterConfig {
            peers: Vec::new(),
            internal: 2,
            max_batch: 100,
            payload_per_req: 64,
            request_rate: 10_000,
            duration_secs: 10,
            scheme: "sim".to_string(),
            metrics_dir: None,
            client_listen: None,
            mempool: ingress.capacity as u64,
            client_rate: ingress.rate_per_client,
            client_burst: ingress.burst,
        }
    }

    /// Parses the TOML-style format described in the module docs.
    ///
    /// # Errors
    /// Returns [`ConfigError`] with the offending line on malformed input,
    /// unknown keys, duplicate or non-contiguous peer ids, or an empty
    /// peer list.
    pub fn parse(text: &str) -> Result<Self, ConfigError> {
        #[derive(PartialEq)]
        enum Section {
            None,
            Cluster,
            Peer,
        }
        let mut cfg = ClusterConfig::defaults();
        let mut section = Section::None;
        let mut pending: Option<(Option<u32>, Option<SocketAddr>)> = None;

        let finish_peer = |pending: &mut Option<(Option<u32>, Option<SocketAddr>)>,
                           peers: &mut Vec<Peer>,
                           line: usize|
         -> Result<(), ConfigError> {
            if let Some((id, addr)) = pending.take() {
                match (id, addr) {
                    (Some(id), Some(addr)) => peers.push(Peer { id, addr }),
                    _ => return Err(ConfigError::at(line, "[[peers]] needs both id and addr")),
                }
            }
            Ok(())
        };

        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = match raw.find('#') {
                Some(i) => &raw[..i],
                None => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            if line == "[[peers]]" {
                finish_peer(&mut pending, &mut cfg.peers, lineno)?;
                pending = Some((None, None));
                section = Section::Peer;
                continue;
            }
            if line == "[cluster]" {
                finish_peer(&mut pending, &mut cfg.peers, lineno)?;
                section = Section::Cluster;
                continue;
            }
            if line.starts_with('[') {
                return Err(ConfigError::at(lineno, "unknown section"));
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(ConfigError::at(lineno, "expected key = value"));
            };
            let (key, value) = (key.trim(), value.trim());
            match section {
                Section::None => return Err(ConfigError::at(lineno, "key outside any section")),
                Section::Cluster => match key {
                    "internal" => cfg.internal = parse_int(value, lineno)? as u32,
                    "batch" => cfg.max_batch = parse_int(value, lineno)? as u32,
                    "payload" => cfg.payload_per_req = parse_int(value, lineno)? as u32,
                    "rate" => cfg.request_rate = parse_int(value, lineno)?,
                    "duration_secs" => cfg.duration_secs = parse_int(value, lineno)?,
                    "scheme" => {
                        let s = parse_string(value, lineno)?;
                        if s != "sim" && s != "bls" {
                            return Err(ConfigError::at(
                                lineno,
                                "scheme must be \"sim\" or \"bls\"",
                            ));
                        }
                        cfg.scheme = s;
                    }
                    "metrics_dir" => cfg.metrics_dir = Some(parse_string(value, lineno)?),
                    "client_listen" => {
                        let s = parse_string(value, lineno)?;
                        if s.parse::<SocketAddr>().is_err() {
                            return Err(ConfigError::at(
                                lineno,
                                "client_listen is not a socket address",
                            ));
                        }
                        cfg.client_listen = Some(s);
                    }
                    "mempool" => cfg.mempool = parse_int(value, lineno)?,
                    "client_rate" => cfg.client_rate = parse_int(value, lineno)?,
                    "client_burst" => cfg.client_burst = parse_int(value, lineno)?,
                    _ => return Err(ConfigError::at(lineno, "unknown [cluster] key")),
                },
                Section::Peer => {
                    let slot = pending.as_mut().expect("inside [[peers]]");
                    match key {
                        "id" => slot.0 = Some(parse_int(value, lineno)? as u32),
                        "addr" => {
                            let s = parse_string(value, lineno)?;
                            let addr = s.parse().map_err(|_| {
                                ConfigError::at(lineno, "addr is not a socket address")
                            })?;
                            slot.1 = Some(addr);
                        }
                        _ => return Err(ConfigError::at(lineno, "unknown [[peers]] key")),
                    }
                }
            }
        }
        let last = text.lines().count();
        finish_peer(&mut pending, &mut cfg.peers, last)?;

        if cfg.peers.is_empty() {
            return Err(ConfigError::at(last, "no [[peers]] defined"));
        }
        cfg.peers.sort_by_key(|p| p.id);
        for (i, p) in cfg.peers.iter().enumerate() {
            if p.id != i as u32 {
                return Err(ConfigError::at(
                    last,
                    "peer ids must be unique and contiguous from 0",
                ));
            }
        }
        Ok(cfg)
    }
}

fn parse_int(value: &str, line: usize) -> Result<u64, ConfigError> {
    value
        .replace('_', "")
        .parse()
        .map_err(|_| ConfigError::at(line, "expected an integer"))
}

fn parse_string(value: &str, line: usize) -> Result<String, ConfigError> {
    let v = value.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].to_string())
    } else {
        Err(ConfigError::at(line, "expected a quoted string"))
    }
}

/// A config-file parse error with its line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line of the offending input.
    pub line: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl ConfigError {
    fn at(line: usize, message: &'static str) -> Self {
        ConfigError { line, message }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "config line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE: &str = r#"
# a three-replica cluster
[cluster]
internal = 1
batch = 200
rate = 20_000
metrics_dir = "/tmp/iniva-metrics"

[[peers]]
id = 1
addr = "127.0.0.1:7101"

[[peers]]
id = 0
addr = "127.0.0.1:7100"

[[peers]]
id = 2
addr = "127.0.0.1:7102"
"#;

    #[test]
    fn parses_sections_settings_and_peers() {
        let cfg = ClusterConfig::parse(EXAMPLE).unwrap();
        assert_eq!(cfg.n(), 3);
        assert_eq!(cfg.internal, 1);
        assert_eq!(cfg.max_batch, 200);
        assert_eq!(cfg.request_rate, 20_000);
        assert_eq!(cfg.payload_per_req, 64, "unset keys keep defaults");
        assert_eq!(cfg.scheme, "sim", "unset scheme defaults to sim");
        assert_eq!(cfg.metrics_dir.as_deref(), Some("/tmp/iniva-metrics"));
        let bare = ClusterConfig::parse("[[peers]]\nid = 0\naddr = \"127.0.0.1:7100\"").unwrap();
        assert_eq!(bare.metrics_dir, None, "observability defaults off");
        // Peers come out sorted by id regardless of file order.
        assert_eq!(cfg.peers[0].id, 0);
        assert_eq!(cfg.addr_of(2).unwrap().port(), 7102);
    }

    #[test]
    fn rejects_malformed_input_with_line_numbers() {
        for (text, needle) in [
            (
                "[cluster]\nwhat = 1\n[[peers]]\nid = 0\naddr = \"1.2.3.4:1\"",
                "unknown",
            ),
            ("[[peers]]\nid = 0", "both id and addr"),
            ("rate = 1", "outside any section"),
            (
                "[cluster]\nrate = abc\n[[peers]]\nid = 0\naddr = \"1.2.3.4:1\"",
                "integer",
            ),
            ("[[peers]]\nid = 0\naddr = 127.0.0.1:9", "quoted"),
            ("[[peers]]\nid = 0\naddr = \"nonsense\"", "socket address"),
            ("[cluster]\nrate = 5", "no [[peers]]"),
            (
                "[[peers]]\nid = 0\naddr = \"1.1.1.1:1\"\n[[peers]]\nid = 0\naddr = \"1.1.1.1:2\"",
                "contiguous",
            ),
            ("[[peers]]\nid = 5\naddr = \"1.1.1.1:1\"", "contiguous"),
            (
                "[cluster]\nscheme = \"rsa\"\n[[peers]]\nid = 0\naddr = \"1.2.3.4:1\"",
                "scheme must be",
            ),
        ] {
            let err = ClusterConfig::parse(text).unwrap_err();
            assert!(
                err.message.contains(needle),
                "{text:?} -> {err} (wanted {needle:?})"
            );
        }
    }

    #[test]
    fn parses_ingress_keys_and_spreads_client_ports() {
        let cfg = ClusterConfig::parse(
            "[cluster]\nclient_listen = \"127.0.0.1:7200\"\nmempool = 1024\n\
             client_rate = 50\nclient_burst = 10\n\
             [[peers]]\nid = 0\naddr = \"127.0.0.1:7100\"\n\
             [[peers]]\nid = 1\naddr = \"127.0.0.1:7101\"",
        )
        .unwrap();
        assert_eq!(cfg.client_addr_of(0).unwrap().port(), 7200);
        assert_eq!(cfg.client_addr_of(1).unwrap().port(), 7201);
        let opts = cfg.ingress_options();
        assert_eq!(opts.capacity, 1024);
        assert_eq!(opts.rate_per_client, 50);
        assert_eq!(opts.burst, 10);

        let off = ClusterConfig::parse("[[peers]]\nid = 0\naddr = \"127.0.0.1:7100\"").unwrap();
        assert_eq!(off.client_addr_of(0), None, "ingress defaults off");
        let defaults = iniva_ingress::IngressOptions::default();
        assert_eq!(off.ingress_options().capacity, defaults.capacity);

        let err = ClusterConfig::parse(
            "[cluster]\nclient_listen = \"nonsense\"\n[[peers]]\nid = 0\naddr = \"1.2.3.4:1\"",
        )
        .unwrap_err();
        assert!(err.message.contains("socket address"), "{err}");
    }

    #[test]
    fn local_builder_counts_ports_up() {
        let cfg = ClusterConfig::local(4, 9000);
        assert_eq!(cfg.n(), 4);
        assert_eq!(cfg.peers[3].addr.port(), 9003);
        let addrs = cfg.peer_addrs();
        assert_eq!(addrs.len(), 4);
    }
}
