//! Length-prefixed message framing over a TCP stream.
//!
//! Stream layout: a one-shot handshake (`b"INIV"`, protocol version, sender
//! node id, sender *incarnation epoch*), then a sequence of frames. The
//! epoch starts at 0 and is bumped each time the sender heals from an
//! injected crash (see `crate::faults`): sequence numbers restart per
//! epoch, so the receiver's duplicate filter treats a healed replica as a
//! fresh sender instead of wrongly deduping its restarted sequence space.
//! Each frame is
//!
//! ```text
//! u32-le body length | u64-le sender sequence number | message bytes
//! ```
//!
//! where the message bytes are one complete [`Codec`] encoding — the same
//! bytes whose *size* the simulator models, now actually on the wire.

use iniva_net::wire::Codec;
use iniva_net::NodeId;
use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Handshake magic.
pub const MAGIC: [u8; 4] = *b"INIV";

/// Protocol version of the framing layer (v2 added the handshake epoch).
pub const VERSION: u8 = 2;

/// Handshake length: magic + version + node id + epoch.
pub const HANDSHAKE_BYTES: usize = 13;

/// Upper bound on a frame body; a peer claiming more is treated as corrupt
/// rather than allocated for.
pub const MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

/// The handshake bytes identifying `node` in incarnation `epoch` — the
/// buffer form used by the reactor's non-blocking lanes, which may need
/// several partial writes to ship it.
pub fn handshake_bytes(node: NodeId, epoch: u32) -> [u8; HANDSHAKE_BYTES] {
    let mut hello = [0u8; HANDSHAKE_BYTES];
    hello[..4].copy_from_slice(&MAGIC);
    hello[4] = VERSION;
    hello[5..9].copy_from_slice(&node.to_le_bytes());
    hello[9..].copy_from_slice(&epoch.to_le_bytes());
    hello
}

/// Writes the connection handshake identifying `node` in incarnation
/// `epoch`.
pub fn write_handshake(stream: &mut TcpStream, node: NodeId, epoch: u32) -> io::Result<()> {
    stream.write_all(&handshake_bytes(node, epoch))
}

/// Reads and validates the handshake, returning `(peer id, peer epoch)`.
pub fn read_handshake(stream: &mut TcpStream) -> io::Result<(NodeId, u32)> {
    let mut hello = [0u8; HANDSHAKE_BYTES];
    stream.read_exact(&mut hello)?;
    if hello[..4] != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad handshake magic",
        ));
    }
    if hello[4] != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported frame version {}", hello[4]),
        ));
    }
    Ok((
        NodeId::from_le_bytes([hello[5], hello[6], hello[7], hello[8]]),
        u32::from_le_bytes([hello[9], hello[10], hello[11], hello[12]]),
    ))
}

/// Writes one frame: `seq` plus the encoded message.
pub fn write_frame(stream: &mut TcpStream, seq: u64, body: &[u8]) -> io::Result<()> {
    let len = u32::try_from(body.len() + 8).map_err(|_| {
        io::Error::new(io::ErrorKind::InvalidInput, "frame body exceeds u32 length")
    })?;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame exceeds MAX_FRAME_BYTES",
        ));
    }
    // One buffered write per frame: header + seq + body.
    // CAP: encode side — `body.len() + 8` passed the u32 / MAX_FRAME_BYTES
    // checks above, so the allocation is bounded by MAX_FRAME_BYTES.
    let mut buf = Vec::with_capacity(12 + body.len());
    buf.extend_from_slice(&len.to_le_bytes());
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.extend_from_slice(body);
    stream.write_all(&buf)
}

/// Reads one frame, returning `(seq, decoded message)`.
///
/// # Errors
/// I/O errors propagate; an oversized length prefix or an undecodable body
/// is reported as [`io::ErrorKind::InvalidData`] (the connection should be
/// dropped — framing is unrecoverable after a corrupt length).
pub fn read_frame<M: Codec>(stream: &mut TcpStream) -> io::Result<(u64, M)> {
    let mut header = [0u8; 4];
    stream.read_exact(&mut header)?;
    let len = u32::from_le_bytes(header);
    if !(8..=MAX_FRAME_BYTES).contains(&len) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad frame length {len}"),
        ));
    }
    let mut seq = [0u8; 8];
    stream.read_exact(&mut seq)?;
    // CAP: `len` was range-checked against MAX_FRAME_BYTES above; a hostile
    // length prefix can not size this allocation.
    let mut body = vec![0u8; len as usize - 8];
    stream.read_exact(&mut body)?;
    let msg = M::from_frame(bytes::Bytes::from(body))
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    Ok((u64::from_le_bytes(seq), msg))
}

/// Incremental handshake parser: `Ok(Some((consumed, peer, epoch)))` once
/// the [`HANDSHAKE_BYTES`] handshake bytes are buffered, `Ok(None)` while
/// incomplete.
///
/// # Errors
/// [`io::ErrorKind::InvalidData`] on wrong magic or version.
pub fn parse_handshake(buf: &[u8]) -> io::Result<Option<(usize, NodeId, u32)>> {
    if buf.len() < HANDSHAKE_BYTES {
        return Ok(None);
    }
    if buf[..4] != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad handshake magic",
        ));
    }
    if buf[4] != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported frame version {}", buf[4]),
        ));
    }
    Ok(Some((
        HANDSHAKE_BYTES,
        NodeId::from_le_bytes([buf[5], buf[6], buf[7], buf[8]]),
        u32::from_le_bytes([buf[9], buf[10], buf[11], buf[12]]),
    )))
}

/// Outcome of [`parse_frame`] over a receive buffer.
#[derive(Debug)]
pub enum FrameParse {
    /// Not enough buffered bytes for a complete frame yet.
    Incomplete,
    /// One complete frame: consume `consumed` bytes from the buffer.
    Complete {
        /// Total bytes of the frame (header + seq + body).
        consumed: usize,
        /// Sender sequence number.
        seq: u64,
        /// Offset range of the message body within the buffer.
        body: std::ops::Range<usize>,
    },
}

/// Incremental frame parser over a receive buffer — the read path used by
/// the transport's reader threads, which must survive reads that time out
/// mid-frame without losing stream position.
///
/// # Errors
/// [`io::ErrorKind::InvalidData`] on a length prefix outside
/// `8..=MAX_FRAME_BYTES` (framing is unrecoverable; drop the connection).
pub fn parse_frame(buf: &[u8]) -> io::Result<FrameParse> {
    if buf.len() < 4 {
        return Ok(FrameParse::Incomplete);
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
    if !(8..=MAX_FRAME_BYTES).contains(&len) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad frame length {len}"),
        ));
    }
    let total = 4 + len as usize;
    if buf.len() < total {
        return Ok(FrameParse::Incomplete);
    }
    let seq = u64::from_le_bytes([
        buf[4], buf[5], buf[6], buf[7], buf[8], buf[9], buf[10], buf[11],
    ]);
    Ok(FrameParse::Complete {
        consumed: total,
        seq,
        body: 12..total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use iniva_net::wire::{DecodeError, Decoder, Encoder, WireDecode, WireEncode};
    use std::net::TcpListener;

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct TestMsg(u64, Vec<u8>);

    impl WireEncode for TestMsg {
        fn encode(&self, enc: &mut Encoder) {
            enc.put_u64(self.0).put_bytes(&self.1);
        }
    }

    impl WireDecode for TestMsg {
        fn decode(dec: &mut Decoder) -> Result<Self, DecodeError> {
            Ok(TestMsg(dec.get_u64()?, dec.get_bytes()?.to_vec()))
        }
    }

    fn stream_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn handshake_roundtrips() {
        let (mut a, mut b) = stream_pair();
        write_handshake(&mut a, 42, 7).unwrap();
        assert_eq!(read_handshake(&mut b).unwrap(), (42, 7));
    }

    #[test]
    fn corrupt_magic_rejected() {
        let (mut a, mut b) = stream_pair();
        a.write_all(b"JUNKJUNKJUNKJ").unwrap();
        assert!(read_handshake(&mut b).is_err());
    }

    #[test]
    fn incremental_handshake_parses_epoch() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&MAGIC);
        wire.push(VERSION);
        wire.extend_from_slice(&9u32.to_le_bytes());
        wire.extend_from_slice(&3u32.to_le_bytes());
        for cut in 0..wire.len() {
            assert!(parse_handshake(&wire[..cut]).unwrap().is_none());
        }
        assert_eq!(
            parse_handshake(&wire).unwrap(),
            Some((HANDSHAKE_BYTES, 9, 3))
        );
        // Old (v1) handshakes are rejected, not misparsed.
        let mut v1 = wire.clone();
        v1[4] = 1;
        assert!(parse_handshake(&v1).is_err());
    }

    #[test]
    fn frames_roundtrip_in_order() {
        let (mut a, mut b) = stream_pair();
        for seq in 0..10u64 {
            let m = TestMsg(seq, vec![seq as u8; seq as usize]);
            write_frame(&mut a, seq, &m.to_frame()).unwrap();
        }
        for seq in 0..10u64 {
            let (got_seq, m): (u64, TestMsg) = read_frame(&mut b).unwrap();
            assert_eq!(got_seq, seq);
            assert_eq!(m, TestMsg(seq, vec![seq as u8; seq as usize]));
        }
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let (mut a, mut b) = stream_pair();
        a.write_all(&(MAX_FRAME_BYTES + 1).to_le_bytes()).unwrap();
        let err = read_frame::<TestMsg>(&mut b).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn undecodable_body_is_invalid_data_not_panic() {
        let (mut a, mut b) = stream_pair();
        // Valid framing, body that is not a TestMsg encoding.
        write_frame(&mut a, 1, &[0xff, 0xee]).unwrap();
        let err = read_frame::<TestMsg>(&mut b).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn incremental_parser_handles_split_frames() {
        let m = TestMsg(7, vec![1, 2, 3]);
        let body = m.to_frame();
        let mut wire = Vec::new();
        wire.extend_from_slice(&(body.len() as u32 + 8).to_le_bytes());
        wire.extend_from_slice(&9u64.to_le_bytes());
        wire.extend_from_slice(&body);
        // Every split point of the byte stream parses to Incomplete, then
        // the full buffer yields exactly one frame.
        for cut in 0..wire.len() {
            assert!(matches!(
                parse_frame(&wire[..cut]).unwrap(),
                FrameParse::Incomplete
            ));
        }
        match parse_frame(&wire).unwrap() {
            FrameParse::Complete {
                consumed,
                seq,
                body: range,
            } => {
                assert_eq!(consumed, wire.len());
                assert_eq!(seq, 9);
                let decoded =
                    TestMsg::from_frame(bytes::Bytes::from(wire[range].to_vec())).unwrap();
                assert_eq!(decoded, m);
            }
            other => panic!("expected a complete frame, got {other:?}"),
        }
    }

    #[test]
    fn incremental_parser_rejects_bad_lengths() {
        assert!(parse_frame(&0u32.to_le_bytes()).is_err());
        assert!(parse_frame(&(MAX_FRAME_BYTES + 1).to_le_bytes()).is_err());
    }

    #[test]
    fn truncated_stream_reports_eof() {
        let (mut a, b) = stream_pair();
        a.write_all(&100u32.to_le_bytes()).unwrap();
        drop(a);
        let mut b = b;
        assert!(read_frame::<TestMsg>(&mut b).is_err());
    }
}
