//! The event loop driving an [`Actor`] over real sockets and a real clock.
//!
//! [`Runtime`] implements the contract the discrete-event simulator gives
//! its actors, with wall-clock semantics:
//!
//! * `ctx.now()` is nanoseconds of monotonic time since the runtime epoch
//!   (the simulator's virtual clock becomes a real one);
//! * `ctx.send(..)` hands the encoded message to the TCP transport;
//! * `ctx.set_timer(..)` schedules on a monotonic-clock timer wheel;
//! * `ctx.charge_cpu(..)` **spends the charged time** (the handler thread
//!   stays busy for it), so the calibrated verification costs shape the
//!   live cluster's latency exactly as they shape the simulator's — see
//!   [`CpuMode`] for scaling or disabling this.
//!
//! Messages are delivered in arrival order (the order frames drained from
//! the sockets into the inbound queue); timers fire in deadline order and
//! take priority over messages once due, mirroring the simulator's
//! single-server queue per node.

use crate::faults::NodeFaults;
use crate::transport::{Incoming, Transport};
use iniva_net::wire::Codec;
use iniva_net::{Actor, Context, Time};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Most messages delivered to an actor in one handler turn. The drain
/// keeps a pairing-verifying replica's batch window full (a view's worth
/// of signatures arrives back-to-back) while bounding how long due timers
/// can be deferred behind a message flood.
const MAX_DELIVERY_BATCH: usize = 32;

/// How `charge_cpu` translates to real time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CpuMode {
    /// Spend the charged nanoseconds on the handler thread (default): the
    /// cost model calibrated from the BLS benchmarks shapes live latency.
    Real,
    /// Spend a scaled fraction (e.g. `0.1` to model 10× faster CPUs).
    Scaled(f64),
    /// Ignore charges entirely (pure transport benchmarking).
    Off,
}

/// Counters mirroring the simulator's per-node [`iniva_net::NodeStats`].
#[derive(Debug, Clone, Default)]
pub struct RuntimeStats {
    /// Total CPU time charged by handlers (ns, before [`CpuMode`] scaling).
    pub cpu_charged: Time,
    /// Real time spent busy in handlers, including charges (ns).
    pub busy: Time,
    /// Messages delivered to the actor.
    pub msgs_delivered: u64,
    /// Timers fired.
    pub timers_fired: u64,
}

/// Registry handles kept by an observed runtime (see
/// [`Runtime::set_observability`]).
struct RuntimeObs {
    /// How late past its deadline each timer fired — the live analogue
    /// of the simulator's zero-lag timer wheel, and the series
    /// [`tune_for_real_crypto`](iniva_net::Actor) consumers use to size
    /// Δ against scheduling noise rather than guesswork.
    timer_lag_ns: iniva_obs::Histogram,
    /// Real time per handler dispatch (including charged CPU spends).
    handler_ns: iniva_obs::Histogram,
}

/// Drives one [`Actor`] over a [`Transport`].
pub struct Runtime<A: Actor>
where
    A::Msg: Codec + Send + 'static,
{
    actor: A,
    transport: Transport<A::Msg>,
    cpu_mode: CpuMode,
    epoch: Instant,
    timers: BinaryHeap<Reverse<(Time, u64, u64)>>,
    timer_seq: u64,
    stats: RuntimeStats,
    started: bool,
    obs: Option<RuntimeObs>,
}

impl<A: Actor> Runtime<A>
where
    A::Msg: Codec + Send + 'static,
{
    /// Creates a runtime for `actor` over `transport`.
    pub fn new(actor: A, transport: Transport<A::Msg>, cpu_mode: CpuMode) -> Self {
        Self::with_epoch(actor, transport, cpu_mode, Instant::now())
    }

    /// Creates a runtime whose clock reads nanoseconds since `epoch`
    /// rather than since construction. A restart-capable harness passes
    /// the *cluster's* time zero here, so a replica rebuilt from its WAL
    /// mid-run keeps stamping metrics (commit points, latencies) on the
    /// same time axis as every other replica — and as its own previous
    /// incarnation.
    pub fn with_epoch(
        actor: A,
        transport: Transport<A::Msg>,
        cpu_mode: CpuMode,
        epoch: Instant,
    ) -> Self {
        Runtime {
            actor,
            transport,
            cpu_mode,
            epoch,
            timers: BinaryHeap::new(),
            timer_seq: 0,
            stats: RuntimeStats::default(),
            started: false,
            obs: None,
        }
    }

    /// Nanoseconds of monotonic time since the runtime epoch.
    pub fn now(&self) -> Time {
        self.epoch.elapsed().as_nanos() as Time
    }

    /// The instant this runtime's clock reads zero at. Harnesses use it
    /// to build a live [`iniva_obs::Tracer`] on the same time axis.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Registers the runtime's latency series (`runtime.timer_lag_ns`,
    /// `runtime.handler_ns`) in `registry` and starts recording into
    /// them. Unobserved runtimes skip both `Instant` reads.
    pub fn set_observability(&mut self, registry: &iniva_obs::Registry) {
        self.obs = Some(RuntimeObs {
            timer_lag_ns: registry.histogram("runtime.timer_lag_ns"),
            handler_ns: registry.histogram("runtime.handler_ns"),
        });
    }

    /// Mirrors the runtime's and transport's cumulative counters into
    /// `registry` (idempotent: values are stored, not added). Counters
    /// land under `runtime.` and `transport.`; `transport.queue_depth`
    /// is a gauge of frames currently queued in outbound lanes.
    pub fn export_stats(&self, registry: &iniva_obs::Registry) {
        export_runtime_stats(&self.stats, registry);
        crate::transport::export_transport_snapshot(&self.transport.snapshot(), registry);
    }

    /// The driven actor (for metric harvesting).
    pub fn actor(&self) -> &A {
        &self.actor
    }

    /// Mutable access to the driven actor, for harvesting between run
    /// slices (periodic metric exports need `&mut` to track what was
    /// already exported). Only call between `run_*` calls.
    pub fn actor_mut(&mut self) -> &mut A {
        &mut self.actor
    }

    /// Runtime counters.
    pub fn stats(&self) -> &RuntimeStats {
        &self.stats
    }

    /// Transport counters.
    pub fn transport_stats(&self) -> &crate::transport::TransportStats {
        self.transport.stats()
    }

    /// This node's crash/heal switch (shared with the transport). Killing
    /// it silences the actor — due timers are discarded, messages dropped —
    /// and healing resumes it under a fresh incarnation epoch, mirroring
    /// the simulator's crash semantics (`Simulation::crash`/`revive`).
    pub fn fault_handle(&self) -> Arc<NodeFaults> {
        self.transport.node_faults()
    }

    /// Runs the event loop for `wall` of real time, calling `on_start`
    /// first if this is the first run.
    pub fn run_for(&mut self, wall: Duration) {
        self.run_deadline(Instant::now() + wall, || false);
    }

    /// Runs the event loop until `deadline`, or until `stop` returns
    /// `true` (polled once per loop iteration, so within ~50 ms of being
    /// raised). The stop hook is what lets a restart-capable harness tear
    /// a replica down mid-run — a process-level `kill -9` — and later
    /// rebuild it from its write-ahead log.
    pub fn run_deadline<F: Fn() -> bool>(&mut self, deadline: Instant, stop: F) {
        let faults = self.transport.node_faults();
        while Instant::now() < deadline && !stop() {
            // A killed node is inert: due timers are discarded (as the
            // simulator discards a crashed node's events) and inbound
            // messages drain to the floor until a heal. The start event is
            // consumed too — a node crashed before its first dispatch
            // never runs `on_start`, even after a heal, exactly like the
            // simulator's crash-before-start + `revive` ("resumes inert,
            // rejoins when the protocol next contacts it").
            if faults.is_down() {
                self.started = true;
                while matches!(
                    self.timers.peek(),
                    Some(Reverse((at, _, _))) if *at <= self.now()
                ) {
                    self.timers.pop();
                }
                while self.transport.try_recv().is_some() {}
                std::thread::sleep(Duration::from_millis(2));
                continue;
            }
            if !self.started {
                self.started = true;
                let node = self.transport.node();
                let ctx = Context::external(node, self.now());
                let ctx = self.dispatch(ctx, |actor, ctx| actor.on_start(ctx));
                self.apply(ctx);
            }
            // Fire every due timer, in deadline order.
            loop {
                let due = matches!(
                    self.timers.peek(),
                    Some(Reverse((at, _, _))) if *at <= self.now()
                );
                if !due {
                    break;
                }
                let Reverse((at, _, id)) = self.timers.pop().expect("peeked a due timer");
                self.stats.timers_fired += 1;
                if let Some(obs) = &self.obs {
                    obs.timer_lag_ns.record(self.now().saturating_sub(at));
                }
                let node = self.transport.node();
                let ctx = Context::external(node, self.now());
                let ctx = self.dispatch(ctx, |actor, ctx| actor.on_timer(ctx, id));
                self.apply(ctx);
            }
            // Wait for the next message, but no longer than the next timer
            // deadline or the run deadline.
            let now = self.now();
            let until_timer = self
                .timers
                .peek()
                .map(|Reverse((at, _, _))| Duration::from_nanos(at.saturating_sub(now)))
                .unwrap_or(Duration::from_millis(50));
            let until_deadline = deadline.saturating_duration_since(Instant::now());
            let wait = until_timer
                .min(until_deadline)
                .min(Duration::from_millis(50));
            if let Some(Incoming { from, msg }) = self.transport.recv_timeout(wait) {
                // Drain whatever else is already queued into the same
                // handler turn (bounded, so a flood cannot starve timers):
                // actors that batch same-view signature verification get
                // their batch from here, and per-message actors see the
                // identical per-message callbacks via the trait default.
                let mut batch = vec![(from, msg)];
                while batch.len() < MAX_DELIVERY_BATCH {
                    match self.transport.try_recv() {
                        Some(Incoming { from, msg }) => batch.push((from, msg)),
                        None => break,
                    }
                }
                self.stats.msgs_delivered += batch.len() as u64;
                let node = self.transport.node();
                let ctx = Context::external(node, self.now());
                let ctx = self.dispatch(ctx, |actor, ctx| actor.on_messages(ctx, batch));
                self.apply(ctx);
            }
        }
    }

    /// Tears down the transport and returns the actor plus final counters.
    pub fn finish(mut self) -> (A, RuntimeStats, crate::transport::TransportSnapshot) {
        let transport = self.transport.snapshot();
        self.transport.shutdown();
        (self.actor, self.stats, transport)
    }

    fn dispatch<F>(&mut self, mut ctx: Context<A::Msg>, f: F) -> Context<A::Msg>
    where
        F: FnOnce(&mut A, &mut Context<A::Msg>),
    {
        let start = Instant::now();
        f(&mut self.actor, &mut ctx);
        let elapsed = start.elapsed().as_nanos() as Time;
        self.stats.busy += elapsed;
        if let Some(obs) = &self.obs {
            obs.handler_ns.record(elapsed);
        }
        ctx
    }

    /// Applies drained context effects: burn charged CPU, ship sends,
    /// schedule timers (relative to the post-charge instant, matching the
    /// simulator's `handler_start + cpu + delay`).
    fn apply(&mut self, ctx: Context<A::Msg>) {
        let effects = ctx.into_effects();
        self.stats.cpu_charged += effects.cpu;
        let spend = match self.cpu_mode {
            CpuMode::Real => effects.cpu,
            CpuMode::Scaled(k) => (effects.cpu as f64 * k) as Time,
            CpuMode::Off => 0,
        };
        if spend > 0 {
            busy_spend(Duration::from_nanos(spend));
            self.stats.busy += spend;
        }
        for (to, msg, _modeled_bytes) in effects.outbox {
            self.transport.send(to, &msg);
        }
        let now = self.now();
        for (delay, id) in effects.timers {
            self.timer_seq += 1;
            self.timers.push(Reverse((now + delay, self.timer_seq, id)));
        }
    }
}

/// Mirrors event-loop counters into `registry` under the `runtime.`
/// prefix (idempotent: values are stored, not added). Pass per-node
/// *totals* — a restart-capable harness folds incarnations first.
pub fn export_runtime_stats(stats: &RuntimeStats, registry: &iniva_obs::Registry) {
    registry
        .counter("runtime.cpu_charged_ns")
        .store(stats.cpu_charged);
    registry.counter("runtime.busy_ns").store(stats.busy);
    registry
        .counter("runtime.msgs_delivered")
        .store(stats.msgs_delivered);
    registry
        .counter("runtime.timers_fired")
        .store(stats.timers_fired);
}

/// Spends `d` of real time on this thread. Sleeps for the bulk and spins
/// for the sub-millisecond tail, since `thread::sleep` alone overshoots
/// short charges by scheduler quanta.
fn busy_spend(d: Duration) {
    let start = Instant::now();
    if d > Duration::from_millis(2) {
        std::thread::sleep(d - Duration::from_millis(1));
    }
    while start.elapsed() < d {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iniva_net::NodeId;
    use std::net::{IpAddr, Ipv4Addr, SocketAddr};

    fn loopback(port: u16) -> SocketAddr {
        SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), port)
    }

    /// A tiny codec-capable message for transport-level tests.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub(crate) struct Num(pub u64);

    impl iniva_net::wire::WireEncode for Num {
        fn encode(&self, enc: &mut iniva_net::wire::Encoder) {
            enc.put_u64(self.0);
        }
    }

    impl iniva_net::wire::WireDecode for Num {
        fn decode(
            dec: &mut iniva_net::wire::Decoder,
        ) -> Result<Self, iniva_net::wire::DecodeError> {
            Ok(Num(dec.get_u64()?))
        }
    }

    /// Echoes every received number back, decremented, until zero.
    struct Countdown {
        peer: NodeId,
        initiator: bool,
        start: u64,
        done: bool,
    }

    impl Actor for Countdown {
        type Msg = Num;

        fn on_start(&mut self, ctx: &mut Context<Num>) {
            if self.initiator {
                ctx.send(self.peer, Num(self.start), 8);
            }
        }

        fn on_message(&mut self, ctx: &mut Context<Num>, from: NodeId, msg: Num) {
            if msg.0 == 0 {
                self.done = true;
            } else {
                ctx.send(from, Num(msg.0 - 1), 8);
            }
        }
    }

    #[test]
    fn two_runtimes_ping_pong_over_tcp() {
        let la = std::net::TcpListener::bind(loopback(0)).unwrap();
        let lb = std::net::TcpListener::bind(loopback(0)).unwrap();
        let peers = vec![(0, la.local_addr().unwrap()), (1, lb.local_addr().unwrap())];
        let ta = Transport::<Num>::start(0, la, &peers).unwrap();
        let tb = Transport::<Num>::start(1, lb, &peers).unwrap();

        let a = Countdown {
            peer: 1,
            initiator: true,
            start: 20,
            done: false,
        };
        let b = Countdown {
            peer: 0,
            initiator: false,
            start: 0,
            done: false,
        };
        let mut ra = Runtime::new(a, ta, CpuMode::Off);
        let mut rb = Runtime::new(b, tb, CpuMode::Off);
        let ha = std::thread::spawn(move || {
            ra.run_for(Duration::from_millis(1500));
            ra.finish().0
        });
        let hb = std::thread::spawn(move || {
            rb.run_for(Duration::from_millis(1500));
            rb.finish().0
        });
        let a = ha.join().unwrap();
        let b = hb.join().unwrap();
        assert!(a.done || b.done, "countdown should have completed");
    }

    #[test]
    fn timers_fire_in_order_and_on_time() {
        struct TimerActor {
            fired: Vec<(u64, Time)>,
        }
        impl Actor for TimerActor {
            type Msg = Num;
            fn on_start(&mut self, ctx: &mut Context<Num>) {
                ctx.set_timer(60 * iniva_net::MILLIS, 2);
                ctx.set_timer(20 * iniva_net::MILLIS, 1);
            }
            fn on_message(&mut self, _: &mut Context<Num>, _: NodeId, _: Num) {}
            fn on_timer(&mut self, ctx: &mut Context<Num>, id: u64) {
                self.fired.push((id, ctx.now()));
            }
        }
        let t = Transport::<Num>::bind(0, loopback(0), &[]).unwrap();
        let mut rt = Runtime::new(TimerActor { fired: vec![] }, t, CpuMode::Real);
        rt.run_for(Duration::from_millis(200));
        let fired = &rt.actor().fired;
        assert_eq!(fired.len(), 2, "both timers fire");
        assert_eq!(fired[0].0, 1);
        assert_eq!(fired[1].0, 2);
        assert!(fired[0].1 >= 20 * iniva_net::MILLIS);
        assert!(fired[1].1 >= 60 * iniva_net::MILLIS);
        assert_eq!(rt.stats().timers_fired, 2);
    }

    #[test]
    fn cpu_charges_become_real_elapsed_time() {
        struct Burner;
        impl Actor for Burner {
            type Msg = Num;
            fn on_start(&mut self, ctx: &mut Context<Num>) {
                ctx.charge_cpu(30 * iniva_net::MILLIS);
            }
            fn on_message(&mut self, _: &mut Context<Num>, _: NodeId, _: Num) {}
        }
        let t = Transport::<Num>::bind(0, loopback(0), &[]).unwrap();
        let mut rt = Runtime::new(Burner, t, CpuMode::Real);
        let wall = Instant::now();
        rt.run_for(Duration::from_millis(1));
        assert!(
            wall.elapsed() >= Duration::from_millis(30),
            "a 30 ms charge must cost 30 ms of real time"
        );
        assert_eq!(rt.stats().cpu_charged, 30 * iniva_net::MILLIS);

        let t = Transport::<Num>::bind(0, loopback(0), &[]).unwrap();
        let mut rt = Runtime::new(Burner, t, CpuMode::Off);
        let wall = Instant::now();
        rt.run_for(Duration::from_millis(1));
        assert!(
            wall.elapsed() < Duration::from_millis(25),
            "Off skips the spend"
        );
    }
}
