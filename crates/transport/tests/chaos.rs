//! Chaos tests: seeded crash/partition/heal scenarios replayed against the
//! live TCP cluster — and, from the *same* [`FaultPlan`], against the
//! discrete-event simulator — asserting safety, recovery and backend
//! agreement.

use iniva::protocol::{InivaConfig, InivaReplica};
use iniva_crypto::sim_scheme::SimScheme;
use iniva_net::faults::FaultPlan;
use iniva_net::{NetConfig, NodeId, Simulation, Time, MILLIS, SECS};
use iniva_transport::cluster::{chaos_demo_scenario, ClusterBuilder, ClusterRun};
use iniva_transport::TransportOptions;
use std::path::PathBuf;
use std::time::Duration;

const SEED: u64 = 0xC4A05;

fn run_plan_on_sim(
    cfg: &InivaConfig,
    plan: &FaultPlan,
    until: Time,
) -> Simulation<InivaReplica<SimScheme>> {
    let scheme = std::sync::Arc::new(SimScheme::new(cfg.n, b"live-cluster"));
    let replicas = (0..cfg.n as u32)
        .map(|id| InivaReplica::new(id, cfg.clone(), std::sync::Arc::clone(&scheme)))
        .collect();
    let mut sim = Simulation::new(
        NetConfig {
            seed: SEED,
            ..NetConfig::default()
        },
        replicas,
    );
    plan.run_on_sim(&mut sim, until);
    sim
}

/// The acceptance criterion test: one seeded `FaultPlan` drives a live
/// 7-replica cluster through crash → partition → heal, and
/// (a) all surviving replicas agree on the committed prefix,
/// (b) the cluster resumes committing after the heal,
/// (c) the same plan replayed on the simulator commits the same number
///     of blocks within ±10%.
#[test]
fn crash_partition_heal_matches_simulator_within_10pct() {
    // The scenario definition lives in `chaos_demo_scenario`, shared with
    // the `live_cluster --chaos` demo: crash a seeded victim at t=0, cut
    // the survivors below quorum at 2 s, heal at 3.5 s.
    let (cfg, plan, victim, others) = chaos_demo_scenario(SEED);
    let others = &others[..];
    let duration = 6u64; // seconds
    let heal_margin = 4 * SECS; // commits at/after this prove recovery

    let sim = run_plan_on_sim(&cfg, &plan, duration * SECS);
    let sim_blocks = sim.actor(others[0]).chain.metrics.committed_blocks;
    assert!(
        sim.actor(others[0])
            .chain
            .metrics
            .commits_since(heal_margin)
            > 0,
        "simulator itself must resume after the heal"
    );

    // Real clocks make the live half timing-sensitive; retry once before
    // declaring the backends divergent.
    let mut last = String::new();
    for attempt in 0..2 {
        let run = ClusterBuilder::new(&cfg, Duration::from_secs(duration))
            .faults(&plan)
            .spawn()
            .expect("cluster starts");
        match check_acceptance(&run, victim, others, heal_margin, sim_blocks) {
            Ok(()) => return,
            Err(e) if attempt == 0 => last = e,
            Err(e) => panic!("{e} (first attempt: {last})"),
        }
    }
}

fn check_acceptance(
    run: &ClusterRun,
    victim: NodeId,
    others: &[NodeId],
    heal_margin: Time,
    sim_blocks: u64,
) -> Result<(), String> {
    // (a) Safety: no two replicas (survivors *or* the crashed one) may
    // disagree anywhere in their committed logs, and the surviving group
    // must share a non-empty prefix.
    let survivors: Vec<usize> = others.iter().map(|&id| id as usize).collect();
    let agreed = run.agreed_prefix_height_of(&survivors)?;
    if agreed == 0 {
        return Err("survivors committed nothing".into());
    }
    let crashed_height = run.nodes[victim as usize].replica.chain.committed_height();
    if crashed_height != 0 {
        return Err(format!("crashed-at-0 victim committed {crashed_height}"));
    }

    // (b) Recovery: commits landed after the heal on every survivor.
    for &id in others {
        let m = &run.nodes[id as usize].replica.chain.metrics;
        if m.commits_since(heal_margin) == 0 {
            return Err(format!("replica {id} never committed after the heal"));
        }
    }

    // Fault injection actually exercised the wire: injected drops were
    // counted somewhere (send path, lanes or reader path).
    let faults_dropped: u64 = run.nodes.iter().map(|n| n.transport.faults_dropped).sum();
    if faults_dropped == 0 {
        return Err("no frames were dropped by fault injection".into());
    }

    // (c) Backend agreement on committed blocks, ±10%.
    let live_blocks = run.nodes[others[0] as usize]
        .replica
        .chain
        .metrics
        .committed_blocks;
    let delta = (live_blocks as f64 - sim_blocks as f64).abs() / sim_blocks as f64;
    if delta > 0.10 {
        return Err(format!(
            "live committed {live_blocks} blocks vs simulated {sim_blocks} ({:.1}% apart)",
            delta * 100.0
        ));
    }
    Ok(())
}

/// Kill → heal of a single replica: the healed node must rejoin under a
/// fresh incarnation epoch — its restarted sequence numbers must not be
/// falsely deduped by the peers — and resume committing.
#[test]
fn killed_replica_heals_and_rejoins() {
    let (cfg, _, _, _) = chaos_demo_scenario(SEED);
    let victim = FaultPlan::shuffled_members(cfg.n, SEED + 1)[0];
    let plan = FaultPlan::new()
        .crash(SECS, victim)
        .restart(2_500 * MILLIS, victim);
    let run = ClusterBuilder::new(&cfg, Duration::from_secs(5))
        .faults(&plan)
        .spawn()
        .expect("cluster starts");

    run.agreed_prefix_height().expect("no divergence anywhere");
    let m = &run.nodes[victim as usize].replica.chain.metrics;
    assert!(
        m.commits_since(3 * SECS) > 0,
        "healed replica must resume committing (committed {} total)",
        m.committed_blocks
    );
    // Its sends after the heal carried the bumped epoch: had they been
    // falsely deduped, the cluster could never have re-included it. The
    // victim's own counters show the kill actually dropped traffic.
    assert!(run.nodes[victim as usize].transport.faults_dropped > 0);
}

/// Scratch directory for WAL chaos runs. `CHAOS_ARTIFACT_DIR` (set by CI
/// to a path it uploads on failure) overrides the system temp dir, so a
/// failing run leaves its replica logs behind for triage.
fn wal_scratch(tag: &str) -> PathBuf {
    let base = std::env::var_os("CHAOS_ARTIFACT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(std::env::temp_dir);
    let dir = base.join(format!("iniva-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create WAL scratch dir");
    dir
}

/// The crash-recovery acceptance test: a replica is process-killed
/// mid-run (its entire runtime and sockets torn down), later restarted
/// from its TOML-equivalent peer config plus its write-ahead log, and
/// must then
/// (a) recover its committed prefix from disk,
/// (b) fetch the blocks committed while it was dead via
///     `StateRequest`/`StateResponse`,
/// (c) resume voting/committing with the survivors,
/// all without any replica anywhere disagreeing on a committed height.
#[test]
fn killed_process_restarts_from_wal_and_catches_up() {
    let (cfg, _, _, _) = chaos_demo_scenario(SEED);
    let victim = FaultPlan::shuffled_members(cfg.n, SEED + 2)[0];
    let kill_at = 1_500 * MILLIS;
    let restart_at = 3 * SECS;
    let resumed_margin = 4 * SECS; // commits at/after this prove (c)
    let plan = FaultPlan::new()
        .crash(kill_at, victim)
        .restart_from_disk(restart_at, victim);
    // Small lanes: peers shed the bulk of the backlog addressed to the
    // dead replica (as a production transport would), so the gap must
    // close through `StateRequest`/`StateResponse` rather than
    // lane-backlog replay; the frames lost in the killed socket's buffers
    // guarantee a gap even on machines where the dead window is short.
    let options = TransportOptions {
        lane_capacity: 8,
        ..TransportOptions::default()
    };

    // Real clocks make this timing-sensitive; retry once before failing.
    let mut last = String::new();
    for attempt in 0..2 {
        let wal_root = wal_scratch(&format!("kill-restart-{attempt}"));
        let run = ClusterBuilder::new(&cfg, Duration::from_secs(6))
            .faults(&plan)
            .wal(&wal_root)
            .transport(options)
            .spawn()
            .expect("cluster starts");
        match check_recovery(&run, victim, resumed_margin) {
            Ok(()) => {
                let _ = std::fs::remove_dir_all(&wal_root);
                return;
            }
            Err(e) if attempt == 0 => last = e,
            Err(e) => panic!("{e} (first attempt: {last}; WAL logs kept in {wal_root:?})"),
        }
    }
}

fn check_recovery(run: &ClusterRun, victim: NodeId, resumed_margin: Time) -> Result<(), String> {
    // Safety first: nobody — victim included — may disagree anywhere.
    let survivors: Vec<usize> = (0..run.nodes.len())
        .filter(|&i| i != victim as usize)
        .collect();
    let agreed = run.agreed_prefix_height_of(&survivors)?;
    if agreed == 0 {
        return Err("survivors committed nothing".into());
    }
    run.agreed_prefix_height()?;

    let m = &run.nodes[victim as usize].replica.chain.metrics;
    // (a) The restarted incarnation rehydrated a non-empty prefix from
    // its WAL: the pre-kill commits actually reached disk and came back.
    if m.recovered_blocks == 0 {
        return Err("restarted replica recovered nothing from its WAL".into());
    }
    // (b) The gap committed while it was dead arrived via state transfer.
    if m.state_transfer_blocks == 0 {
        return Err("restarted replica never adopted state-transfer blocks".into());
    }
    // (c) It resumed genuine protocol participation: commits through the
    // three-chain rule (state-transfer adoptions are counted separately)
    // landing well after the restart.
    if m.commits_since(resumed_margin) == 0 {
        return Err(format!(
            "restarted replica never committed after recovery \
             (recovered {} from disk, {} via state transfer)",
            m.recovered_blocks, m.state_transfer_blocks
        ));
    }
    // And it is actually caught up, not trailing by a growing gap.
    let victim_height = run.nodes[victim as usize].replica.chain.committed_height();
    if victim_height + 20 < agreed {
        return Err(format!(
            "restarted replica is stuck at height {victim_height} vs the survivors' {agreed}"
        ));
    }
    Ok(())
}
