//! Live-cluster integration tests: real Iniva replicas over real TCP.

use iniva::protocol::InivaConfig;
use iniva_crypto::bls::BlsScheme;
use iniva_crypto::sim_scheme::SimScheme;
use iniva_net::wire::{DecodeError, Decoder, Encoder, WireDecode, WireEncode};
use iniva_net::{Actor, Context, NodeId};
use iniva_transport::cluster::ClusterBuilder;
use iniva_transport::{CpuMode, LinkFaults, NodeFaults, Runtime, Transport, TransportOptions};
use std::net::{TcpListener, ToSocketAddrs};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A 4-replica Iniva cluster on loopback TCP must commit at least 10
/// blocks and agree on the committed prefix — consensus safety and
/// liveness, demonstrated over sockets instead of the simulator.
#[test]
fn four_replica_cluster_commits_and_agrees() {
    let mut cfg = InivaConfig::for_tests(4, 1);
    cfg.request_rate = 20_000;
    let mut run = None;
    // Real clocks make the run timing-sensitive; retry once on a slow CI
    // machine before declaring the liveness property broken.
    for attempt in 0..2 {
        let r = ClusterBuilder::new(&cfg, Duration::from_secs(2))
            .scheme::<SimScheme>()
            .spawn()
            .expect("cluster starts");
        let committed = r
            .nodes
            .iter()
            .map(|n| n.replica.chain.committed_height())
            .min()
            .unwrap();
        if committed >= 10 || attempt == 1 {
            run = Some(r);
            break;
        }
    }
    let run = run.unwrap();

    // Liveness: ≥ 10 blocks committed by every replica.
    for (id, node) in run.nodes.iter().enumerate() {
        assert!(
            node.replica.chain.committed_height() >= 10,
            "replica {id} committed only {} blocks",
            node.replica.chain.committed_height()
        );
    }

    // Safety: all replicas agree on the committed prefix.
    let agreed = run.agreed_prefix_height().expect("no divergence");
    assert!(agreed >= 10);

    // The run exercised the actual sockets: every replica sent and
    // received frames.
    for node in &run.nodes {
        assert!(node.transport.msgs_sent > 0);
        assert!(node.transport.msgs_received > 0);
        assert!(node.runtime.msgs_delivered > 0);
    }

    // Requests were committed and latency accounted, so the perf metrics
    // downstream of this harness are non-degenerate.
    let m = &run.nodes[0].replica.chain.metrics;
    assert!(m.committed_reqs > 0);
    assert!(m.mean_latency() > 0.0);
}

/// Two clusters in sequence must not interfere (ports are ephemeral and
/// sockets are torn down by `finish`).
#[test]
fn clusters_tear_down_cleanly() {
    let cfg = InivaConfig::for_tests(4, 1);
    for _ in 0..2 {
        let run = ClusterBuilder::new(&cfg, Duration::from_millis(400))
            .cpu(CpuMode::Scaled(0.2))
            .spawn()
            .expect("cluster starts");
        assert!(run.agreed_prefix_height().is_ok());
    }
}

/// The acceptance pin for real crypto over the wire: a 4-replica cluster
/// running **`BlsScheme`** — genuine BLS12-381 pairing verification, with
/// 48-byte compressed G1 aggregates as the actual frame bytes — must
/// commit blocks over loopback TCP and reach cluster-wide agreement on
/// the committed prefix. Pairing verification costs ~50 ms per aggregate,
/// so timers are widened (`tune_for_real_crypto`) and the liveness floor
/// is lower than the sim-scheme test's.
#[test]
fn four_replica_bls_cluster_commits_and_agrees() {
    let mut cfg = InivaConfig::for_tests(4, 1);
    cfg.request_rate = 200;
    cfg.tune_for_real_crypto();
    let mut run = None;
    // Real pairing on shared CI cores is timing-sensitive; retry once.
    for attempt in 0..2 {
        let r = ClusterBuilder::new(&cfg, Duration::from_secs(12))
            .scheme::<BlsScheme>()
            .spawn()
            .expect("cluster starts");
        let committed = r
            .nodes
            .iter()
            .map(|n| n.replica.chain.committed_height())
            .min()
            .unwrap();
        if committed >= 3 || attempt == 1 {
            run = Some(r);
            break;
        }
    }
    let run = run.unwrap();

    // Liveness: every replica committed blocks certified by real
    // aggregate signatures.
    for (id, node) in run.nodes.iter().enumerate() {
        assert!(
            node.replica.chain.committed_height() >= 3,
            "replica {id} committed only {} blocks under BLS",
            node.replica.chain.committed_height()
        );
    }

    // Safety: cluster-wide agreement on the committed prefix.
    let agreed = run.agreed_prefix_height().expect("no divergence");
    assert!(agreed >= 3);

    // The committed chain is backed by *verifiable* BLS certificates: the
    // retained QCs re-verify against a freshly derived committee keyring
    // (what any third party auditing the chain would do).
    let auditor = iniva_crypto::bls::BlsScheme::new(4, iniva_transport::cluster::CLUSTER_SEED);
    let node = &run.nodes[0].replica;
    let mut audited = 0;
    for height in 1..=node.chain.committed_height() {
        if let Some((block, qc)) = node.chain.committed_entry(height) {
            use iniva_crypto::multisig::VoteScheme;
            let msg = iniva_consensus::types::vote_message(&block.hash(), qc.view);
            assert!(
                auditor.verify(&msg, &qc.agg),
                "height {height}: committed QC fails BLS verification"
            );
            audited += 1;
        }
    }
    assert!(audited > 0, "no committed QC was retained for audit");

    // Real frames crossed real sockets.
    for node in &run.nodes {
        assert!(node.transport.msgs_sent > 0);
        assert!(node.transport.msgs_received > 0);
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Num(u64);

impl WireEncode for Num {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.0);
    }
}

impl WireDecode for Num {
    fn decode(dec: &mut Decoder) -> Result<Self, DecodeError> {
        Ok(Num(dec.get_u64()?))
    }
}

/// Records every received number.
struct Sink {
    got: Vec<u64>,
}

impl Actor for Sink {
    type Msg = Num;
    fn on_message(&mut self, _ctx: &mut Context<Num>, _from: NodeId, msg: Num) {
        self.got.push(msg.0);
    }
}

fn wait_for(rt: &mut Runtime<Sink>, count: usize, limit: Duration) {
    let deadline = Instant::now() + limit;
    while rt.actor().got.len() < count && Instant::now() < deadline {
        rt.run_for(Duration::from_millis(50));
    }
}

/// A frame replayed on a *new* connection (what a reconnecting lane does
/// when it cannot know whether its last write landed) must be dropped by
/// the transport-wide duplicate filter, not delivered twice.
#[test]
fn duplicate_frames_across_reconnects_are_dropped() {
    use iniva_net::wire::Codec;
    use iniva_transport::frame;
    use std::net::TcpStream;

    let loopback = "127.0.0.1:0".to_socket_addrs().unwrap().next().unwrap();
    let listener = TcpListener::bind(loopback).unwrap();
    let addr = listener.local_addr().unwrap();
    let tb = Transport::<Num>::start(1, listener, &[]).unwrap();
    let mut rb = Runtime::new(Sink { got: vec![] }, tb, CpuMode::Off);

    // First connection: frame seq=1.
    let mut c1 = TcpStream::connect(addr).unwrap();
    frame::write_handshake(&mut c1, 5, 0).unwrap();
    frame::write_frame(&mut c1, 1, &Num(41).to_frame()).unwrap();
    wait_for(&mut rb, 1, Duration::from_secs(5));
    drop(c1);

    // Second connection, same sender id: replay seq=1, then send seq=2.
    let mut c2 = TcpStream::connect(addr).unwrap();
    frame::write_handshake(&mut c2, 5, 0).unwrap();
    frame::write_frame(&mut c2, 1, &Num(41).to_frame()).unwrap();
    frame::write_frame(&mut c2, 2, &Num(42).to_frame()).unwrap();
    wait_for(&mut rb, 2, Duration::from_secs(5));

    assert_eq!(
        rb.actor().got,
        vec![41, 42],
        "the replay must not re-deliver"
    );
    let stats = rb.transport_stats().snapshot();
    assert_eq!(stats.dups_dropped, 1);
}

/// Killing the receiving peer's socket mid-run must not wedge the sender:
/// when the peer comes back on the same address, the outbound lane
/// reconnects and delivery resumes.
#[test]
fn outbound_lane_reconnects_after_peer_restart() {
    let loopback = "127.0.0.1:0".to_socket_addrs().unwrap().next().unwrap();
    // Receiver (node 1) on an ephemeral port that the restart will reuse.
    let listener = TcpListener::bind(loopback).unwrap();
    let b_addr = listener.local_addr().unwrap();
    let tb = Transport::<Num>::start(1, listener, &[]).unwrap();
    let mut rb = Runtime::new(Sink { got: vec![] }, tb, CpuMode::Off);

    // Sender (node 0) drives its lane directly — no runtime needed.
    let mut ta = Transport::<Num>::bind(0, loopback, &[(1, b_addr)]).unwrap();

    // Phase 1: normal delivery.
    for i in 0..5 {
        ta.send(1, &Num(i));
    }
    wait_for(&mut rb, 5, Duration::from_secs(5));
    assert_eq!(rb.actor().got, vec![0, 1, 2, 3, 4]);

    // Phase 2: kill the receiver's sockets mid-run (listener and accepted
    // connections all close) …
    let (_, _, snapshot_b) = rb.finish();
    assert_eq!(snapshot_b.msgs_received, 5);
    // Give the FIN a moment to reach the sender, so its next write probes
    // the connection as dead instead of racing the close.
    std::thread::sleep(Duration::from_millis(100));
    // … keep sending while the peer is down (frames queue on the lane) …
    for i in 5..10 {
        ta.send(1, &Num(i));
    }
    // … and restart the peer on the same address.
    let listener = {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match TcpListener::bind(b_addr) {
                Ok(l) => break l,
                Err(e) => {
                    assert!(Instant::now() < deadline, "rebind never succeeded: {e}");
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }
    };
    let tb2 = Transport::<Num>::start(1, listener, &[]).unwrap();
    let mut rb2 = Runtime::new(Sink { got: vec![] }, tb2, CpuMode::Off);
    wait_for(&mut rb2, 5, Duration::from_secs(10));
    assert_eq!(
        rb2.actor().got,
        vec![5, 6, 7, 8, 9],
        "delivery must resume after the peer restarts"
    );
    // The redial after the restart is a reconnect; the initial dial is
    // not (a healthy run reports zero, see
    // `fault_free_run_reports_zero_reconnects`).
    assert!(ta.stats().snapshot().reconnects >= 1);
}

/// A healthy run must report **zero** reconnects: the initial dial of
/// each lane is the lane coming up, not a recovery. (A previous version
/// counted every first dial, so a fault-free 4-replica run reported 12
/// phantom reconnects and the counter was useless as a health signal.)
#[test]
fn fault_free_run_reports_zero_reconnects() {
    let mut cfg = InivaConfig::for_tests(4, 1);
    cfg.request_rate = 20_000;
    let run = ClusterBuilder::new(&cfg, Duration::from_secs(2))
        .scheme::<SimScheme>()
        .spawn()
        .expect("cluster starts");
    for (id, node) in run.nodes.iter().enumerate() {
        assert!(node.transport.msgs_sent > 0, "replica {id} sent nothing");
        assert_eq!(
            node.transport.reconnects, 0,
            "replica {id} reported phantom reconnects in a fault-free run"
        );
    }
}

/// The push-on-commit client path end to end, on whichever backend the
/// environment selects (CI runs both): a real TCP client sends `Follow`
/// then `Submit`, and must receive the `SubmitAck { Accepted }` and
/// then an unsolicited `Committed` push carrying its nonce once the
/// request lands in a committed block — without ever sending `Query`.
#[test]
fn followed_client_receives_commit_push() {
    use iniva_ingress::{read_frame, write_frame, ClientMsg, IngressOptions, SubmitStatus};
    use std::io::ErrorKind;
    use std::net::TcpStream;

    let cfg = InivaConfig::for_tests(4, 1);
    let handle = ClusterBuilder::new(&cfg, Duration::from_secs(4))
        .scheme::<SimScheme>()
        .ingress(IngressOptions::default())
        .launch()
        .expect("cluster launches");
    let addr = handle.ingress().expect("ingress tier").client_addrs[0];

    let mut stream = TcpStream::connect(addr).expect("client connects");
    stream
        .set_read_timeout(Some(Duration::from_millis(200)))
        .unwrap();
    write_frame(&mut stream, &ClientMsg::Follow).expect("send Follow");
    write_frame(
        &mut stream,
        &ClientMsg::Submit {
            fee: 7,
            nonce: 42,
            payload: bytes::Bytes::copy_from_slice(b"push me"),
        },
    )
    .expect("send Submit");

    let deadline = Instant::now() + Duration::from_secs(4);
    let mut accepted = false;
    let mut pushed_height = None;
    while Instant::now() < deadline && pushed_height.is_none() {
        match read_frame(&mut stream) {
            Ok(Some(ClientMsg::SubmitAck { nonce, status })) => {
                assert_eq!(nonce, 42, "ack echoes the submitted nonce");
                assert_eq!(status, SubmitStatus::Accepted, "submit admitted");
                accepted = true;
            }
            Ok(Some(ClientMsg::Committed { nonce, height })) => {
                assert_eq!(nonce, 42, "push names the committed nonce");
                pushed_height = Some(height);
            }
            Ok(Some(other)) => panic!("unexpected server frame {other:?}"),
            Ok(None) => panic!("server closed the connection before the push"),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(e) => panic!("client read failed: {e}"),
        }
    }
    assert!(accepted, "no SubmitAck arrived");
    let height = pushed_height.expect("no Committed push arrived within the run");
    assert!(height > 0, "pushed height must name a real block");

    drop(stream);
    let run = handle.join().expect("cluster shuts down cleanly");
    assert!(run.agreed_prefix_height().expect("prefixes agree") >= height);
}

/// An outbound lane towards an unreachable peer must not grow without
/// bound: past `lane_capacity` the oldest frames are shed (and counted),
/// and `queue_depth` reports the backlog.
#[test]
fn bounded_lane_sheds_oldest_while_peer_unreachable() {
    let loopback = "127.0.0.1:0".to_socket_addrs().unwrap().next().unwrap();
    // A peer address nothing listens on: bind, learn the port, drop.
    let dead_addr = {
        let l = TcpListener::bind(loopback).unwrap();
        l.local_addr().unwrap()
    };
    let listener = TcpListener::bind(loopback).unwrap();
    let mut ta = Transport::<Num>::start_with(
        0,
        listener,
        &[(1, dead_addr)],
        TransportOptions {
            lane_capacity: 8,
            ..TransportOptions::default()
        },
        Arc::new(NodeFaults::new()),
        Arc::new(LinkFaults::new()),
    )
    .unwrap();

    for i in 0..100 {
        ta.send(1, &Num(i));
    }
    let snap = ta.snapshot();
    assert_eq!(snap.msgs_sent, 100);
    assert!(
        snap.queue_depth <= 8,
        "queue depth {} exceeds the configured lane capacity",
        snap.queue_depth
    );
    // ≤ 8 queued plus at most one frame held by the lane thread mid-retry:
    // everything else was evicted oldest-first.
    assert!(
        snap.lane_evicted >= 91,
        "only {} evictions recorded",
        snap.lane_evicted
    );
}

/// Rebuilding a node's transport (what a restart-capable harness does on
/// every revive) must not lose the stats the dying incarnation counted:
/// both incarnations write into one shared [`TransportStats`], so the
/// final snapshot is the node's cumulative total — lane evictions from
/// before the rebuild included.
#[test]
fn rebuilt_transport_keeps_cumulative_stats() {
    use iniva_transport::TransportStats;

    let loopback = "127.0.0.1:0".to_socket_addrs().unwrap().next().unwrap();
    // A peer address nothing listens on, so every send backs up the lane.
    let dead_addr = {
        let l = TcpListener::bind(loopback).unwrap();
        l.local_addr().unwrap()
    };
    let shared = Arc::new(TransportStats::default());
    let start = |stats: &Arc<TransportStats>| {
        Transport::<Num>::start_with_stats(
            0,
            TcpListener::bind(loopback).unwrap(),
            &[(1, dead_addr)],
            TransportOptions {
                lane_capacity: 8,
                ..TransportOptions::default()
            },
            Arc::new(NodeFaults::new()),
            Arc::new(LinkFaults::new()),
            Arc::clone(stats),
        )
        .unwrap()
    };

    // Incarnation 1 floods the unreachable peer and dies.
    let mut t1 = start(&shared);
    for i in 0..50 {
        t1.send(1, &Num(i));
    }
    let before = shared.snapshot();
    assert_eq!(before.msgs_sent, 50);
    assert!(before.lane_evicted >= 41, "first incarnation must evict");
    t1.shutdown();
    drop(t1);

    // Incarnation 2 starts from the same stats block; its traffic lands
    // on top of the first life's counters instead of a fresh zero.
    let mut t2 = start(&shared);
    for i in 0..50 {
        t2.send(1, &Num(i));
    }
    let after = shared.snapshot();
    assert_eq!(after.msgs_sent, 100, "counters span both incarnations");
    assert!(
        after.lane_evicted >= before.lane_evicted + 41,
        "evictions counted before the rebuild ({}) must survive it ({})",
        before.lane_evicted,
        after.lane_evicted
    );
    t2.shutdown();
}
