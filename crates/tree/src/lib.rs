//! # iniva-tree
//!
//! Deterministic two-level aggregation tree overlays for Iniva
//! (paper Section V-A).
//!
//! Every view, the committee is arranged into a tree of height 2:
//!
//! ```text
//!                 root  (position 0 — the next leader L_{v+1})
//!           ┌──────┼──────┐
//!        internal … internal   (positions 1..=i)
//!        ┌──┼──┐        ┌──┼──┐
//!      leaf … leaf    leaf … leaf  (positions i+1..n, round-robin)
//! ```
//!
//! Positions are shuffled onto committee members with the deterministic
//! per-view shuffle from [`iniva_crypto::shuffle`], so every correct process
//! derives the identical tree from the block's view number (the paper's
//! `makeTree(B)`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use iniva_crypto::shuffle::Assignment;
use std::fmt;

/// Errors from tree construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// Committee too small for the requested number of internal nodes.
    TooSmall {
        /// Requested committee size.
        n: u32,
        /// Requested internal node count.
        internal: u32,
    },
    /// Zero internal nodes requested for a committee that has leaves.
    NoInternal,
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::TooSmall { n, internal } => {
                write!(
                    f,
                    "committee of {n} too small for {internal} internal nodes"
                )
            }
            TreeError::NoInternal => write!(f, "a tree with leaves needs internal nodes"),
        }
    }
}

impl std::error::Error for TreeError {}

/// A process's role in the aggregation tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// Tree root — the next leader `L_{v+1}`, collects the final QC.
    Root,
    /// Internal aggregator — collects its leaf children's signatures.
    Internal,
    /// Leaf — signs and sends to its parent.
    Leaf,
}

/// The *shape* of a two-level tree: `n` positions, of which position 0 is
/// the root, positions `1..=internal` are aggregators and the remainder are
/// leaves assigned round-robin to aggregators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    n: u32,
    internal: u32,
}

impl Topology {
    /// Creates a topology with an explicit internal-node count.
    ///
    /// # Errors
    /// Returns [`TreeError`] if the committee cannot host the shape.
    pub fn new(n: u32, internal: u32) -> Result<Self, TreeError> {
        if n == 0 || n < internal + 1 {
            return Err(TreeError::TooSmall { n, internal });
        }
        if internal == 0 && n > 1 {
            return Err(TreeError::NoInternal);
        }
        Ok(Topology { n, internal })
    }

    /// Creates the paper's "complete" topology: `internal = fanout`, leaves
    /// distributed round-robin. For `n = 111, fanout = 10` this gives 1
    /// root, 10 internal and 100 leaves (10 per aggregator).
    pub fn with_fanout(n: u32, fanout: u32) -> Result<Self, TreeError> {
        Self::new(n, fanout.min(n.saturating_sub(1)))
    }

    /// Picks `internal ≈ sqrt(n - 1)`, keeping height 2 as the committee
    /// scales (paper Section VIII-C.2 increases the branching factor with
    /// configuration size).
    pub fn balanced(n: u32) -> Result<Self, TreeError> {
        if n <= 1 {
            return Self::new(n, 0);
        }
        let mut internal = (((n - 1) as f64).sqrt().round() as u32).max(1);
        internal = internal.min(n - 1);
        Self::new(n, internal)
    }

    /// Number of positions (committee size).
    pub fn len(&self) -> u32 {
        self.n
    }

    /// True for an empty committee (never constructible; kept for API
    /// completeness).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of internal (aggregator) positions.
    pub fn internal_count(&self) -> u32 {
        self.internal
    }

    /// Number of leaf positions.
    pub fn leaf_count(&self) -> u32 {
        self.n - 1 - self.internal
    }

    /// Role of a position.
    ///
    /// # Panics
    /// Panics if `pos >= n`.
    pub fn role_of(&self, pos: u32) -> Role {
        assert!(pos < self.n, "position {pos} out of range");
        if pos == 0 {
            Role::Root
        } else if pos <= self.internal {
            Role::Internal
        } else {
            Role::Leaf
        }
    }

    /// Parent position (`None` for the root).
    pub fn parent(&self, pos: u32) -> Option<u32> {
        match self.role_of(pos) {
            Role::Root => None,
            Role::Internal => Some(0),
            Role::Leaf => Some((pos - self.internal - 1) % self.internal + 1),
        }
    }

    /// Children positions of `pos` (internal children for the root, leaf
    /// children for aggregators, empty for leaves).
    pub fn children(&self, pos: u32) -> Vec<u32> {
        match self.role_of(pos) {
            Role::Root => (1..=self.internal).collect(),
            Role::Internal => {
                let first_leaf = self.internal + 1;
                (first_leaf..self.n)
                    .filter(|&leaf| (leaf - first_leaf) % self.internal + 1 == pos)
                    .collect()
            }
            Role::Leaf => Vec::new(),
        }
    }

    /// Height of a position in the tree (leaf 0, internal 1, root 2), used
    /// for the paper's aggregation-timer heuristic `2Δ · height(p)`.
    pub fn height_of(&self, pos: u32) -> u32 {
        match self.role_of(pos) {
            Role::Root => 2,
            Role::Internal => 1,
            Role::Leaf => 0,
        }
    }

    /// All positions of a role.
    pub fn positions_with_role(&self, role: Role) -> Vec<u32> {
        (0..self.n).filter(|&p| self.role_of(p) == role).collect()
    }
}

/// A per-view tree: a [`Topology`] plus the shuffled assignment of committee
/// members to positions. All queries are in terms of *member* ids, which is
/// what protocol code works with.
#[derive(Debug, Clone)]
pub struct TreeView {
    topology: Topology,
    assignment: Assignment,
    /// The view this tree was built for.
    pub view: u64,
}

impl TreeView {
    /// Builds the deterministic tree for `view` (the paper's `makeTree`).
    ///
    /// # Errors
    /// Propagates [`TreeError`] from the topology.
    pub fn build(
        n: u32,
        internal: u32,
        epoch_seed: &[u8; 32],
        view: u64,
    ) -> Result<Self, TreeError> {
        let topology = Topology::new(n, internal)?;
        let assignment = Assignment::shuffle(n as usize, epoch_seed, view);
        Ok(TreeView {
            topology,
            assignment,
            view,
        })
    }

    /// Builds a tree with an explicit (unshuffled) assignment — used in
    /// tests and attack simulations that need precise control over roles.
    ///
    /// # Panics
    /// Panics if the assignment size does not match the topology.
    pub fn with_assignment(topology: Topology, assignment: Assignment, view: u64) -> Self {
        assert_eq!(topology.len() as usize, assignment.len());
        TreeView {
            topology,
            assignment,
            view,
        }
    }

    /// The underlying shape.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Member occupying the root (the next leader `L_{v+1}`).
    pub fn root(&self) -> u32 {
        self.assignment.member_at(0)
    }

    /// Role of a member.
    pub fn role_of(&self, member: u32) -> Role {
        self.topology.role_of(self.assignment.position_of(member))
    }

    /// Parent of a member (`None` for the root).
    pub fn parent_of(&self, member: u32) -> Option<u32> {
        self.topology
            .parent(self.assignment.position_of(member))
            .map(|p| self.assignment.member_at(p))
    }

    /// Children members of a member.
    pub fn children_of(&self, member: u32) -> Vec<u32> {
        self.topology
            .children(self.assignment.position_of(member))
            .into_iter()
            .map(|p| self.assignment.member_at(p))
            .collect()
    }

    /// Height (leaf 0 / internal 1 / root 2) of a member.
    pub fn height_of(&self, member: u32) -> u32 {
        self.topology.height_of(self.assignment.position_of(member))
    }

    /// All members with a given role.
    pub fn members_with_role(&self, role: Role) -> Vec<u32> {
        self.topology
            .positions_with_role(role)
            .into_iter()
            .map(|p| self.assignment.member_at(p))
            .collect()
    }

    /// The whole branch under an internal member (itself plus its leaves).
    pub fn branch_of(&self, internal_member: u32) -> Vec<u32> {
        let mut branch = vec![internal_member];
        branch.extend(self.children_of(internal_member));
        branch
    }

    /// Committee size.
    pub fn len(&self) -> u32 {
        self.topology.len()
    }

    /// True if the committee is empty (not constructible in practice).
    pub fn is_empty(&self) -> bool {
        self.topology.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_topology_111_fanout_10() {
        let t = Topology::with_fanout(111, 10).unwrap();
        assert_eq!(t.internal_count(), 10);
        assert_eq!(t.leaf_count(), 100);
        for pos in 1..=10 {
            assert_eq!(t.children(pos).len(), 10, "internal {pos}");
        }
        assert_eq!(t.children(0), (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn paper_topology_21_with_4_internal() {
        let t = Topology::new(21, 4).unwrap();
        assert_eq!(t.leaf_count(), 16);
        for pos in 1..=4 {
            assert_eq!(t.children(pos).len(), 4);
        }
    }

    #[test]
    fn paper_topology_109_with_4_internal() {
        let t = Topology::new(109, 4).unwrap();
        assert_eq!(t.leaf_count(), 104);
        // 104 leaves round-robin over 4 internal = 26 each.
        for pos in 1..=4 {
            assert_eq!(t.children(pos).len(), 26);
        }
    }

    #[test]
    fn uneven_leaf_distribution_is_balanced() {
        let t = Topology::new(10, 3).unwrap(); // 6 leaves over 3 internal
        let sizes: Vec<usize> = (1..=3).map(|p| t.children(p).len()).collect();
        assert_eq!(sizes, vec![2, 2, 2]);
        let t = Topology::new(11, 3).unwrap(); // 7 leaves over 3 internal
        let mut sizes: Vec<usize> = (1..=3).map(|p| t.children(p).len()).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![2, 2, 3]);
    }

    #[test]
    fn parent_child_consistency() {
        let t = Topology::new(21, 4).unwrap();
        for pos in 0..21 {
            for c in t.children(pos) {
                assert_eq!(t.parent(c), Some(pos));
            }
        }
        assert_eq!(t.parent(0), None);
    }

    #[test]
    fn heights_follow_roles() {
        let t = Topology::new(21, 4).unwrap();
        assert_eq!(t.height_of(0), 2);
        assert_eq!(t.height_of(1), 1);
        assert_eq!(t.height_of(20), 0);
    }

    #[test]
    fn rejects_invalid_shapes() {
        assert!(Topology::new(3, 5).is_err());
        assert!(Topology::new(0, 0).is_err());
        assert!(Topology::new(5, 0).is_err());
        assert!(Topology::new(1, 0).is_ok()); // singleton committee
    }

    #[test]
    fn balanced_keeps_height_two() {
        for n in [21, 41, 61, 81, 101, 121, 141] {
            let t = Topology::balanced(n).unwrap();
            let i = t.internal_count();
            assert!(i >= 1);
            // Each aggregator handles about sqrt(n) leaves.
            let per = t.leaf_count() as f64 / i as f64;
            assert!(per <= 2.0 * (n as f64).sqrt(), "n={n} per={per}");
        }
    }

    #[test]
    fn tree_view_is_deterministic_per_view() {
        let seed = [5u8; 32];
        let a = TreeView::build(21, 4, &seed, 7).unwrap();
        let b = TreeView::build(21, 4, &seed, 7).unwrap();
        let c = TreeView::build(21, 4, &seed, 8).unwrap();
        assert_eq!(a.root(), b.root());
        assert_eq!(
            a.members_with_role(Role::Internal),
            b.members_with_role(Role::Internal)
        );
        // Different views almost surely differ somewhere.
        assert!(
            a.root() != c.root()
                || a.members_with_role(Role::Internal) != c.members_with_role(Role::Internal)
        );
    }

    #[test]
    fn branch_contains_internal_and_its_leaves() {
        let tv = TreeView::build(111, 10, &[1u8; 32], 0).unwrap();
        let internal = tv.members_with_role(Role::Internal)[3];
        let branch = tv.branch_of(internal);
        assert_eq!(branch.len(), 11); // internal + 10 leaves
        for &m in &branch[1..] {
            assert_eq!(tv.parent_of(m), Some(internal));
        }
    }

    proptest! {
        #[test]
        fn member_queries_consistent(n in 2u32..200, seed in any::<[u8; 32]>(), view in 0u64..100) {
            let internal = ((n - 1) as f64).sqrt().ceil() as u32;
            prop_assume!(internal >= 1 && internal < n);
            let tv = TreeView::build(n, internal, &seed, view).unwrap();
            let root = tv.root();
            prop_assert_eq!(tv.role_of(root), Role::Root);
            let mut seen = 0u32;
            for m in 0..n {
                match tv.role_of(m) {
                    Role::Root => { prop_assert_eq!(m, root); seen += 1; }
                    Role::Internal => {
                        prop_assert_eq!(tv.parent_of(m), Some(root));
                        for c in tv.children_of(m) {
                            prop_assert_eq!(tv.parent_of(c), Some(m));
                            prop_assert_eq!(tv.role_of(c), Role::Leaf);
                        }
                        seen += 1;
                    }
                    Role::Leaf => {
                        let p = tv.parent_of(m).unwrap();
                        prop_assert!(tv.children_of(p).contains(&m));
                        seen += 1;
                    }
                }
            }
            prop_assert_eq!(seen, n);
        }

        #[test]
        fn every_leaf_has_exactly_one_parent(n in 6u32..150, internal in 2u32..10) {
            prop_assume!(internal + 1 < n);
            let t = Topology::new(n, internal).unwrap();
            let mut covered = std::collections::HashSet::new();
            for i in 1..=internal {
                for c in t.children(i) {
                    prop_assert!(covered.insert(c), "leaf {c} claimed twice");
                }
            }
            prop_assert_eq!(covered.len() as u32, t.leaf_count());
        }
    }
}
