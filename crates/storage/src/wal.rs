//! The append-only write-ahead log of durable chain state.
//!
//! Two layers:
//!
//! * [`Wal`] — the raw segment: CRC-framed byte records appended to one
//!   file, each append followed by `fdatasync`, with recovery that scans
//!   from the start and **truncates** the first torn, bit-flipped or
//!   undecodable tail record instead of failing (a `kill -9` mid-append
//!   loses at most the record being written, never the prefix).
//! * [`ChainWal`] — the typed log the consensus layer writes through: one
//!   [`WalRecord`] per committed block (with the QC certifying it, when
//!   known) and per entered view, encoded with the same
//!   [`wire`](iniva_net::wire) codec the transport ships, so the modeled
//!   and durable representations cannot drift apart.
//!
//! Record framing on disk:
//!
//! ```text
//! u32-le body length | u32-le crc32(body) | body bytes
//! ```
//!
//! Durability stance: an append that fails to reach the disk **panics**
//! (fail-stop). A replica that kept running after a failed fsync would
//! vote on state it may not remember after the next crash — the exact
//! safety violation the log exists to prevent.

use crate::crc32::crc32;
use iniva_consensus::chain::CommitSink;
use iniva_consensus::types::{Block, Qc};
use iniva_crypto::multisig::VoteScheme;
use iniva_net::wire::{Decoder, Encoder, WireDecode, WireEncode};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Name of the log file inside a replica's WAL directory.
pub const WAL_FILE: &str = "chain.wal";

/// Upper bound on one record body; a length prefix beyond this is treated
/// as tail corruption (never allocated for).
pub const MAX_RECORD_BYTES: u32 = 16 * 1024 * 1024;

/// Bytes of framing per record (length + checksum).
const RECORD_HEADER: usize = 8;

/// Observability sink of a [`Wal`], bound via [`Wal::set_observability`]:
/// fsync latency and volume series plus per-fsync trace events.
struct WalObs {
    fsync_ns: iniva_obs::Histogram,
    syncs: iniva_obs::Counter,
    bytes: iniva_obs::Counter,
    tracer: iniva_obs::Tracer,
}

/// The raw CRC-framed append-only segment.
pub struct Wal {
    file: File,
    path: PathBuf,
    /// Bytes of intact records currently on disk.
    len: u64,
    /// Data syncs issued so far (test/diagnostic hook: batch appends must
    /// not multiply fsyncs).
    syncs: u64,
    /// Metrics/tracing sink; `None` (free) unless bound.
    obs: Option<WalObs>,
}

impl Wal {
    /// Opens (creating if absent) the segment at `path` and recovers its
    /// intact record prefix: every record up to the first torn, oversized
    /// or checksum-failing one. The corrupt tail, if any, is truncated
    /// away so subsequent appends extend a clean log.
    ///
    /// # Errors
    /// I/O errors opening, reading or truncating the file. Corruption is
    /// **not** an error — it is repaired.
    pub fn open(path: &Path) -> io::Result<(Self, Vec<Vec<u8>>)> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        // Make the file's *existence* durable too: fdatasync covers the
        // contents but not the directory entry — without this, a power
        // cut right after the first run can roll back to "no log at
        // all", silently discarding a synced prefix. (Best-effort on
        // platforms where directories cannot be opened/synced.)
        if let Some(dir) = path.parent() {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        let mut records = Vec::new();
        let mut offset = 0usize;
        while let Some((body, next)) = next_record(&bytes, offset) {
            records.push(body);
            offset = next;
        }
        if offset < bytes.len() {
            // Torn or corrupt tail: drop it so the next append starts at a
            // record boundary.
            file.set_len(offset as u64)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(offset as u64))?;
        Ok((
            Wal {
                file,
                path: path.to_path_buf(),
                len: offset as u64,
                syncs: 0,
                obs: None,
            },
            records,
        ))
    }

    /// Binds fsync metrics (`wal.fsync_ns`, `wal.syncs`, `wal.bytes`) and
    /// per-fsync trace events. The tracer timestamps events with its own
    /// clock ([`iniva_obs::Tracer::live`]), so hand it one built on the
    /// same epoch as the replica's runtime.
    pub fn set_observability(&mut self, registry: &iniva_obs::Registry, tracer: iniva_obs::Tracer) {
        self.obs = Some(WalObs {
            fsync_ns: registry.histogram("wal.fsync_ns"),
            syncs: registry.counter("wal.syncs"),
            bytes: registry.counter("wal.bytes"),
            tracer,
        });
    }

    /// Frames one record body into `framed`, validating its size.
    fn frame_into(framed: &mut Vec<u8>, body: &[u8]) -> io::Result<()> {
        let len = u32::try_from(body.len())
            .ok()
            .filter(|&l| l <= MAX_RECORD_BYTES)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "oversized WAL record"))?;
        framed.extend_from_slice(&len.to_le_bytes());
        framed.extend_from_slice(&crc32(body).to_le_bytes());
        framed.extend_from_slice(body);
        Ok(())
    }

    /// Appends one record and syncs it to disk.
    ///
    /// # Errors
    /// The record exceeds [`MAX_RECORD_BYTES`], or the write/sync failed —
    /// in which case the in-memory length is left unchanged (the partial
    /// record, if any, will be truncated by the next recovery).
    pub fn append(&mut self, body: &[u8]) -> io::Result<()> {
        self.write_and_sync(&[body])
    }

    /// Appends every record in `bodies` and syncs them to disk under a
    /// **single** `fdatasync` — the commit path batches multi-block
    /// commits through here so larger (BLS-sized) records don't multiply
    /// sync stalls. Atomicity is per *record*, not per batch: a crash
    /// mid-batch loses the torn tail record and everything after it, never
    /// the already-framed prefix (recovery truncates at the tear, exactly
    /// as for single appends).
    ///
    /// # Errors
    /// Any record exceeds [`MAX_RECORD_BYTES`] (nothing is written), or
    /// the write/sync failed — the in-memory length is left unchanged and
    /// the partial tail, if any, is truncated by the next recovery. An
    /// empty batch is a no-op (no sync).
    pub fn append_batch(&mut self, bodies: &[Vec<u8>]) -> io::Result<()> {
        let refs: Vec<&[u8]> = bodies.iter().map(Vec::as_slice).collect();
        self.write_and_sync(&refs)
    }

    fn write_and_sync(&mut self, bodies: &[&[u8]]) -> io::Result<()> {
        if bodies.is_empty() {
            return Ok(());
        }
        let total: usize = bodies.iter().map(|b| RECORD_HEADER + b.len()).sum();
        let mut framed = Vec::with_capacity(total);
        for body in bodies {
            Self::frame_into(&mut framed, body)?;
        }
        let t0 = self.obs.as_ref().map(|_| std::time::Instant::now());
        self.file.write_all(&framed)?;
        self.file.sync_data()?;
        self.syncs += 1;
        self.len += framed.len() as u64;
        if let (Some(obs), Some(t0)) = (&self.obs, t0) {
            let wall_ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            obs.fsync_ns.record(wall_ns);
            obs.syncs.inc();
            obs.bytes.add(framed.len() as u64);
            obs.tracer.emit(
                obs.tracer.now(),
                iniva_obs::EventKind::WalFsync {
                    wall_ns,
                    bytes: framed.len() as u64,
                },
            );
        }
        Ok(())
    }

    /// Data syncs issued since this handle was opened.
    pub fn syncs(&self) -> u64 {
        self.syncs
    }

    /// Truncates the segment to its first `keep` records, where `records`
    /// is the slice returned by [`Self::open`]. A typed layer uses this to
    /// discard a CRC-intact tail it cannot *decode* (a record written by
    /// a different schema version): leaving such a record in place would
    /// poison the log — every future replay would stop there, silently
    /// hiding everything appended after it.
    ///
    /// # Errors
    /// I/O errors truncating or syncing.
    pub fn truncate_records(&mut self, records: &[Vec<u8>], keep: usize) -> io::Result<()> {
        let offset: u64 = records[..keep]
            .iter()
            .map(|r| (RECORD_HEADER + r.len()) as u64)
            .sum();
        if offset >= self.len {
            return Ok(());
        }
        self.file.set_len(offset)?;
        self.file.sync_data()?;
        self.file.seek(SeekFrom::Start(offset))?;
        self.len = offset;
        Ok(())
    }

    /// Bytes of intact records on disk.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The segment's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Parses the record starting at `offset`; `None` on a torn, oversized or
/// checksum-failing record (i.e. the end of the intact prefix).
fn next_record(bytes: &[u8], offset: usize) -> Option<(Vec<u8>, usize)> {
    let header = bytes.get(offset..offset + RECORD_HEADER)?;
    let len = u32::from_le_bytes(header[..4].try_into().unwrap());
    if len > MAX_RECORD_BYTES {
        return None;
    }
    let crc = u32::from_le_bytes(header[4..].try_into().unwrap());
    let start = offset + RECORD_HEADER;
    let body = bytes.get(start..start + len as usize)?;
    if crc32(body) != crc {
        return None;
    }
    Some((body.to_vec(), start + len as usize))
}

/// One durable chain event.
#[derive(Debug, Clone)]
pub enum WalRecord<S: VoteScheme> {
    /// A block reached the committed prefix; `qc` is the certificate for
    /// *this* block when the replica had observed one by commit time
    /// (blocks committed as ancestors of a three-chain tip may lack it).
    Commit {
        /// The committed block.
        block: Block,
        /// The QC certifying `block`, if observed.
        qc: Option<Qc<S>>,
    },
    /// The replica entered `view` (monotonic; the last one wins).
    View {
        /// The entered view.
        view: u64,
    },
}

impl<S: VoteScheme> WireEncode for WalRecord<S>
where
    S::Aggregate: WireEncode,
{
    fn encode(&self, enc: &mut Encoder) {
        match self {
            WalRecord::Commit { block, qc } => {
                enc.put_u8(0);
                block.encode(enc);
                enc.put_opt(qc);
            }
            WalRecord::View { view } => {
                enc.put_u8(1).put_u64(*view);
            }
        }
    }
}

impl<S: VoteScheme> WireDecode for WalRecord<S>
where
    S::Aggregate: WireDecode,
{
    fn decode(dec: &mut Decoder) -> Result<Self, iniva_net::wire::DecodeError> {
        match dec.get_u8()? {
            0 => Ok(WalRecord::Commit {
                block: Block::decode(dec)?,
                qc: dec.get_opt()?,
            }),
            1 => Ok(WalRecord::View {
                view: dec.get_u64()?,
            }),
            tag => Err(iniva_net::wire::DecodeError::InvalidTag {
                tag,
                context: "WalRecord",
            }),
        }
    }
}

/// The chain state recovered from a [`ChainWal`].
#[derive(Debug)]
pub struct Recovered<S: VoteScheme> {
    /// The committed prefix, ascending by height, with per-block QCs where
    /// the log has them.
    pub commits: Vec<(Block, Option<Qc<S>>)>,
    /// The highest view the replica had entered (0 for a fresh log).
    pub view: u64,
}

impl<S: VoteScheme> Default for Recovered<S> {
    fn default() -> Self {
        Recovered {
            commits: Vec::new(),
            view: 0,
        }
    }
}

/// The typed write-ahead log of one replica's chain: committed blocks with
/// their QCs, plus the current view. Implements
/// [`CommitSink`](iniva_consensus::chain::CommitSink), so plugging it into
/// a `ChainState` makes every commit durable before the replica acts on
/// it further.
pub struct ChainWal<S: VoteScheme> {
    wal: Wal,
    _scheme: std::marker::PhantomData<fn() -> S>,
}

impl<S: VoteScheme> ChainWal<S>
where
    S::Aggregate: WireEncode + WireDecode,
{
    /// Opens the log under `dir` (creating the directory as needed) and
    /// replays it into a [`Recovered`] snapshot: the committed prefix in
    /// height order plus the last recorded view. Records whose CRC is
    /// intact but whose body no longer decodes (a schema from a different
    /// build) end the replay at the last understood record, mirroring the
    /// raw layer's truncate-the-tail stance.
    ///
    /// # Errors
    /// I/O errors from the underlying [`Wal::open`].
    pub fn open(dir: &Path) -> io::Result<(Self, Recovered<S>)> {
        let (mut wal, raw) = Wal::open(&dir.join(WAL_FILE))?;
        let mut recovered = Recovered::default();
        let mut understood = 0usize;
        for body in &raw {
            let mut dec = Decoder::new(bytes::Bytes::from(body.clone()));
            let Ok(record) = WalRecord::<S>::decode(&mut dec) else {
                break;
            };
            if dec.remaining() > 0 {
                break;
            }
            understood += 1;
            match record {
                WalRecord::Commit { block, qc } => {
                    // Heights must ascend (the committed log may contain
                    // gaps, but never regressions); a replay glitch
                    // (duplicate append before a crash) is idempotent.
                    let last = recovered.commits.last().map_or(0, |(b, _)| b.height);
                    if block.height > last {
                        recovered.commits.push((block, qc));
                    }
                }
                WalRecord::View { view } => {
                    recovered.view = recovered.view.max(view);
                }
            }
        }
        if understood < raw.len() {
            // A CRC-intact record this build cannot decode must be cut
            // out, not skipped over: appends land after the live tail,
            // and a poison record mid-log would end every future replay
            // there — permanently hiding the commits journaled after it.
            wal.truncate_records(&raw, understood)?;
        }
        Ok((
            ChainWal {
                wal,
                _scheme: std::marker::PhantomData,
            },
            recovered,
        ))
    }

    /// Durably appends one committed block (and its QC, when known).
    ///
    /// # Errors
    /// Propagates the underlying write/sync failure.
    pub fn append_commit(&mut self, block: &Block, qc: Option<&Qc<S>>) -> io::Result<()> {
        let record: WalRecord<S> = WalRecord::Commit {
            block: block.clone(),
            qc: qc.cloned(),
        };
        self.wal.append(&record.to_wire())
    }

    /// Durably appends a whole batch of committed blocks under a
    /// **single** fsync — the three-chain rule can commit several blocks
    /// at once, and per-block syncs would multiply the stall now that QC
    /// records carry real (48-byte-point + per-signer) BLS aggregates.
    /// Record framing is identical to per-block appends, so recovery
    /// treats a torn batch tail exactly like a torn single append: the
    /// torn record and everything after it is truncated, the prefix
    /// survives.
    ///
    /// # Errors
    /// Propagates the underlying write/sync failure.
    pub fn append_batch(&mut self, items: &[(Block, Option<Qc<S>>)]) -> io::Result<()> {
        let bodies: Vec<Vec<u8>> = items
            .iter()
            .map(|(block, qc)| {
                let record: WalRecord<S> = WalRecord::Commit {
                    block: block.clone(),
                    qc: qc.clone(),
                };
                record.to_wire().to_vec()
            })
            .collect();
        self.wal.append_batch(&bodies)
    }

    /// Durably records that the replica entered `view`.
    ///
    /// # Errors
    /// Propagates the underlying write/sync failure.
    pub fn append_view(&mut self, view: u64) -> io::Result<()> {
        let record: WalRecord<S> = WalRecord::View { view };
        self.wal.append(&record.to_wire())
    }

    /// The underlying segment (test/diagnostic hook).
    pub fn segment(&self) -> &Wal {
        &self.wal
    }

    /// Binds fsync observability on the underlying segment (see
    /// [`Wal::set_observability`]).
    pub fn set_observability(&mut self, registry: &iniva_obs::Registry, tracer: iniva_obs::Tracer) {
        self.wal.set_observability(registry, tracer);
    }
}

impl<S: VoteScheme> CommitSink<S> for ChainWal<S>
where
    S::Aggregate: WireEncode + WireDecode,
{
    fn committed(&mut self, block: &Block, qc: Option<&Qc<S>>) {
        self.append_commit(block, qc)
            .expect("WAL append failed; fail-stop to preserve durability");
    }

    fn committed_batch(&mut self, items: &[(Block, Option<Qc<S>>)]) {
        self.append_batch(items)
            .expect("WAL batch append failed; fail-stop to preserve durability");
    }

    fn entered_view(&mut self, view: u64) {
        self.append_view(view)
            .expect("WAL append failed; fail-stop to preserve durability");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iniva_consensus::types::vote_message;
    use iniva_crypto::sim_scheme::SimScheme;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("iniva-wal-{name}-{}", std::process::id(),));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn block_at(height: u64) -> Block {
        Block {
            view: height,
            height,
            parent: [height as u8; 32],
            proposer: 0,
            batch_start: height * 10,
            batch_len: 10,
            payload_per_req: 64,
        }
    }

    fn qc_for(s: &SimScheme, b: &Block) -> Qc<SimScheme> {
        let msg = vote_message(&b.hash(), b.view);
        let mut agg = s.sign(0, &msg);
        for i in 1..3 {
            agg = s.combine(&agg, &s.sign(i, &msg));
        }
        Qc {
            block_hash: b.hash(),
            view: b.view,
            height: b.height,
            agg,
        }
    }

    #[test]
    fn raw_records_roundtrip_across_reopen() {
        let dir = tmp_dir("raw");
        let path = dir.join("seg.wal");
        let (mut wal, recovered) = Wal::open(&path).unwrap();
        assert!(recovered.is_empty());
        wal.append(b"alpha").unwrap();
        wal.append(b"").unwrap();
        wal.append(&[7u8; 1000]).unwrap();
        drop(wal);
        let (wal, recovered) = Wal::open(&path).unwrap();
        assert_eq!(recovered.len(), 3);
        assert_eq!(recovered[0], b"alpha");
        assert_eq!(recovered[1], b"");
        assert_eq!(recovered[2], vec![7u8; 1000]);
        assert!(!wal.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_appendable() {
        let dir = tmp_dir("torn");
        let path = dir.join("seg.wal");
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(b"keep-me").unwrap();
        wal.append(b"lose-my-tail").unwrap();
        drop(wal);
        // Tear the last record mid-body, as a crash mid-write would.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let (mut wal, recovered) = Wal::open(&path).unwrap();
        assert_eq!(recovered, vec![b"keep-me".to_vec()]);
        // The log is clean again: appends land on a record boundary.
        wal.append(b"after-repair").unwrap();
        drop(wal);
        let (_, recovered) = Wal::open(&path).unwrap();
        assert_eq!(
            recovered,
            vec![b"keep-me".to_vec(), b"after-repair".to_vec()]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_append_syncs_once_and_recovers() {
        let dir = tmp_dir("batch");
        let s = SimScheme::new(4, b"wal-batch");
        let (mut wal, _) = ChainWal::<SimScheme>::open(&dir).unwrap();
        let items: Vec<(Block, Option<Qc<SimScheme>>)> = (1..=5u64)
            .map(|h| {
                let b = block_at(h);
                let qc = qc_for(&s, &b);
                (b, Some(qc))
            })
            .collect();
        wal.append_batch(&items).unwrap();
        assert_eq!(
            wal.segment().syncs(),
            1,
            "one fsync must cover the whole batch"
        );
        // An empty batch is a no-op, not a gratuitous sync.
        wal.append_batch(&[]).unwrap();
        assert_eq!(wal.segment().syncs(), 1);
        drop(wal);
        let (_, recovered) = ChainWal::<SimScheme>::open(&dir).unwrap();
        assert_eq!(recovered.commits.len(), 5);
        for (i, (b, qc)) in recovered.commits.iter().enumerate() {
            assert_eq!(b.height, i as u64 + 1);
            let qc = qc.as_ref().expect("QC persisted");
            assert!(s.verify(&vote_message(&b.hash(), b.view), &qc.agg));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_batch_tail_truncates_to_intact_records() {
        let dir = tmp_dir("batch-torn");
        let (mut wal, _) = ChainWal::<SimScheme>::open(&dir).unwrap();
        let items: Vec<(Block, Option<Qc<SimScheme>>)> =
            (1..=3u64).map(|h| (block_at(h), None)).collect();
        wal.append_batch(&items).unwrap();
        drop(wal);
        // Tear the batch mid-third-record, as a crash mid-batch-write
        // would: the first two records must survive recovery, and the log
        // must be appendable again at a record boundary.
        let path = dir.join(WAL_FILE);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let (mut wal, recovered) = ChainWal::<SimScheme>::open(&dir).unwrap();
        let heights: Vec<u64> = recovered.commits.iter().map(|(b, _)| b.height).collect();
        assert_eq!(heights, vec![1, 2], "torn batch tail dropped, prefix kept");
        wal.append_commit(&block_at(3), None).unwrap();
        drop(wal);
        let (_, recovered) = ChainWal::<SimScheme>::open(&dir).unwrap();
        let heights: Vec<u64> = recovered.commits.iter().map(|(b, _)| b.height).collect();
        assert_eq!(heights, vec![1, 2, 3]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chain_wal_recovers_commits_and_view() {
        let dir = tmp_dir("chain");
        let s = SimScheme::new(4, b"wal-test");
        let (mut wal, recovered) = ChainWal::<SimScheme>::open(&dir).unwrap();
        assert!(recovered.commits.is_empty());
        assert_eq!(recovered.view, 0);
        for h in 1..=5u64 {
            let b = block_at(h);
            let qc = qc_for(&s, &b);
            wal.append_commit(&b, if h == 3 { None } else { Some(&qc) })
                .unwrap();
            wal.append_view(h + 2).unwrap();
        }
        drop(wal);
        let (_, recovered) = ChainWal::<SimScheme>::open(&dir).unwrap();
        assert_eq!(recovered.commits.len(), 5);
        assert_eq!(recovered.view, 7);
        for (i, (b, qc)) in recovered.commits.iter().enumerate() {
            assert_eq!(b.height, i as u64 + 1);
            assert_eq!(qc.is_none(), b.height == 3);
            if let Some(qc) = qc {
                assert_eq!(qc.block_hash, b.hash());
                assert!(s.verify(&vote_message(&b.hash(), b.view), &qc.agg));
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn undecodable_record_is_cut_out_not_skipped() {
        let dir = tmp_dir("poison");
        let (mut wal, _) = ChainWal::<SimScheme>::open(&dir).unwrap();
        wal.append_commit(&block_at(1), None).unwrap();
        drop(wal);
        // Plant a CRC-intact record from a "future schema" (unknown tag):
        // the raw layer accepts it, the typed replay cannot decode it.
        let (mut raw, _) = Wal::open(&dir.join(WAL_FILE)).unwrap();
        raw.append(&[0xEE, 1, 2, 3]).unwrap();
        drop(raw);
        // Reopen: replay stops at the poison record AND the segment is
        // truncated there, so commits appended now stay recoverable.
        let (mut wal, recovered) = ChainWal::<SimScheme>::open(&dir).unwrap();
        assert_eq!(recovered.commits.len(), 1);
        wal.append_commit(&block_at(2), None).unwrap();
        drop(wal);
        let (_, recovered) = ChainWal::<SimScheme>::open(&dir).unwrap();
        assert_eq!(
            recovered.commits.len(),
            2,
            "post-poison appends must survive the next recovery"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chain_wal_roundtrips_bls_records() {
        // The WAL is scheme-generic: real BLS records — 48-byte compressed
        // G1 points inside the QC — must survive the disk round-trip and
        // still verify after recovery.
        use iniva_crypto::bls::BlsScheme;
        let dir = tmp_dir("bls");
        let s = BlsScheme::new(4, b"wal-bls");
        let (mut wal, _) = ChainWal::<BlsScheme>::open(&dir).unwrap();
        let b = block_at(1);
        let msg = vote_message(&b.hash(), b.view);
        let mut agg = s.sign(0, &msg);
        for i in 1..3 {
            agg = s.combine(&agg, &s.sign(i, &msg));
        }
        let qc = Qc {
            block_hash: b.hash(),
            view: b.view,
            height: b.height,
            agg,
        };
        wal.append_batch(&[(b.clone(), Some(qc))]).unwrap();
        wal.append_view(4).unwrap();
        drop(wal);
        let (_, recovered) = ChainWal::<BlsScheme>::open(&dir).unwrap();
        assert_eq!(recovered.view, 4);
        assert_eq!(recovered.commits.len(), 1);
        let (rb, rqc) = &recovered.commits[0];
        assert_eq!(rb.hash(), b.hash());
        let rqc = rqc.as_ref().expect("QC recovered");
        assert!(s.verify(&vote_message(&rb.hash(), rb.view), &rqc.agg));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_keeps_heights_ascending() {
        let dir = tmp_dir("ascending");
        let (mut wal, _) = ChainWal::<SimScheme>::open(&dir).unwrap();
        wal.append_commit(&block_at(1), None).unwrap();
        wal.append_commit(&block_at(1), None).unwrap(); // duplicate: ignored
        wal.append_commit(&block_at(2), None).unwrap();
        wal.append_commit(&block_at(9), None).unwrap(); // gap: legitimate
        wal.append_commit(&block_at(4), None).unwrap(); // regression: ignored
        drop(wal);
        let (_, recovered) = ChainWal::<SimScheme>::open(&dir).unwrap();
        let heights: Vec<u64> = recovered.commits.iter().map(|(b, _)| b.height).collect();
        assert_eq!(heights, vec![1, 2, 9]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
