//! # iniva-storage
//!
//! Durable chain state for the Iniva reproduction: an append-only,
//! fsync'd, CRC-framed write-ahead log of committed blocks, their QCs and
//! the replica's current view.
//!
//! This is the crash-recovery substrate the live runtime
//! (`iniva-transport`) builds on: a replica killed with `kill -9` reopens
//! its [`ChainWal`], rehydrates the committed prefix into
//! `iniva_consensus::ChainState`, and fetches whatever the cluster
//! committed while it was down via the `StateRequest`/`StateResponse`
//! protocol (`iniva_net::sync`) — instead of being permanently stuck
//! behind the committed prefix it can no longer vote past.
//!
//! * [`crc32`] — the checksum (IEEE CRC-32) framing every record.
//! * [`wal`] — the raw segment ([`Wal`]) and the typed chain log
//!   ([`ChainWal`]), whose recovery truncates torn/corrupt tails instead
//!   of failing.
//!
//! Everything is `std`-only; record bodies use the same
//! [`wire`](iniva_net::wire) codec the transport ships, so the durable
//! representation of a block is byte-identical to its wire encoding.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crc32;
pub mod wal;

pub use wal::{ChainWal, Recovered, Wal, WalRecord, MAX_RECORD_BYTES, WAL_FILE};
