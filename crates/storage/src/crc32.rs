//! CRC-32 (IEEE 802.3 polynomial), the checksum framing every WAL record.
//!
//! Hand-rolled because the workspace builds offline (no crates.io): a
//! compile-time 256-entry table of the reflected polynomial `0xEDB88320`,
//! processed byte-at-a-time. Throughput is irrelevant here — records are a
//! few hundred bytes and the fsync dominates by orders of magnitude — what
//! matters is that a torn or bit-flipped tail after a power cut is
//! *detected*, so recovery can truncate to the last intact record instead
//! of replaying garbage into the chain.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// The byte-indexed remainder table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `data` (IEEE, as used by zlib/PNG/Ethernet).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32(b"iniva-wal-record");
        for i in 0..16 {
            for bit in 0..8 {
                let mut corrupted = *b"iniva-wal-record";
                corrupted[i] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), base, "flip at byte {i} bit {bit}");
            }
        }
    }
}
