//! Adversarial WAL tests, extending the `tests/codec_adversarial.rs`
//! style to durable storage: whatever happens to the *tail* of the log —
//! a torn write from `kill -9` mid-append, a truncated file, a flipped
//! bit from a bad sector — recovery must return the longest intact record
//! prefix and never panic, and the repaired log must accept appends
//! again. (Corruption in the *middle* of the log is out of scope by
//! design: recovery stops at the first bad record, which for mid-log
//! damage conservatively discards the suffix — still a prefix, still no
//! panic.)

use iniva_consensus::types::{vote_message, Block, Qc};
use iniva_crypto::multisig::VoteScheme;
use iniva_crypto::sim_scheme::SimScheme;
use iniva_storage::{ChainWal, Wal, WAL_FILE};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

/// A fresh scratch directory per proptest case.
fn scratch(tag: &str) -> PathBuf {
    static CASE: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "iniva-walprop-{tag}-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Deterministic pseudo-random record bodies (sizes spread across empty,
/// tiny and multi-hundred-byte records).
fn bodies(count: usize, seed: u64) -> Vec<Vec<u8>> {
    (0..count)
        .map(|i| {
            let len = ((seed >> (i % 13)) as usize).wrapping_mul(i + 1) % 300;
            (0..len)
                .map(|j| (seed as usize + i * 31 + j * 7) as u8)
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Truncating the file at ANY byte offset recovers exactly the
    /// records whose frames survived in full, and the log is appendable
    /// afterwards.
    #[test]
    fn truncated_tail_recovers_to_last_full_record(
        count in 1usize..12,
        seed in any::<u64>(),
        cut_frac in 0.0f64..1.0,
    ) {
        let dir = scratch("trunc");
        let path = dir.join("seg.wal");
        let records = bodies(count, seed);
        let (mut wal, _) = Wal::open(&path).unwrap();
        let mut ends = Vec::new();
        for r in &records {
            wal.append(r).unwrap();
            ends.push(wal.len());
        }
        drop(wal);

        let file_len = std::fs::metadata(&path).unwrap().len();
        let cut = (file_len as f64 * cut_frac) as u64;
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..cut as usize]).unwrap();

        let expected = ends.iter().filter(|&&end| end <= cut).count();
        let (mut wal, recovered) = Wal::open(&path).unwrap();
        prop_assert_eq!(recovered.len(), expected);
        prop_assert_eq!(&recovered[..], &records[..expected]);

        wal.append(b"post-repair").unwrap();
        drop(wal);
        let (_, recovered) = Wal::open(&path).unwrap();
        prop_assert_eq!(recovered.len(), expected + 1);
        prop_assert_eq!(recovered.last().unwrap().as_slice(), b"post-repair");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Flipping ANY single bit recovers a strict record prefix — records
    /// before the damaged one are intact, nothing after the damage is
    /// hallucinated, and nothing panics.
    #[test]
    fn bit_flipped_tail_recovers_a_clean_prefix(
        count in 1usize..12,
        seed in any::<u64>(),
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let dir = scratch("flip");
        let path = dir.join("seg.wal");
        let records = bodies(count, seed);
        let (mut wal, _) = Wal::open(&path).unwrap();
        let mut ends = Vec::new();
        for r in &records {
            wal.append(r).unwrap();
            ends.push(wal.len());
        }
        drop(wal);

        let mut bytes = std::fs::read(&path).unwrap();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();

        // Records entirely before the flipped byte must survive.
        let intact_before = ends.iter().filter(|&&end| end <= pos as u64).count();
        let (mut wal, recovered) = Wal::open(&path).unwrap();
        prop_assert!(recovered.len() >= intact_before);
        prop_assert!(recovered.len() <= records.len());
        prop_assert_eq!(&recovered[..], &records[..recovered.len()]);

        wal.append(b"post-repair").unwrap();
        drop(wal);
        let (_, recovered2) = Wal::open(&path).unwrap();
        prop_assert_eq!(recovered2.last().unwrap().as_slice(), b"post-repair");
        prop_assert_eq!(&recovered2[..recovered.len()], &recovered[..]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The typed chain log under tail damage: the recovered commits are a
    /// height-ascending prefix of what was written, QCs still verify, and
    /// the log keeps working.
    #[test]
    fn chain_wal_survives_tail_damage(
        commits in 1u64..10,
        damage_frac in 0.5f64..1.0,
        bit in 0u8..8,
    ) {
        let dir = scratch("chain");
        let s = SimScheme::new(4, b"wal-corruption");
        let (mut wal, _) = ChainWal::<SimScheme>::open(&dir).unwrap();
        for h in 1..=commits {
            let block = Block {
                view: h,
                height: h,
                parent: [h as u8; 32],
                proposer: (h % 4) as u32,
                batch_start: h * 5,
                batch_len: 5,
                payload_per_req: 64,
            };
            let msg = vote_message(&block.hash(), block.view);
            let mut agg = s.sign(0, &msg);
            for i in 1..3 {
                agg = s.combine(&agg, &s.sign(i, &msg));
            }
            let qc = Qc { block_hash: block.hash(), view: block.view, height: h, agg };
            wal.append_commit(&block, Some(&qc)).unwrap();
            wal.append_view(h + 2).unwrap();
        }
        drop(wal);

        // Damage one bit somewhere in the tail half of the file.
        let path = dir.join(WAL_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let pos = ((bytes.len() - 1) as f64 * damage_frac) as usize;
        bytes[pos] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();

        let (mut wal, recovered) = ChainWal::<SimScheme>::open(&dir).unwrap();
        prop_assert!(recovered.commits.len() <= commits as usize);
        for (i, (block, qc)) in recovered.commits.iter().enumerate() {
            prop_assert_eq!(block.height, i as u64 + 1);
            let qc = qc.as_ref().expect("every commit was logged with a QC");
            prop_assert_eq!(qc.block_hash, block.hash());
            prop_assert!(s.verify(&vote_message(&block.hash(), block.view), &qc.agg));
        }
        prop_assert!(recovered.view <= commits + 2);

        // The repaired log extends cleanly past the damage.
        let next = recovered.commits.last().map_or(1, |(b, _)| b.height + 1);
        let block = Block {
            view: next, height: next, parent: [0; 32], proposer: 0,
            batch_start: 0, batch_len: 0, payload_per_req: 0,
        };
        wal.append_commit(&block, None).unwrap();
        drop(wal);
        let (_, again) = ChainWal::<SimScheme>::open(&dir).unwrap();
        prop_assert_eq!(again.commits.len(), recovered.commits.len() + 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
