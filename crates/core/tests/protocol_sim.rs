//! End-to-end simulation tests of the Iniva protocol (Algorithm 1) under
//! fault-free and crash-fault conditions — the behaviours behind the
//! paper's Theorems 1–2 (Reliable Dissemination, Inclusiveness) and the
//! Fig. 4 resiliency claims.

use iniva::protocol::{InivaConfig, InivaReplica};
use iniva_consensus::quorum;
use iniva_crypto::sim_scheme::SimScheme;
use iniva_net::{NetConfig, Simulation, MILLIS, SECS};
use std::sync::Arc;

fn build(
    n: usize,
    internal: u32,
    mutate: impl Fn(&mut InivaConfig),
) -> Simulation<InivaReplica<SimScheme>> {
    let scheme = Arc::new(SimScheme::new(n, b"protocol-sim"));
    let mut cfg = InivaConfig::for_tests(n, internal);
    mutate(&mut cfg);
    let replicas = (0..n as u32)
        .map(|id| InivaReplica::new(id, cfg.clone(), Arc::clone(&scheme)))
        .collect();
    Simulation::new(NetConfig::default(), replicas)
}

/// Observability is opt-in and must cost nothing when left off: a
/// default-constructed replica carries the disabled no-op tracer, retains
/// no events across a full run, and an identically-seeded run with
/// tracing enabled commits the exact same chain — the instrumentation
/// observes the protocol, it never perturbs it.
#[test]
fn default_tracing_is_disabled_and_free() {
    let mut sim = build(7, 2, |_| {});
    sim.run_until(3 * SECS);
    let baseline = sim.actor(0).chain.committed_height();
    assert!(baseline > 5, "baseline run must make progress");
    for id in 0..7 {
        let t = sim.actor(id).tracer();
        assert!(!t.enabled(), "replica {id}: tracing must default off");
        assert_eq!(
            t.dump_jsonl(),
            "",
            "replica {id}: a disabled tracer must retain nothing"
        );
    }

    // The same seeded run with tracing on: identical protocol outcome,
    // and this time the events are actually retained.
    let registry = iniva_obs::Registry::new();
    let mut traced = build(7, 2, |_| {});
    for id in 0..7u32 {
        traced
            .actor_mut(id)
            .set_observability(&registry, iniva_obs::Tracer::new(id, 4096));
    }
    traced.run_until(3 * SECS);
    assert_eq!(
        traced.actor(0).chain.committed_height(),
        baseline,
        "enabling tracing must not change what the protocol does"
    );
    let dump = traced.actor(0).tracer().dump_jsonl();
    assert!(
        dump.contains("view_entered") && dump.contains("committed"),
        "traced run must have recorded consensus events"
    );
}

#[test]
fn fault_free_run_commits_blocks() {
    let mut sim = build(21, 4, |_| {});
    sim.run_until(5 * SECS);
    let h = sim.actor(0).chain.committed_height();
    assert!(h > 10, "committed height {h}");
}

#[test]
fn fault_free_inclusiveness_all_votes_in_qc() {
    // Theorem 2: with correct leaders, *every* correct process's signature
    // ends up in the QC — mean QC size must be n, not just a quorum.
    let mut sim = build(21, 4, |_| {});
    sim.run_until(5 * SECS);
    let m = &sim.actor(0).chain.metrics;
    assert!(m.qc_count > 0);
    assert!(
        m.mean_qc_size() > 20.5,
        "fault-free Iniva must include all 21 votes (got {})",
        m.mean_qc_size()
    );
}

#[test]
fn all_replicas_agree_on_committed_prefix() {
    let mut sim = build(21, 4, |_| {});
    sim.run_until(4 * SECS);
    let heights: Vec<u64> = (0..21)
        .map(|i| sim.actor(i).chain.committed_height())
        .collect();
    let min = *heights.iter().min().unwrap();
    let max = *heights.iter().max().unwrap();
    assert!(min > 0, "all replicas commit");
    assert!(max - min <= 3, "replicas diverge: {heights:?}");
}

#[test]
fn crash_faults_still_include_all_correct_processes() {
    // The paper's headline resiliency result (Fig. 4d): with 4 crashed of
    // 21, Iniva still includes >99% of *correct* processes thanks to
    // 2ND-CHANCE.
    let mut sim = build(21, 4, |c| {
        c.view_timeout = 600 * MILLIS;
    });
    for f in [3, 8, 13, 20] {
        sim.crash(f);
    }
    sim.run_until(20 * SECS);
    let m = &sim.actor(0).chain.metrics;
    assert!(m.qc_count > 0, "liveness with 4 crashes");
    let correct = 21.0 - 4.0;
    assert!(
        m.mean_qc_size() >= correct * 0.99,
        "QC size {:.2} below 99% of {correct} correct processes",
        m.mean_qc_size()
    );
}

#[test]
fn no2c_variant_commits_but_loses_inclusion_under_faults() {
    // Iniva-No2C keeps liveness (quorum still forms through the tree) but
    // can no longer re-add processes under faults.
    let mk = |second_chance: bool| {
        let mut sim = build(21, 4, |c| {
            c.second_chance = second_chance;
            c.view_timeout = 600 * MILLIS;
        });
        for f in [3, 8] {
            sim.crash(f);
        }
        sim.run_until(20 * SECS);
        let m = &sim.actor(0).chain.metrics;
        (m.mean_qc_size(), m.qc_count)
    };
    let (with_2c, qcs_2c) = mk(true);
    let (without_2c, qcs_no2c) = mk(false);
    assert!(qcs_2c > 0 && qcs_no2c > 0);
    assert!(
        with_2c > without_2c,
        "2ND-CHANCE must improve inclusion ({with_2c:.2} vs {without_2c:.2})"
    );
}

#[test]
fn second_chances_fire_only_under_faults() {
    let mut clean = build(21, 4, |_| {});
    clean.run_until(3 * SECS);
    let clean_sc: u64 = (0..21)
        .map(|i| clean.actor(i).agg_metrics.second_chances_sent)
        .sum();

    let mut faulty = build(21, 4, |c| c.view_timeout = 600 * MILLIS);
    faulty.crash(5);
    faulty.run_until(3 * SECS);
    let faulty_sc: u64 = (0..21)
        .map(|i| faulty.actor(i).agg_metrics.second_chances_sent)
        .sum();

    assert_eq!(
        clean_sc, 0,
        "fallback paths must stay dormant when fault-free"
    );
    assert!(faulty_sc > 0, "crashes must trigger 2ND-CHANCE");
}

#[test]
fn crashed_internal_nodes_recovered_via_second_chance() {
    // Crash enough processes that some views lose internal aggregators:
    // recoveries must be observed at roots.
    let mut sim = build(21, 4, |c| c.view_timeout = 600 * MILLIS);
    for f in [1, 7] {
        sim.crash(f);
    }
    sim.run_until(10 * SECS);
    let recoveries: u64 = (0..21)
        .map(|i| sim.actor(i).agg_metrics.second_chance_recoveries)
        .sum();
    assert!(recoveries > 0, "2ND-CHANCE must recover leaf votes");
    // And the QCs stay above quorum.
    assert!(sim.actor(0).chain.metrics.mean_qc_size() >= quorum(21) as f64);
}

#[test]
fn committed_throughput_never_exceeds_offered_rate() {
    // Regression for the workload-accounting bug: the 2-view commit
    // pipeline used to re-batch request ranges that were drafted but not
    // yet committed, so committed throughput *exceeded* the offered rate
    // at saturation (each request counted by up to three overlapping
    // blocks). With the proposer-side draft cursor, committed requests
    // are bounded by arrivals at every rate.
    for rate in [2_000u64, 50_000, 500_000] {
        let secs = 5u64;
        let mut sim = build(7, 2, |c| c.request_rate = rate);
        sim.run_until(secs * SECS);
        let committed = sim.actor(0).chain.metrics.committed_reqs;
        // Requests 0..=secs*rate have arrived by the deadline.
        let offered = secs * rate + 1;
        assert!(
            committed <= offered,
            "rate {rate}: committed {committed} exceeds offered {offered}"
        );
        assert!(committed > 0, "rate {rate}: nothing committed");
    }
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        let mut sim = build(21, 4, |_| {});
        sim.run_until(2 * SECS);
        (
            sim.actor(0).chain.committed_height(),
            sim.actor(0).chain.metrics.committed_reqs,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn larger_committee_still_commits() {
    let mut sim = build(41, 6, |c| c.view_timeout = 800 * MILLIS);
    sim.run_until(5 * SECS);
    assert!(sim.actor(0).chain.committed_height() > 3);
    assert!(sim.actor(0).chain.metrics.mean_qc_size() > 40.0);
}

#[test]
fn iniva_round_latency_exceeds_star_but_stays_bounded() {
    // The tree adds ~2 hops + second-chance wait; commits must still flow
    // at a steady rate (several per second with ms-scale delays).
    let mut sim = build(21, 4, |_| {});
    sim.run_until(5 * SECS);
    let blocks = sim.actor(0).chain.metrics.committed_blocks;
    assert!(
        blocks >= 25,
        "expected steady block flow, got {blocks} in 5s"
    );
}
