//! # iniva
//!
//! The core of the reproduction of **"Iniva: Inclusive and
//! Incentive-compatible Vote Aggregation"** (DSN 2024, arXiv:2404.04948):
//!
//! * [`protocol`] — Algorithm 1: tree-based signature aggregation with ACK
//!   inclusion proofs and 2ND-CHANCE fallback paths, integrated into the
//!   chained-HotStuff substrate from `iniva-consensus` (the paper's
//!   Section VIII-A integration). Includes the `Iniva-No2C` ablation.
//! * [`rewards`] — the rewarding mechanism of Section V-B, reconstructing
//!   *how* each vote was collected from indivisible multiplicities, plus
//!   independent verification.
//! * [`incentives`] — the two-player game of Section VI with Equations 2–6
//!   and a checkable Theorem 3.
//! * [`omission`] — Theorem 4's closed forms and the structural
//!   attack-success predicates driving the Monte-Carlo experiments.
//!
//! ## Quickstart
//! ```
//! use iniva::protocol::{InivaConfig, InivaReplica};
//! use iniva_crypto::sim_scheme::SimScheme;
//! use iniva_net::{NetConfig, Simulation, SECS};
//! use std::sync::Arc;
//!
//! let n = 7;
//! let scheme = Arc::new(SimScheme::new(n, b"quickstart"));
//! let cfg = InivaConfig::for_tests(n, 2);
//! let replicas = (0..n as u32)
//!     .map(|id| InivaReplica::new(id, cfg.clone(), Arc::clone(&scheme)))
//!     .collect();
//! let mut sim = Simulation::new(NetConfig::default(), replicas);
//! sim.run_until(1 * SECS);
//! assert!(sim.actor(0).chain.committed_height() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod incentives;
pub mod omission;
pub mod protocol;
pub mod rewards;

pub use protocol::{InivaConfig, InivaMsg, InivaReplica};
pub use rewards::{RewardDistribution, RewardParams};
