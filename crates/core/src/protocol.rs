//! The Iniva replica: Algorithm 1 (block propagation + signature
//! aggregation over the tree, with ACK and 2ND-CHANCE fallback paths)
//! integrated into round-based chained HotStuff.
//!
//! Dissemination (paper Fig. 1): `L_v` sends the proposal directly to the
//! tree root (`L_{v+1}`) *and* the root's internal children; internal nodes
//! forward to their leaves. Leaves sign immediately and send their vote to
//! their parent; internal nodes aggregate with multiplicity 2 per child
//! (plus their own signature once per child + once), send the aggregate to
//! the root and an ACK (inclusion proof) to their children. The root gives
//! missing processes a 2ND-CHANCE; replies carry the parent ACK aggregate if
//! available (so a malicious root cannot use the reply to surgically omit
//! the replier), otherwise the individual signature (which the reward
//! mechanism can then distinguish by multiplicity — the basis for the
//! incentive analysis).

use crate::rewards::validate_subtree_multiplicities;
use iniva_consensus::chain::ChainState;
use iniva_consensus::leader::{LeaderContext, LeaderPolicy, CAROUSEL_WINDOW_EPOCH};
use iniva_consensus::types::{
    quorum, vote_message, Block, Qc, AGG_SIG_BYTES, GENESIS_HASH, PER_SIGNER_BYTES,
};
use iniva_crypto::multisig::VoteScheme;
use iniva_crypto::shuffle::Assignment;
use iniva_net::cost::CostModel;
use iniva_net::sync::{StateRequest, StateResponse, MAX_STATE_BLOCKS, MAX_STATE_RESPONSE_BYTES};
use iniva_net::wire::{DecodeError, Decoder, Encoder, WireDecode, WireEncode};
use iniva_net::{Actor, Context, NodeId, Time};
use iniva_obs::trace::{EventKind, TimerKind};
use iniva_obs::{Registry, Tracer};
use iniva_tree::{Role, Topology, TreeView};
use std::sync::Arc;

/// Configuration of an Iniva replica fleet.
#[derive(Debug, Clone)]
pub struct InivaConfig {
    /// Committee size.
    pub n: usize,
    /// Internal (aggregator) nodes per tree.
    pub internal: u32,
    /// Max requests batched per block.
    pub max_batch: u32,
    /// Payload bytes per request.
    pub payload_per_req: u32,
    /// Open-loop client request rate (requests/second).
    pub request_rate: u64,
    /// View timeout (pacemaker).
    pub view_timeout: Time,
    /// The network-delay bound Δ used by the timer heuristics: the
    /// aggregation timer is `2Δ·height(p)` and the second-chance timer is
    /// `δ = 2Δ` (paper Section VIII-C.3).
    pub delta: Time,
    /// Explicit second-chance timer δ (defaults to `2Δ` if `None`).
    pub second_chance_timer: Option<Time>,
    /// Whether 2ND-CHANCE messages are sent at all (`false` = the paper's
    /// Iniva-No2C ablation).
    pub second_chance: bool,
    /// When to trigger 2ND-CHANCE: `true` (paper-faithful) sends as soon as
    /// a *quorum* is collected (or on timer), always spending the δ wait;
    /// `false` waits for tree *completion* (or the timer), keeping the
    /// fallback dormant in fault-free runs — an optimization ablation
    /// benchmarked separately.
    pub sc_on_quorum: bool,
    /// Leader election policy (root of the aggregation tree).
    pub leader_policy: LeaderPolicy,
    /// CPU cost model.
    pub cost: CostModel,
    /// Epoch seed for the deterministic per-view shuffle.
    pub epoch_seed: [u8; 32],
}

impl InivaConfig {
    /// A small default configuration for tests (n=7, 2 internal).
    pub fn for_tests(n: usize, internal: u32) -> Self {
        InivaConfig {
            n,
            internal,
            max_batch: 100,
            payload_per_req: 64,
            request_rate: 10_000,
            view_timeout: 400 * iniva_net::MILLIS,
            // Δ must cover propagation *and* the verification pipeline
            // (~1.4 ms per aggregate on the root's critical path); too-small
            // values make the aggregation timer fire before the tree
            // completes — the exact tension Section VIII-C.3 studies with
            // δ ∈ {5, 10} ms.
            delta: 15 * iniva_net::MILLIS,
            second_chance_timer: None,
            second_chance: true,
            sc_on_quorum: false,
            leader_policy: LeaderPolicy::RoundRobin,
            cost: CostModel::default(),
            epoch_seed: [7u8; 32],
        }
    }

    /// Retunes the config for **genuinely paid** crypto (e.g. `BlsScheme`
    /// over the live transport): zeroes the modeled CPU cost — the
    /// pairing work now burns real CPU inside the handlers, and charging
    /// the calibrated model on top would double-count it — and widens Δ
    /// and the view timeout so the timer heuristics cover real pairing
    /// verification on the critical path.
    ///
    /// The widening is sized from measured histograms, not guesswork: on
    /// the live 4-replica BLS cell, `consensus.verify_wall_ns` tops out
    /// at ~117 ms (p99; ~50 ms typical per aggregate) and
    /// `runtime.timer_lag_ns` — OS scheduling noise on timer deadlines —
    /// at ~57 ms (p99). A child's share is therefore ready within
    /// ~175 ms of the proposal, which the `2Δ·height` aggregation window
    /// covers at Δ = 100 ms with margin. The earlier hand-guessed
    /// Δ = 300 ms left the same cell *timer-bound* (views paced by the
    /// aggregation wait, ~3.4 s median commit latency); the measured
    /// value roughly doubles committed throughput (to offered-rate
    /// saturation on the bench cell) and cuts median commit latency 3×,
    /// without shrinking QCs. The view timeout similarly drops from a
    /// blanket 2 s to 1 s — still > 2× the worst observed healthy view
    /// span.
    pub fn tune_for_real_crypto(&mut self) {
        self.cost = self.cost.scaled(0.0);
        self.delta = 100 * iniva_net::MILLIS;
        self.view_timeout = iniva_net::SECS;
    }

    fn sc_timer(&self) -> Time {
        self.second_chance_timer.unwrap_or(2 * self.delta)
    }
}

/// Messages of the Iniva protocol (Algorithm 1).
#[derive(Debug)]
pub enum InivaMsg<S: VoteScheme> {
    /// Tree dissemination of a proposal with its justifying QC.
    Proposal {
        /// Proposed block.
        block: Block,
        /// QC certifying the parent (None only when extending genesis).
        qc: Option<Qc<S>>,
    },
    /// `SIGNATURE`: a vote or partial aggregate sent up the tree (or as a
    /// 2ND-CHANCE reply).
    Signature {
        /// View being voted.
        view: u64,
        /// The aggregate (single vote, subtree aggregate, or ACK echo).
        agg: S::Aggregate,
    },
    /// `ACK`: inclusion proof from a parent to its aggregated children.
    Ack {
        /// View.
        view: u64,
        /// The parent's subtree aggregate (contains the child's signature).
        agg: S::Aggregate,
    },
    /// `2ND-CHANCE`: the root re-solicits processes missing from its
    /// aggregate. Carries the block for processes that never received it.
    SecondChance {
        /// The block (processes that missed dissemination deliver it here —
        /// this is what makes Iniva's *Reliable Dissemination* hold).
        block: Block,
        /// Justifying QC for the block's parent.
        qc: Option<Qc<S>>,
    },
    /// State transfer: a replica behind the committed prefix (typically
    /// one that just restarted from its write-ahead log) asks a peer for
    /// the committed blocks it is missing.
    StateRequest(StateRequest),
    /// State transfer: a chunk of committed blocks, each paired with the
    /// QC certifying it, so the requester verifies before adopting.
    StateResponse(StateResponse<Block, Qc<S>>),
    /// `TIMEOUT` (HotStuff-style new-view exchange): broadcast when a view
    /// times out, carrying the sender's high QC so replicas that diverged
    /// during failed views converge on one certificate — and therefore one
    /// Carousel leader — within a single timeout round. The carried QC is
    /// verified before adoption; the unauthenticated `view` field is never
    /// trusted on its own (the pacemaker only fast-forwards to a view a
    /// *verified* QC proves the cluster reached).
    Timeout {
        /// The view that timed out at the sender.
        view: u64,
        /// The sender's highest known QC (None before any QC forms).
        high_qc: Option<Qc<S>>,
    },
}

impl<S: VoteScheme> Clone for InivaMsg<S> {
    fn clone(&self) -> Self {
        match self {
            InivaMsg::Proposal { block, qc } => InivaMsg::Proposal {
                block: block.clone(),
                qc: qc.clone(),
            },
            InivaMsg::Signature { view, agg } => InivaMsg::Signature {
                view: *view,
                agg: agg.clone(),
            },
            InivaMsg::Ack { view, agg } => InivaMsg::Ack {
                view: *view,
                agg: agg.clone(),
            },
            InivaMsg::SecondChance { block, qc } => InivaMsg::SecondChance {
                block: block.clone(),
                qc: qc.clone(),
            },
            InivaMsg::StateRequest(req) => InivaMsg::StateRequest(*req),
            InivaMsg::StateResponse(resp) => InivaMsg::StateResponse(StateResponse {
                blocks: resp.blocks.clone(),
                qcs: resp.qcs.clone(),
            }),
            InivaMsg::Timeout { view, high_qc } => InivaMsg::Timeout {
                view: *view,
                high_qc: high_qc.clone(),
            },
        }
    }
}

impl<S: VoteScheme> WireEncode for InivaMsg<S>
where
    S::Aggregate: WireEncode,
{
    fn encode(&self, enc: &mut Encoder) {
        match self {
            InivaMsg::Proposal { block, qc } => {
                enc.put_u8(0);
                block.encode(enc);
                enc.put_opt(qc);
            }
            InivaMsg::Signature { view, agg } => {
                enc.put_u8(1).put_u64(*view);
                agg.encode(enc);
            }
            InivaMsg::Ack { view, agg } => {
                enc.put_u8(2).put_u64(*view);
                agg.encode(enc);
            }
            InivaMsg::SecondChance { block, qc } => {
                enc.put_u8(3);
                block.encode(enc);
                enc.put_opt(qc);
            }
            InivaMsg::StateRequest(req) => {
                enc.put_u8(4);
                req.encode(enc);
            }
            InivaMsg::StateResponse(resp) => {
                enc.put_u8(5);
                resp.encode(enc);
            }
            InivaMsg::Timeout { view, high_qc } => {
                enc.put_u8(6).put_u64(*view);
                enc.put_opt(high_qc);
            }
        }
    }
}

impl<S: VoteScheme> WireDecode for InivaMsg<S>
where
    S::Aggregate: WireDecode,
{
    fn decode(dec: &mut Decoder) -> Result<Self, DecodeError> {
        match dec.get_u8()? {
            0 => Ok(InivaMsg::Proposal {
                block: Block::decode(dec)?,
                qc: dec.get_opt()?,
            }),
            1 => Ok(InivaMsg::Signature {
                view: dec.get_u64()?,
                agg: S::Aggregate::decode(dec)?,
            }),
            2 => Ok(InivaMsg::Ack {
                view: dec.get_u64()?,
                agg: S::Aggregate::decode(dec)?,
            }),
            3 => Ok(InivaMsg::SecondChance {
                block: Block::decode(dec)?,
                qc: dec.get_opt()?,
            }),
            4 => Ok(InivaMsg::StateRequest(StateRequest::decode(dec)?)),
            5 => Ok(InivaMsg::StateResponse(StateResponse::decode(dec)?)),
            6 => Ok(InivaMsg::Timeout {
                view: dec.get_u64()?,
                high_qc: dec.get_opt()?,
            }),
            tag => Err(DecodeError::InvalidTag {
                tag,
                context: "InivaMsg",
            }),
        }
    }
}

const TIMER_VIEW: u64 = 0;
const TIMER_AGG: u64 = 1;
const TIMER_SECOND_CHANCE: u64 = 2;

/// How far the high QC may run ahead of the committed prefix before the
/// replica asks a peer for state transfer. The healthy pipeline keeps the
/// gap at 2 (the two uncommitted blocks of the three-chain rule), so 3+
/// means commits happened that this replica never saw.
const STATE_SYNC_GAP: u64 = 3;

/// Bound on the `early_sigs` reorder buffer, as a multiple of committee
/// size: the buffer keeps at most one signature per `(sender, view)` pair
/// (honest senders send one per view), at most `n` entries per view, and
/// at most `EARLY_SIGS_TOTAL_FACTOR · n` entries overall, dropping the
/// oldest on overflow. Without the caps a hostile peer flooding one
/// future view would grow the buffer without bound.
const EARLY_SIGS_TOTAL_FACTOR: usize = 4;

fn timer_id(view: u64, kind: u64) -> u64 {
    view * 4 + kind
}

fn timer_kind(id: u64) -> (u64, u64) {
    (id / 4, id % 4)
}

/// Per-view aggregation state.
struct AggState<S: VoteScheme> {
    view: u64,
    /// The tree derived when the proposal was accepted — pinned so that a
    /// Carousel-context update mid-view cannot re-derive a different tree.
    tree: TreeView,
    block: Block,
    /// Accumulated aggregate (starts with the node's own vote).
    agg: S::Aggregate,
    /// Children whose signatures have been folded in.
    children_in: Vec<u32>,
    /// ACK aggregate received from the parent (inclusion proof).
    ack_agg: Option<S::Aggregate>,
    /// Whether this node already sent its aggregate/vote up.
    sent_up: bool,
    /// Root only: subtree aggregates received from internal children.
    subtrees_in: u32,
    /// Root only: whether 2ND-CHANCE messages have been sent.
    second_chance_sent: bool,
    /// Root only: whether the second-chance timer has expired.
    sc_expired: bool,
    /// Root only: whether the final QC was emitted.
    finalized: bool,
}

/// Registry handles the replica keeps once observability is bound (see
/// [`InivaReplica::set_observability`]). Updates are relaxed atomics on
/// the hot path; nothing here is consulted when observability is off.
struct ReplicaObs {
    verify_wall_ns: iniva_obs::Histogram,
    commits: iniva_obs::Counter,
    views_entered: iniva_obs::Counter,
    views_failed: iniva_obs::Counter,
    second_chances: iniva_obs::Counter,
    state_chunks: iniva_obs::Counter,
    leader_fallbacks: iniva_obs::Counter,
}

/// Per-view metrics of the aggregation layer.
#[derive(Debug, Clone, Default)]
pub struct AggMetrics {
    /// 2ND-CHANCE messages sent (root role).
    pub second_chances_sent: u64,
    /// Signatures recovered via 2ND-CHANCE replies.
    pub second_chance_recoveries: u64,
    /// Views finalized without needing 2ND-CHANCE.
    pub clean_views: u64,
}

/// An Iniva replica (Algorithm 1 + chained HotStuff).
pub struct InivaReplica<S: VoteScheme> {
    /// Committee id (== simulator NodeId).
    pub id: u32,
    cfg: InivaConfig,
    scheme: Arc<S>,
    /// Chain state (public for metric harvesting).
    pub chain: ChainState<S>,
    /// Aggregation-layer metrics.
    pub agg_metrics: AggMetrics,
    current_view: u64,
    last_voted_view: u64,
    leader_ctx: LeaderContext,
    agg: Option<AggState<S>>,
    /// Signatures that arrived before their view's proposal (message
    /// reordering under jitter); replayed once the proposal is delivered.
    early_sigs: Vec<(NodeId, u64, S::Aggregate)>,
    /// Rate limiter for state-transfer requests: committed height at the
    /// last request, when it was sent, and whom it was sent to. A new
    /// request goes out only after progress (a response advanced the
    /// prefix) or a view-timeout of silence — and a retry after silence
    /// never re-asks the peer that just stayed silent (it may be dead; the
    /// next *different* sender gets the request instead).
    last_state_request: Option<(u64, Time, NodeId)>,
    /// Consensus event tracer; disabled (free) unless
    /// [`Self::set_observability`] was called.
    tracer: Tracer,
    /// Metric handles; `None` unless observability is bound.
    obs: Option<ReplicaObs>,
}

impl<S: VoteScheme> InivaReplica<S>
where
    S::Aggregate: WireEncode,
{
    /// Creates a replica.
    pub fn new(id: u32, cfg: InivaConfig, scheme: Arc<S>) -> Self {
        let chain = ChainState::new(cfg.request_rate);
        InivaReplica {
            id,
            cfg,
            scheme,
            chain,
            agg_metrics: AggMetrics::default(),
            current_view: 1,
            last_voted_view: 0,
            leader_ctx: LeaderContext::default(),
            agg: None,
            early_sigs: Vec::new(),
            last_state_request: None,
            tracer: Tracer::disabled(),
            obs: None,
        }
    }

    /// Binds this replica to a metrics registry and event tracer. Without
    /// this call the replica records nothing and traces nothing: the
    /// default tracer reduces every emit to one branch, and no registry
    /// series exist (the tier-1 tests assert the disabled path never
    /// constructs an event).
    pub fn set_observability(&mut self, registry: &Registry, tracer: Tracer) {
        self.obs = Some(ReplicaObs {
            verify_wall_ns: registry.histogram("consensus.verify_wall_ns"),
            commits: registry.counter("consensus.commits"),
            views_entered: registry.counter("consensus.views_entered"),
            views_failed: registry.counter("consensus.views_failed"),
            second_chances: registry.counter("consensus.second_chances"),
            state_chunks: registry.counter("consensus.state_chunks"),
            leader_fallbacks: registry.counter("consensus.leader_fallbacks"),
        });
        self.tracer = tracer;
    }

    /// The bound tracer (disabled by default) — harvest hook for dumps.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Whether verification wall time is worth measuring (either sink is
    /// attached); gates the `Instant::now` pair so the disabled path
    /// never touches the clock.
    fn observing_verify(&self) -> bool {
        self.tracer.enabled() || self.obs.is_some()
    }

    /// Records one verification batch into the histogram and the trace.
    fn note_verify(
        &self,
        now: Time,
        view: u64,
        items: u32,
        t0: std::time::Instant,
        charged_ns: Time,
    ) {
        let wall_ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        if let Some(obs) = &self.obs {
            obs.verify_wall_ns.record(wall_ns);
        }
        self.tracer.emit(
            now,
            EventKind::VerifyBatch {
                view,
                items,
                wall_ns,
                charged_ns,
            },
        );
    }

    /// Emits `Committed` events (and bumps the commit counter) for every
    /// height the chain's committed prefix gained since `before` — one
    /// choke point for all three commit paths (proposal-carried QC,
    /// root finalization, state-transfer adoption).
    fn trace_commits(&self, now: Time, before: u64) {
        let after = self.chain.committed_height();
        if after <= before {
            return;
        }
        if let Some(obs) = &self.obs {
            obs.commits.add(after - before);
        }
        if self.tracer.enabled() {
            for height in before + 1..=after {
                self.tracer.emit(
                    now,
                    EventKind::Committed {
                        view: self.current_view,
                        height,
                    },
                );
            }
        }
    }

    /// Reconstructs a replica from durable state: the committed prefix
    /// (with per-block QCs where the log has them) and the highest view
    /// entered before the crash, as recovered from an
    /// `iniva-storage::ChainWal`. The chain is rehydrated (see
    /// [`ChainState::rehydrate`]), the pacemaker resumes at the recovered
    /// view, and `last_voted_view` is pinned to it — the replica may have
    /// voted in that view before dying, and voting twice in a view is the
    /// equivocation safety forbids. Anything committed by the cluster
    /// while the replica was down arrives via state transfer once the
    /// first peer message reveals the gap.
    ///
    /// Why pinning to the *journaled view* covers every possible vote:
    /// both vote paths (`handle_proposal` and the 2ND-CHANCE fresh-vote
    /// path) set `last_voted_view = W` and then, in the same handler,
    /// either enter view `W + 1` — journaling it via
    /// [`ChainState::note_view`] *inside* the handler — or were already
    /// past `W` (the `block.view == 1` late-vote exception), in which
    /// case a view `> W` is journaled. The runtime ships a handler's
    /// outbox only **after** the handler returns, i.e. after that fsync,
    /// so no vote for a view above the journaled one can ever have left
    /// the process. A crash between the vote's fsync and its send just
    /// loses an unsent vote.
    pub fn recover(
        id: u32,
        cfg: InivaConfig,
        scheme: Arc<S>,
        commits: Vec<(Block, Option<Qc<S>>)>,
        view: u64,
    ) -> Self {
        let mut replica = Self::new(id, cfg, scheme);
        replica.chain.rehydrate(commits);
        replica.current_view = view.max(1);
        replica.last_voted_view = view;
        replica
    }

    /// The deterministic tree for `view`: a shuffled assignment with the
    /// policy-chosen next leader swapped into the root position. (In the
    /// paper the shuffle itself defines the rotation; pinning the root keeps
    /// leader election pluggable — round-robin or Carousel — while the other
    /// roles stay uniformly random, which is what all analyses require.)
    pub fn tree_for_view(&self, view: u64) -> TreeView {
        tree_for_view(
            self.cfg.n,
            self.cfg.internal,
            &self.cfg.epoch_seed,
            view,
            &self.cfg.leader_policy,
            &self.leader_ctx,
        )
    }

    /// Leader of `view` = root of the tree of view `view - 1`; equivalently
    /// the policy pick for `view`. If the policy yields an id outside the
    /// committee (a Carousel pool corrupted by a hostile aggregate's signer
    /// claims), the round-robin pick stands in — mirroring the fallback in
    /// [`tree_for_view`] so this function always names the pinned tree
    /// root — and the event is counted in `consensus.leader_fallbacks`
    /// instead of aborting consensus.
    fn leader_of(&self, view: u64) -> u32 {
        let pick = self
            .cfg
            .leader_policy
            .leader(view, self.cfg.n, &self.leader_ctx);
        if pick < self.cfg.n as u32 {
            return pick;
        }
        if let Some(obs) = &self.obs {
            obs.leader_fallbacks.inc();
        }
        (view % self.cfg.n as u64) as u32
    }

    fn enter_view(&mut self, ctx: &mut Context<InivaMsg<S>>, view: u64, failed: bool) {
        if view <= self.current_view && self.chain.metrics.total_views > 0 {
            return;
        }
        self.current_view = view;
        self.chain.metrics.total_views += 1;
        if failed {
            self.chain.metrics.failed_views += 1;
        }
        if let Some(obs) = &self.obs {
            obs.views_entered.inc();
            if failed {
                obs.views_failed.inc();
            }
        }
        self.tracer.emit_with(ctx.now(), || EventKind::ViewEntered {
            view,
            leader: self.leader_of(view),
            failed,
        });
        // Durably record the pacemaker position (no-op without a sink): a
        // replica restarting from its WAL must not re-vote a view it
        // already entered.
        self.chain.note_view(view);
        ctx.set_timer(self.cfg.view_timeout, timer_id(view, TIMER_VIEW));
    }

    /// `L_v` proposes: sends the block to the tree root and the root's
    /// children (paper Fig. 1-A), then processes it locally.
    fn propose(&mut self, ctx: &mut Context<InivaMsg<S>>) {
        let view = self.current_view;
        let block = self.chain.draft_block(
            view,
            self.id,
            ctx.now(),
            self.cfg.max_batch,
            self.cfg.payload_per_req,
        );
        let qc = self.chain.highest_qc().cloned();
        self.chain.insert_block(block.clone());
        self.tracer.emit(
            ctx.now(),
            EventKind::ProposalSent {
                view,
                height: block.height,
                txs: block.batch_len,
            },
        );
        // Process the proposal locally *first* so the pinned tree (and the
        // Carousel leader bookkeeping) is derived in exactly the same order
        // as on every receiver.
        self.handle_proposal(ctx, block.clone(), qc.clone());
        let Some(st) = &self.agg else { return };
        if st.view != view {
            return;
        }
        let tree = st.tree.clone();
        let bytes = block.wire_bytes() + qc.as_ref().map_or(0, |q| q.wire_bytes(&self.scheme));
        let root = tree.root();
        let mut targets: Vec<u32> = vec![root];
        targets.extend(tree.children_of(root));
        for t in targets {
            if t != self.id {
                ctx.send(
                    t,
                    InivaMsg::Proposal {
                        block: block.clone(),
                        qc: qc.clone(),
                    },
                    bytes,
                );
            }
        }
    }

    fn validate_and_store(
        &mut self,
        ctx: &mut Context<InivaMsg<S>>,
        block: &Block,
        qc: &Option<Qc<S>>,
    ) -> bool {
        match qc {
            Some(q) => {
                let signers = q.signer_count(&self.scheme);
                ctx.charge_cpu(self.cfg.cost.verify_aggregate(signers));
                let msg = vote_message(&q.block_hash, q.view);
                if signers < quorum(self.cfg.n)
                    || q.block_hash != block.parent
                    || !self.scheme.verify(&msg, &q.agg)
                {
                    return false;
                }
                let before = self.chain.committed_height();
                self.chain.on_qc(q.clone(), ctx.now(), &self.scheme);
                self.trace_commits(ctx.now(), before);
                self.update_carousel();
            }
            None => {
                if block.parent != GENESIS_HASH {
                    return false;
                }
            }
        }
        ctx.charge_cpu(self.cfg.cost.validate_block(block.payload_bytes()));
        self.chain.insert_block(block.clone());
        true
    }

    /// Lines 7–17 of Algorithm 1.
    fn handle_proposal(&mut self, ctx: &mut Context<InivaMsg<S>>, block: Block, qc: Option<Qc<S>>) {
        if !self.validate_and_store(ctx, &block, &qc) {
            return;
        }
        if block.view <= self.last_voted_view {
            return;
        }
        if block.view < self.current_view && block.view != 1 {
            return;
        }
        self.last_voted_view = block.view;
        let view = block.view;
        self.tracer.emit(
            ctx.now(),
            EventKind::ProposalReceived {
                view,
                height: block.height,
                leader: block.proposer,
            },
        );
        let tree = self.tree_for_view(view);
        let role = tree.role_of(self.id);

        // Forward down the tree.
        let bytes = block.wire_bytes() + qc.as_ref().map_or(0, |q| q.wire_bytes(&self.scheme));
        if role == Role::Internal {
            for c in tree.children_of(self.id) {
                if c != self.id {
                    ctx.send(
                        c,
                        InivaMsg::Proposal {
                            block: block.clone(),
                            qc: qc.clone(),
                        },
                        bytes,
                    );
                }
            }
        }

        // deliver(B); vote(B).
        ctx.charge_cpu(self.cfg.cost.sign);
        let own = self
            .scheme
            .sign(self.id, &vote_message(&block.hash(), view));
        let mut st = AggState {
            view,
            tree: tree.clone(),
            block: block.clone(),
            agg: own.clone(),
            children_in: Vec::new(),
            ack_agg: None,
            sent_up: false,
            subtrees_in: 0,
            second_chance_sent: false,
            sc_expired: false,
            finalized: false,
        };

        match role {
            Role::Leaf => {
                // Leaves send their signature to their parent immediately.
                let parent = tree.parent_of(self.id).expect("leaf has a parent");
                st.sent_up = true;
                ctx.send(
                    parent,
                    InivaMsg::Signature { view, agg: own },
                    AGG_SIG_BYTES + PER_SIGNER_BYTES + 16,
                );
            }
            Role::Internal | Role::Root => {
                // Aggregators start the aggregation timer 2Δ·height(p).
                let t = 2 * self.cfg.delta * tree.height_of(self.id) as Time;
                ctx.set_timer(t, timer_id(view, TIMER_AGG));
            }
        }
        self.agg = Some(st);
        self.enter_view(ctx, view + 1, false);
        // Replay signatures that raced ahead of this proposal — as one
        // batch, so the whole buffered fan-in costs a single
        // multi-pairing.
        let ready: Vec<_> = {
            let (ready, keep): (Vec<_>, Vec<_>) = std::mem::take(&mut self.early_sigs)
                .into_iter()
                .partition(|(_, v, _)| *v == view);
            self.early_sigs = keep;
            ready
        };
        if !ready.is_empty() {
            self.handle_signatures(ctx, ready);
        }
    }

    /// Lines 18–20 (and 2ND-CHANCE replies landing at the root), single
    /// arrival: a batch of one. (Production traffic reaches
    /// [`Self::handle_signatures`] through the `Actor` dispatch; this is
    /// the single-arrival convenience used by tests.)
    #[cfg(test)]
    fn handle_signature(
        &mut self,
        ctx: &mut Context<InivaMsg<S>>,
        from: NodeId,
        view: u64,
        agg: S::Aggregate,
    ) {
        self.handle_signatures(ctx, vec![(from, view, agg)]);
    }

    /// Buffers a signature that raced ahead of its view's proposal.
    /// Bounded three ways, so a hostile peer flooding future views cannot
    /// grow the buffer without bound: newest-wins per `(sender, view)`
    /// pair, drop-oldest per view at `n` entries, and at
    /// [`EARLY_SIGS_TOTAL_FACTOR`]`·n` overall the entry for the
    /// *farthest-future* view yields — near views are the ones whose
    /// proposals arrive next, so evicting far views keeps one flooding
    /// peer from displacing other senders' imminent votes.
    fn buffer_early_sig(&mut self, from: NodeId, view: u64, agg: S::Aggregate) {
        // Saturating: `view` is raw wire input, and an entry buffered at
        // `u64::MAX` must not turn this prune into a debug-build
        // overflow panic.
        self.early_sigs
            .retain(|(_, v, _)| v.saturating_add(2) > self.current_view);
        if let Some(slot) = self
            .early_sigs
            .iter_mut()
            .find(|(f, v, _)| *f == from && *v == view)
        {
            slot.2 = agg;
            return;
        }
        let per_view_cap = self.cfg.n.max(1);
        if self
            .early_sigs
            .iter()
            .filter(|(_, v, _)| *v == view)
            .count()
            >= per_view_cap
        {
            if let Some(oldest) = self.early_sigs.iter().position(|(_, v, _)| *v == view) {
                self.early_sigs.remove(oldest);
            }
        }
        if self.early_sigs.len() >= EARLY_SIGS_TOTAL_FACTOR * per_view_cap {
            let farthest = self
                .early_sigs
                .iter()
                .enumerate()
                .max_by_key(|(_, (_, v, _))| *v)
                .map(|(i, (_, v, _))| (i, *v))
                .expect("buffer is at capacity, hence non-empty");
            if view >= farthest.1 {
                return; // incoming is the farthest future — drop it instead
            }
            self.early_sigs.remove(farthest.0);
        }
        self.early_sigs.push((from, view, agg));
    }

    /// Lines 18–20 over a *batch* of SIGNATURE messages: everything queued
    /// in one handler turn (live-transport drain) plus the `early_sigs`
    /// replay lands here together, so one multi-pairing batch
    /// verification covers the whole fan-in instead of two Miller loops
    /// per message. Cheap structural checks (duplicates, membership,
    /// multiplicity patterns) run *before* any pairing, so spam that
    /// would be rejected anyway never reaches the expensive path.
    fn handle_signatures(
        &mut self,
        ctx: &mut Context<InivaMsg<S>>,
        sigs: Vec<(NodeId, u64, S::Aggregate)>,
    ) {
        // Split off the signatures addressed to the live aggregation
        // state; buffer the early ones, drop stale ones.
        let mut batch: Vec<(NodeId, S::Aggregate)> = Vec::new();
        let mut batch_view = 0;
        for (from, view, agg) in sigs {
            let early = match &self.agg {
                None => true,
                Some(st) => st.view < view,
            };
            if early {
                // The proposal has not reached us yet: buffer and replay
                // later.
                if view >= self.current_view {
                    self.buffer_early_sig(from, view, agg);
                }
                continue;
            }
            let Some(st) = &self.agg else { continue };
            if st.view != view || st.finalized {
                continue;
            }
            batch_view = view;
            batch.push((from, agg));
        }
        if batch.is_empty() {
            return;
        }
        let Some(st) = &self.agg else { return };
        let tree = st.tree.clone();
        match tree.role_of(self.id) {
            Role::Leaf => {}
            Role::Internal => self.fold_internal_signatures(ctx, &tree, batch_view, batch),
            Role::Root => self.fold_root_signatures(ctx, &tree, batch_view, batch),
        }
    }

    /// Internal node: fold leaf votes in. Wave loop: structurally select
    /// a set of distinct valid children, verify the whole wave in one
    /// batch, fold the survivors; items skipped only because an in-batch
    /// peer claimed the same signer are retried in the next wave when
    /// that peer turned out to be a forgery.
    fn fold_internal_signatures(
        &mut self,
        ctx: &mut Context<InivaMsg<S>>,
        tree: &TreeView,
        view: u64,
        mut queue: Vec<(NodeId, S::Aggregate)>,
    ) {
        let msg = {
            let Some(st) = &self.agg else { return };
            vote_message(&st.block.hash(), view)
        };
        let children = tree.children_of(self.id);
        loop {
            let Some(st) = &self.agg else { return };
            if st.view != view || st.finalized {
                return;
            }
            let mut selected: Vec<S::Aggregate> = Vec::new();
            let mut selected_signers: Vec<u32> = Vec::new();
            let mut retry: Vec<(NodeId, S::Aggregate)> = Vec::new();
            for (from, agg) in queue.drain(..) {
                // Expect single votes from leaf children — all cheap
                // metadata checks, no pairing yet.
                let mults = self.scheme.multiplicities(&agg);
                if mults.distinct() != 1 || mults.total() != 1 {
                    continue;
                }
                let signer = mults.signers().next().unwrap();
                if !children.contains(&signer) || st.children_in.contains(&signer) {
                    continue;
                }
                if selected_signers.contains(&signer) {
                    // Blocked by an in-batch rival claiming the same
                    // signer; retry if the rival fails verification.
                    retry.push((from, agg));
                    continue;
                }
                selected_signers.push(signer);
                selected.push(agg);
            }
            if selected.is_empty() {
                return;
            }
            // assert verifies(sig, sig.signers), batched — charge the
            // multi-pairing, not per-item pairings.
            let charged_ns = self.cfg.cost.verify_batch(1, selected.len());
            ctx.charge_cpu(charged_ns);
            let verify_t0 = self.observing_verify().then(std::time::Instant::now);
            let outcome = self
                .scheme
                .verify_batch(&[(msg.as_slice(), selected.as_slice())]);
            if let Some(t0) = verify_t0 {
                self.note_verify(ctx.now(), view, selected.len() as u32, t0, charged_ns);
            }
            let culprits = outcome.culprits();
            let any_culprit = !culprits.is_empty();
            let st = self.agg.as_mut().expect("agg state checked above");
            for (i, agg) in selected.iter().enumerate() {
                if culprits.contains(&(0, i)) {
                    continue;
                }
                ctx.charge_cpu(self.cfg.cost.aggregate_combine);
                st.children_in.push(selected_signers[i]);
                st.agg = self.scheme.combine(&st.agg, agg);
            }
            if !st.sent_up && st.children_in.len() == children.len() {
                self.send_subtree_up(ctx, tree);
            }
            if !any_culprit || retry.is_empty() {
                return;
            }
            queue = retry;
        }
    }

    /// Root: fold subtree aggregates and 2ND-CHANCE replies in, batched
    /// the same way as [`Self::fold_internal_signatures`] — structural
    /// selection (disjointness against the accumulated multiset,
    /// subtree-multiplicity validation) first, one batch verification per
    /// wave, survivors folded, finalization checked once per wave.
    fn fold_root_signatures(
        &mut self,
        ctx: &mut Context<InivaMsg<S>>,
        tree: &TreeView,
        view: u64,
        mut queue: Vec<(NodeId, S::Aggregate)>,
    ) {
        let msg = {
            let Some(st) = &self.agg else { return };
            vote_message(&st.block.hash(), view)
        };
        loop {
            let Some(st) = &self.agg else { return };
            if st.view != view || st.finalized {
                return;
            }
            // Structural selection: accepted state plus in-batch
            // tentatively-selected signers must stay disjoint.
            let current = self.scheme.multiplicities(&st.agg).clone();
            let mut tentative = current.clone();
            let mut selected: Vec<S::Aggregate> = Vec::new();
            let mut selected_from: Vec<NodeId> = Vec::new();
            let mut selected_signers = 0usize;
            let mut retry: Vec<(NodeId, S::Aggregate)> = Vec::new();
            for (from, agg) in queue.drain(..) {
                let mults = self.scheme.multiplicities(&agg).clone();
                // Overlapping or redundant against accepted state — skip
                // for good (keeps multiplicities canonical).
                if mults.is_empty() || mults.signers().any(|s| current.contains(s)) {
                    continue;
                }
                if mults.signers().any(|s| tentative.contains(s)) {
                    // Disjoint from accepted state but blocked by an
                    // in-batch rival; retry if the rival fails.
                    retry.push((from, agg));
                    continue;
                }
                // Validate the multiplicity pattern for subtree aggregates.
                let from_internal = tree.role_of(from) == Role::Internal && from != self.id;
                if from_internal && mults.distinct() > 1 {
                    if !validate_subtree_multiplicities(tree, from, &mults) {
                        continue; // malformed multiplicities: reject share
                    }
                } else if mults.distinct() == 1 && mults.total() != 1 {
                    continue;
                }
                tentative = tentative.merge(&mults);
                selected_signers += mults.distinct();
                selected_from.push(from);
                selected.push(agg);
            }
            if selected.is_empty() {
                return;
            }
            let charged_ns = self.cfg.cost.verify_batch(1, selected_signers);
            ctx.charge_cpu(charged_ns);
            let verify_t0 = self.observing_verify().then(std::time::Instant::now);
            let outcome = self
                .scheme
                .verify_batch(&[(msg.as_slice(), selected.as_slice())]);
            if let Some(t0) = verify_t0 {
                self.note_verify(ctx.now(), view, selected.len() as u32, t0, charged_ns);
            }
            let culprits = outcome.culprits();
            let any_culprit = !culprits.is_empty();
            let mut folded = false;
            {
                let st = self.agg.as_mut().expect("agg state checked above");
                for (i, agg) in selected.iter().enumerate() {
                    if culprits.contains(&(0, i)) {
                        continue;
                    }
                    let mults = self.scheme.multiplicities(agg);
                    ctx.charge_cpu(self.cfg.cost.aggregate_combine);
                    if st.second_chance_sent {
                        self.agg_metrics.second_chance_recoveries += mults.distinct() as u64;
                    }
                    let from = selected_from[i];
                    let from_internal = tree.role_of(from) == Role::Internal && from != self.id;
                    if from_internal && tree.children_of(self.id).contains(&from) {
                        st.subtrees_in += 1;
                    }
                    st.agg = self.scheme.combine(&st.agg, agg);
                    folded = true;
                }
            }
            if folded {
                if self.agg.as_ref().is_some_and(|s| s.sc_expired) {
                    // Late quorum after the second-chance window: finalize
                    // as soon as it is possible again.
                    self.finalize(ctx);
                } else {
                    self.maybe_second_chance_or_finalize(ctx, tree, false);
                }
            }
            if !any_culprit || retry.is_empty() {
                return;
            }
            queue = retry;
        }
    }

    /// Internal node: send the subtree aggregate to the root and ACKs to the
    /// included children (lines 27–28). Children are folded in with
    /// multiplicity 2 and the own signature 1 + #children times (Eq. 1).
    fn send_subtree_up(&mut self, ctx: &mut Context<InivaMsg<S>>, tree: &TreeView) {
        let st = self.agg.as_mut().expect("agg state exists");
        if st.sent_up {
            return;
        }
        st.sent_up = true;
        let k = st.children_in.len() as u64;
        // st.agg currently holds own×1 + Σ children×1; doubling it and then
        // removing... simpler: rebuild from scratch is impossible (children
        // sigs are folded), so we scale the whole thing by 2 and subtract…
        // Indivisibility forbids subtraction, so instead we *construct* the
        // Eq. 1 aggregate incrementally: double everything (children → 2,
        // own → 2) then add own (k + 1 − 2) more times. k=0 keeps mult 1.
        let subtree = if k == 0 {
            st.agg.clone()
        } else {
            let doubled = self.scheme.scale(&st.agg, 2);
            let msg = vote_message(&st.block.hash(), st.view);
            let own = self.scheme.sign(self.id, &msg);
            if k >= 1 {
                // own is at 2 after doubling; target is k + 1.
                if k + 1 > 2 {
                    self.scheme
                        .combine(&doubled, &self.scheme.scale(&own, k + 1 - 2))
                } else {
                    doubled
                }
            } else {
                doubled
            }
        };
        let root = tree.root();
        let wire =
            AGG_SIG_BYTES + PER_SIGNER_BYTES * self.scheme.multiplicities(&subtree).distinct() + 16;
        if root != self.id {
            ctx.send(
                root,
                InivaMsg::Signature {
                    view: st.view,
                    agg: subtree.clone(),
                },
                wire,
            );
        }
        let children = st.children_in.clone();
        for c in children {
            ctx.send(
                c,
                InivaMsg::Ack {
                    view: st.view,
                    agg: subtree.clone(),
                },
                wire,
            );
        }
    }

    /// Root: give missing processes a 2ND-CHANCE (lines 22–25) once the
    /// tree has reported (all subtree aggregates in) or the aggregation
    /// timer fired, then finalize when the second-chance timer expires
    /// (lines 39–40).
    ///
    /// Deviation from the paper's "once a QC has been collected" trigger:
    /// we wait for tree *completion* rather than a bare quorum, so the
    /// fallback stays dormant in fault-free runs (the paper's own claim in
    /// Section V-C); under faults the aggregation timer provides the same
    /// bound the paper's analysis uses.
    fn maybe_second_chance_or_finalize(
        &mut self,
        ctx: &mut Context<InivaMsg<S>>,
        tree: &TreeView,
        timer_fired: bool,
    ) {
        let n = self.cfg.n;
        let internal_children = tree.children_of(tree.root()).len() as u32;
        let st = self.agg.as_mut().expect("agg state exists");
        if st.finalized {
            return;
        }
        let included = self.scheme.multiplicities(&st.agg).distinct();
        let have_quorum = included >= quorum(n);
        let tree_complete = st.subtrees_in >= internal_children;

        if !self.cfg.second_chance {
            // Iniva-No2C: finalize when the tree has reported (or the
            // timer forces the issue) and a quorum exists.
            if (tree_complete && have_quorum) || timer_fired {
                self.finalize(ctx);
            }
            return;
        }

        let trigger = if self.cfg.sc_on_quorum {
            have_quorum || tree_complete || timer_fired
        } else {
            tree_complete || timer_fired
        };
        if !st.second_chance_sent && trigger {
            st.second_chance_sent = true;
            let current = self.scheme.multiplicities(&st.agg).clone();
            let missing: Vec<u32> = (0..n as u32).filter(|m| !current.contains(*m)).collect();
            if missing.is_empty() {
                self.agg_metrics.clean_views += 1;
                self.finalize(ctx);
                return;
            }
            if let Some(obs) = &self.obs {
                obs.second_chances.inc();
            }
            self.tracer.emit(
                ctx.now(),
                EventKind::SecondChance {
                    view: tree.view,
                    missing: missing.len() as u32,
                },
            );
            let qc = self.chain.highest_qc().cloned();
            let bytes =
                st.block.wire_bytes() + qc.as_ref().map_or(0, |q| q.wire_bytes(&self.scheme));
            let block = st.block.clone();
            for m in missing {
                self.agg_metrics.second_chances_sent += 1;
                ctx.send(
                    m,
                    InivaMsg::SecondChance {
                        block: block.clone(),
                        qc: qc.clone(),
                    },
                    bytes,
                );
            }
            ctx.set_timer(
                self.cfg.sc_timer(),
                timer_id(tree.view, TIMER_SECOND_CHANCE),
            );
        }
    }

    /// Root: emit the QC and, as `L_{v+1}`, propose the next block.
    fn finalize(&mut self, ctx: &mut Context<InivaMsg<S>>) {
        let st = self.agg.as_mut().expect("agg state exists");
        if st.finalized {
            return;
        }
        let included = self.scheme.multiplicities(&st.agg).distinct();
        if included < quorum(self.cfg.n) {
            return; // cannot form a QC; the view will time out
        }
        st.finalized = true;
        let qc = Qc {
            block_hash: st.block.hash(),
            view: st.view,
            height: st.block.height,
            agg: st.agg.clone(),
        };
        let view = st.view;
        let height = st.block.height;
        self.tracer
            .emit(ctx.now(), EventKind::QcFormed { view, height });
        let before = self.chain.committed_height();
        self.chain.on_qc(qc, ctx.now(), &self.scheme);
        self.trace_commits(ctx.now(), before);
        self.update_carousel();
        self.enter_view(ctx, view + 1, false);
        // The tree root *is* L_{v+1} by construction (every replica pinned
        // this node into the root slot when building the view-v tree), so
        // it proposes unconditionally — re-deriving leader_of(v+1) here
        // would use the *new* QC's voter set, which the tree predates.
        self.propose(ctx);
    }

    fn handle_ack(&mut self, _ctx: &mut Context<InivaMsg<S>>, view: u64, agg: S::Aggregate) {
        let Some(st) = &mut self.agg else { return };
        if st.view != view {
            return;
        }
        // Line 30's `assert verifies(sig)` is applied *lazily*: the ACK is
        // only a proof forwarded verbatim in a 2ND-CHANCE reply (the root
        // verifies it then), so eager pairing verification here would burn
        // CPU on every block for no protocol effect. We check the cheap
        // metadata claim (our signature must be inside).
        if !self.scheme.multiplicities(&agg).contains(self.id) {
            return; // an ACK that does not include us is no inclusion proof
        }
        st.ack_agg = Some(agg);
    }

    /// Lines 32–38: reply to 2ND-CHANCE with the parent's ACK aggregate when
    /// available (so the sender cannot exclude us), otherwise our signature.
    fn handle_second_chance(
        &mut self,
        ctx: &mut Context<InivaMsg<S>>,
        from: NodeId,
        block: Block,
        qc: Option<Qc<S>>,
    ) {
        let view = block.view;
        // isValid: the sender must be the root of this view's tree (derive
        // it from the pinned state when available).
        let tree = match &self.agg {
            Some(st) if st.view == view => st.tree.clone(),
            _ => self.tree_for_view(view),
        };
        if tree.root() != from {
            return;
        }
        // If the block is new (we never received the proposal), deliver and
        // vote now (lines 34–37) — this is Reliable Dissemination's fallback.
        let fresh = self.agg.as_ref().is_none_or(|st| st.view < view);
        if fresh {
            if !self.validate_and_store(ctx, &block, &qc) {
                return;
            }
            if view > self.last_voted_view {
                self.last_voted_view = view;
                ctx.charge_cpu(self.cfg.cost.sign);
                let own = self
                    .scheme
                    .sign(self.id, &vote_message(&block.hash(), view));
                self.agg = Some(AggState {
                    view,
                    tree: tree.clone(),
                    block: block.clone(),
                    agg: own,
                    children_in: Vec::new(),
                    ack_agg: None,
                    sent_up: true,
                    subtrees_in: 0,
                    second_chance_sent: false,
                    sc_expired: false,
                    finalized: false,
                });
                self.enter_view(ctx, view + 1, false);
            }
        }
        let Some(st) = &self.agg else { return };
        if st.view != view {
            return;
        }
        let reply = match &st.ack_agg {
            Some(ack) => ack.clone(),
            None => {
                let msg = vote_message(&st.block.hash(), view);
                self.scheme.sign(self.id, &msg)
            }
        };
        let wire =
            AGG_SIG_BYTES + PER_SIGNER_BYTES * self.scheme.multiplicities(&reply).distinct() + 16;
        ctx.send(from, InivaMsg::Signature { view, agg: reply }, wire);
    }

    /// Sends a [`StateRequest`] to `from` when the high QC has run further
    /// ahead of the committed prefix than the pipeline explains
    /// ([`STATE_SYNC_GAP`]) — the catch-up trigger for replicas that
    /// restarted from their WAL or were partitioned past 2ND-CHANCE
    /// reach. Rate-limited: one request per prefix-advance or per
    /// view-timeout of silence, so a busy cluster is not flooded while a
    /// transfer is in flight.
    fn maybe_request_state(&mut self, ctx: &mut Context<InivaMsg<S>>, from: NodeId) {
        if from == self.id {
            return;
        }
        let committed = self.chain.committed_height();
        let (_, high) = self.chain.high_tip();
        if high <= committed + STATE_SYNC_GAP {
            return;
        }
        let now = ctx.now();
        if let Some((at_height, at_time, target)) = self.last_state_request {
            let progressed = committed > at_height;
            let timed_out = now.saturating_sub(at_time) > self.cfg.view_timeout;
            if !progressed && !timed_out {
                return;
            }
            // The previous target went a full view-timeout without helping
            // (likely dead): retry only against a *different* peer, or the
            // limiter re-arms on the dead one and the gap never closes.
            if !progressed && timed_out && from == target {
                return;
            }
        }
        self.last_state_request = Some((committed, now, from));
        ctx.send(
            from,
            InivaMsg::StateRequest(StateRequest {
                from_height: committed + 1,
            }),
            16,
        );
    }

    /// Serves a [`StateRequest`]: committed blocks (with their QCs) from
    /// the requested height, bounded by **encoded bytes**
    /// ([`MAX_STATE_RESPONSE_BYTES`]) rather than block count — a QC's
    /// encoding grows with its signer set (48 bytes of compressed point
    /// plus per-signer entries under BLS), so a count-only cap could
    /// overshoot the frame budget on large committees. At least one entry
    /// always ships (progress even past an oversized one);
    /// [`MAX_STATE_BLOCKS`] still caps the entry count for the decoder's
    /// sake. An empty answerable range sends nothing — the requester
    /// retries against the next peer it hears from.
    fn handle_state_request(
        &mut self,
        ctx: &mut Context<InivaMsg<S>>,
        from: NodeId,
        from_height: u64,
    ) {
        if from == self.id {
            return;
        }
        let mut blocks = Vec::new();
        let mut qcs = Vec::new();
        let mut modeled = 4usize;
        let mut encoded = 4usize; // count prefix
        for (block, qc) in self.chain.committed_range(from_height, MAX_STATE_BLOCKS) {
            // Measuring by actually encoding costs a second serialization
            // when the transport later ships the response; accepted —
            // state transfer is a rare catch-up path, and arithmetic size
            // formulas would silently drift from the real codec.
            let entry = block.to_wire().len() + qc.to_wire().len();
            if !blocks.is_empty() && encoded + entry > MAX_STATE_RESPONSE_BYTES {
                break;
            }
            encoded += entry;
            modeled += block.wire_bytes() + qc.wire_bytes(&self.scheme);
            blocks.push(block.clone());
            qcs.push(qc.clone());
        }
        if blocks.is_empty() {
            return;
        }
        ctx.send(
            from,
            InivaMsg::StateResponse(StateResponse { blocks, qcs }),
            modeled,
        );
    }

    /// Adopts a [`StateResponse`] chunk: the whole chunk's QCs are
    /// verified in **one** multi-pairing batch (each QC certifies a
    /// distinct message, so the batch costs `1 + #blocks` Miller loops
    /// and a single final exponentiation instead of two Miller loops per
    /// block — see [`ChainState::adopt_committed_batch`]); the first
    /// invalid or non-contiguous entry stops the chunk. A still-open gap
    /// re-triggers [`Self::maybe_request_state`] on the next QC observed.
    fn handle_state_response(
        &mut self,
        ctx: &mut Context<InivaMsg<S>>,
        from: NodeId,
        response: StateResponse<Block, Qc<S>>,
    ) {
        let items: Vec<(Block, Qc<S>)> = response.blocks.into_iter().zip(response.qcs).collect();
        if !items.is_empty() {
            let before = self.chain.committed_height();
            let outcome = self.chain.adopt_committed_batch(items, &self.scheme);
            // Bill only what actually reached crypto: a chunk rejected by
            // the cheap structural pass costs no pairing-equivalent time.
            if outcome.verified_entries > 0 {
                ctx.charge_cpu(
                    self.cfg
                        .cost
                        .verify_batch(outcome.verified_entries, outcome.verified_signers),
                );
            }
            if outcome.adopted > 0 {
                if let Some(obs) = &self.obs {
                    obs.state_chunks.inc();
                }
                self.tracer.emit(
                    ctx.now(),
                    EventKind::StateChunk {
                        from,
                        blocks: outcome.adopted as u64,
                    },
                );
            }
            self.trace_commits(ctx.now(), before);
        }
        self.update_carousel();
    }

    /// Handles a peer's `TIMEOUT` broadcast: verifies the carried high QC
    /// and, if it beats the local one, adopts it — converging leader
    /// election with the sender — and fast-forwards the pacemaker to the
    /// view *the certificate proves* the cluster reached. Ordering is
    /// strict: cheap structural checks (quorum size) run before the
    /// pairing-equivalent batch verification, and nothing about the
    /// message is trusted until the QC verifies; in particular the
    /// unauthenticated `view` field alone never moves the pacemaker, so a
    /// hostile flood of far-future TIMEOUTs cannot drag honest replicas
    /// out of their views.
    fn handle_timeout(
        &mut self,
        ctx: &mut Context<InivaMsg<S>>,
        from: NodeId,
        timeout_view: u64,
        high_qc: Option<Qc<S>>,
    ) {
        if from == self.id {
            return;
        }
        let Some(qc) = high_qc else { return };
        // Dedup before crypto: a QC no better than what we hold teaches us
        // nothing (the height comparison mirrors `ChainState::on_qc`).
        if self
            .chain
            .highest_qc()
            .is_some_and(|held| qc.height <= held.height)
        {
            return;
        }
        let signers = qc.signer_count(&self.scheme);
        if signers < quorum(self.cfg.n) {
            return;
        }
        // The existing batch path: one group, one multi-pairing under BLS.
        let charged_ns = self.cfg.cost.verify_batch(1, signers);
        ctx.charge_cpu(charged_ns);
        let msg = vote_message(&qc.block_hash, qc.view);
        let verify_t0 = self.observing_verify().then(std::time::Instant::now);
        let outcome = self
            .scheme
            .verify_batch(&[(msg.as_slice(), std::slice::from_ref(&qc.agg))]);
        if let Some(t0) = verify_t0 {
            self.note_verify(ctx.now(), timeout_view, 1, t0, charged_ns);
        }
        if !outcome.culprits().is_empty() {
            return;
        }
        let qc_view = qc.view;
        let before = self.chain.committed_height();
        self.chain.on_qc(qc, ctx.now(), &self.scheme);
        self.trace_commits(ctx.now(), before);
        self.update_carousel();
        self.tracer.emit(
            ctx.now(),
            EventKind::TimeoutQcAdopted {
                view: timeout_view,
                qc_view,
            },
        );
        // Certificate-anchored fast-forward: a verified QC for view `v`
        // proves a quorum reached `v`, so entering `v + 1` is safe and
        // re-synchronizes a replica whose pacemaker fell behind. (The
        // post-dispatch state-transfer probe then closes any committed-
        // prefix gap the adopted QC just revealed.)
        if qc_view >= self.current_view {
            let next = qc_view + 1;
            self.enter_view(ctx, next, false);
            // Same shape as the view-timer path: if the fast-forwarded view
            // elects this replica, proposing now saves a full timeout.
            if self.leader_of(next) == self.id {
                self.propose(ctx);
            }
        }
    }

    /// Refreshes the Carousel context from chain state: voters of the QC
    /// certifying the latest *committed* block, and the proposers of the
    /// last `f` committed blocks — sampled at [`CAROUSEL_WINDOW_EPOCH`]
    /// boundaries — as the recent-leader window (Cohen et al.'s
    /// exclusion). Both are pure functions of the committed prefix — which
    /// state transfer already converges across replicas — so every replica
    /// sharing the prefix elects the same leader. (The previous
    /// implementation read the volatile high QC, which diverges during
    /// failed views with nothing circulating certificates: the root cause
    /// of the live Carousel collapse.) The window additionally must not
    /// slide with every commit: replicas transiently skewed by one
    /// committed block would exclude different candidates and diverge
    /// again — quantizing the sample boundary keeps them in agreement
    /// whenever the skew stays inside one epoch. The pool's anchor view
    /// arms the fault-adaptive fallback in [`LeaderPolicy::Carousel`].
    fn update_carousel(&mut self) {
        // Anchor on the committed tip once one exists. Before the first
        // commit the high QC is the only certificate available, and the
        // TIMEOUT exchange converges it across replicas within one
        // timeout round — rotating over its voters beats burning view
        // timeouts on crashed replicas picked round-robin from the full
        // committee. After the first commit the high QC is never
        // consulted again: post-commit high QCs legitimately diverge
        // across replicas during failed views, and electing from them
        // is exactly what caused the live collapse.
        let qc = if self.chain.committed_height() == 0 {
            self.chain.highest_qc()
        } else {
            self.chain.committed_tip_qc()
        };
        if let Some(qc) = qc {
            let voters: Vec<u32> = self.scheme.multiplicities(&qc.agg).signers().collect();
            let anchor = qc.view;
            self.leader_ctx.set_committed_voters(voters);
            self.leader_ctx.anchor_view = anchor;
            let f = (self.cfg.n - 1) / 3;
            let h = self.chain.committed_height();
            let boundary = h - h % CAROUSEL_WINDOW_EPOCH;
            self.leader_ctx
                .set_recent_leaders(self.chain.committed_proposers_ending_at(boundary, f));
        }
    }

    /// The view this replica is currently in (progress hook for chaos
    /// harnesses: surviving replicas must keep advancing views while a
    /// partition stalls commits, and converge again after a heal).
    pub fn current_view(&self) -> u64 {
        self.current_view
    }

    /// The final QC formed for the current aggregation (test/metric hook).
    pub fn current_agg_signers(&self) -> usize {
        self.agg
            .as_ref()
            .map_or(0, |st| self.scheme.multiplicities(&st.agg).distinct())
    }
}

/// Builds the deterministic tree for `view` with the policy-chosen leader of
/// `view + 1` pinned to the root position.
pub fn tree_for_view(
    n: usize,
    internal: u32,
    epoch_seed: &[u8; 32],
    view: u64,
    policy: &LeaderPolicy,
    leader_ctx: &LeaderContext,
) -> TreeView {
    let mut perm: Vec<u32> = {
        let a = Assignment::shuffle(n, epoch_seed, view);
        (0..n as u32).map(|p| a.member_at(p)).collect()
    };
    let next_leader = policy.leader(view + 1, n, leader_ctx);
    // A policy fed corrupt context (e.g. a Carousel pool holding an
    // out-of-committee id from a hostile aggregate) must not abort
    // consensus: fall back to the round-robin pick, which is always a
    // committee member. Callers with metrics count the event via
    // [`InivaReplica::tree_for_view`].
    let pos = perm
        .iter()
        .position(|&m| m == next_leader)
        .unwrap_or_else(|| {
            let rr = (view + 1) % n as u64;
            perm.iter()
                .position(|&m| m as u64 == rr)
                .expect("round-robin leader in committee")
        });
    perm.swap(0, pos);
    let topology = Topology::new(n as u32, internal).expect("valid topology");
    TreeView::with_assignment(topology, Assignment::from_permutation(perm), view)
}

impl<S: VoteScheme> Actor for InivaReplica<S>
where
    S::Aggregate: WireEncode,
{
    type Msg = InivaMsg<S>;

    fn on_start(&mut self, ctx: &mut Context<InivaMsg<S>>) {
        // A fresh replica starts in view 1; a WAL-recovered one resumes at
        // the view it had entered before the crash and waits to be
        // contacted (its view timer keeps the pacemaker rotating if the
        // cluster is gone too). Entering through `enter_view` (its guard
        // passes here: no view has been counted yet) journals the starting
        // view via `ChainState::note_view` — a replica crashing in view 1
        // must not restart believing it never entered it.
        let view = self.current_view;
        self.enter_view(ctx, view, false);
        if view == 1 && self.leader_of(1) == self.id {
            self.propose(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<InivaMsg<S>>, from: NodeId, msg: InivaMsg<S>) {
        // One dispatch table for both delivery paths: a single message is
        // a batch of one (identical behavior, including the per-message
        // overhead charge and the post-dispatch state-transfer probe).
        self.on_messages(ctx, vec![(from, msg)]);
    }

    /// Live-transport drain: consecutive SIGNATURE messages queued in one
    /// handler turn are folded through [`Self::handle_signatures`] as one
    /// batch (a view's fan-in at the root verifies under a single
    /// multi-pairing); every other message type dispatches in arrival
    /// order, flushing the pending signature run first so per-sender
    /// ordering is preserved.
    fn on_messages(&mut self, ctx: &mut Context<InivaMsg<S>>, batch: Vec<(NodeId, InivaMsg<S>)>) {
        let mut sigs: Vec<(NodeId, u64, S::Aggregate)> = Vec::new();
        let mut senders: Vec<NodeId> = Vec::new();
        for (from, msg) in batch {
            ctx.charge_cpu(self.cfg.cost.msg_overhead);
            if !senders.contains(&from) {
                senders.push(from);
            }
            match msg {
                InivaMsg::Signature { view, agg } => sigs.push((from, view, agg)),
                other => {
                    if !sigs.is_empty() {
                        self.handle_signatures(ctx, std::mem::take(&mut sigs));
                    }
                    match other {
                        InivaMsg::Proposal { block, qc } => self.handle_proposal(ctx, block, qc),
                        InivaMsg::Ack { view, agg } => self.handle_ack(ctx, view, agg),
                        InivaMsg::SecondChance { block, qc } => {
                            self.handle_second_chance(ctx, from, block, qc)
                        }
                        InivaMsg::StateRequest(req) => {
                            self.handle_state_request(ctx, from, req.from_height)
                        }
                        InivaMsg::StateResponse(resp) => {
                            self.handle_state_response(ctx, from, resp)
                        }
                        InivaMsg::Timeout { view, high_qc } => {
                            self.handle_timeout(ctx, from, view, high_qc)
                        }
                        InivaMsg::Signature { .. } => unreachable!("matched above"),
                    }
                }
            }
        }
        if !sigs.is_empty() {
            self.handle_signatures(ctx, sigs);
        }
        for from in senders {
            self.maybe_request_state(ctx, from);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<InivaMsg<S>>, id: u64) {
        let (view, kind) = timer_kind(id);
        match kind {
            TIMER_VIEW => {
                if view != self.current_view {
                    return;
                }
                self.tracer.emit(
                    ctx.now(),
                    EventKind::TimerFired {
                        view,
                        kind: TimerKind::View,
                    },
                );
                // New-view exchange: broadcast our high QC so replicas that
                // diverged during the failed view converge on one
                // certificate (and one Carousel pool) before re-electing.
                // Without this nothing circulates QCs while views fail, and
                // divergent replicas elect divergent leaders indefinitely.
                let high_qc = self.chain.highest_qc().cloned();
                self.tracer.emit_with(ctx.now(), || EventKind::TimeoutSent {
                    view,
                    high_qc_view: high_qc.as_ref().map_or(0, |q| q.view),
                });
                let bytes = 16 + high_qc.as_ref().map_or(0, |q| q.wire_bytes(&self.scheme));
                for peer in 0..self.cfg.n as u32 {
                    if peer != self.id {
                        ctx.send(
                            peer,
                            InivaMsg::Timeout {
                                view,
                                high_qc: high_qc.clone(),
                            },
                            bytes,
                        );
                    }
                }
                let next = self.current_view + 1;
                self.enter_view(ctx, next, true);
                if self.leader_of(next) == self.id {
                    self.propose(ctx);
                }
            }
            TIMER_AGG => {
                let Some(st) = &self.agg else { return };
                if st.view != view || st.finalized {
                    return;
                }
                self.tracer.emit(
                    ctx.now(),
                    EventKind::TimerFired {
                        view,
                        kind: TimerKind::Agg,
                    },
                );
                let tree = st.tree.clone();
                match tree.role_of(self.id) {
                    Role::Internal => self.send_subtree_up(ctx, &tree),
                    Role::Root => self.maybe_second_chance_or_finalize(ctx, &tree, true),
                    Role::Leaf => {}
                }
            }
            TIMER_SECOND_CHANCE => {
                let Some(st) = &mut self.agg else { return };
                if st.view != view || st.finalized {
                    return;
                }
                st.sc_expired = true;
                self.tracer.emit(
                    ctx.now(),
                    EventKind::TimerFired {
                        view,
                        kind: TimerKind::SecondChance,
                    },
                );
                self.finalize(ctx);
            }
            _ => unreachable!("unknown timer kind"),
        }
    }
}

#[cfg(test)]
mod batching_tests {
    use super::*;
    use iniva_crypto::multisig::{BatchOutcome, Multiplicities, SignerId};
    use iniva_crypto::sim_scheme::{SimAggregate, SimScheme};
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A [`SimScheme`] wrapper counting how many aggregates were actually
    /// handed to cryptographic verification — the regression hook for
    /// "cheap structural checks run before expensive pairings".
    struct CountingScheme {
        inner: SimScheme,
        verified_items: AtomicUsize,
    }

    impl CountingScheme {
        fn new(n: usize, seed: &[u8]) -> Self {
            CountingScheme {
                inner: SimScheme::new(n, seed),
                verified_items: AtomicUsize::new(0),
            }
        }

        fn verified(&self) -> usize {
            self.verified_items.load(Ordering::Relaxed)
        }
    }

    impl VoteScheme for CountingScheme {
        type Aggregate = SimAggregate;

        fn sign(&self, signer: SignerId, msg: &[u8]) -> SimAggregate {
            self.inner.sign(signer, msg)
        }
        fn combine(&self, a: &SimAggregate, b: &SimAggregate) -> SimAggregate {
            self.inner.combine(a, b)
        }
        fn scale(&self, a: &SimAggregate, k: u64) -> SimAggregate {
            self.inner.scale(a, k)
        }
        fn verify(&self, msg: &[u8], agg: &SimAggregate) -> bool {
            self.verified_items.fetch_add(1, Ordering::Relaxed);
            self.inner.verify(msg, agg)
        }
        fn verify_batch(&self, groups: &[(&[u8], &[SimAggregate])]) -> BatchOutcome {
            let items: usize = groups.iter().map(|(_, aggs)| aggs.len()).sum();
            self.verified_items.fetch_add(items, Ordering::Relaxed);
            self.inner.verify_batch(groups)
        }
        fn multiplicities<'a>(&self, agg: &'a SimAggregate) -> &'a Multiplicities {
            &agg.mults
        }
        fn committee_size(&self) -> usize {
            self.inner.committee_size()
        }
    }

    fn genesis_block(view: u64) -> Block {
        Block {
            view,
            height: 1,
            parent: GENESIS_HASH,
            proposer: 0,
            batch_start: 0,
            batch_len: 0,
            payload_per_req: 0,
        }
    }

    /// A replica holding a given role in the view-1 tree, with the view-1
    /// proposal already delivered.
    fn replica_with_role(
        role: Role,
        scheme: Arc<CountingScheme>,
    ) -> (InivaReplica<CountingScheme>, Block, TreeView) {
        let cfg = InivaConfig::for_tests(7, 2);
        let tree = tree_for_view(
            cfg.n,
            cfg.internal,
            &cfg.epoch_seed,
            1,
            &cfg.leader_policy,
            &LeaderContext::default(),
        );
        let id = (0..cfg.n as u32)
            .find(|&id| {
                tree.role_of(id) == role
                    && (role != Role::Internal || !tree.children_of(id).is_empty())
            })
            .expect("role present in a 7-node tree");
        let mut replica = InivaReplica::new(id, cfg, scheme);
        let block = genesis_block(1);
        let mut ctx = Context::external(id, 0);
        replica.handle_proposal(&mut ctx, block.clone(), None);
        assert!(replica.agg.is_some(), "proposal accepted");
        (replica, block, tree)
    }

    #[test]
    fn duplicate_spam_costs_no_extra_verifications() {
        let scheme = Arc::new(CountingScheme::new(7, b"dup-spam"));
        let (mut replica, block, tree) = replica_with_role(Role::Internal, Arc::clone(&scheme));
        let child = tree.children_of(replica.id)[0];
        let msg = vote_message(&block.hash(), 1);
        let sig = scheme.sign(child, &msg);
        let mut ctx = Context::external(replica.id, 0);
        let before = scheme.verified();
        replica.handle_signature(&mut ctx, child, 1, sig.clone());
        assert_eq!(scheme.verified() - before, 1, "first copy verifies once");
        // The spammed duplicates must be rejected by the cheap duplicate
        // check *before* any verification is charged.
        for _ in 0..50 {
            replica.handle_signature(&mut ctx, child, 1, sig.clone());
        }
        assert_eq!(
            scheme.verified() - before,
            1,
            "duplicates reached the crypto layer"
        );
        // Out-of-committee / malformed multiplicity shapes are also free.
        let double = scheme.scale(&scheme.sign(child, &msg), 2);
        replica.handle_signature(&mut ctx, child, 1, double);
        assert_eq!(scheme.verified() - before, 1);
    }

    #[test]
    fn root_batch_folds_honest_signatures_and_drops_forgeries() {
        let scheme = Arc::new(CountingScheme::new(7, b"root-batch"));
        let (mut replica, block, _tree) = replica_with_role(Role::Root, Arc::clone(&scheme));
        let msg = vote_message(&block.hash(), 1);
        let root = replica.id;
        let others: Vec<u32> = (0..7).filter(|&m| m != root).collect();
        // Three honest single votes and one forgery (wrong message bytes
        // under a plausible claimed signer), delivered as ONE batch — the
        // live transport's drain shape.
        let honest: Vec<u32> = others[..3].to_vec();
        let forger = others[3];
        let mut batch: Vec<(NodeId, u64, SimAggregate)> = honest
            .iter()
            .map(|&m| (m, 1, scheme.sign(m, &msg)))
            .collect();
        let mut forged = scheme.sign(forger, b"wrong message");
        forged.mults = Multiplicities::singleton(forger);
        batch.insert(1, (forger, 1, forged));
        let before = scheme.verified();
        let mut ctx = Context::external(root, 0);
        replica.handle_signatures(&mut ctx, batch);
        // One batched pass over the four candidates (the SimScheme default
        // per-item fallback counts each item once), no per-item retries.
        assert_eq!(scheme.verified() - before, 4);
        let st = replica.agg.as_ref().expect("aggregation live");
        let mults = scheme.multiplicities(&st.agg);
        assert!(mults.contains(root), "own vote");
        for m in honest {
            assert!(mults.contains(m), "honest vote {m} folded");
        }
        assert!(!mults.contains(forger), "forgery dropped");
        assert!(scheme.inner.verify(&msg, &st.agg), "accumulator verifies");
    }

    #[test]
    fn early_sig_buffer_is_bounded_against_floods() {
        let scheme = Arc::new(CountingScheme::new(7, b"early-flood"));
        let cfg = InivaConfig::for_tests(7, 2);
        let n = cfg.n;
        let mut replica = InivaReplica::new(0, cfg, Arc::clone(&scheme));
        let mut ctx = Context::external(0, 0);
        // No proposal delivered: every future-view signature is buffered.
        // One hostile sender flooding a single future view occupies ONE
        // slot (newest wins per sender/view pair).
        for i in 0..100u32 {
            let sig = scheme.sign(i % 7, b"spam");
            replica.handle_signature(&mut ctx, 3, 40, sig);
        }
        assert_eq!(replica.early_sigs.len(), 1);
        // Distinct senders to one view are capped at committee size.
        for sender in 0..100u32 {
            let sig = scheme.sign(sender % 7, b"spam");
            replica.handle_signature(&mut ctx, sender, 40, sig);
        }
        assert!(
            replica.early_sigs.len() <= n,
            "per-view cap exceeded: {}",
            replica.early_sigs.len()
        );
        // Flooding many views hits the total cap; the farthest-future
        // entries yield, so the views whose proposals arrive next are the
        // ones that survive.
        for view in 2..200u64 {
            let sig = scheme.sign((view % 7) as u32, b"spam");
            replica.handle_signature(&mut ctx, (view % 7) as NodeId, view, sig);
        }
        assert!(
            replica.early_sigs.len() <= EARLY_SIGS_TOTAL_FACTOR * n,
            "total cap exceeded: {}",
            replica.early_sigs.len()
        );
        assert!(
            replica.early_sigs.iter().any(|(_, v, _)| *v == 2),
            "the nearest future view must survive the flood"
        );
        assert!(
            !replica.early_sigs.iter().any(|(_, v, _)| *v == 199),
            "the farthest future view must have yielded"
        );
        // Verification was never charged for buffered signatures.
        assert_eq!(scheme.verified(), 0);
    }

    #[test]
    fn extreme_view_numbers_do_not_panic_the_buffer() {
        // `view` is raw wire input: buffering u64::MAX and then pruning
        // must not overflow (debug builds panic on `u64::MAX + 2`).
        let scheme = Arc::new(CountingScheme::new(7, b"early-extreme"));
        let cfg = InivaConfig::for_tests(7, 2);
        let mut replica = InivaReplica::new(0, cfg, Arc::clone(&scheme));
        let mut ctx = Context::external(0, 0);
        replica.handle_signature(&mut ctx, 1, u64::MAX, scheme.sign(1, b"spam"));
        // The next buffered signature re-runs the prune over the
        // u64::MAX entry.
        replica.handle_signature(&mut ctx, 2, 5, scheme.sign(2, b"spam"));
        assert!(replica.early_sigs.iter().any(|(_, v, _)| *v == 5));
        assert_eq!(scheme.verified(), 0);
    }
}

#[cfg(test)]
mod state_sync_tests {
    use super::*;
    use iniva_crypto::multisig::Multiplicities;
    use iniva_crypto::sim_scheme::{SimAggregate, SimScheme, Tag};
    use iniva_net::wire::Codec;

    /// A committed prefix of `count` chained blocks, each certified by a
    /// QC carrying `signers` distinct signers (what a long-lived large
    /// committee accumulates). Serving never verifies, so the aggregates
    /// are constructed directly — `count × signers` sequential
    /// sign/combine calls would be quadratic in the multiplicity-table
    /// size and dominate test wall time at the sizes used here.
    fn committed_prefix(count: u64, signers: u32) -> Vec<(Block, Option<Qc<SimScheme>>)> {
        let mults = Multiplicities::from_iter((0..signers).map(|s| (s, 1)));
        let mut parent = GENESIS_HASH;
        let mut out = Vec::new();
        for h in 1..=count {
            let block = Block {
                view: h,
                height: h,
                parent,
                proposer: 0,
                batch_start: 0,
                batch_len: 0,
                payload_per_req: 0,
            };
            parent = block.hash();
            let qc = Qc {
                block_hash: block.hash(),
                view: h,
                height: h,
                agg: SimAggregate {
                    tag: Tag(h as u128, 0),
                    mults: mults.clone(),
                },
            };
            out.push((block, Some(qc)));
        }
        out
    }

    /// Serves one StateRequest against a replica holding `prefix`,
    /// returning the responded chunk (None if nothing was sent).
    fn serve(
        scheme: &Arc<SimScheme>,
        cfg: &InivaConfig,
        prefix: Vec<(Block, Option<Qc<SimScheme>>)>,
        from_height: u64,
    ) -> Option<StateResponse<Block, Qc<SimScheme>>> {
        let view = prefix.last().map_or(1, |(b, _)| b.view + 1);
        let mut replica = InivaReplica::recover(0, cfg.clone(), Arc::clone(scheme), prefix, view);
        let mut ctx = Context::external(0, 0);
        replica.handle_state_request(&mut ctx, 1, from_height);
        let effects = ctx.into_effects();
        let mut responses = effects.outbox.into_iter().map(|(to, msg, _)| {
            assert_eq!(to, 1);
            match msg {
                InivaMsg::StateResponse(resp) => resp,
                other => panic!("unexpected message {other:?}"),
            }
        });
        responses.next()
    }

    /// With a large committee the per-entry QC encoding dominates, and the
    /// chunk must stop at the encoded-byte budget — well before the
    /// MAX_STATE_BLOCKS count cap — with the boundary exactly tight: one
    /// more entry would cross it.
    #[test]
    fn state_response_chunks_by_encoded_bytes_at_the_boundary() {
        let n = 200usize;
        let signers = 150u32;
        let scheme = Arc::new(SimScheme::new(n, b"state-sync"));
        let cfg = InivaConfig::for_tests(n, 2);
        let total = 300u64;
        let prefix = committed_prefix(total, signers);

        let resp = serve(&scheme, &cfg, prefix.clone(), 1).expect("a chunk is served");
        let served = resp.blocks.len() as u64;
        assert!(
            served < total,
            "byte budget must bind before the range ends"
        );
        assert!(served > 0);
        let body = resp.to_frame().len();
        assert!(
            body <= MAX_STATE_RESPONSE_BYTES,
            "encoded chunk {body} exceeds the byte budget"
        );
        // Tight at the boundary: the first unserved entry would not fit.
        let (next_block, next_qc) = &prefix[served as usize];
        let next = next_block.to_wire().len() + next_qc.as_ref().unwrap().to_wire().len();
        assert!(
            body + next > MAX_STATE_RESPONSE_BYTES,
            "chunk stopped early: {body} + {next} fits the budget"
        );

        // Follow-up rounds (the requester's gap detector re-fires) cover
        // the remainder: chunks tile the range without holes or overlap.
        let resp2 = serve(&scheme, &cfg, prefix.clone(), served + 1).expect("second chunk");
        assert_eq!(resp2.blocks[0].height, served + 1);
        let covered = served + resp2.blocks.len() as u64;
        assert!(covered > served, "second round advances");
    }

    /// A single entry larger than the whole budget must still ship —
    /// alone — or the requester would be stranded behind it forever.
    #[test]
    fn oversized_single_entry_still_makes_progress() {
        // ~22k signers × 12 bytes/entry ≈ 264 KiB: one QC alone crosses
        // MAX_STATE_RESPONSE_BYTES (256 KiB).
        let n = 22_000usize;
        let scheme = Arc::new(SimScheme::new(n, b"state-sync-huge"));
        let cfg = InivaConfig::for_tests(n, 2);
        let prefix = committed_prefix(2, n as u32);
        let entry_bytes =
            prefix[0].0.to_wire().len() + prefix[0].1.as_ref().unwrap().to_wire().len();
        assert!(entry_bytes > MAX_STATE_RESPONSE_BYTES, "test premise");

        let resp = serve(&scheme, &cfg, prefix.clone(), 1).expect("progress");
        assert_eq!(resp.blocks.len(), 1, "exactly the oversized head entry");
        assert_eq!(resp.blocks[0].height, 1);
        let resp2 = serve(&scheme, &cfg, prefix, 2).expect("next round");
        assert_eq!(resp2.blocks[0].height, 2);
    }
}

#[cfg(test)]
mod wire_tests {
    use super::*;
    use iniva_crypto::sim_scheme::{SimAggregate, SimScheme};
    use iniva_net::wire::Codec;

    fn sample_block() -> Block {
        Block {
            view: 3,
            height: 2,
            parent: [9u8; 32],
            proposer: 1,
            batch_start: 77,
            batch_len: 10,
            payload_per_req: 64,
        }
    }

    fn sample_qc(s: &SimScheme, b: &Block) -> Qc<SimScheme> {
        let msg = vote_message(&b.hash(), b.view);
        let agg = s.combine(&s.sign(0, &msg), &s.scale(&s.sign(2, &msg), 2));
        Qc {
            block_hash: b.hash(),
            view: b.view,
            height: b.height,
            agg,
        }
    }

    fn variants() -> Vec<InivaMsg<SimScheme>> {
        let s = SimScheme::new(4, b"wire-tests");
        let b = sample_block();
        let qc = sample_qc(&s, &b);
        let agg = s.combine(&s.sign(1, b"m"), &s.sign(3, b"m"));
        vec![
            InivaMsg::Proposal {
                block: b.clone(),
                qc: Some(qc.clone()),
            },
            InivaMsg::Proposal {
                block: b.clone(),
                qc: None,
            },
            InivaMsg::Signature {
                view: 5,
                agg: agg.clone(),
            },
            InivaMsg::Ack { view: 6, agg },
            InivaMsg::SecondChance {
                block: b.clone(),
                qc: Some(qc.clone()),
            },
            InivaMsg::StateRequest(StateRequest { from_height: 42 }),
            InivaMsg::StateResponse(StateResponse {
                blocks: vec![b.clone(), b],
                qcs: vec![qc.clone(), qc.clone()],
            }),
            InivaMsg::Timeout {
                view: 7,
                high_qc: Some(qc),
            },
            InivaMsg::Timeout {
                view: 8,
                high_qc: None,
            },
        ]
    }

    fn assert_msg_eq(a: &InivaMsg<SimScheme>, b: &InivaMsg<SimScheme>) {
        // InivaMsg has no PartialEq (aggregates are scheme-defined);
        // compare through the canonical encoding instead.
        assert_eq!(&a.to_frame()[..], &b.to_frame()[..]);
    }

    #[test]
    fn every_variant_roundtrips() {
        for m in variants() {
            let frame = m.to_frame();
            let back: InivaMsg<SimScheme> = Codec::from_frame(frame).unwrap();
            assert_msg_eq(&m, &back);
        }
    }

    #[test]
    fn truncation_never_panics() {
        for m in variants() {
            let frame = m.to_frame();
            for cut in 0..frame.len() {
                assert!(
                    InivaMsg::<SimScheme>::from_frame(frame.slice(0..cut)).is_err(),
                    "prefix of {cut} bytes decoded as a full message"
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        for m in variants() {
            let mut enc = iniva_net::wire::Encoder::new();
            m.encode(&mut enc);
            enc.put_u8(0);
            assert!(matches!(
                InivaMsg::<SimScheme>::from_frame(enc.finish()),
                Err(DecodeError::TrailingBytes { .. })
            ));
        }
    }

    #[test]
    fn unknown_discriminant_rejected() {
        let mut enc = iniva_net::wire::Encoder::new();
        enc.put_u8(9).put_u64(1);
        assert!(matches!(
            InivaMsg::<SimScheme>::from_frame(enc.finish()),
            Err(DecodeError::InvalidTag { tag: 9, .. })
        ));
    }

    #[test]
    fn decoded_aggregates_still_verify() {
        let s = SimScheme::new(4, b"wire-tests");
        let msg = b"payload";
        let agg = s.combine(&s.sign(0, msg), &s.sign(1, msg));
        let m: InivaMsg<SimScheme> = InivaMsg::Signature { view: 2, agg };
        let back: InivaMsg<SimScheme> = Codec::from_frame(m.to_frame()).unwrap();
        match back {
            InivaMsg::Signature { view, agg } => {
                assert_eq!(view, 2);
                assert!(s.verify(msg, &agg));
            }
            other => panic!("wrong variant {other:?}"),
        }
    }

    #[allow(clippy::extra_unused_type_parameters)]
    fn assert_codec<T: Codec>() {}

    #[test]
    fn protocol_messages_satisfy_the_codec_contract() {
        // Compile-time check that both backends can ship these enums,
        // under either vote scheme.
        use iniva_crypto::bls::{BlsAggregate, BlsScheme};
        assert_codec::<InivaMsg<SimScheme>>();
        assert_codec::<iniva_consensus::StarMsg<SimScheme>>();
        assert_codec::<SimAggregate>();
        assert_codec::<Qc<SimScheme>>();
        assert_codec::<InivaMsg<BlsScheme>>();
        assert_codec::<iniva_consensus::StarMsg<BlsScheme>>();
        assert_codec::<BlsAggregate>();
        assert_codec::<Qc<BlsScheme>>();
        assert_codec::<Block>();
    }
}

#[cfg(test)]
mod leader_agreement_tests {
    use super::*;
    use iniva_crypto::multisig::Multiplicities;
    use iniva_crypto::sim_scheme::SimScheme;

    const N: usize = 4;

    fn carousel_cfg() -> InivaConfig {
        let mut cfg = InivaConfig::for_tests(N, 2);
        cfg.leader_policy = LeaderPolicy::Carousel;
        cfg
    }

    /// A properly signed committed prefix of `count` chained blocks —
    /// unlike `state_sync_tests::committed_prefix`, the QCs here are real
    /// sign/combine aggregates over `vote_message`, so the adopting
    /// replica's batch verification accepts them. Proposers rotate so the
    /// recent-leader window is non-trivial.
    fn signed_prefix(
        scheme: &SimScheme,
        count: u64,
        signers: &[u32],
    ) -> Vec<(Block, Qc<SimScheme>)> {
        let mut parent = GENESIS_HASH;
        let mut out = Vec::new();
        for h in 1..=count {
            let block = Block {
                view: h,
                height: h,
                parent,
                proposer: (h % N as u64) as u32,
                batch_start: 0,
                batch_len: 0,
                payload_per_req: 0,
            };
            parent = block.hash();
            let msg = vote_message(&block.hash(), block.view);
            let mut agg = scheme.sign(signers[0], &msg);
            for &s in &signers[1..] {
                agg = scheme.combine(&agg, &scheme.sign(s, &msg));
            }
            let qc = Qc {
                block_hash: block.hash(),
                view: block.view,
                height: block.height,
                agg,
            };
            out.push((block, qc));
        }
        out
    }

    /// Delivers one message through the full dispatch path (including the
    /// post-dispatch state-transfer probe) and returns the outbox.
    fn deliver(
        r: &mut InivaReplica<SimScheme>,
        from: u32,
        msg: InivaMsg<SimScheme>,
        now: Time,
    ) -> Vec<(NodeId, InivaMsg<SimScheme>, usize)> {
        let mut ctx = Context::external(r.id, now);
        r.on_message(&mut ctx, from, msg);
        ctx.into_effects().outbox
    }

    fn fire_view_timer(
        r: &mut InivaReplica<SimScheme>,
        now: Time,
    ) -> Vec<(NodeId, InivaMsg<SimScheme>, usize)> {
        let view = r.current_view();
        let mut ctx = Context::external(r.id, now);
        r.on_timer(&mut ctx, timer_id(view, TIMER_VIEW));
        ctx.into_effects().outbox
    }

    /// The tentpole property: two replicas whose QC knowledge diverged (one
    /// saw a committed prefix the other never did) elect divergent leaders;
    /// a single timeout round — the TIMEOUT broadcast plus the state
    /// transfer its adopted QC triggers — converges them.
    #[test]
    fn timeout_round_converges_diverged_leader_election() {
        let scheme = Arc::new(SimScheme::new(N, b"leader-agree"));
        let cfg = carousel_cfg();
        let mut a = InivaReplica::new(0, cfg.clone(), Arc::clone(&scheme));
        let mut b = InivaReplica::new(1, cfg, Arc::clone(&scheme));

        // Deliver a committed prefix (voters {0, 2, 3}) to A only.
        let prefix = signed_prefix(&scheme, 6, &[0, 2, 3]);
        let (blocks, qcs): (Vec<_>, Vec<_>) = prefix.into_iter().unzip();
        deliver(
            &mut a,
            2,
            InivaMsg::StateResponse(StateResponse { blocks, qcs }),
            0,
        );
        assert_eq!(a.chain.committed_height(), 6, "A adopted the prefix");
        assert_eq!(b.chain.committed_height(), 0, "B never saw it");

        // Divergence: A elects from its Carousel pool, B round-robins.
        assert!(
            (1..=8).any(|v| a.leader_of(v) != b.leader_of(v)),
            "diverged replicas should elect divergent leaders"
        );

        // One timeout round. A's view timer fires: it broadcasts TIMEOUT
        // with its high QC to every peer.
        let out = fire_view_timer(&mut a, 1);
        let to_b = out
            .iter()
            .find_map(|(to, msg, _)| match (to, msg) {
                (1, InivaMsg::Timeout { .. }) => Some(msg.clone()),
                _ => None,
            })
            .expect("A broadcasts TIMEOUT to B");
        // B verifies + adopts the carried QC, fast-forwards, and its
        // state-transfer probe fires at A.
        let out = deliver(&mut b, 0, to_b, 2);
        assert!(
            b.chain.highest_qc().is_some_and(|qc| qc.height == 6),
            "B adopted A's high QC"
        );
        let req = out
            .into_iter()
            .find(|(to, msg, _)| *to == 0 && matches!(msg, InivaMsg::StateRequest(_)))
            .map(|(_, msg, _)| msg)
            .expect("the adopted QC opens a gap; B asks A for state");
        // A serves the request; B adopts the committed prefix.
        let out = deliver(&mut a, 1, req, 3);
        let resp = out
            .into_iter()
            .find(|(to, msg, _)| *to == 1 && matches!(msg, InivaMsg::StateResponse(_)))
            .map(|(_, msg, _)| msg)
            .expect("A serves the committed prefix");
        deliver(&mut b, 0, resp, 4);
        assert_eq!(b.chain.committed_height(), 6, "B caught up");

        // Agreement: both replicas now elect the same leader for every
        // upcoming view.
        for v in 1..=20 {
            assert_eq!(
                a.leader_of(v),
                b.leader_of(v),
                "replicas disagree on the leader of view {v}"
            );
        }
        // And the pool really is the committed-tip voter set (minus the
        // recent-leader window), not round-robin.
        assert!(
            (7..=15).any(|v| a.leader_of(v) != (v % N as u64) as u32),
            "Carousel should deviate from round-robin for some view"
        );
    }

    /// The recent-leader window is sampled at [`CAROUSEL_WINDOW_EPOCH`]
    /// boundaries of the committed height, not slid on every commit: a
    /// per-commit window differs between replicas transiently skewed by
    /// one block, re-diverging the very election the committed-tip pool
    /// just converged.
    #[test]
    fn recent_leader_window_is_epoch_sampled() {
        let scheme = Arc::new(SimScheme::new(N, b"epoch-window"));
        let mut r = InivaReplica::new(0, carousel_cfg(), Arc::clone(&scheme));
        // One block past an epoch boundary; proposers rotate `h % N`.
        let count = CAROUSEL_WINDOW_EPOCH + 1;
        let prefix = signed_prefix(&scheme, count, &[0, 2, 3]);
        let (blocks, qcs): (Vec<_>, Vec<_>) = prefix.into_iter().unzip();
        deliver(
            &mut r,
            2,
            InivaMsg::StateResponse(StateResponse { blocks, qcs }),
            0,
        );
        assert_eq!(r.chain.committed_height(), count);
        // f = (4-1)/3 = 1: the window holds the proposer of the *boundary*
        // block (height 8), not the tip (height 9) a sliding window would
        // name.
        let window: Vec<u32> = r.leader_ctx.recent_leaders.iter().copied().collect();
        let boundary_proposer = (CAROUSEL_WINDOW_EPOCH % N as u64) as u32;
        let tip_proposer = (count % N as u64) as u32;
        assert_eq!(window, vec![boundary_proposer]);
        assert_ne!(window, vec![tip_proposer]);
    }

    /// Hostile TIMEOUT: a forged high QC (claimed quorum, bad signature)
    /// and a sub-quorum one are both rejected — nothing adopted, the
    /// pacemaker unmoved; the unauthenticated `view` field alone never
    /// drags the replica forward.
    #[test]
    fn hostile_timeout_qc_is_rejected_and_not_adopted() {
        let scheme = Arc::new(SimScheme::new(N, b"hostile-timeout"));
        let mut r = InivaReplica::new(0, carousel_cfg(), Arc::clone(&scheme));

        let block = Block {
            view: 9,
            height: 9,
            parent: [7u8; 32],
            proposer: 1,
            batch_start: 0,
            batch_len: 0,
            payload_per_req: 0,
        };
        // Forged: signature over the wrong message, multiplicity table
        // rewritten to claim a quorum of signers.
        let mut forged = scheme.sign(1, b"wrong message");
        forged.mults = Multiplicities::from_iter((0..3).map(|s| (s, 1)));
        let forged_qc = Qc {
            block_hash: block.hash(),
            view: block.view,
            height: block.height,
            agg: forged,
        };
        deliver(
            &mut r,
            1,
            InivaMsg::Timeout {
                view: 50,
                high_qc: Some(forged_qc),
            },
            0,
        );
        assert!(r.chain.highest_qc().is_none(), "forged QC must not adopt");
        assert_eq!(
            r.current_view(),
            1,
            "claimed view must not move the pacemaker"
        );
        assert!(r.leader_ctx.committed_voters.is_empty());

        // Sub-quorum: honestly signed by 2 of 4 (< quorum of 3); rejected
        // by the cheap structural check before any crypto.
        let msg = vote_message(&block.hash(), block.view);
        let weak = scheme.combine(&scheme.sign(0, &msg), &scheme.sign(1, &msg));
        let weak_qc = Qc {
            block_hash: block.hash(),
            view: block.view,
            height: block.height,
            agg: weak,
        };
        deliver(
            &mut r,
            2,
            InivaMsg::Timeout {
                view: 50,
                high_qc: Some(weak_qc),
            },
            1,
        );
        assert!(
            r.chain.highest_qc().is_none(),
            "sub-quorum QC must not adopt"
        );
        assert_eq!(r.current_view(), 1);

        // A TIMEOUT with no QC at all is a no-op.
        deliver(
            &mut r,
            3,
            InivaMsg::Timeout {
                view: 50,
                high_qc: None,
            },
            2,
        );
        assert_eq!(r.current_view(), 1);
    }

    /// A valid TIMEOUT QC fast-forwards the pacemaker only to the view the
    /// *certificate* proves (qc.view + 1), never to the sender's claimed
    /// timeout view.
    #[test]
    fn timeout_fast_forward_is_certificate_anchored() {
        let scheme = Arc::new(SimScheme::new(N, b"ff-timeout"));
        let mut r = InivaReplica::new(0, carousel_cfg(), Arc::clone(&scheme));
        let prefix = signed_prefix(&scheme, 1, &[0, 1, 2]);
        let (_, qc) = prefix.into_iter().next().unwrap();
        deliver(
            &mut r,
            1,
            InivaMsg::Timeout {
                view: 1_000_000, // hostile far-future claim
                high_qc: Some(qc),
            },
            0,
        );
        assert!(r.chain.highest_qc().is_some_and(|q| q.height == 1));
        assert_eq!(
            r.current_view(),
            2,
            "pacemaker follows the certified view (qc.view + 1), not the claim"
        );
    }

    /// The Carousel pool is derived from the *committed* tip, not the
    /// volatile high QC: adopting a bare QC (no committed block) must not
    /// move the pool.
    #[test]
    fn carousel_pool_anchors_to_committed_tip_not_high_qc() {
        let scheme = Arc::new(SimScheme::new(N, b"pool-anchor"));
        let mut r = InivaReplica::new(0, carousel_cfg(), Arc::clone(&scheme));

        // Before the first commit, the pool bootstraps from the high QC:
        // it is the only certificate there is, and the TIMEOUT exchange
        // converges it, so rotating over its voters beats round-robin
        // over a committee that may include crashed replicas.
        let (_, qc) = signed_prefix(&scheme, 1, &[1, 2, 3])
            .into_iter()
            .next()
            .unwrap();
        deliver(
            &mut r,
            1,
            InivaMsg::Timeout {
                view: 1,
                high_qc: Some(qc),
            },
            0,
        );
        assert!(r.chain.highest_qc().is_some(), "QC adopted");
        assert_eq!(
            r.leader_ctx.committed_voters,
            vec![1, 2, 3],
            "pre-commit, the pool bootstraps from the high QC"
        );

        // Commit a prefix: the pool re-anchors to the committed tip's QC.
        let prefix = signed_prefix(&scheme, 6, &[0, 2, 3]);
        let (blocks, qcs): (Vec<_>, Vec<_>) = prefix.into_iter().unzip();
        deliver(
            &mut r,
            2,
            InivaMsg::StateResponse(StateResponse { blocks, qcs }),
            0,
        );
        assert!(r.chain.committed_height() > 0, "prefix committed");
        assert_eq!(r.leader_ctx.committed_voters, vec![0, 2, 3]);
        let anchored = r.leader_ctx.anchor_view;

        // Once a commit exists, a higher uncommitted QC must NOT move the
        // pool: post-commit high QCs diverge across replicas during
        // failed views, and following them is the live-collapse bug.
        let (_, high) = signed_prefix(&scheme, 8, &[0, 1, 2])
            .into_iter()
            .last()
            .unwrap();
        deliver(
            &mut r,
            1,
            InivaMsg::Timeout {
                view: 8,
                high_qc: Some(high),
            },
            1,
        );
        assert_eq!(
            r.leader_ctx.committed_voters,
            vec![0, 2, 3],
            "post-commit, the pool must not follow an uncommitted QC"
        );
        assert_eq!(r.leader_ctx.anchor_view, anchored);
    }

    /// An out-of-committee id in the Carousel pool (hostile aggregate
    /// claiming phantom signers) must not panic tree derivation: the
    /// round-robin pick takes the root instead.
    #[test]
    fn out_of_committee_pool_falls_back_to_round_robin() {
        let scheme = Arc::new(SimScheme::new(N, b"oob-pool"));
        let mut r = InivaReplica::new(0, carousel_cfg(), Arc::clone(&scheme));
        r.leader_ctx.set_committed_voters(vec![99]);
        for view in 1..=6u64 {
            r.leader_ctx.anchor_view = view; // keep the stall fallback quiet
            let rr = ((view + 1) % N as u64) as u32;
            assert_eq!(r.leader_of(view + 1), rr, "leader_of falls back");
            let tree = r.tree_for_view(view);
            assert_eq!(tree.root(), rr, "tree root matches the fallback leader");
        }
    }

    /// A timed-out state request is retried against a *different* peer —
    /// re-asking the silent (likely dead) target would wedge catch-up.
    #[test]
    fn state_request_retry_avoids_the_silent_target() {
        let scheme = Arc::new(SimScheme::new(N, b"retry-target"));
        let cfg = carousel_cfg();
        let timeout = cfg.view_timeout;
        let mut r = InivaReplica::new(0, cfg, Arc::clone(&scheme));
        // Open a gap: a high QC at height 6 with nothing committed.
        let (_, qc) = signed_prefix(&scheme, 6, &[0, 1, 2]).pop().unwrap();
        r.chain.on_qc(qc, 0, &scheme);
        assert_eq!(r.chain.committed_height(), 0);

        let probe = |r: &mut InivaReplica<SimScheme>, from: u32, now: Time| {
            let mut ctx = Context::external(0, now);
            r.maybe_request_state(&mut ctx, from);
            ctx.into_effects().outbox
        };
        // First probe: request goes to peer 1.
        let out = probe(&mut r, 1, 0);
        assert!(
            matches!(out.as_slice(), [(1, InivaMsg::StateRequest(_), _)]),
            "first request targets peer 1"
        );
        // Within the timeout: rate-limited, regardless of sender.
        assert!(probe(&mut r, 2, timeout / 2).is_empty());
        // Past the timeout with no progress: the silent target is skipped…
        assert!(
            probe(&mut r, 1, timeout + 1).is_empty(),
            "the dead peer must not be re-asked"
        );
        // …but a different live peer gets the retry.
        let out = probe(&mut r, 2, timeout + 2);
        assert!(
            matches!(out.as_slice(), [(2, InivaMsg::StateRequest(_), _)]),
            "retry targets a different peer"
        );
    }

    /// `on_start` journals the starting view: a replica crashing in view 1
    /// must not restart believing it never entered it.
    #[test]
    fn on_start_journals_the_first_view() {
        use iniva_consensus::chain::CommitSink;
        #[derive(Default)]
        struct ViewSink(std::sync::Arc<std::sync::Mutex<Vec<u64>>>);
        impl CommitSink<SimScheme> for ViewSink {
            fn committed(&mut self, _: &Block, _: Option<&Qc<SimScheme>>) {}
            fn entered_view(&mut self, view: u64) {
                self.0.lock().unwrap().push(view);
            }
        }
        let scheme = Arc::new(SimScheme::new(N, b"start-journal"));
        let mut r = InivaReplica::new(2, carousel_cfg(), Arc::clone(&scheme));
        let sink = ViewSink::default();
        let views = std::sync::Arc::clone(&sink.0);
        r.chain.set_commit_sink(Box::new(sink));
        let mut ctx = Context::external(2, 0);
        r.on_start(&mut ctx);
        assert_eq!(&*views.lock().unwrap(), &[1], "view 1 journaled on start");
        assert_eq!(r.chain.metrics.total_views, 1, "counted exactly once");
        let timers = ctx.into_effects().timers;
        assert!(
            timers.iter().any(|&(_, id)| id == timer_id(1, TIMER_VIEW)),
            "view timer armed"
        );
    }

    /// Every view timeout broadcasts TIMEOUT to all peers, carrying the
    /// sender's high QC (None before any QC forms).
    #[test]
    fn view_timeout_broadcasts_to_all_peers() {
        let scheme = Arc::new(SimScheme::new(N, b"timeout-bcast"));
        let mut r = InivaReplica::new(0, carousel_cfg(), Arc::clone(&scheme));
        let out = fire_view_timer(&mut r, 1);
        let mut targets: Vec<u32> = out
            .iter()
            .filter_map(|(to, msg, _)| {
                matches!(
                    msg,
                    InivaMsg::Timeout {
                        view: 1,
                        high_qc: None
                    }
                )
                .then_some(*to)
            })
            .collect();
        targets.sort_unstable();
        assert_eq!(targets, vec![1, 2, 3], "every peer hears the timeout");
        assert_eq!(r.current_view(), 2, "the pacemaker still advances");
    }
}
