//! Targeted vote-omission attack analysis (paper Sections IV-B and VII-A).
//!
//! Contains the closed-form omission probabilities (Theorem 4, Table I) and
//! the *structural success predicates* that mirror Algorithm 1's fallback
//! behaviour — the Monte-Carlo simulations in `iniva-sim` evaluate these
//! predicates over random role assignments.

use iniva_tree::{Role, TreeView};
use std::collections::HashSet;

/// 0-omission probability of a star protocol with round-robin leaders:
/// the attacker succeeds whenever it holds the leader — `m`.
pub fn star_omission_probability(m: f64) -> f64 {
    m
}

/// 0-omission probability of Iniva (Theorem 4): the attacker must hold two
/// specific roles simultaneously — `m^2`.
pub fn iniva_omission_probability(m: f64) -> f64 {
    m * m
}

/// Outcome of a structural attack evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackOutcome {
    /// The victim's vote is omitted from the QC.
    Omitted {
        /// Number of non-victim processes excluded alongside (collateral).
        collateral: u32,
    },
    /// The fallback paths re-added the victim: attack failed.
    Failed,
}

/// Evaluates whether a targeted vote-omission succeeds in one Iniva round,
/// given the view's tree, the previous leader `l_v` (who disseminates the
/// block), the attacker's processes and the victim, with collateral budget
/// `max_collateral`.
///
/// The predicate encodes Algorithm 1's guarantees:
///
/// * a **leaf victim** is omitted with collateral 0 only if the attacker
///   controls both the tree root (`L_{v+1}`) and the victim's parent
///   (indivisibility blocks the root; the 2ND-CHANCE path re-adds a victim
///   omitted by its parent alone);
/// * with only the root, a leaf victim can be omitted solely by dropping
///   its *entire branch* (the subtree aggregate and every sibling's ACK
///   echo contain the victim's signature) — collateral = branch − 1;
/// * an **internal victim** is omitted with collateral 0 if the attacker
///   controls both `L_v` and the root: `L_v` withholds the proposal from the
///   victim and the root collects the victim's children via 2ND-CHANCE;
/// * with only the root, an internal victim can be dropped together with
///   its subtree aggregate; its children's ACK replies contain the victim,
///   so they become collateral;
/// * a **root victim** cannot be omitted (it aggregates its own vote).
pub fn evaluate_attack(
    tree: &TreeView,
    l_v: u32,
    attackers: &HashSet<u32>,
    victim: u32,
    max_collateral: u32,
) -> AttackOutcome {
    debug_assert!(!attackers.contains(&victim));
    let root = tree.root();
    let root_controlled = attackers.contains(&root);
    match tree.role_of(victim) {
        Role::Root => AttackOutcome::Failed,
        Role::Leaf => {
            if !root_controlled {
                return AttackOutcome::Failed;
            }
            let parent = tree.parent_of(victim).expect("leaf has parent");
            if attackers.contains(&parent) {
                return AttackOutcome::Omitted { collateral: 0 };
            }
            // Drop the whole branch: parent + siblings become collateral.
            let branch = tree.branch_of(parent);
            let collateral = branch.len() as u32 - 1;
            if collateral <= max_collateral {
                AttackOutcome::Omitted { collateral }
            } else {
                AttackOutcome::Failed
            }
        }
        Role::Internal => {
            if root_controlled && attackers.contains(&l_v) {
                // L_v withholds the proposal from the victim; the root
                // collects the children individually via 2ND-CHANCE.
                return AttackOutcome::Omitted { collateral: 0 };
            }
            if root_controlled {
                // Drop the victim's subtree aggregate; the children's ACK
                // echoes all contain the victim, so they are excluded too.
                let collateral = tree.children_of(victim).len() as u32;
                if collateral <= max_collateral {
                    return AttackOutcome::Omitted { collateral };
                }
            }
            AttackOutcome::Failed
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iniva_crypto::shuffle::Assignment;
    use iniva_tree::Topology;

    /// identity tree, n = 7, internal = {1, 2}: leaves 3,5 under 1; 4,6 under 2.
    fn tree() -> TreeView {
        TreeView::with_assignment(Topology::new(7, 2).unwrap(), Assignment::identity(7), 0)
    }

    fn set(ids: &[u32]) -> HashSet<u32> {
        ids.iter().copied().collect()
    }

    #[test]
    fn leaf_victim_needs_root_and_parent() {
        let t = tree();
        // Victim 3 (leaf under internal 1), root is 0.
        assert_eq!(
            evaluate_attack(&t, 5, &set(&[0, 1]), 3, 0),
            AttackOutcome::Omitted { collateral: 0 }
        );
        // Parent alone is not enough (2ND-CHANCE re-adds the victim).
        assert_eq!(
            evaluate_attack(&t, 5, &set(&[1]), 3, 9),
            AttackOutcome::Failed
        );
        // Root alone with zero collateral fails (branch drop needs budget).
        assert_eq!(
            evaluate_attack(&t, 5, &set(&[0]), 3, 0),
            AttackOutcome::Failed
        );
    }

    #[test]
    fn root_alone_can_drop_the_branch_with_collateral() {
        let t = tree();
        // Branch of internal 1 = {1, 3, 5}: dropping it to omit victim 3
        // costs 2 collateral.
        assert_eq!(
            evaluate_attack(&t, 5, &set(&[0]), 3, 2),
            AttackOutcome::Omitted { collateral: 2 }
        );
        assert_eq!(
            evaluate_attack(&t, 5, &set(&[0]), 3, 1),
            AttackOutcome::Failed
        );
    }

    #[test]
    fn internal_victim_needs_both_leaders() {
        let t = tree();
        // Victim 1 (internal); root 0 and previous leader 6 controlled.
        assert_eq!(
            evaluate_attack(&t, 6, &set(&[0, 6]), 1, 0),
            AttackOutcome::Omitted { collateral: 0 }
        );
        // Root alone: must take the children as collateral.
        assert_eq!(
            evaluate_attack(&t, 5, &set(&[0]), 1, 2),
            AttackOutcome::Omitted { collateral: 2 }
        );
        assert_eq!(
            evaluate_attack(&t, 5, &set(&[0]), 1, 1),
            AttackOutcome::Failed
        );
    }

    #[test]
    fn root_victim_cannot_be_omitted() {
        let t = tree();
        assert_eq!(
            evaluate_attack(&t, 5, &set(&[1, 2, 3, 4]), 0, 10),
            AttackOutcome::Failed
        );
    }

    #[test]
    fn closed_forms() {
        assert_eq!(star_omission_probability(0.1), 0.1);
        assert!((iniva_omission_probability(0.1) - 0.01).abs() < 1e-15);
    }
}
