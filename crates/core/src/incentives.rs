//! Game-theoretic incentive analysis (paper Section VI).
//!
//! The system is modeled as a two-player game between an honest player
//! `p_h` and an attacker `p_a` controlling a fraction `m < 0.5` of the
//! committee. Strategies are `S(e_l, e_v, e_a, e_p)`:
//!
//! * `e_l` — **vote omission**: as leader, omit `e_l·n` of the other
//!   player's votes (bounded by `e_l ≤ f` for a valid block);
//! * `e_v` — **vote denial**: `e_v·n` controlled processes do not vote;
//! * `e_a` — **aggregation denial**: `e_a·n` controlled leaves bypass their
//!   parent and reply via 2ND-CHANCE instead (punished);
//! * `e_p` — **aggregation omission**: controlled internal processes skip
//!   aggregating `e_p·n` signatures of the other player (punishing them).
//!
//! Each attack forfeits some of the attacker's reward; forfeited and
//! punished rewards are redistributed evenly, of which the attacker
//! recovers only a fraction `m`. The utilities below are per-round payoff
//! *changes* relative to honest behavior `S0 = S(0,0,0,0)` in units of the
//! block reward `R`; Theorem 3 states every strategy is dominated by `S0`
//! whenever Equations 3 and 5 hold.

use crate::rewards::RewardParams;

/// The fault-tolerance fraction (the paper uses `f = 1/3`).
pub const F: f64 = 1.0 / 3.0;

/// A strategy `S(e_l, e_v, e_a, e_p)` (all parameters are fractions of `n`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Strategy {
    /// Votes omitted by a controlled leader.
    pub el: f64,
    /// Controlled processes refraining from voting.
    pub ev: f64,
    /// Controlled leaves denying aggregation (2ND-CHANCE instead).
    pub ea: f64,
    /// Signatures of others left unaggregated by controlled internals.
    pub ep: f64,
}

impl Strategy {
    /// The honest strategy `S0`.
    pub const HONEST: Strategy = Strategy {
        el: 0.0,
        ev: 0.0,
        ea: 0.0,
        ep: 0.0,
    };
}

/// Equation 3: the leader-bonus lower bound that makes vote omission
/// unprofitable: `b_l > m·f / (1 - m + m·f)`.
pub fn eq3_vote_omission_bound(m: f64, f: f64) -> f64 {
    m * f / (1.0 - m + m * f)
}

/// Equation 5: the leader-bonus upper bound that makes vote denial
/// unprofitable: `b_l < f(1 - b_a - m) / (m + f - m·f)`.
pub fn eq5_vote_denial_bound(ba: f64, m: f64, f: f64) -> f64 {
    f * (1.0 - ba - m) / (m + f - m * f)
}

/// True when the reward parameters satisfy both bounds for attacker power
/// `m` (and hence Theorem 3 applies).
pub fn incentive_compatible(params: &RewardParams, m: f64, f: f64) -> bool {
    params.leader_bonus > eq3_vote_omission_bound(m, f)
        && params.leader_bonus < eq5_vote_denial_bound(params.aggregation_bonus, m, f)
}

/// Utility change (in units of `R`) for the **vote omission** part
/// `S(e_l, 0, 0, 0)`: the leader loses `e_l/f·b_l` of the variational bonus
/// but recovers `m` of everything redistributed
/// (`e_l/f·b_l + e_l·b_a + e_l·b_v`).
pub fn utility_vote_omission(params: &RewardParams, m: f64, f: f64, el: f64) -> f64 {
    let bl = params.leader_bonus;
    let ba = params.aggregation_bonus;
    let bv = params.voting();
    -el / f * bl + m * (el / f * bl + el * ba + el * bv)
}

/// Utility change for the **vote denial** part `S(0, e_v, 0, 0)`: the
/// player forfeits the voting reward of `e_v·n` processes; the leader bonus
/// shrinkage `e_v/f·b_l` and aggregation bonus `e_v·b_a` (both belonging to
/// the *other* player) are redistributed along with the lost voting reward.
pub fn utility_vote_denial(params: &RewardParams, m: f64, f: f64, ev: f64) -> f64 {
    let bl = params.leader_bonus;
    let ba = params.aggregation_bonus;
    let bv = params.voting();
    -ev * bv + m * (ev / f * bl + ev * ba + ev * bv)
}

/// Utility change for **aggregation denial** `S(0, 0, e_a, 0)`: the player
/// is punished `e_a·b_a` (reduced voting reward); punishment plus the denied
/// aggregation bonus are redistributed.
pub fn utility_aggregation_denial(params: &RewardParams, m: f64, ea: f64) -> f64 {
    let ba = params.aggregation_bonus;
    -ea * ba + m * (2.0 * ea * ba)
}

/// Utility change for **aggregation omission** `S(0, 0, 0, e_p)`: the
/// controlled internal forfeits `e_p·b_a` of aggregation bonus; the bonus
/// and the punished leaves' reductions are redistributed.
pub fn utility_aggregation_omission(params: &RewardParams, m: f64, ep: f64) -> f64 {
    let ba = params.aggregation_bonus;
    -ep * ba + m * (2.0 * ep * ba)
}

/// Total utility change of strategy `s` relative to honest play (the attack
/// components are additive — paper proof of Theorem 3: "the redistributed
/// and lost rewards for different attacks sum up").
pub fn utility(params: &RewardParams, m: f64, f: f64, s: &Strategy) -> f64 {
    utility_vote_omission(params, m, f, s.el)
        + utility_vote_denial(params, m, f, s.ev)
        + utility_aggregation_denial(params, m, s.ea)
        + utility_aggregation_omission(params, m, s.ep)
}

/// Theorem 3 as a checkable predicate: every strategy in a grid of
/// resolution `steps` is dominated by `S0`. Returns the first
/// counterexample, if any.
pub fn find_dominating_strategy(
    params: &RewardParams,
    m: f64,
    f: f64,
    steps: usize,
) -> Option<(Strategy, f64)> {
    let grid = |i: usize, max: f64| i as f64 / steps as f64 * max;
    for i in 0..=steps {
        for j in 0..=steps {
            for k in 0..=steps {
                for l in 0..=steps {
                    let s = Strategy {
                        el: grid(i, f), // valid blocks require e_l ≤ f
                        ev: grid(j, m),
                        ea: grid(k, m),
                        ep: grid(l, 1.0 - m),
                    };
                    let u = utility(params, m, f, &s);
                    if u > 1e-12 {
                        return Some((s, u));
                    }
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    // NB: narrow import — proptest's prelude exports a `Strategy` trait that
    // would shadow our `Strategy` struct.
    use proptest::prelude::{prop_assert, prop_assume, proptest, ProptestConfig};

    fn paper_params() -> RewardParams {
        RewardParams {
            leader_bonus: 0.15,
            aggregation_bonus: 0.02,
        }
    }

    #[test]
    fn paper_parameters_are_incentive_compatible_up_to_m_30() {
        let p = paper_params();
        for m in [0.05, 0.1, 0.2, 0.3] {
            assert!(incentive_compatible(&p, m, F), "m = {m}");
        }
    }

    #[test]
    fn eq3_bound_matches_formula() {
        // At m = 0.3, f = 1/3: 0.1 / (0.7 + 0.1) = 0.125.
        let b = eq3_vote_omission_bound(0.3, F);
        assert!((b - 0.125).abs() < 1e-12);
        assert!(paper_params().leader_bonus > b);
    }

    #[test]
    fn eq5_bound_matches_formula() {
        let b = eq5_vote_denial_bound(0.02, 0.3, F);
        // f(1-ba-m)/(m+f-mf) = (1/3)(0.68)/(0.5333…) = 0.425.
        assert!((b - (1.0 / 3.0) * 0.68 / (0.3 + 1.0 / 3.0 - 0.1)).abs() < 1e-12);
        assert!(paper_params().leader_bonus < b);
    }

    #[test]
    fn vote_omission_unprofitable_with_paper_params() {
        let p = paper_params();
        for m in [0.05, 0.1, 0.2, 0.3] {
            assert!(utility_vote_omission(&p, m, F, F) < 0.0, "m = {m}");
        }
    }

    #[test]
    fn vote_omission_profitable_when_leader_bonus_too_small() {
        // With b_l below the Eq. 3 bound, omission pays.
        let p = RewardParams {
            leader_bonus: 0.05,
            aggregation_bonus: 0.02,
        };
        let m = 0.3;
        assert!(p.leader_bonus < eq3_vote_omission_bound(m, F));
        assert!(utility_vote_omission(&p, m, F, F) > 0.0);
    }

    #[test]
    fn vote_denial_profitable_when_leader_bonus_too_large() {
        let p = RewardParams {
            leader_bonus: 0.6,
            aggregation_bonus: 0.02,
        };
        let m = 0.3;
        assert!(p.leader_bonus > eq5_vote_denial_bound(p.aggregation_bonus, m, F));
        assert!(utility_vote_denial(&p, m, F, m) > 0.0);
    }

    #[test]
    fn aggregation_attacks_unprofitable_below_half() {
        let p = paper_params();
        for m in [0.1, 0.3, 0.49] {
            assert!(utility_aggregation_denial(&p, m, 0.2) < 0.0);
            assert!(utility_aggregation_omission(&p, m, 0.2) < 0.0);
        }
        // Exactly at m = 0.5 the attacks become break-even.
        assert!(utility_aggregation_denial(&p, 0.5, 0.2).abs() < 1e-12);
    }

    #[test]
    fn theorem3_no_dominating_strategy_with_paper_params() {
        // b_l = 0.15 satisfies Eq. 3 only up to m ≈ 0.346
        // (m·f/(1-m+m·f) = 0.15 ⇒ m ≈ 0.346): check the valid range.
        let p = paper_params();
        for m in [0.1, 0.2, 0.3, 0.34] {
            assert!(
                find_dominating_strategy(&p, m, F, 4).is_none(),
                "a strategy dominates S0 at m = {m}"
            );
        }
    }

    #[test]
    fn paper_params_lose_compatibility_past_m_35() {
        // Beyond the Eq. 3 range vote omission becomes profitable even with
        // the paper's parameters — the bound is tight.
        let p = paper_params();
        assert!(!incentive_compatible(&p, 0.45, F));
        assert!(find_dominating_strategy(&p, 0.45, F, 4).is_some());
    }

    #[test]
    fn theorem3_fails_outside_the_bounds() {
        let p = RewardParams {
            leader_bonus: 0.01, // violates Eq. 3 at m = 0.3
            aggregation_bonus: 0.02,
        };
        assert!(find_dominating_strategy(&p, 0.3, F, 4).is_some());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Theorem 3, property form: whenever Eqs. 3 and 5 hold and
        /// m < 0.5, no grid strategy beats honesty.
        #[test]
        fn dominance_holds_whenever_bounds_hold(
            m in 0.01f64..0.49,
            bl in 0.01f64..0.9,
            ba in 0.001f64..0.1,
        ) {
            let p = RewardParams { leader_bonus: bl, aggregation_bonus: ba };
            prop_assume!(bl + ba < 1.0);
            prop_assume!(incentive_compatible(&p, m, F));
            prop_assert!(find_dominating_strategy(&p, m, F, 3).is_none());
        }

        /// Honest strategy always has utility exactly zero.
        #[test]
        fn honest_utility_is_zero(m in 0.0f64..0.5) {
            let u = utility(&paper_params(), m, F, &Strategy::HONEST);
            prop_assert!(u.abs() < 1e-15);
        }
    }
}
