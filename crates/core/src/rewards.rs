//! The Iniva rewarding mechanism (paper Section V-B).
//!
//! A total reward `R` per block is split into
//!
//! * a **voting reward** `b_v = 1 - b_l - b_a`: each included signer earns
//!   `b_v·R/n`;
//! * an **aggregation bonus**: internal processes earn `b_a·R/n` per child
//!   signature they aggregated; the leader (root) earns `b_a·R/n` per
//!   subtree aggregate it included;
//! * a **leader bonus** (Cosmos-style variational bonus): `b_l·R/(f·n)` per
//!   included signature beyond the minimum quorum `(1-f)·n`;
//! * a **2ND-CHANCE punishment**: a leaf collected via 2ND-CHANCE (visible
//!   as multiplicity 1 instead of 2) forfeits `b_a·R/n` of its voting
//!   reward, and its parent implicitly forfeits the aggregation bonus.
//!
//! All unclaimed bonuses and punishments are redistributed evenly over the
//! whole committee, so the total payout is exactly `R` regardless of how
//! many votes were aggregated (Requirement 4).
//!
//! How a vote was collected is reconstructed *from the indivisible
//! multiplicities alone* (plus the deterministic tree): children aggregated
//! by their parent appear with multiplicity 2, 2ND-CHANCE collections with
//! multiplicity 1, and an internal process that aggregated `k` children
//! appears with multiplicity `k + 1`. The leader cannot forge these because
//! the aggregate does not decompose.

use iniva_crypto::multisig::Multiplicities;
use iniva_tree::{Role, TreeView};

/// Reward split parameters. The paper's evaluation uses
/// `b_l = 15%, b_a = 2%`.
#[derive(Debug, Clone, Copy)]
pub struct RewardParams {
    /// Leader (variational) bonus fraction.
    pub leader_bonus: f64,
    /// Aggregation bonus fraction.
    pub aggregation_bonus: f64,
}

impl Default for RewardParams {
    fn default() -> Self {
        RewardParams {
            leader_bonus: 0.15,
            aggregation_bonus: 0.02,
        }
    }
}

impl RewardParams {
    /// The voting fraction `b_v = 1 - b_l - b_a`.
    pub fn voting(&self) -> f64 {
        1.0 - self.leader_bonus - self.aggregation_bonus
    }
}

/// How each member's vote entered the QC, reconstructed from multiplicities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inclusion {
    /// Not in the QC at all.
    Absent,
    /// Aggregated by its tree parent (multiplicity 2) or root's own vote.
    Tree {
        /// For internal members: how many children they aggregated.
        aggregated_children: u64,
    },
    /// Collected via a 2ND-CHANCE reply (multiplicity 1) — punished.
    SecondChance,
}

/// Per-member reward distribution for one block.
#[derive(Debug, Clone, PartialEq)]
pub struct RewardDistribution {
    /// Reward share per member (sums to the total reward `r`).
    pub shares: Vec<f64>,
    /// The inclusion classification used.
    pub inclusions: Vec<Inclusion>,
}

/// Checks the multiplicity pattern of a *subtree aggregate* produced by
/// `internal` (paper: "The leader does check these multiplicities and only
/// includes correctly aggregated shares"): each included child must appear
/// with multiplicity exactly 2, the internal itself with multiplicity
/// `1 + #children`, and nobody else may appear.
pub fn validate_subtree_multiplicities(
    tree: &TreeView,
    internal: u32,
    mults: &Multiplicities,
) -> bool {
    if tree.role_of(internal) != Role::Internal {
        return false;
    }
    let children = tree.children_of(internal);
    let mut child_count = 0u64;
    for (signer, mult) in mults.iter() {
        if signer == internal {
            continue;
        }
        if !children.contains(&signer) || mult != 2 {
            return false;
        }
        child_count += 1;
    }
    mults.get(internal) == 1 + child_count
}

/// Classifies every member's inclusion from the final QC multiplicities.
///
/// The reconstruction (Section V-B): leaves with multiplicity 2 were
/// tree-aggregated, multiplicity 1 means 2ND-CHANCE; an internal process
/// with multiplicity `k+1` aggregated `k` children (`k = 0` ⇒ its own vote
/// arrived individually — via 2ND-CHANCE if its subtree aggregate never
/// reached the root).
pub fn classify_inclusions(tree: &TreeView, mults: &Multiplicities) -> Vec<Inclusion> {
    let n = tree.len();
    let mut out = Vec::with_capacity(n as usize);
    for member in 0..n {
        let m = mults.get(member);
        let inc = if m == 0 {
            Inclusion::Absent
        } else {
            match tree.role_of(member) {
                Role::Leaf => {
                    if m >= 2 {
                        Inclusion::Tree {
                            aggregated_children: 0,
                        }
                    } else {
                        Inclusion::SecondChance
                    }
                }
                Role::Internal => {
                    if m >= 2 {
                        Inclusion::Tree {
                            aggregated_children: m - 1,
                        }
                    } else {
                        // Multiplicity 1: the internal's vote arrived alone
                        // (its aggregate was lost/omitted) — 2ND-CHANCE path.
                        Inclusion::SecondChance
                    }
                }
                Role::Root => Inclusion::Tree {
                    aggregated_children: 0,
                },
            }
        };
        out.push(inc);
    }
    out
}

/// Computes the reward distribution for one block.
///
/// `mults` are the final QC multiplicities, `tree` the deterministic tree of
/// the block's view and `r` the total block reward. The root of `tree` is
/// the rewarded leader.
pub fn distribute(
    tree: &TreeView,
    mults: &Multiplicities,
    params: &RewardParams,
    r: f64,
) -> RewardDistribution {
    let n = tree.len() as usize;
    let nf = n as f64;
    let inclusions = classify_inclusions(tree, mults);
    let mut shares = vec![0.0; n];
    let mut claimed = 0.0;

    let bv_unit = params.voting() * r / nf;
    let ba_unit = params.aggregation_bonus * r / nf;

    // Voting rewards + aggregation bonuses + punishments.
    let mut subtree_count = 0u64; // subtrees included by the leader
    for member in 0..n {
        match inclusions[member] {
            Inclusion::Absent => {}
            Inclusion::Tree {
                aggregated_children,
            } => {
                shares[member] += bv_unit;
                claimed += bv_unit;
                if aggregated_children > 0 {
                    let bonus = ba_unit * aggregated_children as f64;
                    shares[member] += bonus;
                    claimed += bonus;
                    subtree_count += 1;
                }
            }
            Inclusion::SecondChance => {
                // Voting reward reduced by the aggregation-bonus unit.
                let v = (bv_unit - ba_unit).max(0.0);
                shares[member] += v;
                claimed += v;
            }
        }
    }

    // Leader bonuses: per-subtree aggregation bonus + variational bonus.
    let root = tree.root() as usize;
    let agg_leader = ba_unit * subtree_count as f64;
    shares[root] += agg_leader;
    claimed += agg_leader;

    let included = inclusions
        .iter()
        .filter(|i| !matches!(i, Inclusion::Absent))
        .count();
    let q = iniva_consensus::quorum(n);
    let f_n = (nf / 3.0).floor().max(1.0);
    let excess = included.saturating_sub(q) as f64;
    let leader_bonus = params.leader_bonus * r * excess / f_n;
    shares[root] += leader_bonus;
    claimed += leader_bonus;

    // Residual (unclaimed rewards + punishments) redistributed evenly
    // (Requirement 4: total payout is exactly r).
    let residual = (r - claimed) / nf;
    for s in shares.iter_mut() {
        *s += residual;
    }

    RewardDistribution { shares, inclusions }
}

/// Re-computes the distribution and compares — the verification every
/// process runs on the leader's claimed payout (the leader "is considered
/// faulty if the multiplicities reported in a block are wrong").
pub fn verify_distribution(
    tree: &TreeView,
    mults: &Multiplicities,
    params: &RewardParams,
    r: f64,
    claimed: &[f64],
) -> bool {
    let expect = distribute(tree, mults, params, r);
    claimed.len() == expect.shares.len()
        && claimed
            .iter()
            .zip(&expect.shares)
            .all(|(a, b)| (a - b).abs() < 1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iniva_crypto::multisig::Multiplicities;
    use iniva_crypto::shuffle::Assignment;
    use iniva_tree::Topology;

    /// n = 7, 2 internal, identity assignment:
    /// root = 0, internal = {1, 2}, leaves = {3, 5} -> 1, {4, 6} -> 2.
    fn tree() -> TreeView {
        TreeView::with_assignment(Topology::new(7, 2).unwrap(), Assignment::identity(7), 0)
    }

    /// The fault-free QC: every leaf mult 2, internals mult 3, root mult 1.
    fn full_mults() -> Multiplicities {
        Multiplicities::from_iter([(0, 1), (1, 3), (2, 3), (3, 2), (4, 2), (5, 2), (6, 2)])
    }

    #[test]
    fn subtree_validation_accepts_correct_pattern() {
        let t = tree();
        // Internal 1 aggregated both children 3 and 5.
        let m = Multiplicities::from_iter([(1, 3), (3, 2), (5, 2)]);
        assert!(validate_subtree_multiplicities(&t, 1, &m));
        // One child only.
        let m = Multiplicities::from_iter([(1, 2), (3, 2)]);
        assert!(validate_subtree_multiplicities(&t, 1, &m));
    }

    #[test]
    fn subtree_validation_rejects_wrong_patterns() {
        let t = tree();
        // Child with multiplicity 1 (forged as 2ND-CHANCE).
        let m = Multiplicities::from_iter([(1, 2), (3, 1)]);
        assert!(!validate_subtree_multiplicities(&t, 1, &m));
        // Wrong own multiplicity.
        let m = Multiplicities::from_iter([(1, 2), (3, 2), (5, 2)]);
        assert!(!validate_subtree_multiplicities(&t, 1, &m));
        // Foreign signer (not a child of internal 1).
        let m = Multiplicities::from_iter([(1, 2), (4, 2)]);
        assert!(!validate_subtree_multiplicities(&t, 1, &m));
        // Not an internal node.
        let m = Multiplicities::from_iter([(3, 1)]);
        assert!(!validate_subtree_multiplicities(&t, 3, &m));
    }

    #[test]
    fn classification_distinguishes_tree_and_second_chance() {
        let t = tree();
        let m = Multiplicities::from_iter([
            (0, 1), // root
            (1, 2), // internal, aggregated 1 child
            (3, 2), // that child
            (5, 1), // 2ND-CHANCE leaf
            (4, 1), // 2ND-CHANCE leaf
        ]);
        let inc = classify_inclusions(&t, &m);
        assert_eq!(
            inc[0],
            Inclusion::Tree {
                aggregated_children: 0
            }
        );
        assert_eq!(
            inc[1],
            Inclusion::Tree {
                aggregated_children: 1
            }
        );
        assert_eq!(
            inc[3],
            Inclusion::Tree {
                aggregated_children: 0
            }
        );
        assert_eq!(inc[5], Inclusion::SecondChance);
        assert_eq!(inc[4], Inclusion::SecondChance);
        assert_eq!(inc[2], Inclusion::Absent);
        assert_eq!(inc[6], Inclusion::Absent);
    }

    #[test]
    fn total_payout_is_exactly_r() {
        let t = tree();
        let params = RewardParams::default();
        for mults in [
            full_mults(),
            Multiplicities::from_iter([(0, 1), (1, 3), (3, 2), (5, 2), (4, 1), (6, 1), (2, 1)]),
            Multiplicities::from_iter([(0, 1), (3, 1), (4, 1), (5, 1), (6, 1), (1, 1), (2, 1)]),
        ] {
            let d = distribute(&t, &mults, &params, 1.0);
            let total: f64 = d.shares.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "total {total} != R");
        }
    }

    #[test]
    fn fault_free_rewards_active_members_and_aggregators() {
        let t = tree();
        let params = RewardParams::default();
        let d = distribute(&t, &full_mults(), &params, 1.0);
        // Internals (1, 2) earn more than leaves (3..6): aggregation bonus.
        assert!(d.shares[1] > d.shares[3]);
        // Root earns the most: leader bonus + per-subtree bonus.
        assert!(d.shares[0] > d.shares[1]);
        // Leaves all equal.
        for l in 4..7 {
            assert!((d.shares[3] - d.shares[l]).abs() < 1e-12);
        }
    }

    #[test]
    fn second_chance_leaf_earns_less_than_tree_leaf() {
        let t = tree();
        let params = RewardParams::default();
        let m = Multiplicities::from_iter([
            (0, 1),
            (1, 3),
            (3, 2),
            (5, 2),
            (2, 2),
            (4, 2),
            (6, 1), // via 2ND-CHANCE
        ]);
        let d = distribute(&t, &m, &params, 1.0);
        assert!(d.shares[6] < d.shares[4], "punished leaf must earn less");
        // The punishment is exactly the aggregation-bonus unit.
        let ba_unit = params.aggregation_bonus / 7.0;
        assert!((d.shares[4] - d.shares[6] - ba_unit).abs() < 1e-12);
    }

    #[test]
    fn omitted_member_earns_only_residual() {
        let t = tree();
        let params = RewardParams::default();
        let mut m = full_mults();
        // Rebuild without member 6.
        m = Multiplicities::from_iter(m.iter().filter(|(s, _)| *s != 6));
        let d = distribute(&t, &m, &params, 1.0);
        assert!(d.shares[6] < d.shares[3]);
        assert!(
            d.shares[6] > 0.0,
            "residual redistribution reaches everyone"
        );
    }

    #[test]
    fn leader_bonus_grows_with_inclusion() {
        let t = tree();
        let params = RewardParams::default();
        // Quorum-only QC (5 of 7) vs full QC.
        let quorum_only = Multiplicities::from_iter([(0, 1), (1, 3), (3, 2), (5, 2), (2, 1)]);
        let d_q = distribute(&t, &quorum_only, &params, 1.0);
        let d_full = distribute(&t, &full_mults(), &params, 1.0);
        assert!(
            d_full.shares[0] > d_q.shares[0],
            "more inclusion ⇒ bigger leader bonus"
        );
    }

    #[test]
    fn verification_accepts_honest_and_rejects_forged() {
        let t = tree();
        let params = RewardParams::default();
        let d = distribute(&t, &full_mults(), &params, 1.0);
        assert!(verify_distribution(
            &t,
            &full_mults(),
            &params,
            1.0,
            &d.shares
        ));
        let mut forged = d.shares.clone();
        forged[0] += 0.01;
        forged[3] -= 0.01;
        assert!(!verify_distribution(
            &t,
            &full_mults(),
            &params,
            1.0,
            &forged
        ));
    }
}
