//! Leader election policies: round-robin (the default LSO rotation) and
//! Carousel (reputation-based, Cohen et al. [10]).

use std::collections::VecDeque;

/// A leader election policy.
#[derive(Debug, Clone)]
pub enum LeaderPolicy {
    /// `leader(v) = v mod n`.
    RoundRobin,
    /// Carousel [10]: pick leaders among the voters of the latest high QC.
    /// Falls back to round-robin until a QC is known. This avoids electing
    /// crashed processes, whose votes stop appearing — the property the
    /// paper's Fig. 4c exercises.
    ///
    /// Simplification vs. Cohen et al.: the original also excludes the `f`
    /// most recent leaders (`LeaderContext::recent_leaders` supports this),
    /// but deriving that window identically on replicas with block-store
    /// gaps requires chain sync we do not model, so the replicas here leave
    /// it empty; the voter filter alone provides the crash-avoidance that
    /// the resiliency experiment measures.
    Carousel,
}

/// Tracks the state Carousel needs (latest committed voters, recent leaders).
#[derive(Debug, Clone, Default)]
pub struct LeaderContext {
    /// Distinct signers of the QC of the latest *committed* block.
    pub committed_voters: Vec<u32>,
    /// Recent leaders (most recent last).
    pub recent_leaders: VecDeque<u32>,
}

impl LeaderContext {
    /// Records that `leader` led a view.
    pub fn push_leader(&mut self, leader: u32, f: usize) {
        self.recent_leaders.push_back(leader);
        while self.recent_leaders.len() > f {
            self.recent_leaders.pop_front();
        }
    }

    /// Replaces the recent-leader window wholesale (used when deriving it
    /// from the chain: the proposers of the last `f` blocks are the same on
    /// every replica that shares the high QC, eliminating divergence).
    pub fn set_recent_leaders(&mut self, leaders: Vec<u32>) {
        self.recent_leaders = leaders.into();
    }

    /// Updates the committed-voter set (called on commit).
    pub fn set_committed_voters(&mut self, voters: Vec<u32>) {
        self.committed_voters = voters;
    }
}

impl LeaderPolicy {
    /// The leader of `view` in a committee of `n`.
    pub fn leader(&self, view: u64, n: usize, ctx: &LeaderContext) -> u32 {
        match self {
            LeaderPolicy::RoundRobin => (view % n as u64) as u32,
            LeaderPolicy::Carousel => {
                if ctx.committed_voters.is_empty() {
                    return (view % n as u64) as u32;
                }
                let candidates: Vec<u32> = ctx
                    .committed_voters
                    .iter()
                    .copied()
                    .filter(|c| !ctx.recent_leaders.contains(c))
                    .collect();
                let pool = if candidates.is_empty() {
                    &ctx.committed_voters
                } else {
                    &candidates
                };
                pool[(view % pool.len() as u64) as usize]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles() {
        let p = LeaderPolicy::RoundRobin;
        let ctx = LeaderContext::default();
        assert_eq!(p.leader(0, 4, &ctx), 0);
        assert_eq!(p.leader(5, 4, &ctx), 1);
        assert_eq!(p.leader(7, 4, &ctx), 3);
    }

    #[test]
    fn carousel_falls_back_to_round_robin() {
        let p = LeaderPolicy::Carousel;
        let ctx = LeaderContext::default();
        assert_eq!(p.leader(9, 4, &ctx), 1);
    }

    #[test]
    fn carousel_picks_committed_voters() {
        let p = LeaderPolicy::Carousel;
        let mut ctx = LeaderContext::default();
        ctx.set_committed_voters(vec![2, 5, 7]);
        for v in 0..20 {
            let l = p.leader(v, 10, &ctx);
            assert!([2, 5, 7].contains(&l));
        }
    }

    #[test]
    fn carousel_excludes_recent_leaders() {
        let p = LeaderPolicy::Carousel;
        let mut ctx = LeaderContext::default();
        ctx.set_committed_voters(vec![1, 2, 3, 4]);
        ctx.push_leader(1, 2);
        ctx.push_leader(2, 2);
        for v in 0..12 {
            let l = p.leader(v, 10, &ctx);
            assert!(l == 3 || l == 4, "leader {l} should be a non-recent voter");
        }
    }

    #[test]
    fn carousel_survives_all_voters_recent() {
        let p = LeaderPolicy::Carousel;
        let mut ctx = LeaderContext::default();
        ctx.set_committed_voters(vec![1]);
        ctx.push_leader(1, 3);
        // Degenerate case: every voter is a recent leader; fall back to the
        // committed pool rather than panicking.
        assert_eq!(p.leader(0, 10, &ctx), 1);
    }

    #[test]
    fn recent_leader_window_is_bounded() {
        let mut ctx = LeaderContext::default();
        for i in 0..10 {
            ctx.push_leader(i, 3);
        }
        assert_eq!(ctx.recent_leaders.len(), 3);
        assert_eq!(ctx.recent_leaders, VecDeque::from(vec![7, 8, 9]));
    }
}
