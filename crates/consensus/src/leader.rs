//! Leader election policies: round-robin (the default LSO rotation) and
//! Carousel (reputation-based, Cohen et al. [10]).

use std::collections::VecDeque;

/// How many views past the pool's anchor Carousel trusts its committed-voter
/// pool before degrading to full-committee round-robin.
///
/// The pool is derived from the QC of the latest committed block
/// ([`LeaderContext::anchor_view`] records that QC's view). Under a healthy
/// pipeline the current view runs only ~2–3 views ahead of the committed
/// tip, so the fallback never triggers. Under sustained view failures the
/// gap grows without bound — and if the pool itself is the problem (every
/// pooled voter crashed after signing, or replicas hold diverged pools),
/// electing from it wedges the cluster forever. Once `view` outruns the
/// anchor by this many views, every replica — *regardless* of which pool it
/// holds — switches to the same `view % n` rotation over the full
/// committee, which is guaranteed to reach a live proposer within `f`
/// views.
///
/// The constant is deliberately generous. The full-committee rotation
/// includes crashed replicas, so every fallback view has an `f/n` chance
/// of burning a whole view timeout on a dead leader — re-importing the
/// exact failure mode Carousel exists to avoid. Live traces of the
/// 4-crash cell with an 8-view fallback showed transient no-quorum
/// hiccups (scheduling noise, not divergence) staling the anchor, the
/// fallback engaging, and crashed round-robin leaders then *extending*
/// the stall they were meant to break. Since the pool is anchored to the
/// committed tip — identical across replicas by construction — pool
/// divergence is now the rare case, and patience is cheap: stay with the
/// all-alive pool through transient stalls, keep the committee-wide
/// rotation as the last-resort un-wedge.
pub const CAROUSEL_FALLBACK_VIEWS: u64 = 24;

/// How many committed heights pass between refreshes of the recent-leader
/// window.
///
/// The window is the proposers of the last `f` committed blocks — but
/// sampled only when the committed height crosses a multiple of this
/// epoch, not on every commit. A window that slid with every commit is
/// agreement-unsafe: two replicas whose committed heights are transiently
/// skewed (one missed a proposal and is catching up via state transfer)
/// would hold windows shifted by one block, exclude different candidates,
/// and elect *different leaders* — which is exactly the divergence this
/// module exists to prevent. The committed-voter *pool* does not have this
/// problem (the same live replicas sign every QC, so the set is stable
/// across adjacent heights); the window's content by construction is not.
/// Quantizing the sample point means replicas agree on the window whenever
/// their skew stays inside one epoch, which state transfer guarantees
/// within a few views; a skew that straddles a boundary diverges briefly
/// and is bounded by the [`CAROUSEL_FALLBACK_VIEWS`] rotation.
pub const CAROUSEL_WINDOW_EPOCH: u64 = 8;

/// A leader election policy.
#[derive(Debug, Clone)]
pub enum LeaderPolicy {
    /// `leader(v) = v mod n`.
    RoundRobin,
    /// Carousel [10]: pick leaders among the voters of the QC of the latest
    /// *committed* block, never re-picking the proposers of the last `f`
    /// committed blocks (the recent-leader exclusion of Cohen et al.).
    /// Falls back to round-robin until a commit is known. This avoids
    /// electing crashed processes, whose votes stop appearing — the
    /// property the paper's Fig. 4c exercises.
    ///
    /// The exclusion is enforced *by construction*, not by filtering:
    /// rotating an index over the pool never re-picks the previous
    /// `|pool| - 1` leaders, so any window of `f < |pool|` recent leaders
    /// is excluded without the pick depending on per-replica chain
    /// history. The explicit [`LeaderContext::recent_leaders`] window is
    /// consulted only when the pool has degenerated to `f` voters or
    /// fewer, where rotation alone could wrap onto a recent leader.
    ///
    /// Anchoring the pool to the *committed* tip (instead of the volatile
    /// high QC) keeps it identical across replicas: state transfer already
    /// converges the committed prefix, so the voter set is the same on
    /// every replica that shares it. The recent-leader window is sampled
    /// only at [`CAROUSEL_WINDOW_EPOCH`] boundaries of the committed
    /// height, so replicas whose committed tips are transiently skewed by
    /// a few blocks still exclude the same candidates (see the constant's
    /// docs for why a per-commit sliding window diverges).
    /// Fault adaptivity: if the current view runs more than
    /// [`CAROUSEL_FALLBACK_VIEWS`] past [`LeaderContext::anchor_view`]
    /// (sustained failed views), the policy degrades to round-robin over
    /// the full committee so a pool of dead voters cannot wedge the
    /// cluster.
    Carousel,
}

/// Tracks the state Carousel needs (latest committed voters, recent leaders,
/// and the view the pool was derived from).
#[derive(Debug, Clone, Default)]
pub struct LeaderContext {
    /// Distinct signers of the QC of the latest *committed* block.
    pub committed_voters: Vec<u32>,
    /// Recent leaders (most recent last).
    pub recent_leaders: VecDeque<u32>,
    /// View of the QC the committed-voter pool was derived from (0 until the
    /// first commit). Views more than [`CAROUSEL_FALLBACK_VIEWS`] past this
    /// anchor elect round-robin over the full committee instead of the pool.
    pub anchor_view: u64,
}

impl LeaderContext {
    /// Records that `leader` led a view.
    pub fn push_leader(&mut self, leader: u32, f: usize) {
        self.recent_leaders.push_back(leader);
        while self.recent_leaders.len() > f {
            self.recent_leaders.pop_front();
        }
    }

    /// Replaces the recent-leader window wholesale (used when deriving it
    /// from the chain: the proposers of the last `f` *committed* blocks,
    /// sampled at [`CAROUSEL_WINDOW_EPOCH`] boundaries so replicas with a
    /// transiently skewed committed tip still hold the same window). The
    /// policy consults it only for degenerate pools — on the healthy path
    /// the rotation excludes recent leaders by construction.
    pub fn set_recent_leaders(&mut self, leaders: Vec<u32>) {
        self.recent_leaders = leaders.into();
    }

    /// Updates the committed-voter set (called on commit).
    pub fn set_committed_voters(&mut self, voters: Vec<u32>) {
        self.committed_voters = voters;
    }
}

impl LeaderPolicy {
    /// The leader of `view` in a committee of `n`.
    pub fn leader(&self, view: u64, n: usize, ctx: &LeaderContext) -> u32 {
        match self {
            LeaderPolicy::RoundRobin => (view % n as u64) as u32,
            LeaderPolicy::Carousel => {
                // Fault-adaptive fallback: a pool anchored too many views in
                // the past means sustained failures — rotate over the full
                // committee, which every replica computes identically from
                // `view` alone.
                if ctx.committed_voters.is_empty()
                    || view > ctx.anchor_view + CAROUSEL_FALLBACK_VIEWS
                {
                    return (view % n as u64) as u32;
                }
                let pool = &ctx.committed_voters;
                // Cohen et al.'s exclusion of the last `f` leaders holds *by
                // construction* on this path: rotating the index over a
                // height-stable pool never re-picks the previous
                // `|pool| - 1` leaders (`v % len ≠ (v-i) % len` for any
                // `0 < i < len`, across fast-forward jumps too). Crucially,
                // the pick is a function of `(view, pool)` alone — it never
                // consults the recent-leader window, whose content is
                // derived from the committed chain and can transiently
                // differ between replicas whose committed heights are
                // skewed. A window-dependent pick (filtering the pool
                // changes the rotation modulus) turns one block of skew
                // into a different leader on every view: the live-collapse
                // divergence this policy exists to prevent.
                if pool.len() > ctx.recent_leaders.len() {
                    return pool[(view % pool.len() as u64) as usize];
                }
                // Degenerate pool (no bigger than the window): rotation
                // alone can wrap onto a recent leader, so apply the
                // explicit window — agreement matters less here because a
                // pool this small means the cluster is already degraded and
                // the round-robin fallback above is at most
                // `CAROUSEL_FALLBACK_VIEWS` away.
                let candidates: Vec<u32> = pool
                    .iter()
                    .copied()
                    .filter(|c| !ctx.recent_leaders.contains(c))
                    .collect();
                let pool = if candidates.is_empty() {
                    &ctx.committed_voters
                } else {
                    &candidates
                };
                pool[(view % pool.len() as u64) as usize]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles() {
        let p = LeaderPolicy::RoundRobin;
        let ctx = LeaderContext::default();
        assert_eq!(p.leader(0, 4, &ctx), 0);
        assert_eq!(p.leader(5, 4, &ctx), 1);
        assert_eq!(p.leader(7, 4, &ctx), 3);
    }

    #[test]
    fn carousel_falls_back_to_round_robin() {
        let p = LeaderPolicy::Carousel;
        let ctx = LeaderContext::default();
        assert_eq!(p.leader(9, 4, &ctx), 1);
    }

    #[test]
    fn carousel_picks_committed_voters() {
        let p = LeaderPolicy::Carousel;
        let mut ctx = LeaderContext::default();
        ctx.set_committed_voters(vec![2, 5, 7]);
        for v in 0..20 {
            // Keep the anchor tracking the view, as a healthy pipeline does.
            ctx.anchor_view = v;
            let l = p.leader(v, 10, &ctx);
            assert!([2, 5, 7].contains(&l));
        }
    }

    #[test]
    fn carousel_never_repicks_recent_leaders_by_construction() {
        // With a pool larger than the window, rotation alone guarantees
        // the last `f` leaders are excluded — for consecutive views and
        // across fast-forward jumps — without the pick ever reading the
        // window (which is what keeps skewed replicas in agreement).
        let p = LeaderPolicy::Carousel;
        let mut ctx = LeaderContext::default();
        ctx.set_committed_voters(vec![1, 2, 3, 4]);
        let f = 3;
        for v in 10..60u64 {
            ctx.anchor_view = v;
            let l = p.leader(v, 10, &ctx);
            for i in 1..=f {
                ctx.anchor_view = v - i;
                assert_ne!(
                    l,
                    p.leader(v - i, 10, &ctx),
                    "leader of view {v} repeats the leader of view {}",
                    v - i
                );
            }
        }
        // A fast-forward jump (pacemaker skips from view 100 to 102)
        // preserves the property: index distance mod |pool| is still
        // non-zero for lags ≤ f.
        ctx.anchor_view = 100;
        let jumped = p.leader(102, 10, &ctx);
        assert_ne!(jumped, p.leader(100, 10, &ctx));
        assert_ne!(jumped, p.leader(99, 10, &ctx));
    }

    #[test]
    fn carousel_degenerate_pool_applies_the_explicit_window() {
        // Pool no bigger than the window: rotation could wrap onto a
        // recent leader, so the explicit window filters the candidates.
        let p = LeaderPolicy::Carousel;
        let mut ctx = LeaderContext::default();
        ctx.set_committed_voters(vec![1, 2]);
        ctx.push_leader(2, 2);
        ctx.push_leader(7, 2);
        for v in 0..8 {
            ctx.anchor_view = v;
            assert_eq!(p.leader(v, 10, &ctx), 1, "only non-recent voter wins");
        }
    }

    #[test]
    fn carousel_survives_all_voters_recent() {
        let p = LeaderPolicy::Carousel;
        let mut ctx = LeaderContext::default();
        ctx.set_committed_voters(vec![1]);
        ctx.push_leader(1, 3);
        // Degenerate case: every voter is a recent leader; fall back to the
        // committed pool rather than panicking.
        assert_eq!(p.leader(0, 10, &ctx), 1);
    }

    #[test]
    fn carousel_degrades_to_full_committee_after_stall() {
        let p = LeaderPolicy::Carousel;
        let mut ctx = LeaderContext::default();
        ctx.set_committed_voters(vec![2, 5, 7]);
        ctx.anchor_view = 10;
        // Within the window: pooled election.
        let v = ctx.anchor_view + CAROUSEL_FALLBACK_VIEWS;
        assert!([2, 5, 7].contains(&p.leader(v, 10, &ctx)));
        // One past the window: full-committee round-robin, computable from
        // the view alone — identical on replicas with diverged pools.
        let v = ctx.anchor_view + CAROUSEL_FALLBACK_VIEWS + 1;
        assert_eq!(p.leader(v, 10, &ctx), (v % 10) as u32);
        let v = v + 4;
        assert_eq!(p.leader(v, 10, &ctx), (v % 10) as u32);
    }

    #[test]
    fn carousel_fallback_ignores_pool_divergence() {
        // Two replicas with *different* pools (the live-collapse scenario)
        // still agree once the fallback engages.
        let p = LeaderPolicy::Carousel;
        let mut a = LeaderContext::default();
        a.set_committed_voters(vec![1, 2, 3]);
        let mut b = LeaderContext::default();
        b.set_committed_voters(vec![4, 5]);
        let view = CAROUSEL_FALLBACK_VIEWS + 50;
        assert_eq!(p.leader(view, 10, &a), p.leader(view, 10, &b));
    }

    #[test]
    fn recent_leader_window_is_bounded() {
        let mut ctx = LeaderContext::default();
        for i in 0..10 {
            ctx.push_leader(i, 3);
        }
        assert_eq!(ctx.recent_leaders.len(), 3);
        assert_eq!(ctx.recent_leaders, VecDeque::from(vec![7, 8, 9]));
    }
}
