//! The baseline HotStuff replica with *star* aggregation: every replica
//! votes directly to the next leader, which verifies each signature
//! individually and aggregates them into a QC (paper Section II-B.1).
//!
//! The replica is round-based, as in the paper's evaluation ("a new block is
//! only proposed after the votes for the previous block have been
//! aggregated"), with LSO leader rotation: the proposal for view `v` is
//! disseminated by `L_v` and votes are aggregated by `L_{v+1}`.

use crate::chain::ChainState;
use crate::leader::{LeaderContext, LeaderPolicy};
use crate::types::{quorum, vote_message, Block, Qc, AGG_SIG_BYTES, PER_SIGNER_BYTES};
use iniva_crypto::multisig::VoteScheme;
use iniva_net::cost::CostModel;
use iniva_net::wire::{DecodeError, Decoder, Encoder, WireDecode, WireEncode};
use iniva_net::{Actor, Context, NodeId, Time};
use std::sync::Arc;

/// Configuration shared by all replicas of a run.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// Committee size.
    pub n: usize,
    /// Max requests batched per block.
    pub max_batch: u32,
    /// Payload bytes per request.
    pub payload_per_req: u32,
    /// Open-loop client request rate (requests/second; 0 = no payload).
    pub request_rate: u64,
    /// View timeout (pacemaker).
    pub view_timeout: Time,
    /// Leader election policy.
    pub leader_policy: LeaderPolicy,
    /// CPU cost model.
    pub cost: CostModel,
}

impl ReplicaConfig {
    /// A small default configuration for tests.
    pub fn for_tests(n: usize) -> Self {
        ReplicaConfig {
            n,
            max_batch: 100,
            payload_per_req: 64,
            request_rate: 10_000,
            view_timeout: 200 * iniva_net::MILLIS,
            leader_policy: LeaderPolicy::RoundRobin,
            cost: CostModel::default(),
        }
    }
}

/// Messages of the star protocol.
#[derive(Debug)]
pub enum StarMsg<S: VoteScheme> {
    /// A proposal from `L_v` carrying the justifying QC for its parent.
    Proposal {
        /// The proposed block.
        block: Block,
        /// QC certifying `block.parent` (`None` only for view-1 proposals
        /// extending genesis).
        qc: Option<Qc<S>>,
    },
    /// A vote sent to the aggregating next leader.
    Vote {
        /// Voted view.
        view: u64,
        /// Voted block.
        block: Block,
        /// The voter's signature (multiplicity-1 aggregate).
        agg: S::Aggregate,
    },
}

impl<S: VoteScheme> Clone for StarMsg<S> {
    fn clone(&self) -> Self {
        match self {
            StarMsg::Proposal { block, qc } => StarMsg::Proposal {
                block: block.clone(),
                qc: qc.clone(),
            },
            StarMsg::Vote { view, block, agg } => StarMsg::Vote {
                view: *view,
                block: block.clone(),
                agg: agg.clone(),
            },
        }
    }
}

impl<S: VoteScheme> WireEncode for StarMsg<S>
where
    S::Aggregate: WireEncode,
{
    fn encode(&self, enc: &mut Encoder) {
        match self {
            StarMsg::Proposal { block, qc } => {
                enc.put_u8(0);
                block.encode(enc);
                enc.put_opt(qc);
            }
            StarMsg::Vote { view, block, agg } => {
                enc.put_u8(1).put_u64(*view);
                block.encode(enc);
                agg.encode(enc);
            }
        }
    }
}

impl<S: VoteScheme> WireDecode for StarMsg<S>
where
    S::Aggregate: WireDecode,
{
    fn decode(dec: &mut Decoder) -> Result<Self, DecodeError> {
        match dec.get_u8()? {
            0 => Ok(StarMsg::Proposal {
                block: Block::decode(dec)?,
                qc: dec.get_opt()?,
            }),
            1 => Ok(StarMsg::Vote {
                view: dec.get_u64()?,
                block: Block::decode(dec)?,
                agg: S::Aggregate::decode(dec)?,
            }),
            tag => Err(DecodeError::InvalidTag {
                tag,
                context: "StarMsg",
            }),
        }
    }
}

/// Vote accumulation at the next leader. Structural checks (one signer,
/// multiplicity 1, no duplicates) run on arrival; the expensive pairing
/// verification is *deferred* until a quorum's worth of votes is queued,
/// at which point the whole set verifies under one multi-pairing batch
/// (all votes of a view sign the same message, so the batch costs two
/// Miller loops total instead of two per vote — the star leader's CPU
/// hotspot the paper's Section II-B.1 describes).
struct PendingVotes<S: VoteScheme> {
    view: u64,
    block: Block,
    /// Batch-verified accumulated aggregate.
    verified: Option<S::Aggregate>,
    /// Structurally-accepted votes awaiting batch verification.
    queued: Vec<S::Aggregate>,
}

impl<S: VoteScheme> PendingVotes<S> {
    /// Distinct signers in the batch-verified accumulator alone. Only
    /// these count toward displacement protection: queued votes are
    /// unverified, and letting them confer stickiness would let one
    /// forged vote lock in a junk accumulation.
    fn verified_distinct(&self, scheme: &S) -> usize {
        self.verified
            .as_ref()
            .map_or(0, |acc| scheme.multiplicities(acc).distinct())
    }

    /// Distinct signers across the verified accumulator and the queue
    /// (the quorum trigger).
    fn collected(&self, scheme: &S) -> usize {
        self.verified_distinct(scheme) + self.queued.len()
    }
}

/// A star-topology HotStuff replica.
pub struct StarReplica<S: VoteScheme> {
    /// This replica's committee id (== its simulator NodeId).
    pub id: u32,
    cfg: ReplicaConfig,
    scheme: Arc<S>,
    /// The replica's view of the chain (public for metric harvesting).
    pub chain: ChainState<S>,
    current_view: u64,
    last_voted_view: u64,
    leader_ctx: LeaderContext,
    /// Vote accumulation at the next leader.
    pending: Option<PendingVotes<S>>,
    qc_formed_for_view: u64,
}

impl<S: VoteScheme> StarReplica<S> {
    /// Creates a replica.
    pub fn new(id: u32, cfg: ReplicaConfig, scheme: Arc<S>) -> Self {
        let chain = ChainState::new(cfg.request_rate);
        StarReplica {
            id,
            cfg,
            scheme,
            chain,
            current_view: 1,
            last_voted_view: 0,
            leader_ctx: LeaderContext::default(),
            pending: None,
            qc_formed_for_view: 0,
        }
    }

    fn leader_of(&self, view: u64) -> u32 {
        self.cfg
            .leader_policy
            .leader(view, self.cfg.n, &self.leader_ctx)
    }

    fn qc_wire(&self, qc: &Option<Qc<S>>) -> usize {
        qc.as_ref().map_or(0, |q| q.wire_bytes(&self.scheme))
    }

    fn propose(&mut self, ctx: &mut Context<StarMsg<S>>) {
        let block = self.chain.draft_block(
            self.current_view,
            self.id,
            ctx.now(),
            self.cfg.max_batch,
            self.cfg.payload_per_req,
        );
        let qc = self.chain.highest_qc().cloned();
        self.chain.insert_block(block.clone());
        let bytes = block.wire_bytes() + self.qc_wire(&qc);
        for peer in 0..self.cfg.n as NodeId {
            if peer != self.id {
                ctx.send(
                    peer,
                    StarMsg::Proposal {
                        block: block.clone(),
                        qc: qc.clone(),
                    },
                    bytes,
                );
            }
        }
        // The proposer also processes its own proposal (votes for it).
        self.handle_proposal(ctx, block, qc);
    }

    fn enter_view(&mut self, ctx: &mut Context<StarMsg<S>>, view: u64, failed: bool) {
        if view <= self.current_view && self.chain.metrics.total_views > 0 {
            return;
        }
        self.current_view = view;
        self.chain.metrics.total_views += 1;
        if failed {
            self.chain.metrics.failed_views += 1;
        }
        ctx.set_timer(self.cfg.view_timeout, view);
    }

    fn handle_proposal(&mut self, ctx: &mut Context<StarMsg<S>>, block: Block, qc: Option<Qc<S>>) {
        let cost = self.cfg.cost.clone();
        // Validate the justifying QC.
        match &qc {
            Some(q) => {
                let signers = q.signer_count(&self.scheme);
                ctx.charge_cpu(cost.verify_aggregate(signers));
                let msg = vote_message(&q.block_hash, q.view);
                if signers < quorum(self.cfg.n)
                    || q.block_hash != block.parent
                    || !self.scheme.verify(&msg, &q.agg)
                {
                    return;
                }
                self.chain.on_qc(q.clone(), ctx.now(), &self.scheme);
                self.update_carousel();
            }
            None => {
                if block.parent != crate::types::GENESIS_HASH {
                    return;
                }
            }
        }
        ctx.charge_cpu(cost.validate_block(block.payload_bytes()));
        self.chain.insert_block(block.clone());

        // Vote once per view, only for proposals not older than our view.
        if block.view < self.current_view && block.view != 1 {
            return;
        }
        if block.view <= self.last_voted_view {
            return;
        }
        self.last_voted_view = block.view;
        ctx.charge_cpu(cost.sign);
        let sig = self
            .scheme
            .sign(self.id, &vote_message(&block.hash(), block.view));
        let next_leader = self.leader_of(block.view + 1);
        let vote = StarMsg::Vote {
            view: block.view,
            block: block.clone(),
            agg: sig.clone(),
        };
        let vote_bytes = AGG_SIG_BYTES + PER_SIGNER_BYTES + 64;
        if next_leader == self.id {
            self.handle_vote(ctx, block.view, block, sig);
        } else {
            ctx.send(next_leader, vote, vote_bytes);
        }
        self.enter_view(ctx, self.last_voted_view + 1, false);
    }

    fn handle_vote(
        &mut self,
        ctx: &mut Context<StarMsg<S>>,
        view: u64,
        block: Block,
        agg: S::Aggregate,
    ) {
        if self.qc_formed_for_view >= view {
            return; // already done with this view
        }
        // Votes implausibly far ahead of this replica's own pacemaker are
        // hostile or hopeless (the round-based pipeline keeps honest
        // views within a step or two of each other); accepting one would
        // let it squat `pending` at a view no honest vote reaches soon.
        if view > self.current_view + 2 {
            return;
        }
        // Cheap structural checks before any pairing: a vote is exactly
        // one signer of multiplicity 1, not yet collected.
        let mults = self.scheme.multiplicities(&agg);
        if mults.distinct() != 1 || mults.total() != 1 {
            return;
        }
        let signer = mults.signers().next().unwrap();
        let matches_pending = self
            .pending
            .as_ref()
            .is_some_and(|p| p.view == view && p.block.hash() == block.hash());
        if !matches_pending {
            // Starting (or replacing) an accumulation is the cold path.
            // Displacement rules: an accumulation with at most one
            // *verified* signer is always displaceable (so a junk
            // squatter is recovered from by the very next verified vote —
            // no wedge is possible), and a newer view displaces
            // regardless (the pipeline moved on). What is protected is
            // verified progress — two-plus *batch-verified* signatures on
            // one block (a quorum batch that dropped forgeries can leave
            // such a sub-quorum accumulator); unverified queued votes
            // confer no stickiness, or one forged vote could lock in a
            // junk accumulation.
            let displaceable = match &self.pending {
                None => true,
                Some(p) => view > p.view || p.verified_distinct(&self.scheme) <= 1,
            };
            if !displaceable {
                return;
            }
            // Verify the single vote *before* letting it displace pending
            // state, so an unverified flood cannot wipe collected votes.
            ctx.charge_cpu(self.cfg.cost.verify_single);
            let msg = vote_message(&block.hash(), view);
            if !self.scheme.verify(&msg, &agg) {
                return;
            }
            self.pending = Some(PendingVotes {
                view,
                block: block.clone(),
                verified: Some(agg),
                queued: Vec::new(),
            });
        } else {
            let pend = self.pending.as_mut().expect("matched above");
            // A signer already in the *verified* accumulator is a plain
            // duplicate — rejected before any crypto. A signer already in
            // the *unverified* queue means one of the two votes is a
            // forgery; resolve the conflict now with one verification
            // (the cost the pre-batch code paid per vote) so a forged
            // squatter cannot suppress the honest vote it raced.
            let in_verified = pend
                .verified
                .as_ref()
                .is_some_and(|acc| self.scheme.multiplicities(acc).contains(signer));
            if in_verified {
                return;
            }
            if let Some(pos) = pend
                .queued
                .iter()
                .position(|v| self.scheme.multiplicities(v).contains(signer))
            {
                ctx.charge_cpu(self.cfg.cost.verify_single);
                let msg = vote_message(&block.hash(), view);
                let queued_vote = pend.queued.remove(pos);
                if self.scheme.verify(&msg, &queued_vote) {
                    // Genuine: promote it to the verified accumulator —
                    // the verification is paid for, so later duplicates
                    // hit the cheap check and the quorum batch never
                    // re-verifies this vote. The newcomer is the dup.
                    ctx.charge_cpu(self.cfg.cost.aggregate_combine);
                    pend.verified = Some(match pend.verified.take() {
                        None => queued_vote,
                        Some(acc) => self.scheme.combine(&acc, &queued_vote),
                    });
                    return;
                }
                // Forged squatter evicted; the newcomer takes the slot
                // (and gets batch-verified like any queued vote).
            }
            pend.queued.push(agg);
        }
        let pend = self.pending.as_ref().expect("set above");
        if pend.collected(&self.scheme) < quorum(self.cfg.n) {
            return;
        }
        // Quorum's worth queued: verify the whole queue under one
        // multi-pairing (every vote signs the same message), drop the
        // culprits, and keep collecting if forgeries broke the quorum.
        let pend = self.pending.as_mut().expect("set above");
        let queued = std::mem::take(&mut pend.queued);
        let mut acc = pend.verified.take();
        if !queued.is_empty() {
            ctx.charge_cpu(self.cfg.cost.verify_batch(1, queued.len()));
            let msg = vote_message(&block.hash(), view);
            let outcome = self
                .scheme
                .verify_batch(&[(msg.as_slice(), queued.as_slice())]);
            let culprits = outcome.culprits();
            for (i, vote) in queued.iter().enumerate() {
                if culprits.contains(&(0, i)) {
                    continue;
                }
                ctx.charge_cpu(self.cfg.cost.aggregate_combine);
                acc = Some(match acc {
                    None => vote.clone(),
                    Some(a) => self.scheme.combine(&a, vote),
                });
            }
        }
        let pend = self.pending.as_mut().expect("set above");
        pend.verified = acc;
        let entry = match &pend.verified {
            Some(acc) => acc.clone(),
            None => return,
        };
        let distinct = self.scheme.multiplicities(&entry).distinct();
        if distinct >= quorum(self.cfg.n) {
            self.qc_formed_for_view = view;
            let qc = Qc {
                block_hash: block.hash(),
                view,
                height: block.height,
                agg: entry,
            };
            self.chain.on_qc(qc, ctx.now(), &self.scheme);
            self.update_carousel();
            self.pending = None;
            // As L_{v+1}, propose immediately (round-based pipeline).
            self.enter_view(ctx, view + 1, false);
            if self.leader_of(view + 1) == self.id {
                self.propose(ctx);
            }
        }
    }

    /// Refreshes the Carousel context from the chain (see the `iniva`
    /// crate's replica for the consistency rationale).
    fn update_carousel(&mut self) {
        if let Some(qc) = self.chain.highest_qc() {
            let voters: Vec<u32> = self.scheme.multiplicities(&qc.agg).signers().collect();
            self.leader_ctx.set_committed_voters(voters);
        }
    }
}

impl<S: VoteScheme> Actor for StarReplica<S> {
    type Msg = StarMsg<S>;

    fn on_start(&mut self, ctx: &mut Context<StarMsg<S>>) {
        self.chain.metrics.total_views += 1;
        ctx.set_timer(self.cfg.view_timeout, 1);
        if self.leader_of(1) == self.id {
            self.propose(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<StarMsg<S>>, _from: NodeId, msg: StarMsg<S>) {
        ctx.charge_cpu(self.cfg.cost.msg_overhead);
        match msg {
            StarMsg::Proposal { block, qc } => self.handle_proposal(ctx, block, qc),
            StarMsg::Vote { view, block, agg } => self.handle_vote(ctx, view, block, agg),
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<StarMsg<S>>, timer: u64) {
        if timer != self.current_view {
            return; // stale timer; progress happened
        }
        // View timed out: advance and, if we lead the new view, propose
        // extending the highest QC.
        let next = self.current_view + 1;
        self.enter_view(ctx, next, true);
        if self.leader_of(next) == self.id {
            self.propose(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iniva_crypto::sim_scheme::SimScheme;
    use iniva_net::{NetConfig, Simulation, SECS};

    fn build(n: usize, rate: u64) -> Simulation<StarReplica<SimScheme>> {
        let scheme = Arc::new(SimScheme::new(n, b"star-test"));
        let cfg = ReplicaConfig {
            request_rate: rate,
            ..ReplicaConfig::for_tests(n)
        };
        let replicas = (0..n as u32)
            .map(|id| StarReplica::new(id, cfg.clone(), Arc::clone(&scheme)))
            .collect();
        Simulation::new(NetConfig::default(), replicas)
    }

    #[test]
    fn fault_free_chain_grows_and_commits() {
        let mut sim = build(4, 10_000);
        sim.run_until(2 * SECS);
        let h = sim.actor(0).chain.committed_height();
        assert!(h > 10, "committed height {h} too small");
        assert!(sim.actor(0).chain.metrics.committed_reqs > 0);
    }

    #[test]
    fn all_replicas_agree_on_committed_prefix() {
        let mut sim = build(4, 10_000);
        sim.run_until(2 * SECS);
        let heights: Vec<u64> = (0..4)
            .map(|i| sim.actor(i).chain.committed_height())
            .collect();
        let min = *heights.iter().min().unwrap();
        let max = *heights.iter().max().unwrap();
        assert!(min > 0);
        assert!(max - min <= 3, "replicas too far apart: {heights:?}");
    }

    #[test]
    fn quorum_sized_qcs() {
        let mut sim = build(7, 10_000);
        sim.run_until(SECS);
        let m = &sim.actor(0).chain.metrics;
        assert!(m.qc_count > 0);
        // In the star protocol the leader stops at exactly a quorum.
        assert!(m.mean_qc_size() >= quorum(7) as f64 - 0.01);
    }

    #[test]
    fn crashed_leader_causes_failed_views_but_liveness_persists() {
        // Note: n = 7, not 4 — chained HotStuff's consecutive-view commit
        // rule needs windows of 4 consecutive honest leaders (BeeGees [29]);
        // with n = 4 and one fixed crash, round-robin never provides one.
        let mut sim = build(7, 10_000);
        sim.crash(2);
        sim.run_until(6 * SECS);
        let m = &sim.actor(0).chain.metrics;
        assert!(
            m.failed_views > 0,
            "round-robin must hit the crashed leader"
        );
        assert!(
            sim.actor(0).chain.committed_height() > 3,
            "liveness must persist with 1 crash of 7 (got {})",
            sim.actor(0).chain.committed_height()
        );
    }

    #[test]
    fn throughput_increases_with_load_until_saturation() {
        let mut low = build(4, 1_000);
        low.run_until(2 * SECS);
        let mut high = build(4, 50_000);
        high.run_until(2 * SECS);
        let tl = low.actor(0).chain.metrics.committed_reqs;
        let th = high.actor(0).chain.metrics.committed_reqs;
        assert!(th > tl, "higher load must commit more ({tl} vs {th})");
    }

    #[test]
    fn leader_cpu_dominates_in_star() {
        let mut sim = build(7, 20_000);
        sim.run_until(2 * SECS);
        // Aggregate CPU at any leader (round-robin hits everyone) must be
        // well above zero; with rotation all replicas do leader work, so
        // check the total is dominated by verify costs.
        let total: u64 = (0..7).map(|i| sim.stats(i).cpu_busy).sum();
        assert!(total > 0);
    }

    #[test]
    fn forged_votes_dropped_by_batch_verification_and_qc_still_forms() {
        use crate::types::{vote_message, GENESIS_HASH};
        use iniva_net::Context;
        let n = 4;
        let scheme = Arc::new(SimScheme::new(n, b"star-batch"));
        let mut r = StarReplica::new(2, ReplicaConfig::for_tests(n), Arc::clone(&scheme));
        let block = Block {
            view: 1,
            height: 1,
            parent: GENESIS_HASH,
            proposer: 1,
            batch_start: 0,
            batch_len: 0,
            payload_per_req: 0,
        };
        r.chain.insert_block(block.clone());
        let msg = vote_message(&block.hash(), 1);
        let mut ctx = Context::external(2, 0);
        // Honest vote opens the accumulation (cold path verifies it).
        r.handle_vote(&mut ctx, 1, block.clone(), scheme.sign(1, &msg));
        // A forged vote claiming signer 0 queues structurally...
        let mut forged = scheme.sign(0, b"some other message");
        forged.mults = iniva_crypto::multisig::Multiplicities::singleton(0);
        r.handle_vote(&mut ctx, 1, block.clone(), forged);
        // ...and the quorum-triggering batch must identify and drop it
        // without blocking the honest votes.
        r.handle_vote(&mut ctx, 1, block.clone(), scheme.sign(2, &msg));
        assert!(r.chain.highest_qc().is_none(), "forgery broke the quorum");
        r.handle_vote(&mut ctx, 1, block.clone(), scheme.sign(3, &msg));
        let qc = r.chain.highest_qc().expect("quorum of honest votes");
        let mults = scheme.multiplicities(&qc.agg);
        assert!(!mults.contains(0), "forged signer must not enter the QC");
        for s in [1, 2, 3] {
            assert!(mults.contains(s));
        }
        assert!(scheme.verify(&msg, &qc.agg));
    }

    #[test]
    fn forged_squatter_cannot_suppress_the_honest_vote_it_raced() {
        use crate::types::{vote_message, GENESIS_HASH};
        use iniva_net::Context;
        let n = 4;
        let scheme = Arc::new(SimScheme::new(n, b"star-squat"));
        let mut r = StarReplica::new(2, ReplicaConfig::for_tests(n), Arc::clone(&scheme));
        let block = Block {
            view: 1,
            height: 1,
            parent: GENESIS_HASH,
            proposer: 1,
            batch_start: 0,
            batch_len: 0,
            payload_per_req: 0,
        };
        r.chain.insert_block(block.clone());
        let msg = vote_message(&block.hash(), 1);
        let mut ctx = Context::external(2, 0);
        r.handle_vote(&mut ctx, 1, block.clone(), scheme.sign(1, &msg));
        // Forged votes squat signers 2 and 3 in the unverified queue
        // (quorum is 3, so no batch fires yet)...
        for squat in [2u32, 3] {
            let mut forged = scheme.sign(squat, b"junk");
            forged.mults = iniva_crypto::multisig::Multiplicities::singleton(squat);
            r.handle_vote(&mut ctx, 1, block.clone(), forged);
        }
        assert!(r.chain.highest_qc().is_none());
        // ...but the honest votes they raced must still be able to claim
        // their slots: the conflict is resolved on arrival, the squatters
        // are evicted, and the quorum forms from genuine votes.
        r.handle_vote(&mut ctx, 1, block.clone(), scheme.sign(2, &msg));
        r.handle_vote(&mut ctx, 1, block.clone(), scheme.sign(3, &msg));
        let qc = r.chain.highest_qc().expect("honest quorum must form");
        assert!(scheme.verify(&msg, &qc.agg));
        assert!(scheme.multiplicities(&qc.agg).distinct() >= quorum(n));
    }

    #[test]
    fn far_future_junk_vote_cannot_wedge_vote_collection() {
        use crate::types::{vote_message, GENESIS_HASH};
        use iniva_net::Context;
        let n = 4;
        let scheme = Arc::new(SimScheme::new(n, b"star-wedge"));
        let mut r = StarReplica::new(2, ReplicaConfig::for_tests(n), Arc::clone(&scheme));
        let block = Block {
            view: 1,
            height: 1,
            parent: GENESIS_HASH,
            proposer: 1,
            batch_start: 0,
            batch_len: 0,
            payload_per_req: 0,
        };
        r.chain.insert_block(block.clone());
        let mut ctx = Context::external(2, 0);
        // A validly-signed junk vote for an absurdly future view is
        // refused outright (outside the pacemaker window)...
        let junk_far = Block {
            view: u64::MAX - 1,
            ..block.clone()
        };
        let far_vote = scheme.sign(0, &vote_message(&junk_far.hash(), u64::MAX - 1));
        r.handle_vote(&mut ctx, u64::MAX - 1, junk_far, far_vote);
        assert!(r.pending.is_none(), "far-future vote must not squat");
        // ...and a junk vote *inside* the window squats only until the
        // next verified vote: a singleton accumulation is always
        // displaceable, so the honest quorum still forms.
        let junk_near = Block {
            view: 3,
            ..block.clone()
        };
        let near_vote = scheme.sign(0, &vote_message(&junk_near.hash(), 3));
        r.handle_vote(&mut ctx, 3, junk_near, near_vote);
        assert!(r.pending.is_some(), "in-window vote accumulates");
        let msg = vote_message(&block.hash(), 1);
        for signer in [1, 2, 3] {
            r.handle_vote(&mut ctx, 1, block.clone(), scheme.sign(signer, &msg));
        }
        let qc = r.chain.highest_qc().expect("honest quorum must form");
        assert_eq!(qc.view, 1);
        assert!(scheme.verify(&msg, &qc.agg));
    }

    #[test]
    fn forged_queued_votes_confer_no_displacement_protection() {
        use crate::types::{vote_message, GENESIS_HASH};
        use iniva_net::Context;
        let n = 4;
        let scheme = Arc::new(SimScheme::new(n, b"star-sticky"));
        let mut r = StarReplica::new(2, ReplicaConfig::for_tests(n), Arc::clone(&scheme));
        let block = Block {
            view: 1,
            height: 1,
            parent: GENESIS_HASH,
            proposer: 1,
            batch_start: 0,
            batch_len: 0,
            payload_per_req: 0,
        };
        r.chain.insert_block(block.clone());
        let mut ctx = Context::external(2, 0);
        // Byzantine member 0 opens a junk-block accumulation with a
        // validly signed vote (cold path verifies it)...
        let junk = Block {
            proposer: 0,
            ..block.clone()
        };
        let junk_vote = scheme.sign(0, &vote_message(&junk.hash(), 1));
        r.handle_vote(&mut ctx, 1, junk.clone(), junk_vote);
        // ...and pads it with a forged vote (garbage signature claiming
        // signer 3) that queues unverified. The padded count must NOT
        // protect the junk accumulation from displacement.
        let mut forged = scheme.sign(3, b"garbage");
        forged.mults = iniva_crypto::multisig::Multiplicities::singleton(3);
        r.handle_vote(&mut ctx, 1, junk, forged);
        let msg = vote_message(&block.hash(), 1);
        for signer in [1, 2, 3] {
            r.handle_vote(&mut ctx, 1, block.clone(), scheme.sign(signer, &msg));
        }
        let qc = r.chain.highest_qc().expect("honest quorum must form");
        assert_eq!(qc.view, 1);
        assert!(scheme.verify(&msg, &qc.agg));
    }

    #[test]
    fn duplicate_votes_rejected_before_any_verification() {
        use crate::types::{vote_message, GENESIS_HASH};
        use iniva_net::Context;
        let n = 7;
        let scheme = Arc::new(SimScheme::new(n, b"star-dup"));
        let mut r = StarReplica::new(2, ReplicaConfig::for_tests(n), Arc::clone(&scheme));
        let block = Block {
            view: 1,
            height: 1,
            parent: GENESIS_HASH,
            proposer: 1,
            batch_start: 0,
            batch_len: 0,
            payload_per_req: 0,
        };
        let msg = vote_message(&block.hash(), 1);
        let mut ctx = Context::external(2, 0);
        r.handle_vote(&mut ctx, 1, block.clone(), scheme.sign(1, &msg));
        // Spamming the same signer never reaches the quorum counter: the
        // QC must still be missing after many duplicates (quorum is 5).
        for _ in 0..20 {
            r.handle_vote(&mut ctx, 1, block.clone(), scheme.sign(1, &msg));
        }
        assert!(r.chain.highest_qc().is_none());
        let pend = r.pending.as_ref().expect("accumulating");
        assert_eq!(pend.collected(&scheme), 1, "duplicates must not queue");
        // A duplicate of a *queued* (not yet batch-verified) vote pays
        // one conflict-resolving verification and promotes the genuine
        // vote; every further duplicate then hits the cheap
        // verified-accumulator check.
        r.handle_vote(&mut ctx, 1, block.clone(), scheme.sign(2, &msg));
        r.handle_vote(&mut ctx, 1, block.clone(), scheme.sign(2, &msg));
        let pend = r.pending.as_ref().expect("accumulating");
        assert_eq!(pend.verified_distinct(&scheme), 2, "genuine vote promoted");
        assert!(pend.queued.is_empty(), "promotion drains the queue slot");
        assert_eq!(pend.collected(&scheme), 2);
    }

    #[test]
    fn star_messages_roundtrip_on_the_wire() {
        use crate::types::GENESIS_HASH;
        use iniva_net::wire::Codec;
        let s = SimScheme::new(4, b"star-wire");
        let block = Block {
            view: 2,
            height: 1,
            parent: GENESIS_HASH,
            proposer: 1,
            batch_start: 0,
            batch_len: 4,
            payload_per_req: 64,
        };
        let msg = vote_message(&block.hash(), block.view);
        let qc = Qc::<SimScheme> {
            block_hash: block.hash(),
            view: 2,
            height: 1,
            agg: s.combine(&s.sign(0, &msg), &s.sign(1, &msg)),
        };
        let variants: Vec<StarMsg<SimScheme>> = vec![
            StarMsg::Proposal {
                block: block.clone(),
                qc: Some(qc.clone()),
            },
            StarMsg::Proposal {
                block: block.clone(),
                qc: None,
            },
            StarMsg::Vote {
                view: 2,
                block,
                agg: s.sign(3, &msg),
            },
        ];
        for m in &variants {
            let frame = m.to_frame();
            let back: StarMsg<SimScheme> = Codec::from_frame(frame.clone()).unwrap();
            // No PartialEq on scheme aggregates: compare canonical bytes.
            assert_eq!(&back.to_frame()[..], &frame[..]);
            // Every strict prefix fails cleanly.
            for cut in 0..frame.len() {
                assert!(StarMsg::<SimScheme>::from_frame(frame.slice(0..cut)).is_err());
            }
        }
        // The QC itself roundtrips and still verifies.
        let back = Qc::<SimScheme>::from_frame(qc.to_frame()).unwrap();
        assert_eq!(back.block_hash, qc.block_hash);
        assert_eq!(back.signer_count(&s), 2);
        assert!(s.verify(&msg, &back.agg));
    }
}
