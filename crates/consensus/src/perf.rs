//! The shared performance-point definition.
//!
//! Both measurement backends — the discrete-event simulator harness
//! (`iniva-sim::perf`) and the real-socket transport runtime
//! (`iniva-transport`) — reduce a run to this struct with the *same*
//! metric definitions, so simulated and live numbers are directly
//! comparable:
//!
//! * throughput = committed requests / duration,
//! * latency = mean (and median) of commit − arrival per request,
//! * CPU% = charged busy time / wall time per node (mean and max),
//! * QC size = mean distinct signers per certificate,
//! * failed views = timeout-entered views / total views.

use crate::chain::ChainMetrics;

/// Nanoseconds per second (duplicated from `iniva-net` to keep this module
/// usable by both backends without an extra dependency edge).
const SECS: f64 = 1_000_000_000.0;
const MILLIS: f64 = 1_000_000.0;

/// Measured output of one run, simulated or live.
#[derive(Debug, Clone)]
pub struct PerfSummary {
    /// Committed requests per second.
    pub throughput: f64,
    /// Mean request latency in milliseconds.
    pub latency_ms: f64,
    /// Median request latency in milliseconds.
    pub median_latency_ms: f64,
    /// Mean CPU utilization across replicas (0..=100, %).
    pub cpu_mean_pct: f64,
    /// Maximum per-replica CPU utilization (%): the leader bottleneck.
    pub cpu_max_pct: f64,
    /// Mean QC size (distinct signers).
    pub qc_size: f64,
    /// Fraction of failed views.
    pub failed_views: f64,
}

impl PerfSummary {
    /// Reduces one replica's chain metrics plus per-node CPU busy times
    /// (nanoseconds over the same `duration_secs` window) to a summary.
    pub fn from_metrics(metrics: &ChainMetrics, duration_secs: f64, cpu_busy_ns: &[u64]) -> Self {
        let wall = duration_secs * SECS;
        let cpu: Vec<f64> = cpu_busy_ns
            .iter()
            .map(|&busy| busy as f64 / wall * 100.0)
            .collect();
        let n = cpu.len().max(1) as f64;
        PerfSummary {
            throughput: metrics.committed_reqs as f64 / duration_secs,
            latency_ms: metrics.mean_latency() / MILLIS,
            median_latency_ms: metrics.median_latency() / MILLIS,
            cpu_mean_pct: cpu.iter().sum::<f64>() / n,
            cpu_max_pct: cpu.iter().cloned().fold(0.0, f64::max),
            qc_size: metrics.mean_qc_size(),
            failed_views: metrics.failed_view_fraction(),
        }
    }

    /// Column header matching [`PerfSummary::table_row`].
    pub fn table_header() -> String {
        format!(
            "{:<14} {:>12} {:>12} {:>12} {:>9} {:>9} {:>9} {:>8}",
            "backend",
            "ops/s",
            "latency ms",
            "median ms",
            "cpu avg%",
            "cpu max%",
            "QC size",
            "failed%"
        )
    }

    /// One formatted row, labeled with the backend/configuration.
    pub fn table_row(&self, label: &str) -> String {
        format!(
            "{:<14} {:>12.0} {:>12.2} {:>12.2} {:>9.1} {:>9.1} {:>9.2} {:>8.2}",
            label,
            self.throughput,
            self.latency_ms,
            self.median_latency_ms,
            self.cpu_mean_pct,
            self.cpu_max_pct,
            self.qc_size,
            self.failed_views * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> ChainMetrics {
        ChainMetrics {
            committed_reqs: 1000,
            latency_sum: 1000 * 5_000_000, // 5 ms each
            latency_samples: vec![5_000_000; 1000],
            committed_blocks: 10,
            qc_signers_sum: 40,
            qc_count: 10,
            failed_views: 1,
            total_views: 10,
            ..ChainMetrics::default()
        }
    }

    #[test]
    fn definitions_match_the_simulator_harness() {
        let s = PerfSummary::from_metrics(&metrics(), 2.0, &[1_000_000_000, 0]);
        assert_eq!(s.throughput, 500.0);
        assert_eq!(s.latency_ms, 5.0);
        assert_eq!(s.median_latency_ms, 5.0);
        assert_eq!(s.cpu_mean_pct, 25.0); // (50% + 0%) / 2
        assert_eq!(s.cpu_max_pct, 50.0);
        assert_eq!(s.qc_size, 4.0);
        assert_eq!(s.failed_views, 0.1);
    }

    #[test]
    fn rows_align_with_header() {
        let s = PerfSummary::from_metrics(&metrics(), 2.0, &[0]);
        let header = PerfSummary::table_header();
        let row = s.table_row("simulated");
        assert!(header.starts_with("backend"));
        assert!(row.starts_with("simulated"));
    }
}
