//! Core consensus data types: blocks, quorum certificates, workloads.

use iniva_crypto::multisig::VoteScheme;
use iniva_crypto::sha256::sha256_many;
use iniva_net::wire::{DecodeError, Decoder, Encoder, WireDecode, WireEncode};

/// A 32-byte block hash.
pub type BlockHash = [u8; 32];

/// The genesis block hash.
pub const GENESIS_HASH: BlockHash = [0u8; 32];

/// A block header plus workload metadata.
///
/// Payload bytes are *modeled*, not materialized: the block records which
/// client requests it batches (`batch_start .. batch_start + batch_len`) and
/// the per-request payload size, which determine wire size, validation cost
/// and the throughput/latency metrics — exactly the quantities the paper's
/// evaluation measures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// View in which the block was proposed.
    pub view: u64,
    /// Chain height (parent height + 1).
    pub height: u64,
    /// Hash of the parent block.
    pub parent: BlockHash,
    /// Proposer identity.
    pub proposer: u32,
    /// First batched client request (global sequence number).
    pub batch_start: u64,
    /// Number of batched requests.
    pub batch_len: u32,
    /// Payload bytes per request.
    pub payload_per_req: u32,
}

impl Block {
    /// The genesis block.
    pub fn genesis() -> Self {
        Block {
            view: 0,
            height: 0,
            parent: GENESIS_HASH,
            proposer: 0,
            batch_start: 0,
            batch_len: 0,
            payload_per_req: 0,
        }
    }

    /// Deterministic block hash over all header fields.
    pub fn hash(&self) -> BlockHash {
        if self.height == 0 {
            return GENESIS_HASH;
        }
        sha256_many(&[
            b"iniva-block",
            &self.view.to_be_bytes(),
            &self.height.to_be_bytes(),
            &self.parent,
            &self.proposer.to_be_bytes(),
            &self.batch_start.to_be_bytes(),
            &self.batch_len.to_be_bytes(),
            &self.payload_per_req.to_be_bytes(),
        ])
    }

    /// Total payload bytes carried by the block.
    pub fn payload_bytes(&self) -> usize {
        self.batch_len as usize * self.payload_per_req as usize
    }

    /// Serialized size on the wire (header + payload).
    pub fn wire_bytes(&self) -> usize {
        BLOCK_HEADER_BYTES + self.payload_bytes()
    }
}

impl WireEncode for Block {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.view)
            .put_u64(self.height)
            .put_array(&self.parent)
            .put_u32(self.proposer)
            .put_u64(self.batch_start)
            .put_u32(self.batch_len)
            .put_u32(self.payload_per_req);
    }
}

impl WireDecode for Block {
    fn decode(dec: &mut Decoder) -> Result<Self, DecodeError> {
        Ok(Block {
            view: dec.get_u64()?,
            height: dec.get_u64()?,
            parent: dec.get_array()?,
            proposer: dec.get_u32()?,
            batch_start: dec.get_u64()?,
            batch_len: dec.get_u32()?,
            payload_per_req: dec.get_u32()?,
        })
    }
}

/// Modeled size of a block header (hashes, view numbers, QC reference).
pub const BLOCK_HEADER_BYTES: usize = 200;

/// Modeled size of one aggregated BLS signature (G1 point, compressed).
pub const AGG_SIG_BYTES: usize = 48;

/// Modeled per-signer metadata bytes in a QC (id + multiplicity).
pub const PER_SIGNER_BYTES: usize = 6;

/// A quorum certificate: an aggregate over the block hash plus bookkeeping.
#[derive(Debug)]
pub struct Qc<S: VoteScheme> {
    /// Certified block.
    pub block_hash: BlockHash,
    /// View of the certified block.
    pub view: u64,
    /// Height of the certified block.
    pub height: u64,
    /// The aggregate signature (with multiplicities).
    pub agg: S::Aggregate,
}

// Manual impl: `S::Aggregate: Clone` is guaranteed by the trait, but a
// derived Clone would demand `S: Clone`.
impl<S: VoteScheme> Clone for Qc<S> {
    fn clone(&self) -> Self {
        Qc {
            block_hash: self.block_hash,
            view: self.view,
            height: self.height,
            agg: self.agg.clone(),
        }
    }
}

impl<S: VoteScheme> WireEncode for Qc<S>
where
    S::Aggregate: WireEncode,
{
    fn encode(&self, enc: &mut Encoder) {
        enc.put_array(&self.block_hash)
            .put_u64(self.view)
            .put_u64(self.height);
        self.agg.encode(enc);
    }
}

impl<S: VoteScheme> WireDecode for Qc<S>
where
    S::Aggregate: WireDecode,
{
    fn decode(dec: &mut Decoder) -> Result<Self, DecodeError> {
        Ok(Qc {
            block_hash: dec.get_array()?,
            view: dec.get_u64()?,
            height: dec.get_u64()?,
            agg: S::Aggregate::decode(dec)?,
        })
    }
}

impl<S: VoteScheme> Qc<S> {
    /// Modeled wire size of the QC.
    pub fn wire_bytes(&self, scheme: &S) -> usize {
        AGG_SIG_BYTES + PER_SIGNER_BYTES * scheme.multiplicities(&self.agg).distinct()
    }

    /// Number of distinct signers in the QC (the paper's "QC size",
    /// Fig. 4d).
    pub fn signer_count(&self, scheme: &S) -> usize {
        scheme.multiplicities(&self.agg).distinct()
    }
}

/// The message that committee members sign when voting for a block.
pub fn vote_message(block_hash: &BlockHash, view: u64) -> Vec<u8> {
    let mut m = Vec::with_capacity(40);
    m.extend_from_slice(b"vote");
    m.extend_from_slice(block_hash);
    m.extend_from_slice(&view.to_be_bytes());
    m
}

/// Quorum size `(1 - f) * n` with `f = 1/3`: the smallest integer covering
/// `2n/3` (equivalently `n - floor(n/3)`... we use `2f + 1` for `n = 3f+1`).
pub fn quorum(n: usize) -> usize {
    n - (n - 1) / 3
}

#[cfg(test)]
mod tests {
    use super::*;
    use iniva_crypto::sim_scheme::SimScheme;

    #[test]
    fn genesis_hash_is_fixed() {
        assert_eq!(Block::genesis().hash(), GENESIS_HASH);
    }

    #[test]
    fn hash_changes_with_any_field() {
        let b = Block {
            view: 1,
            height: 1,
            parent: GENESIS_HASH,
            proposer: 0,
            batch_start: 0,
            batch_len: 10,
            payload_per_req: 64,
        };
        let mut b2 = b.clone();
        b2.view = 2;
        assert_ne!(b.hash(), b2.hash());
        let mut b3 = b.clone();
        b3.batch_len = 11;
        assert_ne!(b.hash(), b3.hash());
    }

    #[test]
    fn quorum_matches_bft_bounds() {
        assert_eq!(quorum(4), 3);
        assert_eq!(quorum(21), 15); // paper: "HotStuff always includes a quorum of 15 votes"
        assert_eq!(quorum(111), 75);
        assert_eq!(quorum(1), 1);
    }

    #[test]
    fn wire_sizes_scale_with_batch() {
        let mut b = Block::genesis();
        b.height = 1;
        b.batch_len = 100;
        b.payload_per_req = 64;
        assert_eq!(b.wire_bytes(), BLOCK_HEADER_BYTES + 6400);
    }

    #[test]
    fn block_wire_roundtrip() {
        let b = Block {
            view: 9,
            height: 8,
            parent: [0xab; 32],
            proposer: 3,
            batch_start: 12345,
            batch_len: 100,
            payload_per_req: 64,
        };
        let bytes = b.to_wire();
        let mut dec = iniva_net::wire::Decoder::new(bytes);
        let back = Block::decode(&mut dec).unwrap();
        assert_eq!(back, b);
        assert_eq!(back.hash(), b.hash());
        assert_eq!(dec.remaining(), 0);
    }

    #[test]
    fn truncated_block_rejected() {
        let b = Block::genesis();
        let bytes = b.to_wire();
        let mut dec = iniva_net::wire::Decoder::new(bytes.slice(0..10));
        assert!(Block::decode(&mut dec).is_err());
    }

    #[test]
    fn qc_signer_count_reads_multiplicities() {
        let s = SimScheme::new(4, b"x");
        use iniva_crypto::multisig::VoteScheme;
        let agg = s.combine(&s.sign(0, b"m"), &s.sign(2, b"m"));
        let qc: Qc<SimScheme> = Qc {
            block_hash: GENESIS_HASH,
            view: 0,
            height: 0,
            agg,
        };
        assert_eq!(qc.signer_count(&s), 2);
    }
}
