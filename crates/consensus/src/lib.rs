//! # iniva-consensus
//!
//! A round-based chained-HotStuff consensus substrate with pluggable vote
//! aggregation, reproducing the framework the Iniva paper integrates with
//! (Section VIII-A: Iniva replaces the vote-aggregation module without
//! changing consensus, client or request handling).
//!
//! * [`types`] — blocks, quorum certificates, workload modeling.
//! * [`chain`] — block store, three-chain commit rule, metrics.
//! * [`leader`] — round-robin and Carousel leader election.
//! * [`star`] — the baseline star-topology HotStuff replica (leader collects
//!   and verifies every vote individually).
//!
//! The Iniva tree-aggregation replica lives in the `iniva` crate and reuses
//! [`chain`], [`leader`] and [`types`] unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;
pub mod leader;
pub mod perf;
pub mod star;
pub mod types;

pub use chain::{ChainMetrics, ChainState, CommitSink};
pub use leader::{LeaderContext, LeaderPolicy};
pub use perf::PerfSummary;
pub use star::{ReplicaConfig, StarMsg, StarReplica};
pub use types::{quorum, vote_message, Block, BlockHash, Qc};
