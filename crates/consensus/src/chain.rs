//! Block store, the chained-HotStuff commit rule and chain metrics.
//!
//! Durability: a [`CommitSink`] plugged into the chain observes every
//! commit (and view entry) *as it happens*, which is how `iniva-storage`'s
//! write-ahead log makes the committed prefix survive a `kill -9` —
//! [`ChainState::rehydrate`] replays the recovered prefix on restart, and
//! [`ChainState::adopt_committed`] lets a lagging replica graft blocks
//! fetched from peers via state transfer directly onto its prefix.

use crate::types::{quorum, vote_message, Block, BlockHash, Qc, GENESIS_HASH};
use iniva_crypto::multisig::VoteScheme;
use iniva_net::Time;
use std::collections::HashMap;
use std::sync::Arc;

/// Cap on recorded per-request latency samples (for percentile metrics);
/// past it only the running sum continues, so long simulator runs don't
/// grow without bound while short live-cluster runs get exact percentiles.
pub const LATENCY_SAMPLE_CAP: usize = 100_000;

/// Cap on the committed-block log kept for cross-replica agreement checks;
/// bounds memory on long runs the same way [`LATENCY_SAMPLE_CAP`] does.
pub const COMMITTED_LOG_CAP: usize = 65_536;

/// An external supply of client requests backing the proposer's block
/// drafts — the hook a live mempool (`iniva-ingress`) plugs into. When a
/// source is attached ([`ChainState::set_request_source`]) it replaces
/// the synthetic `ns_per_req` arrival model as the block source: `draft`
/// decides how many admitted requests fill a block's sequence range, and
/// `committed` settles a committed range and reports each request's
/// submit-to-commit latency on the *source's* clock (the chain's `now`
/// and the source's admission timestamps need not share an epoch).
///
/// Blocks keep carrying pure `(batch_start, batch_len)` ranges either
/// way, so the wire format and the committed ≤ admitted ≤ offered
/// accounting invariant are identical in both modes.
pub trait RequestSource: Send + Sync {
    /// Claims up to `max` admitted requests for the contiguous sequence
    /// range beginning at `start`, returning how many were claimed.
    /// Ranges claimed for views that later fail are abandoned by the
    /// source — the same open-loop trade-off as the draft cursor.
    fn draft(&self, start: u64, max: u32) -> u32;

    /// Settles the committed range `start..start+len` at block `height`,
    /// returning the submit-to-commit latency (ns) of every request in
    /// the range this source still had in flight. A range may settle
    /// fewer than `len` entries (another replica already settled it, or
    /// part of it was abandoned).
    fn committed(&self, height: u64, start: u64, len: u32) -> Vec<u64>;
}

/// Per-chain metrics harvested by the experiment harness.
#[derive(Debug, Clone, Default)]
pub struct ChainMetrics {
    /// Committed client requests.
    pub committed_reqs: u64,
    /// Sum of request latencies (commit time − arrival time), ns.
    pub latency_sum: u128,
    /// Per-request latency samples (ns), first [`LATENCY_SAMPLE_CAP`] only.
    pub latency_samples: Vec<u64>,
    /// Committed blocks.
    pub committed_blocks: u64,
    /// Sum of distinct signers over all QCs formed/observed.
    pub qc_signers_sum: u64,
    /// Number of QCs counted in `qc_signers_sum`.
    pub qc_count: u64,
    /// Views entered via timeout (failed views).
    pub failed_views: u64,
    /// Total views entered.
    pub total_views: u64,
    /// When the most recent commit landed (ns of run time; 0 = never).
    /// Chaos harnesses assert on this to show a cluster resumed
    /// committing *after* a heal, not merely that totals grew.
    pub last_commit_time: Time,
    /// `(time, committed height)` per commit, ascending (first
    /// [`COMMITTED_LOG_CAP`] commits) — the chain's progress curve.
    pub commit_points: Vec<(Time, u64)>,
    /// Committed blocks rehydrated from a write-ahead log at startup
    /// (excluded from `committed_blocks` and the progress curve: they were
    /// committed by a *previous* incarnation of this replica).
    pub recovered_blocks: u64,
    /// Committed blocks adopted from peers via state transfer (also
    /// excluded from `committed_blocks`/`commit_points`, so those keep
    /// meaning "commits this replica reached through the protocol").
    pub state_transfer_blocks: u64,
    /// How many of `latency_samples` have been fed to the registry
    /// histogram already (see [`ChainMetrics::export`]).
    pub exported_latency_samples: usize,
}

impl ChainMetrics {
    /// Mean request latency in nanoseconds (0 if nothing committed).
    pub fn mean_latency(&self) -> f64 {
        if self.committed_reqs == 0 {
            0.0
        } else {
            self.latency_sum as f64 / self.committed_reqs as f64
        }
    }

    /// Median request latency in nanoseconds over the recorded samples
    /// (0 if nothing committed).
    pub fn median_latency(&self) -> f64 {
        if self.latency_samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.latency_samples.clone();
        let mid = sorted.len() / 2;
        let (_, m, _) = sorted.select_nth_unstable(mid);
        *m as f64
    }

    /// Mean QC size (distinct signers).
    pub fn mean_qc_size(&self) -> f64 {
        if self.qc_count == 0 {
            0.0
        } else {
            self.qc_signers_sum as f64 / self.qc_count as f64
        }
    }

    /// Fraction of views that failed.
    pub fn failed_view_fraction(&self) -> f64 {
        if self.total_views == 0 {
            0.0
        } else {
            self.failed_views as f64 / self.total_views as f64
        }
    }

    /// Blocks committed at or after `t` (from the recorded progress
    /// curve) — the chaos harness's "did it resume after the heal" hook.
    pub fn commits_since(&self, t: Time) -> u64 {
        self.commit_points
            .iter()
            .filter(|&&(at, _)| at >= t)
            .count() as u64
    }

    /// Mirrors the chain's cumulative stats into `registry` under the
    /// `chain.` prefix, and feeds the recorded per-request latencies
    /// into a `chain.commit_latency_ns` histogram. Counters are stored
    /// (not added), so re-exporting the same metrics is idempotent; the
    /// histogram only ingests samples recorded since the last export.
    pub fn export(&mut self, registry: &iniva_obs::Registry) {
        registry
            .counter("chain.committed_reqs")
            .store(self.committed_reqs);
        registry
            .counter("chain.committed_blocks")
            .store(self.committed_blocks);
        registry
            .counter("chain.failed_views")
            .store(self.failed_views);
        registry
            .counter("chain.total_views")
            .store(self.total_views);
        registry
            .counter("chain.qc_signers_sum")
            .store(self.qc_signers_sum);
        registry.counter("chain.qc_count").store(self.qc_count);
        registry
            .counter("chain.recovered_blocks")
            .store(self.recovered_blocks);
        registry
            .counter("chain.state_transfer_blocks")
            .store(self.state_transfer_blocks);
        let hist = registry.histogram("chain.commit_latency_ns");
        for &ns in &self.latency_samples[self.exported_latency_samples..] {
            hist.record(ns);
        }
        self.exported_latency_samples = self.latency_samples.len();
    }
}

/// Observer of durable chain events, called synchronously **inside** the
/// commit path: when `committed` returns, the block is expected to be as
/// durable as the sink makes it (the WAL sink in `iniva-storage` fsyncs
/// before returning). Implementations must be fail-stop on persistence
/// errors — a replica that keeps voting past state it cannot remember
/// after a crash is the safety violation durability exists to prevent.
pub trait CommitSink<S: VoteScheme> {
    /// `block` joined the committed prefix; `qc` certifies it when the
    /// replica had observed that certificate by commit time.
    fn committed(&mut self, block: &Block, qc: Option<&Qc<S>>);

    /// A chain of blocks joined the committed prefix in one step (the
    /// three-chain rule can commit a tip plus several ancestors at once).
    /// The default forwards each block to [`Self::committed`]; durable
    /// sinks override it to persist the whole batch under a **single**
    /// sync — with BLS-sized QC records, per-block fsyncs would multiply
    /// the commit path's sync stalls. The durability contract is
    /// batch-level: when this returns, *every* entry is as durable as the
    /// sink makes it.
    fn committed_batch(&mut self, items: &[(Block, Option<Qc<S>>)]) {
        for (block, qc) in items {
            self.committed(block, qc.as_ref());
        }
    }

    /// The replica entered `view` (for restoring pacemaker position on
    /// recovery). Default: ignored.
    fn entered_view(&mut self, _view: u64) {}
}

/// What a call to [`ChainState::adopt_committed_batch`] did: how many
/// blocks joined the prefix, and how much of the chunk actually reached
/// cryptographic verification — the caller's basis for charging modeled
/// CPU (structurally rejected entries cost no pairing work).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchAdoption {
    /// Blocks grafted onto the committed prefix.
    pub adopted: usize,
    /// Entries that passed the structural pass and entered the batch
    /// verification (0 = no multi-pairing ran at all).
    pub verified_entries: usize,
    /// Total distinct signers across the verified entries.
    pub verified_signers: usize,
}

/// The replica-local chain: stores blocks, tracks the highest QC and applies
/// the chained-HotStuff three-chain commit rule.
pub struct ChainState<S: VoteScheme> {
    blocks: HashMap<BlockHash, Block>,
    /// QC over the highest block seen (`None` until the first QC, which
    /// conceptually certifies genesis).
    highest_qc: Option<Qc<S>>,
    committed_height: u64,
    /// Request arrival model: arrival_time(i) = i * ns_per_req.
    ns_per_req: Time,
    /// Next uncommitted request sequence number.
    next_req: u64,
    /// Proposer-side draft cursor: the end of the highest request range
    /// seen in *any* stored block, committed or not. Drafting from
    /// `max(next_req, draft_cursor)` keeps the 2-view commit pipeline from
    /// re-batching ranges that are drafted but not yet committed — without
    /// it, committed throughput exceeds the offered rate at saturation
    /// (each request would be counted by up to three overlapping blocks).
    ///
    /// Deliberate trade-off: a range batched by a block whose view fails
    /// is abandoned (≤ `max_batch` requests per disseminated-then-failed
    /// view), modeling open-loop clients whose in-flight requests need
    /// resubmission rather than being replayed by the protocol. The
    /// conservative direction — committed ≤ offered — is the invariant
    /// the metrics rely on.
    draft_cursor: u64,
    /// Every committed block as `(height, hash)`, ascending — the chain
    /// prefix this replica has finalized (used for cross-replica agreement
    /// checks in the live-cluster tests).
    committed_log: Vec<(u64, BlockHash)>,
    /// QCs observed for not-yet-committed blocks, keyed by certified block
    /// hash; pruned at each commit. When a block commits, its certificate
    /// moves to `committed_qcs` so state transfer can serve it as proof.
    seen_qcs: HashMap<BlockHash, Qc<S>>,
    /// The certificate for each committed height (first
    /// [`COMMITTED_LOG_CAP`] commits), where one was observed.
    committed_qcs: HashMap<u64, Qc<S>>,
    /// Durability hook: observes commits and view entries as they happen.
    sink: Option<Box<dyn CommitSink<S> + Send>>,
    /// Client-request supply: when set, drafts pull admitted requests
    /// from here instead of the synthetic arrival model.
    source: Option<Arc<dyn RequestSource>>,
    /// Metrics.
    pub metrics: ChainMetrics,
}

impl<S: VoteScheme> ChainState<S> {
    /// Creates a chain containing only genesis. `request_rate_per_sec` models
    /// the open-loop client workload (0 = no clients).
    pub fn new(request_rate_per_sec: u64) -> Self {
        let mut blocks = HashMap::new();
        blocks.insert(GENESIS_HASH, Block::genesis());
        ChainState {
            blocks,
            highest_qc: None,
            committed_height: 0,
            ns_per_req: 1_000_000_000u64
                .checked_div(request_rate_per_sec)
                .unwrap_or(0),
            next_req: 0,
            draft_cursor: 0,
            committed_log: Vec::new(),
            seen_qcs: HashMap::new(),
            committed_qcs: HashMap::new(),
            sink: None,
            source: None,
            metrics: ChainMetrics::default(),
        }
    }

    /// Attaches a client-request source (a live mempool): subsequent
    /// drafts claim admitted requests from it, and commits settle their
    /// ranges against it; the synthetic `request_rate_per_sec` arrival
    /// model stops applying.
    pub fn set_request_source(&mut self, source: Arc<dyn RequestSource>) {
        self.source = Some(source);
    }

    /// Attaches a durability sink: every subsequent commit (and view entry
    /// reported via [`Self::note_view`]) is handed to it synchronously.
    pub fn set_commit_sink(&mut self, sink: Box<dyn CommitSink<S> + Send>) {
        self.sink = Some(sink);
    }

    /// Reports a view entry to the attached sink (no-op without one).
    pub fn note_view(&mut self, view: u64) {
        if let Some(sink) = &mut self.sink {
            sink.entered_view(view);
        }
    }

    /// Replays a committed prefix recovered from durable storage into a
    /// **fresh** chain: blocks are stored, the committed log and height
    /// advance, recovered QCs seed the high QC, and the request cursors
    /// skip past every recovered batch so a recovered leader never
    /// re-proposes requests it already committed. Recovered blocks are
    /// counted in [`ChainMetrics::recovered_blocks`] only — this run's
    /// throughput/latency metrics start from zero.
    ///
    /// Entries must be strictly ascending in height (the committed log may
    /// legitimately contain gaps — see [`Self::committed_entry`]);
    /// duplicates and regressions are skipped, matching the WAL reader's
    /// tolerance of duplicated tail appends.
    ///
    /// Nothing is echoed to the commit sink: the prefix is already
    /// durable. Attach the sink after rehydrating (or before — the replay
    /// bypasses it either way).
    pub fn rehydrate(&mut self, commits: Vec<(Block, Option<Qc<S>>)>) {
        for (block, qc) in commits {
            if block.height <= self.committed_height {
                continue;
            }
            self.next_req = self
                .next_req
                .max(block.batch_start + block.batch_len as u64);
            self.committed_height = block.height;
            if self.committed_log.len() < COMMITTED_LOG_CAP {
                self.committed_log.push((block.height, block.hash()));
            }
            if let Some(qc) = qc {
                let better = self
                    .highest_qc
                    .as_ref()
                    .is_none_or(|old| qc.height > old.height);
                if better {
                    self.highest_qc = Some(qc.clone());
                }
                if self.committed_qcs.len() < COMMITTED_LOG_CAP {
                    self.committed_qcs.insert(block.height, qc);
                }
            }
            self.metrics.recovered_blocks += 1;
            self.insert_block(block);
        }
    }

    /// Grafts one peer-served committed block onto the prefix (state
    /// transfer): verifies that `qc` actually certifies `block` with a
    /// quorum before accepting. Returns `true` if the prefix advanced.
    ///
    /// Adopted blocks are durably logged via the sink but counted only in
    /// [`ChainMetrics::state_transfer_blocks`] — `committed_blocks` and
    /// the progress curve keep meaning "commits reached through the
    /// protocol", which is what chaos tests assert resumed after a heal.
    pub fn adopt_committed(&mut self, block: Block, qc: Qc<S>, scheme: &S) -> bool {
        if !self.adoptable(&block, &qc, scheme) {
            return false;
        }
        if !scheme.verify(&vote_message(&block.hash(), qc.view), &qc.agg) {
            return false;
        }
        self.adopt_verified(block, qc);
        true
    }

    /// Grafts a whole state-transfer chunk onto the prefix with **one**
    /// batch verification: the structural checks of
    /// [`Self::adopt_committed`] run per entry (against the prefix as it
    /// would advance), then every surviving QC verifies under a single
    /// multi-pairing — `1 + #entries` Miller loops and one final
    /// exponentiation instead of two Miller loops and a final
    /// exponentiation per entry. Adoption stops at the first entry that
    /// fails structurally or cryptographically (matching the per-item
    /// semantics: later entries chain past a hole the requester cannot
    /// trust yet).
    pub fn adopt_committed_batch(
        &mut self,
        items: Vec<(Block, Qc<S>)>,
        scheme: &S,
    ) -> BatchAdoption {
        // Structural pass against the advancing (simulated) prefix.
        let mut height = self.committed_height;
        let mut checked: Vec<(Block, Qc<S>)> = Vec::new();
        let mut msgs: Vec<Vec<u8>> = Vec::new();
        let mut verified_signers = 0usize;
        for (block, qc) in items {
            if !self.adoptable_at(height, &block, &qc, scheme) {
                break;
            }
            height = block.height;
            verified_signers += qc.signer_count(scheme);
            msgs.push(vote_message(&block.hash(), qc.view));
            checked.push((block, qc));
        }
        if checked.is_empty() {
            return BatchAdoption::default();
        }
        // One multi-pairing across the chunk: each QC certifies its own
        // message, so every entry is its own single-aggregate group.
        let groups: Vec<(&[u8], &[S::Aggregate])> = msgs
            .iter()
            .zip(&checked)
            .map(|(msg, (_, qc))| (msg.as_slice(), std::slice::from_ref(&qc.agg)))
            .collect();
        let outcome = scheme.verify_batch(&groups);
        let first_bad = outcome
            .culprits()
            .first()
            .map_or(checked.len(), |&(group, _)| group);
        let verified_entries = checked.len();
        // Durability first, for the whole adopted prefix under ONE sink
        // call (a single fsync for a WAL sink — the same batch contract
        // the three-chain commit path uses), then in-memory bookkeeping.
        let adopted_entries: Vec<(Block, Option<Qc<S>>)> = checked
            .into_iter()
            .take(first_bad)
            .map(|(block, qc)| (block, Some(qc)))
            .collect();
        let adopted = adopted_entries.len();
        if let Some(sink) = &mut self.sink {
            sink.committed_batch(&adopted_entries);
        }
        for (block, qc) in adopted_entries {
            self.adopt_bookkeeping(block, qc.expect("constructed as Some above"));
        }
        BatchAdoption {
            adopted,
            verified_entries,
            verified_signers,
        }
    }

    /// The structural half of adoption, checked against the *current*
    /// prefix height.
    fn adoptable(&self, block: &Block, qc: &Qc<S>, scheme: &S) -> bool {
        self.adoptable_at(self.committed_height, block, qc, scheme)
    }

    /// Structural adoption checks against an explicit prefix height (the
    /// batch path tracks its own advancing height): the block must sit
    /// past the prefix and the QC must certify exactly this block with a
    /// quorum of distinct signers.
    ///
    /// Any height past the prefix is adoptable (not just `+1`): the
    /// serving peer's own log may have gaps, and the QC alone proves
    /// commitment.
    fn adoptable_at(&self, min_height: u64, block: &Block, qc: &Qc<S>, scheme: &S) -> bool {
        block.height > min_height
            && qc.block_hash == block.hash()
            && qc.height == block.height
            && qc.signer_count(scheme) >= quorum(scheme.committee_size())
    }

    /// The bookkeeping-plus-durability half of adoption; the caller has
    /// already verified `qc` against `block`.
    fn adopt_verified(&mut self, block: Block, qc: Qc<S>) {
        if let Some(sink) = &mut self.sink {
            sink.committed(&block, Some(&qc));
        }
        self.adopt_bookkeeping(block, qc);
    }

    /// The in-memory bookkeeping of adoption alone; the caller has
    /// already verified `qc` *and* handed the entry to the durability
    /// sink (the batch path does that once per chunk via
    /// [`CommitSink::committed_batch`], so a state-transfer chunk costs
    /// one fsync, not one per block).
    fn adopt_bookkeeping(&mut self, block: Block, qc: Qc<S>) {
        let hash = block.hash();
        self.next_req = self
            .next_req
            .max(block.batch_start + block.batch_len as u64);
        self.committed_height = block.height;
        if self.committed_log.len() < COMMITTED_LOG_CAP {
            self.committed_log.push((block.height, hash));
        }
        let better = self
            .highest_qc
            .as_ref()
            .is_none_or(|old| qc.height > old.height);
        if better {
            self.highest_qc = Some(qc.clone());
        }
        // Same retention cap as the protocol commit path: entries past
        // the committed-log cap could never be served anyway (the log
        // stops recording there), so don't let them accumulate.
        if self.committed_qcs.len() < COMMITTED_LOG_CAP {
            self.committed_qcs.insert(block.height, qc);
        }
        self.metrics.state_transfer_blocks += 1;
        self.insert_block(block);
    }

    /// The committed block at `height` together with its certificate, if
    /// both are retained — the lookup a state-transfer responder serves
    /// from. Heights past [`COMMITTED_LOG_CAP`] or committed without an
    /// observed QC return `None` (the requester asks someone else or
    /// catches up via 2ND-CHANCE delivery). The log is ascending but not
    /// necessarily dense: committing a tip whose ancestors were never
    /// delivered records only the blocks this replica actually has.
    pub fn committed_entry(&self, height: u64) -> Option<(&Block, &Qc<S>)> {
        let idx = self
            .committed_log
            .binary_search_by_key(&height, |&(h, _)| h)
            .ok()?;
        let (_, hash) = self.committed_log[idx];
        Some((self.blocks.get(&hash)?, self.committed_qcs.get(&height)?))
    }

    /// Up to `max` provable committed entries from `from_height` upward,
    /// ascending — the chunk a state-transfer responder ships. Heights the
    /// replica cannot prove (no retained block or QC) are skipped rather
    /// than ending the chunk, so one gap in the responder's own log does
    /// not strand a requester behind it forever.
    pub fn committed_range(&self, from_height: u64, max: usize) -> Vec<(&Block, &Qc<S>)> {
        let start = self
            .committed_log
            .partition_point(|&(h, _)| h < from_height);
        self.committed_log[start..]
            .iter()
            .filter_map(|&(height, hash)| {
                Some((self.blocks.get(&hash)?, self.committed_qcs.get(&height)?))
            })
            .take(max)
            .collect()
    }

    /// `(hash, height)` of the chain tip certified by the highest known QC
    /// (genesis if none). Always available even when the certified block
    /// itself has not been delivered (a replica may learn a QC from the
    /// next proposal without ever seeing the block it certifies).
    pub fn high_tip(&self) -> (BlockHash, u64) {
        match &self.highest_qc {
            None => (GENESIS_HASH, 0),
            Some(qc) => (qc.block_hash, qc.height),
        }
    }

    /// The block certified by the highest known QC, if it was delivered
    /// (genesis if no QC is known yet).
    pub fn high_block(&self) -> Option<&Block> {
        let (hash, _) = self.high_tip();
        self.blocks.get(&hash)
    }

    /// The highest QC, if any.
    pub fn highest_qc(&self) -> Option<&Qc<S>> {
        self.highest_qc.as_ref()
    }

    /// Highest committed height.
    pub fn committed_height(&self) -> u64 {
        self.committed_height
    }

    /// The committed chain as `(height, hash)` pairs, ascending (first
    /// [`COMMITTED_LOG_CAP`] commits). Safety means this is a
    /// prefix-consistent log across correct replicas: for any height two
    /// replicas both committed, the hashes agree.
    pub fn committed_log(&self) -> &[(u64, BlockHash)] {
        &self.committed_log
    }

    /// The QC certifying the latest *committed* block, if retained — the
    /// stable anchor Carousel derives its leader pool from. Unlike the
    /// volatile high QC (which diverges across replicas during failed
    /// views), the committed prefix is converged by state transfer, so
    /// every replica sharing it derives the same pool. `None` until the
    /// first commit, or if the tip committed without an observed QC (a
    /// 2ND-CHANCE catch-up can do that) — callers keep their previous pool.
    pub fn committed_tip_qc(&self) -> Option<&Qc<S>> {
        self.committed_qcs.get(&self.committed_height)
    }

    /// Proposers of the last `count` committed blocks, oldest first — the
    /// recent-leader window Carousel excludes (Cohen et al.). Derived from
    /// the committed log, so it is identical on every replica that shares
    /// the committed prefix. Entries whose block body was never delivered
    /// (committed via a QC-only ancestor walk) are skipped.
    pub fn recent_committed_proposers(&self, count: usize) -> Vec<u32> {
        let start = self.committed_log.len().saturating_sub(count);
        self.committed_log[start..]
            .iter()
            .filter_map(|(_, hash)| self.blocks.get(hash).map(|b| b.proposer))
            .collect()
    }

    /// Proposers of the `count` committed blocks at heights in
    /// `(boundary - count, boundary]`, oldest first. This is the
    /// epoch-sampled recent-leader window: callers pass a `boundary`
    /// quantized to a fixed epoch length, so the result only changes when
    /// the committed height crosses an epoch boundary. A window that slid
    /// with *every* commit would differ between two replicas whose
    /// committed heights are transiently skewed (one missed a proposal and
    /// is catching up via state transfer) — and a divergent window means
    /// divergent leaders and failed views. Quantizing the boundary keeps
    /// the window identical across replicas whose skew stays inside one
    /// epoch. Entries whose block body was never delivered are skipped.
    pub fn committed_proposers_ending_at(&self, boundary: u64, count: usize) -> Vec<u32> {
        self.committed_log
            .iter()
            .filter(|&&(h, _)| h <= boundary && h + count as u64 > boundary)
            .filter_map(|(_, hash)| self.blocks.get(hash).map(|b| b.proposer))
            .collect()
    }

    /// Looks up a block.
    pub fn block(&self, h: &BlockHash) -> Option<&Block> {
        self.blocks.get(h)
    }

    /// Inserts a block (idempotent). Any stored block — own draft or a
    /// validated peer proposal — advances the draft cursor past its
    /// request range, so later drafts never re-batch it.
    pub fn insert_block(&mut self, b: Block) {
        self.draft_cursor = self.draft_cursor.max(b.batch_start + b.batch_len as u64);
        self.blocks.entry(b.hash()).or_insert(b);
    }

    /// Drafts the next block for `view`, batching up to `max_batch` pending
    /// requests that have arrived by `now`.
    pub fn draft_block(
        &self,
        view: u64,
        proposer: u32,
        now: Time,
        max_batch: u32,
        payload_per_req: u32,
    ) -> Block {
        let (parent_hash, parent_height) = self.high_tip();
        let batch_start = self.next_req.max(self.draft_cursor);
        let mut batch_len = 0u32;
        if let Some(src) = &self.source {
            batch_len = src.draft(batch_start, max_batch);
        } else if let Some(arrived) = now.checked_div(self.ns_per_req) {
            // Requests 0..=arrived have arrived by `now`; those below the
            // draft cursor are already claimed by in-flight blocks.
            let pending = (arrived + 1).saturating_sub(batch_start);
            batch_len = pending.min(max_batch as u64) as u32;
        }
        Block {
            view,
            height: parent_height + 1,
            parent: parent_hash,
            proposer,
            batch_start,
            batch_len,
            payload_per_req,
        }
    }

    /// Records a freshly formed or observed QC; updates the high QC and runs
    /// the three-chain commit rule. Returns the newly committed height, if
    /// any.
    ///
    /// Three-chain rule (chained HotStuff): a QC for block `b` with
    /// `b.parent = b1`, `b1.parent = b2` and consecutive views
    /// (`b.view == b1.view + 1 == b2.view + 2`) commits `b2` and its
    /// ancestors.
    pub fn on_qc(&mut self, qc: Qc<S>, now: Time, scheme: &S) -> Option<u64> {
        self.metrics.qc_signers_sum += qc.signer_count(scheme) as u64;
        self.metrics.qc_count += 1;
        // Remember the certificate for the block it certifies: if that
        // block later commits, the QC moves to `committed_qcs` so state
        // transfer can serve it as proof of the committed prefix.
        if qc.height > self.committed_height {
            self.seen_qcs
                .entry(qc.block_hash)
                .or_insert_with(|| qc.clone());
        }
        let better = match &self.highest_qc {
            None => true,
            Some(old) => qc.height > old.height,
        };
        if !better {
            return None;
        }
        self.highest_qc = Some(qc);
        let qc = self.highest_qc.as_ref().unwrap();
        let b = self.blocks.get(&qc.block_hash)?.clone();
        let b1 = self.blocks.get(&b.parent)?.clone();
        let b2 = self.blocks.get(&b1.parent)?.clone();
        if b.view == b1.view + 1 && b1.view == b2.view + 1 && b2.height > self.committed_height {
            let target = b2.height;
            self.commit_chain(&b2, now);
            return Some(target);
        }
        None
    }

    fn commit_chain(&mut self, tip: &Block, now: Time) {
        let source = self.source.clone();
        // Commit tip and all uncommitted ancestors (recursively, oldest
        // first for metric ordering; order does not affect the totals).
        let mut chain = Vec::new();
        let mut cur = tip.clone();
        while cur.height > self.committed_height {
            chain.push(cur.clone());
            match self.blocks.get(&cur.parent) {
                Some(p) => cur = p.clone(),
                None => break,
            }
        }
        // Persist the whole newly committed suffix under one sink call
        // (one fsync for a durable sink) *before* any of it is acted on.
        let batch: Vec<(Block, Option<Qc<S>>)> = chain
            .into_iter()
            .rev()
            .map(|b| {
                let qc = self.seen_qcs.remove(&b.hash());
                (b, qc)
            })
            .collect();
        if let Some(sink) = &mut self.sink {
            sink.committed_batch(&batch);
        }
        for (b, qc) in batch {
            let hash = b.hash();
            if let Some(qc) = qc {
                if self.committed_qcs.len() < COMMITTED_LOG_CAP {
                    self.committed_qcs.insert(b.height, qc);
                }
            }
            if self.committed_log.len() < COMMITTED_LOG_CAP {
                self.committed_log.push((b.height, hash));
            }
            self.metrics.last_commit_time = now;
            if self.metrics.commit_points.len() < COMMITTED_LOG_CAP {
                self.metrics.commit_points.push((now, b.height));
            }
            self.metrics.committed_blocks += 1;
            self.metrics.committed_reqs += b.batch_len as u64;
            if let Some(src) = &source {
                // Live mempool: settle the range and take the latencies
                // it measured on its own clock (only one replica settles
                // a shared pool's range — the others record none).
                for latency in src.committed(b.height, b.batch_start, b.batch_len) {
                    self.metrics.latency_sum += latency as u128;
                    if self.metrics.latency_samples.len() < LATENCY_SAMPLE_CAP {
                        self.metrics.latency_samples.push(latency);
                    }
                }
            } else if self.ns_per_req > 0 {
                for i in 0..b.batch_len as u64 {
                    let arrival = (b.batch_start + i) * self.ns_per_req;
                    let latency = now.saturating_sub(arrival);
                    self.metrics.latency_sum += latency as u128;
                    if self.metrics.latency_samples.len() < LATENCY_SAMPLE_CAP {
                        self.metrics.latency_samples.push(latency);
                    }
                }
            }
            self.next_req = self.next_req.max(b.batch_start + b.batch_len as u64);
        }
        self.committed_height = tip.height;
        // Certificates for blocks at or below the new committed height can
        // no longer graduate; drop them so the map stays bounded by the
        // number of in-flight (uncommitted) blocks.
        self.seen_qcs.retain(|_, q| q.height > tip.height);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::vote_message;
    use iniva_crypto::sim_scheme::SimScheme;

    fn scheme() -> SimScheme {
        SimScheme::new(4, b"chain-test")
    }

    fn qc_for(s: &SimScheme, b: &Block) -> Qc<SimScheme> {
        let msg = vote_message(&b.hash(), b.view);
        let mut agg = s.sign(0, &msg);
        for i in 1..3 {
            agg = s.combine(&agg, &s.sign(i, &msg));
        }
        Qc {
            block_hash: b.hash(),
            view: b.view,
            height: b.height,
            agg,
        }
    }

    fn extend(chain: &mut ChainState<SimScheme>, view: u64, s: &SimScheme) -> Block {
        let b = chain.draft_block(view, 0, 0, 0, 0);
        chain.insert_block(b.clone());
        chain.on_qc(qc_for(s, &b), 1000, s);
        b
    }

    #[test]
    fn three_consecutive_views_commit() {
        let s = scheme();
        let mut chain = ChainState::new(0);
        extend(&mut chain, 1, &s);
        assert_eq!(chain.committed_height(), 0);
        extend(&mut chain, 2, &s);
        assert_eq!(chain.committed_height(), 0);
        extend(&mut chain, 3, &s);
        // Blocks at views 1,2,3: the QC for view 3 commits the view-1 block.
        assert_eq!(chain.committed_height(), 1);
        extend(&mut chain, 4, &s);
        assert_eq!(chain.committed_height(), 2);
        // The committed log records the prefix in order.
        let log = chain.committed_log();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].0, 1);
        assert_eq!(log[1].0, 2);
        assert_ne!(log[0].1, log[1].1);
    }

    #[test]
    fn view_gap_delays_commit() {
        let s = scheme();
        let mut chain = ChainState::new(0);
        extend(&mut chain, 1, &s);
        extend(&mut chain, 2, &s);
        extend(&mut chain, 5, &s); // gap: 2 -> 5
        assert_eq!(
            chain.committed_height(),
            0,
            "non-consecutive views must not commit"
        );
        extend(&mut chain, 6, &s);
        assert_eq!(chain.committed_height(), 0);
        extend(&mut chain, 7, &s);
        // 5,6,7 consecutive: commits the block from view 5 (height 3).
        assert_eq!(chain.committed_height(), 3);
    }

    #[test]
    fn batching_respects_arrival_times() {
        let chain: ChainState<SimScheme> = ChainState::new(1000); // 1 req/ms
                                                                  // At t = 10 ms, 11 requests have arrived (0..=10).
        let b = chain.draft_block(1, 0, 10_000_000, 100, 64);
        assert_eq!(b.batch_len, 11);
        // Batch cap applies.
        let b = chain.draft_block(1, 0, 1_000_000_000, 100, 64);
        assert_eq!(b.batch_len, 100);
    }

    #[test]
    fn pipelined_drafts_never_rebatch_uncommitted_ranges() {
        let chain: &mut ChainState<SimScheme> = &mut ChainState::new(1000); // 1 req/ms
        let s = scheme();
        // The 2-view commit pipeline: each block is drafted with the
        // previous one QC'd but **not yet committed** — `next_req` alone
        // cannot see those in-flight ranges, only the draft cursor can.
        let b1 = chain.draft_block(1, 0, 1_000_000, 100, 64);
        assert_eq!((b1.batch_start, b1.batch_len), (0, 2));
        chain.insert_block(b1.clone());
        chain.on_qc(qc_for(&s, &b1), 1_500_000, &s);
        assert_eq!(chain.committed_height(), 0, "b1 is QC'd, not committed");
        let b2 = chain.draft_block(2, 1, 2_000_000, 100, 64);
        assert_eq!(
            b2.batch_start,
            b1.batch_start + b1.batch_len as u64,
            "draft cursor must skip the in-flight range"
        );
        chain.insert_block(b2.clone());
        chain.on_qc(qc_for(&s, &b2), 2_500_000, &s);
        // Nothing new arrived since b2's draft: an empty batch, not a
        // replay of b1/b2's requests (the pre-cursor code re-batched here).
        let b3 = chain.draft_block(3, 2, 2_000_000, 100, 64);
        assert_eq!(b3.batch_len, 0);
        chain.insert_block(b3.clone());
        chain.on_qc(qc_for(&s, &b3), 5_000_000, &s); // commits b1
                                                     // Two filler views flush b2 and b3 through the three-chain rule:
                                                     // the disjoint ranges count each request exactly once.
        let b4 = chain.draft_block(4, 0, 2_000_000, 100, 64);
        chain.insert_block(b4.clone());
        chain.on_qc(qc_for(&s, &b4), 5_000_000, &s); // commits b2
        let b5 = chain.draft_block(5, 0, 2_000_000, 100, 64);
        chain.insert_block(b5.clone());
        chain.on_qc(qc_for(&s, &b5), 6_000_000, &s); // commits b3
        assert_eq!(chain.committed_height(), 3, "b1..b3 committed");
        assert_eq!(
            chain.metrics.committed_reqs, 3,
            "each request commits exactly once"
        );
        assert_eq!(chain.metrics.last_commit_time, 6_000_000);
        assert_eq!(chain.metrics.commits_since(6_000_000), 1);
        assert_eq!(chain.metrics.commits_since(6_000_001), 0);
    }

    #[test]
    fn committed_requests_accumulate_latency() {
        let s = scheme();
        let mut chain = ChainState::new(1_000_000); // 1 req/µs
        for v in 1..=4 {
            let b = chain.draft_block(v, 0, v * 1_000_000, 10, 64);
            chain.insert_block(b.clone());
            chain.on_qc(qc_for(&s, &b), v * 1_000_000 + 500_000, &s);
        }
        assert!(chain.metrics.committed_reqs > 0);
        assert!(chain.metrics.mean_latency() > 0.0);
    }

    /// A sink that records everything it is shown.
    #[derive(Default)]
    struct RecordingSink {
        commits: std::sync::Arc<std::sync::Mutex<Vec<(u64, bool)>>>,
        views: std::sync::Arc<std::sync::Mutex<Vec<u64>>>,
    }

    impl CommitSink<SimScheme> for RecordingSink {
        fn committed(&mut self, block: &Block, qc: Option<&Qc<SimScheme>>) {
            self.commits
                .lock()
                .unwrap()
                .push((block.height, qc.is_some()));
        }
        fn entered_view(&mut self, view: u64) {
            self.views.lock().unwrap().push(view);
        }
    }

    #[test]
    fn sink_observes_commits_with_their_certificates() {
        let s = scheme();
        let mut chain = ChainState::new(0);
        let sink = RecordingSink::default();
        let commits = std::sync::Arc::clone(&sink.commits);
        let views = std::sync::Arc::clone(&sink.views);
        chain.set_commit_sink(Box::new(sink));
        chain.note_view(1);
        for v in 1..=5 {
            extend(&mut chain, v, &s);
        }
        assert_eq!(chain.committed_height(), 3);
        // Each committed block was certified by an observed QC (the QC for
        // its child arrived via `extend`), so the sink saw proofs.
        assert_eq!(
            &*commits.lock().unwrap(),
            &[(1, true), (2, true), (3, true)]
        );
        assert_eq!(&*views.lock().unwrap(), &[1]);
        // The committed entries are servable for state transfer.
        for h in 1..=3 {
            let (b, qc) = chain.committed_entry(h).expect("entry retained");
            assert_eq!(b.height, h);
            assert_eq!(qc.block_hash, b.hash());
        }
        assert!(chain.committed_entry(4).is_none());
        assert!(chain.committed_entry(0).is_none());
    }

    #[test]
    fn committed_tip_qc_tracks_commits_not_high_qc() {
        let s = scheme();
        let mut chain = ChainState::new(0);
        assert!(chain.committed_tip_qc().is_none(), "no commit yet");
        extend(&mut chain, 1, &s);
        extend(&mut chain, 2, &s);
        assert!(
            chain.committed_tip_qc().is_none(),
            "high QC advanced but nothing committed"
        );
        extend(&mut chain, 3, &s); // commits height 1
        let qc = chain.committed_tip_qc().expect("committed tip QC retained");
        assert_eq!(qc.height, 1);
        assert_eq!(qc.view, 1);
        extend(&mut chain, 4, &s); // commits height 2
        assert_eq!(chain.committed_tip_qc().unwrap().height, 2);
    }

    #[test]
    fn recent_committed_proposers_come_from_log_tail() {
        let s = scheme();
        let mut chain = ChainState::new(0);
        assert!(chain.recent_committed_proposers(3).is_empty());
        // Each view's block is proposed by a distinct replica.
        for v in 1..=6u64 {
            let mut b = chain.draft_block(v, 0, 0, 0, 0);
            b.proposer = v as u32;
            chain.insert_block(b.clone());
            chain.on_qc(qc_for(&s, &b), 1000, &s);
        }
        // Views 1..=6 commit heights 1..=4 (three-chain lag of 2).
        assert_eq!(chain.committed_height(), 4);
        // The last two committed blocks were proposed in views 3 and 4.
        assert_eq!(chain.recent_committed_proposers(2), vec![3, 4]);
        // Asking for more than the log holds returns the whole log.
        assert_eq!(chain.recent_committed_proposers(10), vec![1, 2, 3, 4]);
    }

    #[test]
    fn committed_proposers_ending_at_ignores_commits_past_the_boundary() {
        let s = scheme();
        let mut chain = ChainState::new(0);
        for v in 1..=6u64 {
            let mut b = chain.draft_block(v, 0, 0, 0, 0);
            b.proposer = v as u32;
            chain.insert_block(b.clone());
            chain.on_qc(qc_for(&s, &b), 1000, &s);
        }
        assert_eq!(chain.committed_height(), 4);
        // Boundary 2: heights (0, 2] regardless of how far the tip ran.
        assert_eq!(chain.committed_proposers_ending_at(2, 2), vec![1, 2]);
        // A replica one commit behind derives the same window for the same
        // boundary — the agreement property the quantization buys.
        let mut lagging = ChainState::new(1);
        for v in 1..=5u64 {
            let mut b = lagging.draft_block(v, 0, 0, 0, 0);
            b.proposer = v as u32;
            lagging.insert_block(b.clone());
            lagging.on_qc(qc_for(&s, &b), 1000, &s);
        }
        assert_eq!(lagging.committed_height(), 3);
        assert_eq!(
            lagging.committed_proposers_ending_at(2, 2),
            chain.committed_proposers_ending_at(2, 2)
        );
        // Boundary at the tip degenerates to the sliding window.
        assert_eq!(
            chain.committed_proposers_ending_at(4, 2),
            chain.recent_committed_proposers(2)
        );
        // Boundary 0 (no epoch completed yet): empty window.
        assert!(chain.committed_proposers_ending_at(0, 2).is_empty());
    }

    #[test]
    fn rehydrate_restores_prefix_without_counting_metrics() {
        let s = scheme();
        // Build a source chain and harvest its committed prefix + QCs.
        let mut source = ChainState::new(0);
        for v in 1..=6 {
            extend(&mut source, v, &s);
        }
        assert_eq!(source.committed_height(), 4);
        let prefix: Vec<(Block, Option<Qc<SimScheme>>)> = (1..=4)
            .map(|h| {
                let (b, qc) = source.committed_entry(h).unwrap();
                (b.clone(), Some(qc.clone()))
            })
            .collect();

        let mut recovered: ChainState<SimScheme> = ChainState::new(0);
        recovered.rehydrate(prefix);
        assert_eq!(recovered.committed_height(), 4);
        assert_eq!(recovered.metrics.recovered_blocks, 4);
        assert_eq!(recovered.metrics.committed_blocks, 0, "previous run's work");
        assert_eq!(recovered.metrics.commit_points.len(), 0);
        assert_eq!(recovered.committed_log().len(), 4);
        assert_eq!(recovered.committed_log(), &source.committed_log()[..4]);
        // The high QC is the certificate of the recovered tip, so the
        // replica proposes/votes from where it left off.
        assert_eq!(recovered.high_tip().1, 4);
    }

    #[test]
    fn adopt_committed_verifies_and_extends() {
        let s = scheme();
        let mut source = ChainState::new(0);
        for v in 1..=6 {
            extend(&mut source, v, &s);
        }
        assert_eq!(source.committed_height(), 4);
        let mut lagging: ChainState<SimScheme> = ChainState::new(0);
        let (b1, q1) = source.committed_entry(1).unwrap();
        let (b2, q2) = source.committed_entry(2).unwrap();
        let (b1, q1, b2, q2) = (b1.clone(), q1.clone(), b2.clone(), q2.clone());

        // A mismatched certificate is rejected.
        assert!(!lagging.adopt_committed(b2.clone(), q1.clone(), &s));
        assert!(lagging.adopt_committed(b1.clone(), q1.clone(), &s));
        assert!(lagging.adopt_committed(b2, q2, &s));
        assert_eq!(lagging.committed_height(), 2);
        assert_eq!(lagging.metrics.state_transfer_blocks, 2);
        assert_eq!(lagging.metrics.committed_blocks, 0);
        assert_eq!(lagging.committed_log(), &source.committed_log()[..2]);
        // Heights at or below the prefix are refused (already adopted).
        assert!(!lagging.adopt_committed(b1, q1, &s));
        // Gap adoption: height 4 grafts past a hole the server could not
        // prove, and the log stays ascending.
        let (b4, q4) = source.committed_entry(4).unwrap();
        let (b4, q4) = (b4.clone(), q4.clone());
        assert!(lagging.adopt_committed(b4, q4, &s));
        assert_eq!(lagging.committed_height(), 4);
        let heights: Vec<u64> = lagging.committed_log().iter().map(|&(h, _)| h).collect();
        assert_eq!(heights, vec![1, 2, 4]);
        // The range lookup serves around the hole.
        assert_eq!(lagging.committed_range(1, 10).len(), 3);
        assert_eq!(lagging.committed_range(3, 10).len(), 1);
    }

    #[test]
    fn adopt_committed_batch_stops_at_first_invalid_entry() {
        let s = scheme();
        let mut source = ChainState::new(0);
        for v in 1..=7 {
            extend(&mut source, v, &s);
        }
        assert_eq!(source.committed_height(), 5);
        let entries: Vec<(Block, Qc<SimScheme>)> = (1..=5)
            .map(|h| {
                let (b, qc) = source.committed_entry(h).unwrap();
                (b.clone(), qc.clone())
            })
            .collect();

        // The clean chunk adopts wholesale in one batch — and hands the
        // whole adopted prefix to the durability sink in ONE batch call
        // (one fsync for a WAL sink), not one call per block.
        #[derive(Default)]
        struct BatchCountingSink {
            calls: std::sync::Arc<std::sync::Mutex<Vec<usize>>>,
        }
        impl CommitSink<SimScheme> for BatchCountingSink {
            fn committed(&mut self, _block: &Block, _qc: Option<&Qc<SimScheme>>) {
                self.calls.lock().unwrap().push(1);
            }
            fn committed_batch(&mut self, items: &[(Block, Option<Qc<SimScheme>>)]) {
                self.calls.lock().unwrap().push(items.len());
            }
        }
        let mut lagging: ChainState<SimScheme> = ChainState::new(0);
        let sink = BatchCountingSink::default();
        let sink_calls = std::sync::Arc::clone(&sink.calls);
        lagging.set_commit_sink(Box::new(sink));
        let outcome = lagging.adopt_committed_batch(entries.clone(), &s);
        assert_eq!(outcome.adopted, 5);
        assert_eq!(outcome.verified_entries, 5);
        assert_eq!(outcome.verified_signers, 15, "3 signers per QC");
        assert_eq!(lagging.committed_height(), 5);
        assert_eq!(lagging.metrics.state_transfer_blocks, 5);
        assert_eq!(lagging.committed_log(), source.committed_log());
        assert_eq!(
            &*sink_calls.lock().unwrap(),
            &[5],
            "one batch sink call for the whole chunk"
        );

        // A chunk whose third entry carries a forged QC adopts exactly the
        // two entries before it — cryptographic failure stops the chunk.
        let mut forged = entries.clone();
        forged[2].1.agg.mults = iniva_crypto::multisig::Multiplicities::singleton(0);
        let mut lagging: ChainState<SimScheme> = ChainState::new(0);
        assert_eq!(lagging.adopt_committed_batch(forged, &s).adopted, 2);
        assert_eq!(lagging.committed_height(), 2);

        // A structural mismatch (QC certifying the wrong block) stops the
        // chunk before any pairing-equivalent work on later entries, and
        // only the structurally surviving prefix is billed as verified.
        let mut swapped = entries.clone();
        let other_qc = entries[0].1.clone();
        swapped[1].1 = other_qc;
        let mut lagging: ChainState<SimScheme> = ChainState::new(0);
        let outcome = lagging.adopt_committed_batch(swapped, &s);
        assert_eq!(outcome.adopted, 1);
        assert_eq!(outcome.verified_entries, 1);
        assert_eq!(outcome.verified_signers, 3);
        assert_eq!(lagging.committed_height(), 1);

        // Batch and per-item adoption agree.
        let mut per_item: ChainState<SimScheme> = ChainState::new(0);
        for (b, qc) in entries {
            if !per_item.adopt_committed(b, qc, &s) {
                break;
            }
        }
        assert_eq!(per_item.committed_height(), 5);
        assert_eq!(per_item.committed_log(), source.committed_log());
    }

    #[test]
    fn stale_qc_does_not_regress() {
        let s = scheme();
        let mut chain = ChainState::new(0);
        let b1 = extend(&mut chain, 1, &s);
        extend(&mut chain, 2, &s);
        let high = chain.high_block().unwrap().height;
        // Replaying the old QC must not move the high block backwards.
        chain.on_qc(qc_for(&s, &b1), 99, &s);
        assert_eq!(chain.high_block().unwrap().height, high);
    }
}
