//! # iniva-gosig
//!
//! A model of **Gosig**'s randomized gossip-based vote aggregation
//! (Li et al. [15]), as simulated in the Iniva paper's Section VII-B to
//! quantify targeted vote-omission and the effect of free-riding.
//!
//! Model (paper Sections II-B.3 / IV-D): every round each process sends its
//! best current aggregate to `k` uniformly random peers. Knowledge is a pool
//! of *indivisible parcels* (signer sets); disjoint parcels can be combined,
//! overlapping ones cannot. Behaviours:
//!
//! * **honest** processes aggregate everything they see;
//! * **free-riders** skip aggregation (and its costly verification) and
//!   gossip only their own signature;
//! * **attackers** collude: they drop the victim's individual signature and
//!   never forward parcels containing the victim;
//! * the **greedy** attacker variant additionally seeds the victim with
//!   attacker signatures in round one, entangling the victim's outgoing
//!   parcels with signatures the attacker can always re-supply — making the
//!   victim's parcels cheap to discard.
//!
//! Committees are limited to `n <= 128` so parcels are `u128` bitmasks
//! (the paper simulates `n = 100`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use iniva_net::wire::{DecodeError, Decoder, Encoder, WireDecode, WireEncode};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// One gossip message on the wire: the sender's best current aggregate for
/// an aggregation instance, as an indivisible parcel of signer bits (the
/// `u128`-bitmask model used throughout this crate). The simulator passes
/// parcels as plain values; a socket deployment ships this encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GossipShare {
    /// Consensus view (aggregation instance) the parcel belongs to.
    pub view: u64,
    /// Gossip round within the instance.
    pub round: u32,
    /// Signer-set bitmask of the parcel.
    pub parcel: u128,
}

impl WireEncode for GossipShare {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.view)
            .put_u32(self.round)
            .put_u128(self.parcel);
    }
}

impl WireDecode for GossipShare {
    fn decode(dec: &mut Decoder) -> Result<Self, DecodeError> {
        let share = GossipShare {
            view: dec.get_u64()?,
            round: dec.get_u32()?,
            parcel: dec.get_u128()?,
        };
        if share.parcel == 0 {
            // A parcel with no signers is never gossiped (processes always
            // hold at least their own signature).
            return Err(DecodeError::Malformed {
                context: "empty GossipShare parcel",
            });
        }
        Ok(share)
    }
}

/// Behaviour of a process in the gossip rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Behaviour {
    /// Aggregates and forwards everything.
    Honest,
    /// Forwards only its own signature (no aggregation work).
    FreeRider,
    /// Colluding attacker (drops/withholds the victim's signature).
    Attacker,
}

/// Configuration of one Gosig aggregation instance.
#[derive(Debug, Clone)]
pub struct GosigConfig {
    /// Committee size (`<= 128`).
    pub n: usize,
    /// Gossip fan-out per round.
    pub k: usize,
    /// Number of gossip rounds (enough for full dissemination:
    /// `~log2(n) + slack`).
    pub rounds: usize,
    /// Fraction of processes controlled by the attacker.
    pub m: f64,
    /// Fraction of *correct* processes that free-ride.
    pub free_riding: f64,
    /// Greedy attacker variant (seeds the victim with attacker signatures).
    pub greedy: bool,
    /// Extra gossip rounds an *honest* leader waits after first reaching
    /// quorum coverage before assembling the QC (an adversarial leader
    /// stops immediately — it wants the earliest, least-entangled pool).
    pub grace_rounds: usize,
}

impl GosigConfig {
    /// The paper's baseline: `n = 100`, no free-riding.
    pub fn paper(k: usize, m: f64) -> Self {
        GosigConfig {
            n: 100,
            k,
            rounds: 10,
            m,
            free_riding: 0.0,
            greedy: false,
            grace_rounds: 2,
        }
    }
}

/// Outcome of one simulated aggregation instance.
#[derive(Debug, Clone, Copy)]
pub struct RoundOutcome {
    /// Whether the victim's signature is missing from the final QC.
    pub victim_omitted: bool,
    /// Non-victim processes excluded from the final QC (collateral).
    pub collateral: u32,
    /// Whether a QC (quorum) could be formed at all.
    pub qc_formed: bool,
    /// Whether the round's leader was an attacker.
    pub attacker_leader: bool,
}

/// Simulates one full aggregation instance. The victim is a non-attacker;
/// role assignment (attackers, free-riders, leader) is drawn from `rng`,
/// mirroring the paper's "random assignment of processes to the attacker
/// and the victim role".
pub fn simulate(cfg: &GosigConfig, rng: &mut StdRng) -> RoundOutcome {
    let n = cfg.n;
    assert!(n <= 128, "bitmask model supports n <= 128");
    let quorum = n - (n - 1) / 3;

    // Assign roles.
    let mut ids: Vec<usize> = (0..n).collect();
    ids.shuffle(rng);
    let attacker_count = (cfg.m * n as f64).round() as usize;
    let attackers: HashSet<usize> = ids[..attacker_count].iter().copied().collect();
    let victim = ids[attacker_count]; // first non-attacker
    let correct: Vec<usize> = ids[attacker_count..].to_vec();
    let fr_count = (cfg.free_riding * correct.len() as f64).round() as usize;
    let free_riders: HashSet<usize> = correct
        .iter()
        .copied()
        .filter(|p| *p != victim)
        .take(fr_count)
        .collect();
    let leader = ids[rng.gen_range(0..n)];

    let behaviour = |p: usize| -> Behaviour {
        if attackers.contains(&p) {
            Behaviour::Attacker
        } else if free_riders.contains(&p) {
            Behaviour::FreeRider
        } else {
            Behaviour::Honest
        }
    };

    let victim_bit: u128 = 1 << victim;

    // Pools of indivisible parcels per process; everyone starts with its own
    // signature.
    let mut pools: Vec<HashSet<u128>> = (0..n).map(|p| HashSet::from([1u128 << p])).collect();

    // Greedy attacker: seed the victim with all attacker signatures before
    // round one, so the victim's aggregate gets entangled with signatures
    // the attacker can re-supply at no cost.
    if cfg.greedy {
        for &a in &attackers {
            pools[victim].insert(1u128 << a);
        }
    }

    // Gossip until the leader can assemble a quorum (plus `grace_rounds`
    // for an honest leader) or the round budget runs out. Inclusion is a
    // race — exactly the probabilistic-inclusion property the paper
    // attributes to Gosig.
    let attacker_leader = attackers.contains(&leader);
    let mut rounds_since_quorum: Option<usize> = None;
    for _ in 0..cfg.rounds {
        {
            let parcels: Vec<u128> = pools[leader].iter().copied().collect();
            let coverage = union_all(&parcels);
            if coverage.count_ones() as usize >= quorum {
                let since = rounds_since_quorum.get_or_insert(0);
                let patience = if attacker_leader { 0 } else { cfg.grace_rounds };
                if *since >= patience {
                    break;
                }
                *since += 1;
            }
        }
        // Compute what each process sends this round.
        let mut sends: Vec<(usize, u128)> = Vec::with_capacity(n * cfg.k);
        for (p, pool) in pools.iter().enumerate() {
            let share = match behaviour(p) {
                Behaviour::Honest => {
                    let parcels: Vec<u128> = pool.iter().copied().collect();
                    union_all(&parcels)
                }
                Behaviour::FreeRider => 1u128 << p,
                Behaviour::Attacker => {
                    // Forward the best aggregate that excludes the victim.
                    let parcels: Vec<u128> = pool.iter().copied().collect();
                    union_all(
                        &parcels
                            .iter()
                            .copied()
                            .filter(|q| q & victim_bit == 0)
                            .collect::<Vec<_>>(),
                    )
                }
            };
            if share == 0 {
                continue;
            }
            for _ in 0..cfg.k {
                let to = rng.gen_range(0..n);
                sends.push((to, share));
            }
        }
        for (to, share) in sends {
            if behaviour(to) == Behaviour::Attacker && share == victim_bit {
                continue; // attackers discard the victim's individual signature
            }
            pools[to].insert(share);
        }
    }

    // The leader assembles the final QC from its pool. Aggregates combine
    // with multiplicity (BLS), so the honest QC is the *union* of the pool;
    // an attacker leader instead unions only victim-free parcels.
    let parcels: Vec<u128> = pools[leader].iter().copied().collect();
    let reachable = union_all(&parcels);
    let qc = if attacker_leader {
        let without = union_all(
            &parcels
                .iter()
                .copied()
                .filter(|p| p & victim_bit == 0)
                .collect::<Vec<_>>(),
        );
        if (without.count_ones() as usize) >= quorum {
            without
        } else {
            reachable
        }
    } else {
        reachable
    };

    let covered = qc.count_ones() as usize;
    let victim_omitted = qc & victim_bit == 0;
    // Collateral counts *intentional* exclusions: processes present in the
    // leader's pool but left out of the QC. Signatures that never reached
    // the leader (probabilistic inclusion) are not collateral.
    let reachable_count = reachable.count_ones() as usize;
    let excluded_on_purpose = reachable_count - covered;
    let victim_reachable = reachable & victim_bit != 0;
    let collateral = excluded_on_purpose as u32 - u32::from(victim_omitted && victim_reachable);
    RoundOutcome {
        victim_omitted,
        collateral,
        qc_formed: covered >= quorum,
        attacker_leader,
    }
}

/// Union of all parcels (BLS multiplicities let overlapping aggregates
/// combine, so everything a process holds is jointly includable).
fn union_all(parcels: &[u128]) -> u128 {
    parcels.iter().fold(0, |acc, p| acc | p)
}

/// Estimates the c-omission probability over `trials` independent
/// instances: the fraction where the victim was omitted from a formed QC
/// with collateral at most `max_collateral`.
pub fn omission_probability(
    cfg: &GosigConfig,
    max_collateral: u32,
    trials: usize,
    seed: u64,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut hits = 0usize;
    for _ in 0..trials {
        let o = simulate(cfg, &mut rng);
        if o.qc_formed && o.victim_omitted && o.collateral <= max_collateral {
            hits += 1;
        }
    }
    hits as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(k: usize, m: f64) -> GosigConfig {
        GosigConfig {
            n: 40,
            k,
            rounds: 12,
            m,
            free_riding: 0.0,
            greedy: false,
            grace_rounds: 2,
        }
    }

    #[test]
    fn gossip_share_wire_roundtrip() {
        use iniva_net::wire::Codec;
        let s = GossipShare {
            view: 12,
            round: 3,
            parcel: (1 << 127) | 0b1011,
        };
        assert_eq!(GossipShare::from_frame(s.to_frame()).unwrap(), s);
        assert!(GossipShare::from_frame(s.to_frame().slice(0..10)).is_err());
        let empty = GossipShare {
            view: 1,
            round: 0,
            parcel: 0,
        };
        assert!(matches!(
            GossipShare::from_frame(empty.to_frame()),
            Err(DecodeError::Malformed { .. })
        ));
    }

    #[test]
    fn union_combines_everything() {
        let parcels = [0b0011u128, 0b1100, 0b0110, 0b1_0000];
        assert_eq!(union_all(&parcels), 0b1_1111);
        assert_eq!(union_all(&[]), 0);
    }

    #[test]
    fn no_attacker_means_near_full_inclusion() {
        // Inclusion in Gosig is probabilistic even fault-free (paper
        // Section IV-D), but with grace rounds it should be rare to miss.
        let cfg = small(3, 0.0);
        let p = omission_probability(&cfg, 200, 400, 1);
        assert!(
            p < 0.08,
            "honest gossip should usually include the victim (p = {p})"
        );
    }

    #[test]
    fn qc_always_forms_with_honest_majority() {
        let cfg = small(3, 0.1);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert!(simulate(&cfg, &mut rng).qc_formed);
        }
    }

    #[test]
    fn free_riding_increases_omission() {
        let base = GosigConfig {
            free_riding: 0.0,
            ..small(2, 0.1)
        };
        let fr = GosigConfig {
            free_riding: 0.3,
            ..small(2, 0.1)
        };
        let p0 = omission_probability(&base, 200, 400, 7);
        let p1 = omission_probability(&fr, 200, 400, 7);
        assert!(
            p1 > p0,
            "free-riding must make omission easier ({p0} vs {p1})"
        );
    }

    #[test]
    fn larger_k_reduces_unbounded_omission() {
        let k2 = omission_probability(&small(2, 0.1), 200, 400, 9);
        let k4 = omission_probability(&small(4, 0.1), 200, 400, 9);
        assert!(
            k4 <= k2 + 0.02,
            "more redundancy cannot hurt ({k2} vs {k4})"
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = small(2, 0.1);
        assert_eq!(
            omission_probability(&cfg, 0, 100, 5),
            omission_probability(&cfg, 0, 100, 5)
        );
    }

    #[test]
    fn attacker_leader_fraction_matches_m() {
        let cfg = small(3, 0.2);
        let mut rng = StdRng::seed_from_u64(11);
        let trials = 2000;
        let hits = (0..trials)
            .filter(|_| simulate(&cfg, &mut rng).attacker_leader)
            .count();
        let frac = hits as f64 / trials as f64;
        assert!(
            (frac - 0.2).abs() < 0.05,
            "leader should be attacker ~m of the time ({frac})"
        );
    }
}
