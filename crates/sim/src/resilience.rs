//! Resiliency experiments with crash faults (Fig. 4a–d).
//!
//! 21 replicas (4 internal), 0–4 crash faults randomly placed (the per-view
//! shuffle moves them around the tree), second-chance timer δ ∈ {5, 10} ms
//! and the Carousel leader-election variant.

use iniva::protocol::{InivaConfig, InivaReplica};
use iniva_consensus::LeaderPolicy;
use iniva_crypto::sim_scheme::SimScheme;
use iniva_net::faults::FaultPlan;
use iniva_net::{NetConfig, Simulation, MILLIS, SECS};
use std::sync::Arc;

/// Committee size of the Fig. 4 sweeps.
pub const FIG4_N: usize = 21;

/// Internal aggregators per tree in the Fig. 4 sweeps.
pub const FIG4_INTERNAL: u32 = 4;

/// One experiment variant (a line in Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Round-robin leaders, δ = 5 ms.
    Delta5,
    /// Round-robin leaders, δ = 10 ms.
    Delta10,
    /// Carousel leader election, δ = 5 ms.
    Carousel5,
}

impl Variant {
    /// Legend label.
    pub fn label(&self) -> &'static str {
        match self {
            Variant::Delta5 => "δ = 5 ms",
            Variant::Delta10 => "δ = 10 ms",
            Variant::Carousel5 => "δ = 5 ms (Carousel)",
        }
    }

    fn second_chance_timer(&self) -> u64 {
        match self {
            Variant::Delta5 | Variant::Carousel5 => 5 * MILLIS,
            Variant::Delta10 => 10 * MILLIS,
        }
    }

    fn policy(&self) -> LeaderPolicy {
        match self {
            Variant::Carousel5 => LeaderPolicy::Carousel,
            _ => LeaderPolicy::RoundRobin,
        }
    }
}

/// Measured outcome for one (variant, fault count) cell.
#[derive(Debug, Clone)]
pub struct ResiliencePoint {
    /// Crashed replicas.
    pub faults: usize,
    /// Committed requests per second.
    pub throughput: f64,
    /// Mean request latency (ms).
    pub latency_ms: f64,
    /// Percentage of failed views.
    pub failed_views_pct: f64,
    /// Mean number of distinct signers per QC (Fig. 4d).
    pub qc_size: f64,
}

/// The replica configuration of one Fig. 4 variant.
pub fn variant_config(variant: Variant) -> InivaConfig {
    let mut cfg = InivaConfig::for_tests(FIG4_N, FIG4_INTERNAL);
    cfg.request_rate = 50_000;
    cfg.max_batch = 100;
    cfg.payload_per_req = 64;
    // Paper heuristic: agg timer = 2Δ·height(p), δ = 2Δ.
    cfg.delta = variant.second_chance_timer() / 2;
    cfg.second_chance_timer = Some(variant.second_chance_timer());
    cfg.sc_on_quorum = true;
    cfg.leader_policy = variant.policy();
    cfg.view_timeout = 300 * MILLIS;
    cfg
}

/// Reduces a correct replica's chain metrics to a Fig. 4 point. Shared
/// with the live-cluster sweep driver, so both backends report identical
/// definitions.
pub fn measure(
    m: &iniva_consensus::chain::ChainMetrics,
    faults: usize,
    duration_secs: u64,
) -> ResiliencePoint {
    ResiliencePoint {
        faults,
        throughput: m.committed_reqs as f64 / duration_secs as f64,
        latency_ms: m.mean_latency() / MILLIS as f64,
        failed_views_pct: m.failed_view_fraction() * 100.0,
        qc_size: m.mean_qc_size(),
    }
}

/// Runs `plan` against a fresh simulated cluster of `cfg`, harvesting the
/// Fig. 4 metrics from `observer` (which must stay correct for the whole
/// plan).
pub fn run_sim_plan(
    cfg: &InivaConfig,
    plan: &FaultPlan,
    faults: usize,
    observer: u32,
    duration_secs: u64,
    seed: u64,
) -> ResiliencePoint {
    let scheme = Arc::new(SimScheme::new(cfg.n, b"resilience"));
    let replicas = (0..cfg.n as u32)
        .map(|id| InivaReplica::new(id, cfg.clone(), Arc::clone(&scheme)))
        .collect();
    let mut sim = Simulation::new(
        NetConfig {
            seed,
            ..NetConfig::default()
        },
        replicas,
    );
    plan.run_on_sim(&mut sim, duration_secs * SECS);
    measure(&sim.actor(observer).chain.metrics, faults, duration_secs)
}

/// Runs one resiliency cell: `faults` crash faults, chosen pseudo-randomly,
/// measured over `duration_secs` of virtual time.
pub fn run(variant: Variant, faults: usize, duration_secs: u64, seed: u64) -> ResiliencePoint {
    let cfg = variant_config(variant);
    let plan = FaultPlan::random_crashes(cfg.n, faults, 0, seed);
    // Harvest from a correct replica.
    let observer = FaultPlan::shuffled_members(cfg.n, seed)[faults];
    run_sim_plan(&cfg, &plan, faults, observer, duration_secs, seed)
}

/// Fig. 4: all variants × fault counts 0–4.
pub fn figure_4(duration_secs: u64, seed: u64) -> Vec<(Variant, Vec<ResiliencePoint>)> {
    [Variant::Delta5, Variant::Delta10, Variant::Carousel5]
        .into_iter()
        .map(|v| {
            let pts = (0..=4)
                .map(|f| run(v, f, duration_secs, seed + f as u64))
                .collect();
            (v, pts)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_decreases_with_faults() {
        let p0 = run(Variant::Delta5, 0, 10, 1);
        let p4 = run(Variant::Delta5, 4, 10, 1);
        assert!(p0.throughput > 0.0 && p4.throughput > 0.0);
        assert!(
            p4.throughput < p0.throughput,
            "faults must cost throughput ({} vs {})",
            p0.throughput,
            p4.throughput
        );
    }

    #[test]
    fn failed_views_appear_with_faults() {
        let p0 = run(Variant::Delta5, 0, 10, 2);
        let p4 = run(Variant::Delta5, 4, 10, 2);
        assert!(p4.failed_views_pct > p0.failed_views_pct);
        // Round-robin with 4/21 crashed: ~19% of leaders are faulty.
        assert!(p4.failed_views_pct > 5.0, "{}", p4.failed_views_pct);
    }

    #[test]
    fn inclusion_stays_above_99pct_of_correct() {
        // Fig. 4d: with 4 failures Iniva includes >99% of correct processes.
        let p4 = run(Variant::Delta10, 4, 15, 3);
        let correct = 17.0;
        assert!(
            p4.qc_size >= correct * 0.99,
            "QC size {} below 99% of correct",
            p4.qc_size
        );
    }

    #[test]
    fn carousel_reduces_failed_views() {
        // Fig. 4c: Carousel avoids electing crashed leaders.
        let rr = run(Variant::Delta5, 3, 15, 4);
        let carousel = run(Variant::Carousel5, 3, 15, 4);
        assert!(
            carousel.failed_views_pct <= rr.failed_views_pct + 1.0,
            "carousel {} vs round-robin {}",
            carousel.failed_views_pct,
            rr.failed_views_pct
        );
    }

    #[test]
    fn longer_delta_favors_inclusion() {
        // Fig. 4d: the larger second-chance timer has a positive effect on
        // inclusion.
        let d5 = run(Variant::Delta5, 3, 15, 5);
        let d10 = run(Variant::Delta10, 3, 15, 5);
        assert!(
            d10.qc_size >= d5.qc_size - 0.2,
            "δ=10 inclusion {} vs δ=5 {}",
            d10.qc_size,
            d5.qc_size
        );
    }
}
