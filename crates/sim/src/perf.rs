//! Performance experiments over the discrete-event simulator
//! (Fig. 3a throughput vs latency, Fig. 3b CPU usage, Fig. 3c scalability).

use iniva::protocol::{InivaConfig, InivaReplica};
use iniva_consensus::{LeaderPolicy, ReplicaConfig, StarReplica};
use iniva_crypto::sim_scheme::SimScheme;
use iniva_net::cost::CostModel;
use iniva_net::{NetConfig, Simulation, MILLIS, SECS};
use std::sync::Arc;

/// Protocol under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// Plain HotStuff with star aggregation.
    HotStuff,
    /// Iniva (tree + 2ND-CHANCE, paper-faithful quorum trigger).
    Iniva,
    /// Iniva without 2ND-CHANCE messages (the paper's ablation).
    InivaNo2C,
}

impl Protocol {
    /// Display name matching the paper's legends.
    pub fn label(&self) -> &'static str {
        match self {
            Protocol::HotStuff => "HotStuff",
            Protocol::Iniva => "Iniva",
            Protocol::InivaNo2C => "Iniva-No2C",
        }
    }
}

/// Parameters of one performance run.
#[derive(Debug, Clone)]
pub struct PerfParams {
    /// Protocol variant.
    pub protocol: Protocol,
    /// Committee size.
    pub n: usize,
    /// Internal aggregators (tree protocols).
    pub internal: u32,
    /// Payload bytes per request.
    pub payload: u32,
    /// Batch size.
    pub batch: u32,
    /// Client request rate (requests/second).
    pub rate: u64,
    /// Virtual run duration in seconds.
    pub duration_secs: u64,
    /// RNG seed.
    pub seed: u64,
}

impl PerfParams {
    /// The paper's base configuration: 21 replicas, 4 internal nodes.
    pub fn base(protocol: Protocol, payload: u32, batch: u32, rate: u64) -> Self {
        PerfParams {
            protocol,
            n: 21,
            internal: 4,
            payload,
            batch,
            rate,
            duration_secs: 15,
            seed: 42,
        }
    }
}

/// Measured output of one run: the shared summary type, so simulated
/// points and the live-transport points of `iniva-transport` use identical
/// metric definitions (see `iniva_consensus::perf`).
pub type PerfPoint = iniva_consensus::PerfSummary;

/// Reduces a finished simulation to a [`PerfPoint`].
pub fn harvest<M>(
    sim: &Simulation<M>,
    metrics: &iniva_consensus::ChainMetrics,
    duration_secs: u64,
) -> PerfPoint
where
    M: iniva_net::Actor,
{
    let cpu_busy: Vec<u64> = (0..sim.len() as u32)
        .map(|i| sim.stats(i).cpu_busy)
        .collect();
    PerfPoint::from_metrics(metrics, duration_secs as f64, &cpu_busy)
}

/// Runs one performance experiment and returns the measured point.
pub fn run(params: &PerfParams) -> PerfPoint {
    let net = NetConfig {
        seed: params.seed,
        ..NetConfig::default()
    };
    let deadline = params.duration_secs * SECS;
    match params.protocol {
        Protocol::HotStuff => {
            let scheme = Arc::new(SimScheme::new(params.n, b"perf"));
            let cfg = ReplicaConfig {
                n: params.n,
                max_batch: params.batch,
                payload_per_req: params.payload,
                request_rate: params.rate,
                view_timeout: 500 * MILLIS,
                leader_policy: LeaderPolicy::RoundRobin,
                cost: CostModel::default(),
            };
            let replicas = (0..params.n as u32)
                .map(|id| StarReplica::new(id, cfg.clone(), Arc::clone(&scheme)))
                .collect();
            let mut sim = Simulation::new(net, replicas);
            sim.run_until(deadline);
            let metrics = sim.actor(0).chain.metrics.clone();
            harvest(&sim, &metrics, params.duration_secs)
        }
        Protocol::Iniva | Protocol::InivaNo2C => {
            let scheme = Arc::new(SimScheme::new(params.n, b"perf"));
            let mut cfg = InivaConfig::for_tests(params.n, params.internal);
            cfg.max_batch = params.batch;
            cfg.payload_per_req = params.payload;
            cfg.request_rate = params.rate;
            cfg.view_timeout = 800 * MILLIS;
            cfg.second_chance = params.protocol == Protocol::Iniva;
            // Paper-faithful trigger: 2ND-CHANCE once a quorum is collected,
            // then wait δ — the cost Fig. 3a attributes to the fallback.
            cfg.sc_on_quorum = true;
            cfg.second_chance_timer = Some(10 * MILLIS);
            let replicas = (0..params.n as u32)
                .map(|id| InivaReplica::new(id, cfg.clone(), Arc::clone(&scheme)))
                .collect();
            let mut sim = Simulation::new(net, replicas);
            sim.run_until(deadline);
            let metrics = sim.actor(0).chain.metrics.clone();
            harvest(&sim, &metrics, params.duration_secs)
        }
    }
}

/// A Fig. 3a series: `(throughput, latency)` for increasing client load.
#[derive(Debug, Clone)]
pub struct ThroughputLatencySeries {
    /// Legend label (protocol, payload, batch).
    pub label: String,
    /// Points swept over client request rate.
    pub points: Vec<PerfPoint>,
}

/// Fig. 3a: throughput vs latency for HotStuff / Iniva / Iniva-No2C at
/// payload {64, 128} bytes and batch {100, 800}.
pub fn figure_3a(rates: &[u64]) -> Vec<ThroughputLatencySeries> {
    let mut out = Vec::new();
    for proto in [Protocol::HotStuff, Protocol::Iniva, Protocol::InivaNo2C] {
        for payload in [64u32, 128] {
            for batch in [100u32, 800] {
                let points = rates
                    .iter()
                    .map(|&rate| run(&PerfParams::base(proto, payload, batch, rate)))
                    .collect();
                out.push(ThroughputLatencySeries {
                    label: format!("{} {payload}b B={batch}", proto.label()),
                    points,
                });
            }
        }
    }
    out
}

/// Fig. 3b: CPU usage of HotStuff and Iniva at saturation load.
pub fn figure_3b() -> Vec<(String, PerfPoint)> {
    let mut out = Vec::new();
    for proto in [Protocol::HotStuff, Protocol::Iniva] {
        for payload in [64u32, 128] {
            for batch in [100u32, 800] {
                let p = run(&PerfParams::base(proto, payload, batch, 50_000));
                out.push((format!("{} {payload}b B={batch}", proto.label()), p));
            }
        }
    }
    out
}

/// Fig. 3c: throughput vs committee size (batch 100, payload {0, 64}).
pub fn figure_3c(sizes: &[usize]) -> Vec<(String, Vec<(usize, f64)>)> {
    let mut out = Vec::new();
    for proto in [Protocol::HotStuff, Protocol::Iniva] {
        for payload in [0u32, 64] {
            let series: Vec<(usize, f64)> = sizes
                .iter()
                .map(|&n| {
                    let internal = ((n as f64 - 1.0).sqrt().round() as u32).max(2);
                    let params = PerfParams {
                        n,
                        internal,
                        duration_secs: 10,
                        ..PerfParams::base(proto, payload, 100, 50_000)
                    };
                    (n, run(&params).throughput)
                })
                .collect();
            out.push((format!("{} {payload}b", proto.label()), series));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hotstuff_outperforms_iniva_fault_free() {
        // Fig. 3a headline: HotStuff's star outruns Iniva's tree in the
        // fault-free case, with No2C in between. The paper's star leader
        // verifies each vote individually (~33% gap); since batch pairing
        // verification landed, the collecting leader verifies a quorum's
        // votes under ONE multi-pairing, so the modeled star baseline is
        // considerably faster than the paper's and the gap is wider than
        // Fig. 3a's — the ordering claims and a looser overhead floor are
        // what remain pinned. (Iniva's round-based tree keeps its
        // latency/CPU/inclusion advantages; see the sibling tests.)
        let hs = run(&PerfParams::base(Protocol::HotStuff, 64, 100, 100_000));
        let iniva = run(&PerfParams::base(Protocol::Iniva, 64, 100, 100_000));
        let no2c = run(&PerfParams::base(Protocol::InivaNo2C, 64, 100, 100_000));
        assert!(
            hs.throughput > iniva.throughput,
            "HotStuff {} vs Iniva {}",
            hs.throughput,
            iniva.throughput
        );
        assert!(
            no2c.throughput >= iniva.throughput,
            "No2C {} vs Iniva {}",
            no2c.throughput,
            iniva.throughput
        );
        assert!(
            iniva.throughput > hs.throughput * 0.25,
            "overhead too large: HotStuff {} vs Iniva {}",
            hs.throughput,
            iniva.throughput
        );
    }

    #[test]
    fn iniva_uses_less_cpu_than_hotstuff() {
        // Fig. 3b: the tree distributes verification; with the round-based
        // pipeline Iniva also commits less, so mean CPU drops (~48% in the
        // paper).
        let hs = run(&PerfParams::base(Protocol::HotStuff, 64, 100, 100_000));
        let iniva = run(&PerfParams::base(Protocol::Iniva, 64, 100, 100_000));
        assert!(
            iniva.cpu_mean_pct < hs.cpu_mean_pct,
            "Iniva CPU {} vs HotStuff {}",
            iniva.cpu_mean_pct,
            hs.cpu_mean_pct
        );
    }

    #[test]
    fn larger_batches_raise_throughput() {
        let b100 = run(&PerfParams::base(Protocol::Iniva, 64, 100, 200_000));
        let b800 = run(&PerfParams::base(Protocol::Iniva, 64, 800, 200_000));
        assert!(
            b800.throughput > b100.throughput * 1.5,
            "batching must amortize consensus cost ({} vs {})",
            b100.throughput,
            b800.throughput
        );
    }

    #[test]
    fn throughput_degrades_gracefully_with_committee_size() {
        let small = run(&PerfParams {
            n: 21,
            internal: 4,
            ..PerfParams::base(Protocol::Iniva, 64, 100, 50_000)
        });
        let large = run(&PerfParams {
            n: 81,
            internal: 9,
            duration_secs: 10,
            ..PerfParams::base(Protocol::Iniva, 64, 100, 50_000)
        });
        assert!(large.throughput > 0.0);
        assert!(small.throughput >= large.throughput * 0.8);
    }
}
