//! Reward-effect simulations (Fig. 2c and Fig. 2d).
//!
//! Each trial draws a random tree (roles reshuffled as in the protocol),
//! applies the attacker's strategy, constructs the resulting QC
//! *multiplicities*, runs the Section V-B reward distribution and averages
//! the shares of the victim and of the attacker's processes.

use iniva::omission::{evaluate_attack, AttackOutcome};
use iniva::rewards::{distribute, RewardParams};
use iniva_consensus::quorum;
use iniva_crypto::multisig::Multiplicities;
use iniva_crypto::shuffle::Assignment;
use iniva_tree::{Role, Topology, TreeView};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Attacks applied in a reward trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Attack {
    /// No attack — honest baseline.
    None,
    /// Targeted vote omission with the given collateral budget.
    VoteOmission {
        /// Maximum non-victim exclusions the attacker accepts.
        max_collateral: u32,
    },
    /// The attacker's processes do not vote.
    VoteDenial,
    /// Everything at once (the paper's "all four attacks"): denial + omission
    /// + aggregation denial/omission by controlled aggregators.
    All,
}

/// Average per-round reward outcome.
#[derive(Debug, Clone, Copy)]
pub struct RewardOutcome {
    /// Mean share of the victim (fraction of R).
    pub victim_share: f64,
    /// Mean total share of the attacker's processes (fraction of R).
    pub attacker_share: f64,
    /// Fair baselines: `1/n` and `m` respectively.
    pub victim_fair: f64,
    /// Fair attacker share (`#attackers / n`).
    pub attacker_fair: f64,
}

impl RewardOutcome {
    /// `(share - fair) / fair` for the victim (the paper's Fig. 2c y-axis).
    pub fn victim_deviation(&self) -> f64 {
        (self.victim_share - self.victim_fair) / self.victim_fair
    }

    /// `(share - fair) / fair` for the attacker.
    pub fn attacker_deviation(&self) -> f64 {
        (self.attacker_share - self.attacker_fair) / self.attacker_fair
    }

    /// Absolute reward lost per round as a fraction of R (Fig. 2d).
    pub fn victim_loss(&self) -> f64 {
        self.victim_fair - self.victim_share
    }

    /// Absolute attacker loss per round as a fraction of R (Fig. 2d).
    pub fn attacker_loss(&self) -> f64 {
        self.attacker_fair - self.attacker_share
    }
}

/// Builds the QC multiplicities of one Iniva round under `attack`.
fn iniva_round_mults(
    tree: &TreeView,
    attackers: &HashSet<u32>,
    victim: u32,
    l_v: u32,
    attack: Attack,
) -> Multiplicities {
    let n = tree.len();
    let mut mults = Multiplicities::new();
    let deny_votes = matches!(attack, Attack::VoteDenial | Attack::All);
    let aggregation_attacks = matches!(attack, Attack::All);

    // Which members are omitted by a targeted vote-omission?
    let mut omitted: HashSet<u32> = HashSet::new();
    if let Attack::VoteOmission { max_collateral } = attack.pick_omission_budget() {
        if !attackers.contains(&victim) {
            if let AttackOutcome::Omitted { .. } =
                evaluate_attack(tree, l_v, attackers, victim, max_collateral)
            {
                omitted.insert(victim);
                // Collateral exclusions: reproduce the structural predicate's
                // choice of excluded processes.
                match tree.role_of(victim) {
                    Role::Leaf => {
                        let parent = tree.parent_of(victim).unwrap();
                        if !attackers.contains(&parent) {
                            for p in tree.branch_of(parent) {
                                omitted.insert(p);
                            }
                        }
                    }
                    Role::Internal => {
                        if !attackers.contains(&l_v) {
                            for c in tree.children_of(victim) {
                                omitted.insert(c);
                            }
                        } else {
                            // Children collected individually via 2ND-CHANCE:
                            // marked below by parent omission handling.
                        }
                    }
                    Role::Root => {}
                }
            }
        }
    }

    for member in 0..n {
        if omitted.contains(&member) {
            continue;
        }
        if deny_votes && attackers.contains(&member) {
            continue; // attacker processes do not vote
        }
        match tree.role_of(member) {
            Role::Root => {
                mults.add(member, 1);
            }
            Role::Internal => {
                let votes = !omitted.contains(&member);
                if !votes {
                    continue;
                }
                // Aggregated children: those that voted, were not omitted
                // and whose parent actually aggregates.
                let parent_aggregates = !(aggregation_attacks && attackers.contains(&member));
                let kids: Vec<u32> = tree
                    .children_of(member)
                    .into_iter()
                    .filter(|c| !omitted.contains(c))
                    .filter(|c| !(deny_votes && attackers.contains(c)))
                    .filter(|c| !(aggregation_attacks && attackers.contains(c))) // agg denial
                    .collect();
                // An internal node omitted by the both-leaders attack has its
                // children collected via 2ND-CHANCE; handled in Leaf arm.
                if parent_aggregates {
                    mults.add(member, 1 + kids.len() as u64);
                } else {
                    mults.add(member, 1); // internal's own vote via 2ND-CHANCE
                }
            }
            Role::Leaf => {
                let parent = tree.parent_of(member).unwrap();
                let parent_dead =
                    omitted.contains(&parent) || (deny_votes && attackers.contains(&parent));
                let parent_skips = aggregation_attacks
                    && attackers.contains(&parent)
                    && !attackers.contains(&member);
                let leaf_denies_aggregation = aggregation_attacks && attackers.contains(&member);
                if parent_dead || parent_skips || leaf_denies_aggregation {
                    // Collected individually via 2ND-CHANCE (multiplicity 1).
                    mults.add(member, 1);
                } else {
                    mults.add(member, 2);
                }
            }
        }
    }
    mults
}

impl Attack {
    fn pick_omission_budget(self) -> Attack {
        match self {
            Attack::All => Attack::VoteOmission { max_collateral: 0 },
            other => other,
        }
    }
}

/// Runs `trials` Iniva reward rounds and averages victim/attacker shares.
pub fn iniva_rewards(
    n: u32,
    internal: u32,
    m: f64,
    attack: Attack,
    params: &RewardParams,
    trials: usize,
    seed: u64,
) -> RewardOutcome {
    let mut rng = StdRng::seed_from_u64(seed);
    let topology = Topology::new(n, internal).expect("valid topology");
    let attacker_count = (m * n as f64).round() as usize;
    let mut victim_sum = 0.0;
    let mut attacker_sum = 0.0;
    for _ in 0..trials {
        let mut ids: Vec<u32> = (0..n).collect();
        ids.shuffle(&mut rng);
        let attackers: HashSet<u32> = ids[..attacker_count].iter().copied().collect();
        let victim = ids[attacker_count];
        let l_v = rng.gen_range(0..n);
        let mut perm: Vec<u32> = (0..n).collect();
        perm.shuffle(&mut rng);
        let tree = TreeView::with_assignment(topology, Assignment::from_permutation(perm), 0);
        let mults = iniva_round_mults(&tree, &attackers, victim, l_v, attack);
        if (mults.distinct()) < quorum(n as usize) {
            // No QC: no rewards this round (rare under these attacks).
            continue;
        }
        let d = distribute(&tree, &mults, params, 1.0);
        victim_sum += d.shares[victim as usize];
        attacker_sum += attackers.iter().map(|&a| d.shares[a as usize]).sum::<f64>();
    }
    let t = trials as f64;
    RewardOutcome {
        victim_share: victim_sum / t,
        attacker_share: attacker_sum / t,
        victim_fair: 1.0 / n as f64,
        attacker_fair: attacker_count as f64 / n as f64,
    }
}

/// The star baseline's reward round: the leader collects individual votes
/// (it can omit exactly the victim at zero collateral when controlled); the
/// reward uses the same leader bonus but no aggregation bonus.
pub fn star_rewards(
    n: u32,
    m: f64,
    attack: Attack,
    params: &RewardParams,
    trials: usize,
    seed: u64,
) -> RewardOutcome {
    let mut rng = StdRng::seed_from_u64(seed);
    let attacker_count = (m * n as f64).round() as usize;
    let nf = n as f64;
    let bv = 1.0 - params.leader_bonus;
    let q = quorum(n as usize);
    let f_n = (nf / 3.0).floor().max(1.0);
    let mut victim_sum = 0.0;
    let mut attacker_sum = 0.0;
    for _ in 0..trials {
        let mut ids: Vec<u32> = (0..n).collect();
        ids.shuffle(&mut rng);
        let attackers: HashSet<u32> = ids[..attacker_count].iter().copied().collect();
        let victim = ids[attacker_count];
        let leader = rng.gen_range(0..n);
        let deny = matches!(attack, Attack::VoteDenial | Attack::All);
        let omit = matches!(attack, Attack::VoteOmission { .. } | Attack::All)
            && attackers.contains(&leader);
        let mut included: Vec<bool> = (0..n).map(|p| !(deny && attackers.contains(&p))).collect();
        if omit {
            included[victim as usize] = false;
        }
        let inc_count = included.iter().filter(|&&b| b).count();
        if inc_count < q {
            continue;
        }
        let mut shares = vec![0.0; n as usize];
        let mut claimed = 0.0;
        for p in 0..n as usize {
            if included[p] {
                shares[p] += bv / nf;
                claimed += bv / nf;
            }
        }
        let lb = params.leader_bonus * (inc_count.saturating_sub(q)) as f64 / f_n;
        shares[leader as usize] += lb;
        claimed += lb;
        let residual = (1.0 - claimed) / nf;
        for s in shares.iter_mut() {
            *s += residual;
        }
        victim_sum += shares[victim as usize];
        attacker_sum += attackers.iter().map(|&a| shares[a as usize]).sum::<f64>();
    }
    let t = trials as f64;
    RewardOutcome {
        victim_share: victim_sum / t,
        attacker_share: attacker_sum / t,
        victim_fair: 1.0 / nf,
        attacker_fair: attacker_count as f64 / nf,
    }
}

/// One Fig. 2c row: protocol × attack × m.
#[derive(Debug, Clone)]
pub struct Fig2cRow {
    /// Series label.
    pub label: String,
    /// Attacker power.
    pub m: f64,
    /// Victim's relative deviation from fair share.
    pub victim_deviation: f64,
    /// Attacker's relative deviation from fair share.
    pub attacker_deviation: f64,
}

/// Fig. 2c: reward deviation under attacks, collateral 0, n = 111
/// (b_l = 15%, b_a = 2%).
pub fn figure_2c(trials: usize, seed: u64) -> Vec<Fig2cRow> {
    let params = RewardParams::default();
    let ms = [0.05, 0.10, 0.15, 0.20, 0.25, 0.30];
    let mut rows = Vec::new();
    let configs: [(&str, Attack); 3] = [
        (
            "Attack vote omission",
            Attack::VoteOmission { max_collateral: 0 },
        ),
        ("Attack no vote", Attack::VoteDenial),
        ("All attacks", Attack::All),
    ];
    for (name, attack) in configs {
        for &m in &ms {
            let iniva = iniva_rewards(111, 10, m, attack, &params, trials, seed ^ 31);
            rows.push(Fig2cRow {
                label: format!("{name} - Iniva"),
                m,
                victim_deviation: iniva.victim_deviation(),
                attacker_deviation: iniva.attacker_deviation(),
            });
            let star = star_rewards(111, m, attack, &params, trials, seed ^ 32);
            rows.push(Fig2cRow {
                label: format!("{name} - Star"),
                m,
                victim_deviation: star.victim_deviation(),
                attacker_deviation: star.attacker_deviation(),
            });
        }
    }
    rows
}

/// One Fig. 2d row.
#[derive(Debug, Clone)]
pub struct Fig2dRow {
    /// Configuration label.
    pub label: String,
    /// Attacker power.
    pub m: f64,
    /// Victim's lost reward per round (fraction of R).
    pub victim_loss: f64,
    /// Attacker's lost reward per round (fraction of R).
    pub attacker_loss: f64,
}

/// Fig. 2d: reward lost when the attacker buys up to a whole branch to omit
/// the victim — Iniva with 4 internal (n = 109) and 10 internal (n = 111)
/// vs the star protocol, at m ∈ {10%, 30%}.
pub fn figure_2d(trials: usize, seed: u64) -> Vec<Fig2dRow> {
    let params = RewardParams::default();
    let mut rows = Vec::new();
    for &m in &[0.10, 0.30] {
        for (label, n, internal) in [
            ("Iniva (fanout = 4)", 109u32, 4u32),
            ("Iniva (fanout = 10)", 111, 10),
        ] {
            // Whole-branch budget: enough collateral to always buy a branch.
            let o = iniva_rewards(
                n,
                internal,
                m,
                Attack::VoteOmission {
                    max_collateral: n / internal + 1,
                },
                &params,
                trials,
                seed ^ 41,
            );
            rows.push(Fig2dRow {
                label: label.to_string(),
                m,
                victim_loss: o.victim_loss(),
                attacker_loss: o.attacker_loss(),
            });
        }
        let s = star_rewards(
            111,
            m,
            Attack::VoteOmission { max_collateral: 0 },
            &params,
            trials,
            seed ^ 42,
        );
        rows.push(Fig2dRow {
            label: "Star".to_string(),
            m,
            victim_loss: s.victim_loss(),
            attacker_loss: s.attacker_loss(),
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_rounds_are_fair() {
        let params = RewardParams::default();
        let o = iniva_rewards(111, 10, 0.1, Attack::None, &params, 3_000, 1);
        // No attack: everyone averages their fair share (roles rotate).
        assert!(o.victim_deviation().abs() < 0.1, "{}", o.victim_deviation());
        assert!(o.attacker_deviation().abs() < 0.05);
    }

    #[test]
    fn omission_hurts_victim_much_less_in_iniva_than_star() {
        // Fig. 2c headline: at m = 0.3 the victim loses ~25% of its fair
        // share under the star protocol but only ~7% under Iniva.
        let params = RewardParams::default();
        let attack = Attack::VoteOmission { max_collateral: 0 };
        let iniva = iniva_rewards(111, 10, 0.3, attack, &params, 4_000, 7);
        let star = star_rewards(111, 0.3, attack, &params, 4_000, 7);
        assert!(
            star.victim_deviation() < -0.15,
            "star {}",
            star.victim_deviation()
        );
        assert!(
            iniva.victim_deviation() > star.victim_deviation() * 0.6,
            "iniva {} star {}",
            iniva.victim_deviation(),
            star.victim_deviation()
        );
        assert!(iniva.victim_deviation() < 0.0);
    }

    #[test]
    fn vote_denial_costs_the_attacker() {
        let params = RewardParams::default();
        let o = iniva_rewards(111, 10, 0.2, Attack::VoteDenial, &params, 3_000, 9);
        assert!(
            o.attacker_deviation() < -0.5,
            "denial must forfeit most attacker reward ({})",
            o.attacker_deviation()
        );
    }

    #[test]
    fn branch_attack_costs_more_with_fewer_internals() {
        // Fig. 2d: with 4 internal nodes each branch is ~26 processes, so
        // buying one costs the attacker far more than with 10 internals.
        let rows = figure_2d(2_000, 3);
        let get = |label: &str, m: f64| {
            rows.iter()
                .find(|r| r.label == label && (r.m - m).abs() < 1e-9)
                .unwrap()
                .attacker_loss
        };
        let f4 = get("Iniva (fanout = 4)", 0.10);
        let f10 = get("Iniva (fanout = 10)", 0.10);
        let star = get("Star", 0.10);
        assert!(
            f4 > f10,
            "fanout-4 loss {f4} must exceed fanout-10 loss {f10}"
        );
        assert!(f10 > star, "iniva loss {f10} must exceed star loss {star}");
    }

    #[test]
    fn reward_totals_conserved_in_round_model() {
        // Any constructed multiplicity set distributes exactly R.
        let params = RewardParams::default();
        let topology = Topology::new(21, 4).unwrap();
        let tree = TreeView::with_assignment(topology, Assignment::identity(21), 0);
        let attackers: HashSet<u32> = [2, 9, 13].into_iter().collect();
        for attack in [
            Attack::None,
            Attack::VoteOmission { max_collateral: 6 },
            Attack::VoteDenial,
            Attack::All,
        ] {
            let mults = iniva_round_mults(&tree, &attackers, 5, 1, attack);
            let d = distribute(&tree, &mults, &params, 1.0);
            let total: f64 = d.shares.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "{attack:?}: total {total}");
        }
    }
}
